// CI perf gate: diffs freshly-produced BENCH_*.json artifacts against the
// checked-in snapshots in bench/baselines/, holding every gated metric
// (bench/baselines/gates.json) inside its allowed envelope. Two gate
// flavors:
//
//   - max_regress_pct: the current value may trail the baseline by at most
//     that percentage (direction-aware). For absolute rates (req/s,
//     lines/s) the margins are generous — CI runners vary — the gate
//     exists to catch order-of-magnitude cliffs, not 5% jitter.
//   - min / max: absolute bounds on the current value alone, for
//     machine-independent ratios (speedups, scaling factors, allocation
//     counts) that must hold on any hardware.
//
// A metric entry may carry "waiver": "<reason>" to skip it temporarily;
// the waiver is printed so it cannot rot silently. Exits non-zero when any
// un-waived gate fails, after printing the full trajectory table.
//
//   bench_compare [--baselines DIR] [--current DIR] [--gates PATH]
//
// Updating baselines: rerun the benches on the reference runner class and
// copy the fresh BENCH_*.json over bench/baselines/ (see
// bench/baselines/README.md for the exact procedure).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace optshare {
namespace {

Result<JsonValue> LoadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return JsonValue::Parse(buffer.str());
}

/// Resolves a dotted metric path with `name[key=value]` array selectors,
/// e.g. "kinds[kind=submit_32].roundtrip_speedup_fast_vs_tree" or
/// "sweep[workers=8,clients=16].requests_per_sec".
const JsonValue* Resolve(const JsonValue& root, const std::string& path) {
  const JsonValue* node = &root;
  size_t pos = 0;
  while (pos < path.size()) {
    size_t dot = path.find('.', pos);
    if (dot == std::string::npos) dot = path.size();
    std::string segment = path.substr(pos, dot - pos);
    pos = dot + 1;

    std::string selector;
    const size_t bracket = segment.find('[');
    if (bracket != std::string::npos) {
      if (segment.back() != ']') return nullptr;
      selector = segment.substr(bracket + 1,
                                segment.size() - bracket - 2);
      segment = segment.substr(0, bracket);
    }
    node = node->Find(segment);
    if (node == nullptr) return nullptr;
    if (selector.empty()) continue;

    if (!node->is_array()) return nullptr;
    const JsonValue* match = nullptr;
    for (const JsonValue& element : node->AsArray()) {
      if (!element.is_object()) continue;
      bool all = true;
      size_t spos = 0;
      while (spos < selector.size()) {
        size_t comma = selector.find(',', spos);
        if (comma == std::string::npos) comma = selector.size();
        const std::string clause = selector.substr(spos, comma - spos);
        spos = comma + 1;
        const size_t eq = clause.find('=');
        if (eq == std::string::npos) return nullptr;
        const std::string key = clause.substr(0, eq);
        const std::string want = clause.substr(eq + 1);
        const JsonValue* field = element.Find(key);
        if (field == nullptr) {
          all = false;
          break;
        }
        // String fields compare verbatim; numbers via their canonical dump.
        const std::string have =
            field->is_string() ? field->AsString() : field->Dump();
        if (have != want) {
          all = false;
          break;
        }
      }
      if (all) {
        match = &element;
        break;
      }
    }
    if (match == nullptr) return nullptr;
    node = match;
  }
  return node;
}

std::optional<double> ResolveNumber(const JsonValue& root,
                                    const std::string& path) {
  const JsonValue* node = Resolve(root, path);
  if (node == nullptr || !node->is_number()) return std::nullopt;
  return node->AsNumber();
}

struct GateResult {
  std::string file;
  std::string path;
  std::optional<double> baseline;
  std::optional<double> current;
  std::string verdict;  // "ok", "FAIL", "waived", "n/a"
  std::string detail;
};

std::string FormatCell(const std::optional<double>& v) {
  if (!v) return "-";
  char buf[32];
  if (*v == static_cast<long long>(*v) && *v > -1e15 && *v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(*v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", *v);
  }
  return buf;
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) {
  using namespace optshare;

  std::string baselines_dir = "bench/baselines";
  std::string current_dir = ".";
  std::string gates_path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--baselines" && a + 1 < argc) {
      baselines_dir = argv[++a];
    } else if (arg == "--current" && a + 1 < argc) {
      current_dir = argv[++a];
    } else if (arg == "--gates" && a + 1 < argc) {
      gates_path = argv[++a];
    } else {
      std::cerr << "usage: bench_compare [--baselines DIR] [--current DIR] "
                   "[--gates PATH]\n";
      return 2;
    }
  }
  if (gates_path.empty()) gates_path = baselines_dir + "/gates.json";

  Result<JsonValue> gates = LoadJson(gates_path);
  if (!gates.ok()) {
    std::cerr << "bench_compare: " << gates.status().ToString() << "\n";
    return 2;
  }
  const JsonValue* files = gates->Find("files");
  if (files == nullptr || !files->is_array()) {
    std::cerr << "bench_compare: gates file has no \"files\" array\n";
    return 2;
  }

  std::vector<GateResult> results;
  bool failed = false;

  for (const JsonValue& file_gate : files->AsArray()) {
    const JsonValue* name = file_gate.Find("file");
    if (name == nullptr || !name->is_string()) {
      std::cerr << "bench_compare: gate entry without \"file\"\n";
      return 2;
    }
    const std::string file = name->AsString();
    Result<JsonValue> current = LoadJson(current_dir + "/" + file);
    Result<JsonValue> baseline = LoadJson(baselines_dir + "/" + file);
    if (!current.ok()) {
      GateResult r;
      r.file = file;
      r.path = "(artifact)";
      r.verdict = "FAIL";
      r.detail = "missing current artifact: " + current.status().ToString();
      results.push_back(r);
      failed = true;
      continue;
    }

    const JsonValue* metrics = file_gate.Find("metrics");
    if (metrics == nullptr || !metrics->is_array()) continue;
    for (const JsonValue& metric : metrics->AsArray()) {
      GateResult r;
      r.file = file;
      const JsonValue* path = metric.Find("path");
      if (path == nullptr || !path->is_string()) {
        std::cerr << "bench_compare: metric without \"path\" in " << file
                  << "\n";
        return 2;
      }
      r.path = path->AsString();
      r.current = ResolveNumber(*current, r.path);
      if (baseline.ok()) r.baseline = ResolveNumber(*baseline, r.path);

      if (const JsonValue* waiver = metric.Find("waiver")) {
        r.verdict = "waived";
        r.detail = waiver->is_string() ? waiver->AsString() : "(waived)";
        results.push_back(r);
        continue;
      }
      if (!r.current) {
        r.verdict = "FAIL";
        r.detail = "metric missing from current artifact";
        results.push_back(r);
        failed = true;
        continue;
      }

      const JsonValue* direction = metric.Find("direction");
      const bool higher_is_better =
          direction == nullptr || !direction->is_string() ||
          direction->AsString() != "lower_is_better";

      r.verdict = "ok";
      if (const JsonValue* min = metric.Find("min");
          min != nullptr && min->is_number() &&
          *r.current < min->AsNumber()) {
        r.verdict = "FAIL";
        r.detail = "below floor " + FormatCell(min->AsNumber());
      }
      if (const JsonValue* max = metric.Find("max");
          max != nullptr && max->is_number() &&
          *r.current > max->AsNumber()) {
        r.verdict = "FAIL";
        r.detail = "above ceiling " + FormatCell(max->AsNumber());
      }
      if (const JsonValue* regress = metric.Find("max_regress_pct");
          regress != nullptr && regress->is_number()) {
        if (!r.baseline) {
          r.verdict = "FAIL";
          r.detail = "no baseline for regression gate (" + baselines_dir +
                     "/" + file + ")";
        } else if (*r.baseline != 0.0) {
          const double delta_pct =
              higher_is_better
                  ? (*r.baseline - *r.current) / *r.baseline * 100.0
                  : (*r.current - *r.baseline) / *r.baseline * 100.0;
          if (delta_pct > regress->AsNumber()) {
            r.verdict = "FAIL";
            char buf[64];
            std::snprintf(buf, sizeof(buf), "regressed %.1f%% (cap %.1f%%)",
                          delta_pct, regress->AsNumber());
            r.detail = buf;
          }
        }
      }
      if (r.verdict == "FAIL") failed = true;
      results.push_back(r);
    }
  }

  // The trajectory table: every gated metric, baseline -> current.
  std::printf("%-90s %14s %14s %8s %s\n", "metric", "baseline", "current",
              "delta%", "verdict");
  for (const GateResult& r : results) {
    std::string delta = "-";
    if (r.baseline && r.current && *r.baseline != 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.1f",
                    (*r.current - *r.baseline) / *r.baseline * 100.0);
      delta = buf;
    }
    const std::string label = r.file + ":" + r.path;
    std::printf("%-90s %14s %14s %8s %s%s%s\n", label.c_str(),
                FormatCell(r.baseline).c_str(), FormatCell(r.current).c_str(),
                delta.c_str(), r.verdict.c_str(),
                r.detail.empty() ? "" : " — ", r.detail.c_str());
  }

  if (failed) {
    std::cerr << "\nbench_compare: perf gate FAILED (see table above). If "
                 "the change is intentional, refresh bench/baselines/ or add "
                 "a waiver per bench/baselines/README.md.\n";
    return 1;
  }
  std::cout << "\nbench_compare: all gates passed\n";
  return 0;
}
