// optshare CLI: run the pricing mechanisms on game files and event logs,
// and serve the multi-tenant marketplace protocol.
//
//   optshare_cli sample <type>            # emit a sample game document
//   optshare_cli validate <file>          # parse + validate a game file
//   optshare_cli run <file> [--mechanism NAME] [--json]
//   optshare_cli replay <file> [--mechanism NAME] [--json]
//   optshare_cli attack [--scenario-file FILE] [--player SPEC] [--json]
//                                         # strategy lab: attack a mechanism
//   optshare_cli serve [--workers N] [--data-dir DIR] [--listen HOST:PORT]
//                      [--scenario-file FILE]
//                                         # wire-protocol loop: stdin, or TCP
//   optshare_cli connect HOST:PORT        # drive a remote serve --listen
//   optshare_cli metrics HOST:PORT        # scrape a server's metrics
//   optshare_cli node --id ID --cluster FILE [--data-dir DIR] [--workers N]
//                                         # one node of a pricing cluster
//   optshare_cli route --cluster FILE [--listen HOST:PORT]
//                                         # cluster router front end
//   optshare_cli recover <data-dir>       # replay a data dir, print state
//   optshare_cli mechanisms               # list registered mechanisms
//   optshare_cli help [subcommand]        # detailed per-subcommand usage
//
// Game types: additive_offline, additive_online, subst_offline,
// subst_online, plus event_log — a streamed period (tenants arriving,
// declaring and departing slot by slot; see core/serialization.h for both
// schemas). `run` prices a batch game; `replay` feeds an event log through
// the streaming surface (core/online_mechanism.h), slot by slot, the way a
// live PricingSession would; `serve` reads newline-delimited protocol
// requests (service/protocol.h) from stdin and answers one response line
// per request, pricing distinct tenancies concurrently. Mechanisms are
// resolved by name against the MechanismRegistry — the paper's mechanisms
// ("addoff"/"shapley", "addon", "substoff", "subston") plus the baselines
// ("naive", "naive_online", "vcg", "regret"). The default is the paper's
// mechanism for the game's type.
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "baseline/baseline_mechanisms.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "cluster/router.h"
#include "common/money.h"
#include "common/net.h"
#include "core/accounting.h"
#include "core/mechanism.h"
#include "core/online_mechanism.h"
#include "core/serialization.h"
#include "service/dispatch.h"
#include "service/marketplace_server.h"
#include "service/net_client.h"
#include "service/net_server.h"
#include "strategy/harness.h"
#include "strategy/player.h"
#include "strategy/trace.h"

namespace optshare {
namespace {

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

struct SubcommandHelp {
  const char* name;
  const char* synopsis;
  const char* details;
};

constexpr SubcommandHelp kSubcommands[] = {
    {"sample", "optshare_cli sample <type>",
     "Emits a ready-made sample document for a game type, or a trace\n"
     "scenario config (strategy/trace.h) demonstrating the full schema —\n"
     "diurnal arrivals, a flash crowd, Pareto-tailed intensities and a\n"
     "correlated mass-departure. The trace sample round-trips through the\n"
     "strict loader, so it is guaranteed to parse.\n"
     "types: additive_offline additive_online subst_offline subst_online\n"
     "       event_log trace\n"
     "example:\n"
     "  optshare_cli sample additive_online > game.json\n"
     "  optshare_cli sample trace > scenario.json\n"
     "  optshare_cli serve --scenario-file scenario.json\n"},
    {"validate", "optshare_cli validate <file>",
     "Parses a game or event-log file and checks its invariants; prints\n"
     "the detected type on success.\n"
     "example:\n"
     "  optshare_cli sample event_log > log.json\n"
     "  optshare_cli validate log.json\n"},
    {"run", "optshare_cli run <file> [--mechanism NAME] [--json]",
     "Prices a batch game file with the named (or default) mechanism and\n"
     "prints the resulting ledger.\n"
     "example:\n"
     "  optshare_cli sample additive_offline > game.json\n"
     "  optshare_cli run game.json --mechanism shapley --json\n"},
    {"replay", "optshare_cli replay <file> [--mechanism NAME] [--json]",
     "Feeds an event-log file through the streaming mechanism surface slot\n"
     "by slot, the way a live PricingSession ingests a period — natively\n"
     "incremental for \"addon\"/\"subston\", buffered for the baselines —\n"
     "then accounts the outcome against the log's materialized truth.\n"
     "example:\n"
     "  optshare_cli sample event_log > log.json\n"
     "  optshare_cli replay log.json                   # paper mechanism\n"
     "  optshare_cli replay log.json --mechanism naive_online --json\n"},
    {"attack",
     "optshare_cli attack [--scenario-file FILE] [--mechanism NAME] "
     "[--player SPEC] [--periods N] [--workers N] [--dry-run] [--json]",
     "The strategy lab: boots a real marketplace server, drives a\n"
     "trace-generated background population plus one strategist tenant\n"
     "over the v2 wire protocol, and replays the identical multi-period\n"
     "program twice — strategist truthful vs. playing an attack — to\n"
     "measure what the lie bought in *realized* utility (true value of\n"
     "serviced slots minus ledger payments; declared values are never\n"
     "trusted). A truthful mechanism keeps the gain at <= epsilon; the\n"
     "naive baseline pays attackers.\n"
     "players: truthful  misreport:<factor>  sybil:<k>  delay:<slots>\n"
     "         freeride          (default: the whole attack battery)\n"
     "--scenario-file FILE uses a trace config (`help sample`) as the\n"
     "background world; the default is a three-period telemetry scenario.\n"
     "--mechanism / --periods override the config. --dry-run prints the\n"
     "background trace's wire program (one request line per line, ready\n"
     "for `serve` or `connect`) instead of running the harness.\n"
     "example:\n"
     "  optshare_cli attack --player freeride --json\n"
     "  optshare_cli attack --mechanism naive_online   # exploitable\n"},
    {"serve",
     "optshare_cli serve [--workers N] [--data-dir DIR] "
     "[--export-dir DIR] [--listen HOST:PORT] [--max-request-bytes B] "
     "[--admit-mutations-per-sec R] [--admit-burst B] "
     "[--connection-requests-per-sec R] [--scenario-file FILE]",
     "Reads newline-delimited marketplace protocol requests (one JSON\n"
     "document per line, schema versions 1 and 2; see service/protocol.h)\n"
     "from stdin and writes one response line per request, in request\n"
     "order. Requests for one tenancy execute in order; distinct tenancies\n"
     "price concurrently on N workers (default 4).\n"
     "--listen HOST:PORT serves the identical protocol over TCP instead:\n"
     "many concurrent connections, per-connection response ordering, slow\n"
     "readers bounded then disconnected with a typed error. Port 0 picks\n"
     "an ephemeral port (printed to stderr). Drive it interactively with\n"
     "`optshare_cli connect HOST:PORT`.\n"
     "--data-dir makes tenancy state durable: requests are journaled,\n"
     "close_period checkpoints, and startup recovers whatever the\n"
     "directory holds. EOF or a v2 shutdown request drains in-flight work\n"
     "and checkpoints every tenancy before exit. Request lines longer\n"
     "than B bytes (default 1 MiB, 0 = unlimited) answer a typed\n"
     "ResourceExhausted error instead of being buffered.\n"
     "--export-dir DIR arms the v2 `export` op: it streams every\n"
     "tenancy's ledger, structure outcomes and period totals into DIR as\n"
     "CSV + binary column chunks + manifest.json (`help export`).\n"
     "--admit-mutations-per-sec R arms per-tenancy admission control: each\n"
     "tenancy may run R mutating ops per second (token bucket, burst\n"
     "--admit-burst, default R); a breaching request answers a typed\n"
     "ResourceExhausted with a retry_after_ms hint. 0 (default) = off.\n"
     "--connection-requests-per-sec R additionally rate-caps each TCP\n"
     "connection at the transport (--listen only).\n"
     "--scenario-file FILE pre-creates a tenancy from a trace scenario\n"
     "config (strategy/trace.h; `optshare_cli sample trace` emits one):\n"
     "the config's catalog, mechanism, slots_per_period and\n"
     "maintenance_fraction become the tenancy named by the config, ready\n"
     "for open_period without a CatalogSpec.\n"
     "ops: open_period submit depart advance_slot close_period report\n"
     "     query_price list_mechanisms snapshot restore export shutdown\n"
     "     server_info batch (v3: many requests in one frame, one\n"
     "     ordered response array; single-tenancy session batches\n"
     "     journal atomically)\n"
     "example session:\n"
     "  $ optshare_cli serve --data-dir /var/lib/optshare\n"
     "  {\"v\":1,\"op\":\"open_period\",\"tenancy\":\"acme\",\"catalog\":"
     "{\"scenario\":\"telemetry\"}}\n"
     "  {\"ok\":true,\"result\":{\"carried_structures\":[],\"mechanism\":"
     "\"addon\",...},\"v\":1}\n"
     "  {\"v\":1,\"op\":\"advance_slot\",\"tenancy\":\"acme\","
     "\"slots\":12}\n"
     "  {\"ok\":true,\"result\":{\"slot\":12,\"slots_advanced\":12},"
     "\"v\":1}\n"
     "  {\"v\":1,\"op\":\"close_period\",\"tenancy\":\"acme\"}\n"
     "  {\"ok\":true,\"result\":{\"report\":{...}},\"v\":1}\n"
     "  {\"v\":2,\"op\":\"shutdown\"}\n"
     "  {\"ok\":true,\"result\":{\"draining\":true},\"v\":2}\n"},
    {"connect", "optshare_cli connect HOST:PORT",
     "Connects to a `serve --listen` server and round-trips protocol\n"
     "request lines from stdin, printing one response line per request —\n"
     "a transcript of the same session `serve` would run locally.\n"
     "example:\n"
     "  $ optshare_cli serve --listen 127.0.0.1:7421 &\n"
     "  $ optshare_cli connect 127.0.0.1:7421\n"
     "  {\"v\":1,\"op\":\"list_mechanisms\"}\n"
     "  {\"ok\":true,\"result\":{\"mechanisms\":[...]},\"v\":1}\n"
     "  {\"v\":2,\"op\":\"server_info\"}\n"
     "  {\"ok\":true,\"result\":{...,\"transport\":{\"connections_open\":1,"
     "...}},\"v\":2}\n"},
    {"node",
     "optshare_cli node --id ID --cluster FILE [--data-dir DIR] "
     "[--workers N]",
     "Runs one node of a multi-node pricing cluster. FILE is the shared\n"
     "placement map — a JSON document naming every node's id, host and\n"
     "port (src/cluster/placement.h):\n"
     "  {\"v\":1,\"vnodes\":64,\"overrides\":{},\"nodes\":[\n"
     "    {\"id\":\"node-0\",\"host\":\"127.0.0.1\",\"port\":7501,"
     "\"dead\":false},\n"
     "    {\"id\":\"node-1\",\"host\":\"127.0.0.1\",\"port\":7502,"
     "\"dead\":false},\n"
     "    {\"id\":\"node-2\",\"host\":\"127.0.0.1\",\"port\":7503,"
     "\"dead\":false}]}\n"
     "The node binds its own entry's host:port, recovers the tenancies the\n"
     "map assigns to it from --data-dir, streams every journal write to\n"
     "the next live node on the hash ring (its replica), and serves the\n"
     "regular v2 wire protocol until a shutdown request drains it. Start\n"
     "one `optshare_cli node` per map entry, then front them with\n"
     "`optshare_cli route`.\n"},
    {"route", "optshare_cli route --cluster FILE [--listen HOST:PORT]",
     "Runs the cluster router: a front end speaking the same wire protocol\n"
     "as a single node, forwarding each request to the node that owns its\n"
     "tenancy under the placement map in FILE. When a node dies, the\n"
     "router marks it dead, pushes the updated map to the survivors, and\n"
     "restores affected tenancies from their replicas — reads retry\n"
     "transparently; mutations answer a typed error asking the client to\n"
     "resend. Default listen address is 127.0.0.1:0 (ephemeral, printed\n"
     "to stderr).\n"
     "example:\n"
     "  $ optshare_cli node --id node-0 --cluster cluster.json &\n"
     "  $ optshare_cli node --id node-1 --cluster cluster.json &\n"
     "  $ optshare_cli node --id node-2 --cluster cluster.json &\n"
     "  $ optshare_cli route --cluster cluster.json --listen :7500 &\n"
     "  $ optshare_cli connect 127.0.0.1:7500\n"},
    {"recover", "optshare_cli recover <data-dir> [--json]",
     "Rebuilds every tenancy persisted under a serve --data-dir (latest\n"
     "snapshot + journal replay through the regular dispatch path) and\n"
     "prints the recovery stats plus each tenancy's report — without\n"
     "serving. Use it to inspect what a crashed server would recover to.\n"
     "example:\n"
     "  optshare_cli recover /var/lib/optshare --json\n"},
    {"export",
     "optshare_cli export <data-dir> --export-dir DIR [--tenancy NAME] "
     "[--json]",
     "Recovers a serve --data-dir (like `recover`) and writes the\n"
     "columnar analytics export: ledger.csv / reports.csv / periods.csv,\n"
     "one binary column chunk per column (<table>.<column>.col), and\n"
     "manifest.json describing every file (src/analytics/columnar.h).\n"
     "Summing periods.csv's cloud_balance column in row order reproduces\n"
     "each tenancy's cumulative_balance bit for bit. A running server\n"
     "writes the same layout live via the v2 `export` op when started\n"
     "with `serve --export-dir DIR`.\n"
     "example:\n"
     "  optshare_cli export /var/lib/optshare --export-dir /tmp/columns\n"
     "  python3 -c 'import csv; print(sum(float(r[\"cloud_balance\"])\n"
     "      for r in csv.DictReader(open(\"/tmp/columns/periods.csv\"))))'\n"},
    {"metrics", "optshare_cli metrics HOST:PORT [--json]",
     "Scrapes a running server's metrics surface: one v3 server_info\n"
     "round trip, printing the \"metrics\" section — per-op latency\n"
     "histograms (fixed log-spaced microsecond buckets), shard queue\n"
     "depths, journal fsync lag (appends not yet checkpointed) and\n"
     "admission counters (mutating-op quota admits/rejects). The default\n"
     "output is a human summary with histogram-derived p50/p99 upper\n"
     "bounds; --json dumps the section verbatim, ready for a scraper.\n"
     "example:\n"
     "  $ optshare_cli serve --listen 127.0.0.1:7421 &\n"
     "  $ optshare_cli metrics 127.0.0.1:7421 --json\n"},
    {"mechanisms", "optshare_cli mechanisms",
     "Lists every mechanism registered with the MechanismRegistry, one\n"
     "name per line (paper mechanisms and baselines).\n"},
    {"help", "optshare_cli help [subcommand]",
     "Prints the command summary, or a subcommand's detailed usage.\n"},
};

int Usage() {
  std::cerr << "usage:\n";
  for (const SubcommandHelp& sub : kSubcommands) {
    std::cerr << "  " << sub.synopsis << "\n";
  }
  std::cerr << "run `optshare_cli help <subcommand>` for details and worked "
               "examples\n";
  return 2;
}

int Help(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 0;
  }
  const std::string name = argv[2];
  for (const SubcommandHelp& sub : kSubcommands) {
    if (name == sub.name) {
      std::cout << "usage: " << sub.synopsis << "\n\n" << sub.details;
      return 0;
    }
  }
  return Fail("unknown subcommand \"" + name + "\"; run `optshare_cli help`");
}

/// Bounded line reader: like getline, but a line longer than `cap` bytes
/// is discarded (rest of the line skipped) instead of buffered, so a
/// hostile or broken client cannot balloon the server's memory. cap 0 =
/// unlimited.
enum class LineRead { kOk, kEof, kTooLong };

LineRead ReadBoundedLine(std::istream& in, std::string* line, size_t cap) {
  line->clear();
  std::streambuf* buf = in.rdbuf();
  for (;;) {
    const int c = buf->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      return line->empty() ? LineRead::kEof : LineRead::kOk;
    }
    if (c == '\n') return LineRead::kOk;
    if (cap > 0 && line->size() >= cap) {
      for (int d = buf->sbumpc(); d != std::char_traits<char>::eof();
           d = buf->sbumpc()) {
        if (d == '\n') break;
      }
      return LineRead::kTooLong;
    }
    line->push_back(static_cast<char>(c));
  }
}

Result<strategy::TraceConfig> LoadTraceConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return strategy::ParseTraceConfig(buffer.str());
}

/// The tenancy configuration a trace scenario config prescribes.
service::ServiceConfig ServiceConfigOf(const strategy::TraceConfig& config) {
  service::ServiceConfig service_config;
  service_config.slots_per_period = config.slots_per_period;
  service_config.maintenance_fraction = config.maintenance_fraction;
  service_config.mechanism = config.mechanism;
  return service_config;
}

/// The stdin wire loop: one request line in, one response line out, in
/// request order. Parsing and dispatch go through the same
/// RequestDispatcher the TCP NetServer uses, and ordering through the same
/// OrderedLineWriter — responses flush the moment they resolve (never
/// waiting for the next stdin line), so an interactive client that awaits
/// its response before sending the next request is never deadlocked
/// against a blocked getline. With --data-dir, state is
/// journaled/checkpointed as it changes, startup recovers the directory,
/// and EOF or a shutdown request checkpoints every tenancy before exit (no
/// lost final period on pipe close). With --listen HOST:PORT the same
/// server is exposed over TCP instead (service/net_server.h), serving many
/// concurrent connections.
int Serve(int argc, char** argv) {
  int workers = 4;
  std::string data_dir;
  std::string export_dir;
  std::string listen;
  std::string scenario_file;
  size_t max_request_bytes = service::protocol::kDefaultMaxRequestBytes;
  double admit_rate = 0.0;
  double admit_burst = 0.0;
  double connection_rate = 0.0;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--workers" && a + 1 < argc) {
      workers = std::atoi(argv[++a]);
      if (workers < 1) return Fail("--workers must be >= 1");
    } else if (arg == "--data-dir" && a + 1 < argc) {
      data_dir = argv[++a];
    } else if (arg == "--export-dir" && a + 1 < argc) {
      export_dir = argv[++a];
    } else if (arg == "--listen" && a + 1 < argc) {
      listen = argv[++a];
    } else if (arg == "--scenario-file" && a + 1 < argc) {
      scenario_file = argv[++a];
    } else if (arg == "--max-request-bytes" && a + 1 < argc) {
      // A silently-misparsed cap either disables the protection (garbage
      // -> 0) or rejects everything ("2M" -> 2); insist on a clean number.
      const char* text = argv[++a];
      char* end = nullptr;
      errno = 0;
      const long long parsed = std::strtoll(text, &end, 10);
      if (end == text || *end != '\0' || errno == ERANGE || parsed < 0) {
        return Fail("--max-request-bytes must be a non-negative byte count");
      }
      max_request_bytes = static_cast<size_t>(parsed);
    } else if (arg == "--admit-mutations-per-sec" && a + 1 < argc) {
      admit_rate = std::atof(argv[++a]);
      if (admit_rate < 0) {
        return Fail("--admit-mutations-per-sec must be >= 0");
      }
    } else if (arg == "--admit-burst" && a + 1 < argc) {
      admit_burst = std::atof(argv[++a]);
      if (admit_burst < 0) return Fail("--admit-burst must be >= 0");
    } else if (arg == "--connection-requests-per-sec" && a + 1 < argc) {
      connection_rate = std::atof(argv[++a]);
      if (connection_rate < 0) {
        return Fail("--connection-requests-per-sec must be >= 0");
      }
    } else {
      return Usage();
    }
  }
  service::ServerOptions options;
  options.num_workers = workers;
  options.max_request_bytes = max_request_bytes;
  options.export_dir = export_dir;
  options.admission.mutating_ops_per_sec = admit_rate;
  options.admission.burst = admit_burst;  // <= 0 = same as the rate.
  if (!data_dir.empty()) {
    auto store = service::FileStateStore::Open(data_dir);
    if (!store.ok()) return Fail(store.status().ToString());
    options.store = std::move(*store);
  }
  service::MarketplaceServer server(std::move(options));
  if (!data_dir.empty()) {
    Result<service::RecoveryStats> recovered = server.Recover();
    if (!recovered.ok()) return Fail(recovered.status().ToString());
    std::cerr << "recovered " << recovered->tenancies_recovered
              << " tenancies (" << recovered->snapshots_loaded
              << " snapshots, " << recovered->journal_records_replayed
              << " journal records) from " << data_dir << "\n";
  }
  // --scenario-file: pre-create the config's tenancy so clients can
  // open_period on it without shipping a CatalogSpec. A tenancy of the
  // same name recovered from --data-dir wins (its carried state is real).
  if (!scenario_file.empty()) {
    Result<strategy::TraceConfig> config = LoadTraceConfig(scenario_file);
    if (!config.ok()) return Fail(config.status().ToString());
    Result<simdb::Catalog> catalog =
        strategy::BuildTraceCatalog(config->catalog);
    if (!catalog.ok()) return Fail(catalog.status().ToString());
    const std::string tenancy = config->name.empty() ? "trace" : config->name;
    Status created = server.CreateTenancy(tenancy, std::move(*catalog),
                                          ServiceConfigOf(*config));
    if (created.code() == StatusCode::kAlreadyExists) {
      std::cerr << "tenancy \"" << tenancy
                << "\" already recovered; keeping its state\n";
    } else if (!created.ok()) {
      return Fail(created.ToString());
    } else {
      std::cerr << "created tenancy \"" << tenancy << "\" from "
                << scenario_file << " (mechanism " << config->mechanism
                << ", " << config->slots_per_period << " slots/period)\n";
    }
  }

  // --listen: the TCP front end serves the same MarketplaceServer through
  // the same dispatcher; Wait() returns once a wire shutdown op drains
  // every connection, and the checkpoint below runs exactly as for stdin.
  if (!listen.empty()) {
    auto host_port = net::ParseHostPort(listen);
    if (!host_port.ok()) return Fail(host_port.status().ToString());
    service::NetServerOptions net_options;
    net_options.host = host_port->first;
    net_options.port = host_port->second;
    net_options.max_connection_requests_per_sec = connection_rate;
    service::NetServer net(&server, net_options);
    Status started = net.Start();
    if (!started.ok()) return Fail(started.ToString());
    std::cerr << "serving on "
              << (net.host().empty() ? "0.0.0.0" : net.host()) << ":"
              << net.port() << " (" << workers << " workers); send "
              << "{\"v\":2,\"op\":\"shutdown\"} to drain and exit\n";
    net.Wait();
    Status shutdown = server.Shutdown();
    if (!shutdown.ok()) {
      std::cerr << "warning: shutdown left state unpersisted: "
                << shutdown.ToString() << "\n";
    }
    return 0;
  }

  service::RequestDispatcher dispatcher(&server);
  // Only the writer's sink touches stdout: responses flush strictly in
  // request order, as soon as each completes.
  service::OrderedLineWriter writer([](std::string_view response) {
    std::cout << response << "\n";
    std::cout.flush();
  });
  // Bound the in-flight window so a firehose client cannot queue unbounded
  // work on the pool.
  std::mutex mu;
  std::condition_variable cv;
  size_t inflight = 0;

  std::string line;
  bool reading = true;
  while (reading) {
    switch (ReadBoundedLine(std::cin, &line, max_request_bytes)) {
      case LineRead::kEof:
        reading = false;
        continue;
      case LineRead::kTooLong:
        writer.Complete(writer.Reserve(), dispatcher.OversizedLineResponse());
        continue;
      case LineRead::kOk:
        break;
    }
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return inflight < 1024; });
      ++inflight;
    }
    const uint64_t slot = writer.Reserve();
    const bool is_shutdown =
        dispatcher.Submit(line, [slot, &writer, &mu, &cv,
                                 &inflight](std::string_view response) {
          writer.Complete(slot, response);
          {
            std::lock_guard<std::mutex> lock(mu);
            --inflight;
          }
          cv.notify_all();
        });
    // A shutdown request ends the read loop once acknowledged; whatever
    // stdin still holds is intentionally unread.
    if (is_shutdown) reading = false;
  }
  {
    // Every submitted callback references this frame; wait them out.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return inflight == 0; });
  }
  // Graceful exit: drain the pool and checkpoint every tenancy, so the
  // final (possibly still-open) period survives the pipe closing.
  Status shutdown = server.Shutdown();
  if (!shutdown.ok()) {
    std::cerr << "warning: shutdown left state unpersisted: "
              << shutdown.ToString() << "\n";
  }
  return 0;
}

/// Interactive remote client: reads request lines from stdin, round-trips
/// each over TCP, prints the response line. EOF closes the connection and
/// leaves the server running (send a v2 shutdown op to stop it).
int ConnectRemote(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto host_port = net::ParseHostPort(argv[2]);
  if (!host_port.ok()) return Fail(host_port.status().ToString());
  for (int a = 3; a < argc; ++a) return Usage();
  Result<service::NetClient> client =
      service::NetClient::Connect(host_port->first, host_port->second);
  if (!client.ok()) return Fail(client.status().ToString());
  std::cerr << "connected to "
            << (host_port->first.empty() ? "127.0.0.1" : host_port->first)
            << ":" << host_port->second << "\n";
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<std::string> response = client->Call(line);
    if (!response.ok()) {
      // A shutdown op drains the server, which then closes the socket —
      // possibly right after (or instead of) delivering the final line.
      return Fail(response.status().ToString());
    }
    std::cout << *response << "\n";
    std::cout.flush();
  }
  return 0;
}

/// Scrapes a running server's metrics surface: one v3 server_info round
/// trip, printing the "metrics" section — per-op latency histograms,
/// shard queue depths, journal fsync lag, admission counters. --json
/// dumps the section verbatim for a scraper; the default is a human
/// summary with histogram-derived quantile upper bounds.
int Metrics(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto host_port = net::ParseHostPort(argv[2]);
  if (!host_port.ok()) return Fail(host_port.status().ToString());
  bool json = false;
  for (int a = 3; a < argc; ++a) {
    if (std::string(argv[a]) == "--json") {
      json = true;
    } else {
      return Usage();
    }
  }
  Result<service::NetClient> client =
      service::NetClient::Connect(host_port->first, host_port->second);
  if (!client.ok()) return Fail(client.status().ToString());
  service::protocol::Request request;
  request.op = service::protocol::RequestOp::kServerInfo;
  request.version = 3;
  Result<service::protocol::Response> response = client->Call(request);
  if (!response.ok()) return Fail(response.status().ToString());
  if (!response->ok()) return Fail(response->status.ToString());
  const JsonValue* metrics = response->payload.Find("metrics");
  if (metrics == nullptr) {
    return Fail("server_info carried no metrics section (pre-v3 server?)");
  }
  if (json) {
    std::cout << metrics->Dump(2) << "\n";
    return 0;
  }
  const JsonValue* latency = metrics->Find("latency_us");
  if (latency != nullptr && latency->is_object()) {
    for (const auto& [op, hist] : latency->AsObject()) {
      const double count = hist.Find("count")->AsNumber();
      const double total = hist.Find("total_us")->AsNumber();
      const auto& bounds = hist.Find("le_us")->AsArray();
      const auto& counts = hist.Find("counts")->AsArray();
      // The histogram answers quantiles as bucket upper bounds; the last
      // bucket is unbounded (le_us -1).
      const auto quantile = [&](double q) {
        double seen = 0.0;
        for (size_t b = 0; b < counts.size(); ++b) {
          seen += counts[b].AsNumber();
          if (seen >= q * count) return bounds[b].AsNumber();
        }
        return -1.0;
      };
      const auto bound = [](double le) {
        return le < 0 ? std::string("inf") : std::to_string(
                                                 static_cast<long long>(le));
      };
      std::cout << "latency " << op << ": count "
                << static_cast<long long>(count) << ", mean "
                << (count > 0 ? total / count : 0.0) << "us, p50 <= "
                << bound(quantile(0.5)) << "us, p99 <= "
                << bound(quantile(0.99)) << "us\n";
    }
  }
  const JsonValue* depths = metrics->Find("shard_queue_depths");
  if (depths != nullptr && depths->is_array()) {
    std::cout << "shard queue depths:";
    for (const JsonValue& depth : depths->AsArray()) {
      std::cout << " " << static_cast<long long>(depth.AsNumber());
    }
    std::cout << "\n";
  }
  const JsonValue* journal = metrics->Find("journal");
  if (journal != nullptr) {
    std::cout << "journal fsync lag: "
              << static_cast<long long>(journal->Find("fsync_lag")->AsNumber())
              << " appends\n";
  }
  const JsonValue* admission = metrics->Find("admission");
  if (admission != nullptr) {
    std::cout << "admission: admitted "
              << static_cast<long long>(
                     admission->Find("admitted")->AsNumber())
              << ", rejected "
              << static_cast<long long>(
                     admission->Find("rejected")->AsNumber())
              << ", default quota "
              << admission->Find("default_mutating_ops_per_sec")->AsNumber()
              << " mutating ops/sec ("
              << static_cast<long long>(
                     admission->Find("tenancy_overrides")->AsNumber())
              << " tenancy overrides)\n";
  }
  return 0;
}

Result<cluster::PlacementMap> LoadPlacementFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  Result<JsonValue> doc = JsonValue::Parse(buffer.str());
  if (!doc.ok()) return doc.status();
  return cluster::PlacementMap::FromJson(*doc);
}

/// One node of the pricing cluster: binds its placement-map entry's
/// host:port, recovers its owned tenancies, streams journal writes to its
/// replica, serves until a wire shutdown drains it.
int RunClusterNode(int argc, char** argv) {
  std::string id;
  std::string cluster_file;
  std::string data_dir;
  int workers = 4;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--id" && a + 1 < argc) {
      id = argv[++a];
    } else if (arg == "--cluster" && a + 1 < argc) {
      cluster_file = argv[++a];
    } else if (arg == "--data-dir" && a + 1 < argc) {
      data_dir = argv[++a];
    } else if (arg == "--workers" && a + 1 < argc) {
      workers = std::atoi(argv[++a]);
      if (workers < 1) return Fail("--workers must be >= 1");
    } else {
      return Usage();
    }
  }
  if (id.empty() || cluster_file.empty()) {
    return Fail("node requires --id and --cluster; see `optshare_cli help "
                "node`");
  }
  Result<cluster::PlacementMap> placement = LoadPlacementFile(cluster_file);
  if (!placement.ok()) return Fail(placement.status().ToString());
  std::optional<cluster::NodeInfo> self = placement->NodeById(id);
  if (!self.has_value()) {
    return Fail("node id \"" + id + "\" is not in " + cluster_file);
  }
  cluster::ClusterNodeOptions options;
  options.node_id = id;
  options.placement = std::move(*placement);
  options.host = self->host;
  options.port = self->port;
  options.data_dir = data_dir;
  options.num_workers = workers;
  options.connect.timeout_ms = 500;
  cluster::ClusterNode node(std::move(options));
  Status started = node.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::cerr << "cluster node " << id << " serving on "
            << (self->host.empty() ? "0.0.0.0" : self->host) << ":"
            << node.port() << " (" << workers << " workers)\n";
  node.Wait();
  Status shutdown = node.Shutdown();
  if (!shutdown.ok()) {
    std::cerr << "warning: shutdown left state unpersisted: "
              << shutdown.ToString() << "\n";
  }
  return 0;
}

/// The router front end: serves the wire protocol, forwarding each request
/// to the owning node, with failover.
int RunClusterRouter(int argc, char** argv) {
  std::string cluster_file;
  std::string listen = ":0";
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--cluster" && a + 1 < argc) {
      cluster_file = argv[++a];
    } else if (arg == "--listen" && a + 1 < argc) {
      listen = argv[++a];
    } else {
      return Usage();
    }
  }
  if (cluster_file.empty()) {
    return Fail("route requires --cluster; see `optshare_cli help route`");
  }
  Result<cluster::PlacementMap> placement = LoadPlacementFile(cluster_file);
  if (!placement.ok()) return Fail(placement.status().ToString());
  auto host_port = net::ParseHostPort(listen);
  if (!host_port.ok()) return Fail(host_port.status().ToString());
  cluster::RouterOptions options;
  options.placement = std::move(*placement);
  cluster::ClusterRouter router(std::move(options));
  cluster::RouterServer server(&router, host_port->first, host_port->second);
  Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::cerr << "cluster router serving on "
            << (host_port->first.empty() ? "127.0.0.1" : host_port->first)
            << ":" << server.port() << " ("
            << router.CurrentPlacement().nodes().size() << " nodes); send "
            << "{\"v\":2,\"op\":\"shutdown\"} to drain the cluster\n";
  server.Wait();
  return 0;
}

/// Rebuilds the state a crashed `serve --data-dir` session would recover
/// to, and prints it.
int Recover(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string data_dir = argv[2];
  bool json = false;
  for (int a = 3; a < argc; ++a) {
    if (std::string(argv[a]) == "--json") {
      json = true;
    } else {
      return Usage();
    }
  }
  auto store = service::FileStateStore::Open(data_dir);
  if (!store.ok()) return Fail(store.status().ToString());
  service::ServerOptions options;
  options.num_workers = 1;
  options.store = std::move(*store);
  service::MarketplaceServer server(std::move(options));
  Result<service::RecoveryStats> stats = server.Recover();
  if (!stats.ok()) return Fail(stats.status().ToString());

  JsonValue doc = JsonValue::MakeObject();
  // The same encoding the wire restore/server_info ops serve.
  doc.Set("recovery", service::ToJson(*stats));
  JsonValue tenancies = JsonValue::MakeObject();
  for (const std::string& name : server.TenancyNames()) {
    service::protocol::Request report;
    report.op = service::protocol::RequestOp::kReport;
    report.tenancy = name;
    service::protocol::Response response = server.Handle(std::move(report));
    if (!response.ok()) return Fail(response.status.ToString());
    tenancies.Set(name, std::move(response.payload));
  }
  doc.Set("tenancies", std::move(tenancies));
  if (json) {
    std::cout << doc.Dump(2) << "\n";
  } else {
    std::cout << "recovered " << stats->tenancies_recovered
              << " tenancies from " << data_dir << " ("
              << stats->snapshots_loaded << " snapshots, "
              << stats->journal_records_replayed << " journal records, "
              << stats->journal_torn << " torn tails)\n";
    for (const auto& [name, payload] : doc.Find("tenancies")->AsObject()) {
      std::cout << "tenancy " << name << ": periods_run "
                << payload.Find("periods_run")->AsNumber()
                << ", period_open "
                << (payload.Find("period_open")->AsBool() ? "yes" : "no")
                << ", built " << payload.Find("built_structures")->AsArray().size()
                << ", cumulative_balance "
                << FormatDollars(payload.Find("cumulative_balance")->AsNumber())
                << "\n";
    }
  }
  return 0;
}

/// Recovers a serve --data-dir like Recover(), then streams every
/// tenancy's ledger, per-structure outcomes and period totals into the
/// columnar analytics layout (src/analytics/columnar.h) — the offline twin
/// of the wire `export` op.
int ExportColumnar(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string data_dir = argv[2];
  std::string export_dir;
  std::string tenancy;
  bool json = false;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--export-dir" && a + 1 < argc) {
      export_dir = argv[++a];
    } else if (arg == "--tenancy" && a + 1 < argc) {
      tenancy = argv[++a];
    } else if (arg == "--json") {
      json = true;
    } else {
      return Usage();
    }
  }
  if (export_dir.empty()) return Fail("export needs --export-dir DIR");
  auto store = service::FileStateStore::Open(data_dir);
  if (!store.ok()) return Fail(store.status().ToString());
  service::ServerOptions options;
  options.num_workers = 1;
  options.store = std::move(*store);
  options.export_dir = export_dir;
  service::MarketplaceServer server(std::move(options));
  Result<service::RecoveryStats> stats = server.Recover();
  if (!stats.ok()) return Fail(stats.status().ToString());

  service::protocol::Request request;
  request.op = service::protocol::RequestOp::kExport;
  request.version = 2;
  request.tenancy = tenancy;  // Empty = every recovered tenancy.
  service::protocol::Response response = server.Handle(std::move(request));
  if (!response.ok()) return Fail(response.status.ToString());
  if (json) {
    std::cout << response.payload.Dump(2) << "\n";
    return 0;
  }
  // Reports recovered from a snapshot have only the journal tail's closed
  // periods in memory; say so rather than printing a mute small number.
  std::cout << "exported " << response.payload.Find("tenancies")->AsNumber()
            << " tenancies to " << export_dir << ": "
            << response.payload.Find("period_rows")->AsNumber()
            << " period rows, "
            << response.payload.Find("report_rows")->AsNumber()
            << " structure rows, "
            << response.payload.Find("ledger_rows")->AsNumber()
            << " ledger rows across "
            << response.payload.Find("files_written")->AsNumber()
            << " files (closed periods retained in-memory since each "
               "tenancy was rebuilt)\n";
  return 0;
}

Result<JsonValue> LoadGameFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return JsonValue::Parse(buffer.str());
}

/// The `sample trace` document: one scenario config exercising the whole
/// schema — a diurnal Pareto-tailed steady class, a flash-crowd class and
/// a correlated mass-departure. Emitted through the strict loader so the
/// sample can never drift from what ParseTraceConfig accepts.
constexpr char kSampleTraceConfig[] = R"({
  "name": "flash-telemetry",
  "seed": 7,
  "periods": 3,
  "slots_per_period": 24,
  "mechanism": "addon",
  "maintenance_fraction": 0.25,
  "catalog": {"tables": [{"name": "telemetry", "row_count": 1000000000,
    "columns": [{"name": "device", "type": "int64",
                 "distinct_values": 5000000}]}]},
  "classes": [
    {"name": "steady", "count": 24,
     "workloads": [[{"frequency": 1, "query": {"table": "telemetry",
        "aggregate": true,
        "predicates": [{"column": "device", "selectivity": 2e-7}]}}]],
     "executions": {"pareto": {"scale": 150, "alpha": 1.3, "cap": 50000}},
     "interval": {"kind": "sampled",
                  "arrival": {"process": "diurnal", "amplitude": 0.8,
                              "wavelength": 24, "phase": 0},
                  "duration": {"to_horizon": true}}},
    {"name": "crowd", "count": 16,
     "workloads": [[{"frequency": 1, "query": {"table": "telemetry",
        "aggregate": true,
        "predicates": [{"column": "device", "selectivity": 2e-7}]}}]],
     "executions": {"fixed": 400},
     "interval": {"kind": "sampled",
                  "arrival": {"process": "flash", "peak_slot": 8,
                              "width": 1, "multiplier": 25},
                  "duration": {"uniform": [2, 6]}}}
  ],
  "departures": [{"period": 2, "slot": 12, "fraction": 0.5,
                  "class": "steady"}]
})";

int EmitSample(const std::string& type) {
  JsonValue doc;
  if (type == "additive_offline") {
    AdditiveOfflineGame g;
    g.costs = {90.0, 50.0};
    g.bids = {{40.0, 0.0}, {30.0, 60.0}, {35.0, 10.0}};
    doc = ToJson(g);
  } else if (type == "additive_online") {
    AdditiveOnlineGame g;
    g.num_slots = 3;
    g.cost = 100.0;
    g.users = {SlotValues::Single(1, 101.0),
               *SlotValues::Make(1, 3, {16.0, 16.0, 16.0}),
               SlotValues::Single(2, 26.0), SlotValues::Single(2, 26.0)};
    doc = ToJson(g);
  } else if (type == "subst_offline") {
    SubstOfflineGame g;
    g.costs = {60.0, 180.0, 100.0};
    g.users = {{{0, 1}, 100.0}, {{2}, 101.0}, {{0, 1, 2}, 60.0}, {{1}, 70.0}};
    doc = ToJson(g);
  } else if (type == "subst_online") {
    SubstOnlineGame g;
    g.num_slots = 3;
    g.costs = {60.0, 100.0, 50.0};
    g.users = {{SlotValues::Constant(1, 2, 50.0), {0, 1}},
               {SlotValues::Constant(2, 3, 50.0), {0, 1, 2}},
               {SlotValues::Single(3, 100.0), {2}}};
    doc = ToJson(g);
  } else if (type == "event_log") {
    // A streamed period: three tenants declare at their arrival slots and
    // one departs early — the scenario a batch game file cannot express.
    SlotEventLog log;
    log.kind = GameKind::kAdditiveOnline;
    log.num_slots = 4;
    log.costs = {100.0};
    log.events.resize(4);
    log.events[0].push_back(SlotEvent::DeclareValues(
        0, 0, *SlotValues::Make(1, 4, {30.0, 30.0, 30.0, 30.0})));
    log.events[1].push_back(SlotEvent::DeclareValues(
        1, 0, *SlotValues::Make(2, 4, {40.0, 40.0, 40.0})));
    log.events[2].push_back(
        SlotEvent::DeclareValues(2, 0, SlotValues::Single(3, 55.0)));
    log.events[2].push_back(SlotEvent::UserDepart(1));
    doc = ToJson(log);
  } else if (type == "trace") {
    Result<strategy::TraceConfig> config =
        strategy::ParseTraceConfig(kSampleTraceConfig);
    if (!config.ok()) return Fail(config.status().ToString());
    doc = strategy::ToJson(*config);
  } else {
    return Fail("unknown game type: " + type);
  }
  std::cout << doc.Dump(2) << "\n";
  return 0;
}

void PrintLedger(const Accounting& acc) {
  std::cout << "total value    " << FormatDollars(acc.TotalValue()) << "\n"
            << "total payments " << FormatDollars(acc.TotalPayment()) << "\n"
            << "total cost     " << FormatDollars(acc.total_cost) << "\n"
            << "total utility  " << FormatDollars(acc.TotalUtility()) << "\n"
            << "cloud balance  " << FormatDollars(acc.CloudBalance()) << "\n";
  for (size_t i = 0; i < acc.user_value.size(); ++i) {
    std::cout << "user " << i << ": value "
              << FormatDollars(acc.user_value[i]) << ", pays "
              << FormatDollars(acc.user_payment[i]) << ", utility "
              << FormatDollars(acc.UserUtility(static_cast<UserId>(i)))
              << "\n";
  }
}

JsonValue LedgerToJson(const Accounting& acc) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("total_value", JsonValue::Number(acc.TotalValue()));
  obj.Set("total_payments", JsonValue::Number(acc.TotalPayment()));
  obj.Set("total_cost", JsonValue::Number(acc.total_cost));
  obj.Set("total_utility", JsonValue::Number(acc.TotalUtility()));
  obj.Set("cloud_balance", JsonValue::Number(acc.CloudBalance()));
  JsonValue users = JsonValue::MakeArray();
  for (size_t i = 0; i < acc.user_value.size(); ++i) {
    JsonValue u = JsonValue::MakeObject();
    u.Set("value", JsonValue::Number(acc.user_value[i]));
    u.Set("payment", JsonValue::Number(acc.user_payment[i]));
    users.Append(std::move(u));
  }
  obj.Set("users", std::move(users));
  return obj;
}

/// Runs the named (or default) mechanism on the parsed game and accounts
/// the outcome against the same game as truth — one registry-driven path
/// for every game type and mechanism.
int RunView(const GameView& view, std::string mechanism, bool json) {
  if (mechanism == "default") {
    mechanism = MechanismRegistry::DefaultFor(view.kind());
  }
  Result<MechanismResult> result = RunMechanism(mechanism, view);
  if (!result.ok()) return Fail(result.status().ToString());
  const Accounting acc = AccountResult(view, *result);

  if (json) {
    std::cout << LedgerToJson(acc).Dump(2) << "\n";
  } else {
    PrintLedger(acc);
  }
  return 0;
}

int RunGame(const JsonValue& doc, const std::string& mechanism, bool json) {
  const std::string type = GameTypeOf(doc);
  if (type == "additive_offline") {
    Result<AdditiveOfflineGame> game = AdditiveOfflineGameFromJson(doc);
    if (!game.ok()) return Fail(game.status().ToString());
    return RunView(GameView(*game), mechanism, json);
  }
  if (type == "additive_online") {
    Result<AdditiveOnlineGame> game = AdditiveOnlineGameFromJson(doc);
    if (!game.ok()) return Fail(game.status().ToString());
    return RunView(GameView(*game), mechanism, json);
  }
  if (type == "subst_offline") {
    Result<SubstOfflineGame> game = SubstOfflineGameFromJson(doc);
    if (!game.ok()) return Fail(game.status().ToString());
    return RunView(GameView(*game), mechanism, json);
  }
  if (type == "subst_online") {
    Result<SubstOnlineGame> game = SubstOnlineGameFromJson(doc);
    if (!game.ok()) return Fail(game.status().ToString());
    return RunView(GameView(*game), mechanism, json);
  }
  return Fail("unknown or missing game type: \"" + type + "\"");
}

/// Replays an event-log document through the streaming surface: the named
/// (or default) mechanism ingests the period slot by slot, then the
/// outcome is accounted against the log's materialized truth game.
int ReplayLogFile(const JsonValue& doc, std::string mechanism, bool json) {
  Result<SlotEventLog> log = EventLogFromJson(doc);
  if (!log.ok()) return Fail(log.status().ToString());
  if (mechanism == "default") {
    mechanism = MechanismRegistry::DefaultFor(log->kind);
  }
  Result<std::unique_ptr<OnlineMechanism>> mech =
      ResolveOnlineMechanism(mechanism, log->kind);
  if (!mech.ok()) return Fail(mech.status().ToString());
  Result<MechanismResult> result = ReplayLog(*log, **mech);
  if (!result.ok()) return Fail(result.status().ToString());

  // Offline-collapsed mechanisms report no slot structure; account them
  // against the collapsed (per-user total) truth instead.
  const bool collapsed = result->num_slots == 0;
  Accounting acc;
  if (log->kind == GameKind::kSubstOnline) {
    Result<SubstOnlineGame> truth = MaterializeSubstLog(*log);
    if (!truth.ok()) return Fail(truth.status().ToString());
    if (collapsed) {
      SubstOfflineGame off;
      off.costs = truth->costs;
      for (const auto& u : truth->users) {
        off.users.push_back({u.substitutes, u.stream.Total()});
      }
      acc = AccountResult(GameView(off), *result);
    } else {
      acc = AccountResult(GameView(*truth), *result);
    }
  } else {
    Result<MultiAdditiveOnlineGame> truth = MaterializeAdditiveLog(*log);
    if (!truth.ok()) return Fail(truth.status().ToString());
    if (collapsed) {
      AdditiveOfflineGame off;
      off.costs = truth->costs;
      for (const auto& row : truth->bids) {
        std::vector<double> totals;
        totals.reserve(row.size());
        for (const auto& stream : row) totals.push_back(stream.Total());
        off.bids.push_back(std::move(totals));
      }
      acc = AccountResult(GameView(off), *result);
    } else {
      acc = AccountResult(GameView(*truth), *result);
    }
  }
  if (json) {
    JsonValue obj = LedgerToJson(acc);
    obj.Set("mechanism", JsonValue::Str(mechanism));
    obj.Set("native_online",
            JsonValue::Bool(NativelyOnline(mechanism, log->kind)));
    std::cout << obj.Dump(2) << "\n";
  } else {
    std::cout << "replayed " << log->num_slots << " slots through \""
              << mechanism << "\" ("
              << (NativelyOnline(mechanism, log->kind) ? "native online"
                                                       : "buffered")
              << ")\n";
    PrintLedger(acc);
  }
  return 0;
}

/// Models the strategist on the background world: the first class's first
/// workload template at a representative intensity, subscribed for the
/// whole period — a tenant the advisor would genuinely want to serve.
Result<simdb::SimUser> DefaultStrategist(const strategy::TraceConfig& config) {
  if (config.classes.empty() || config.classes.front().workloads.empty()) {
    return Status::InvalidArgument(
        "scenario config has no tenant classes to model the strategist on");
  }
  const strategy::TenantClass& cls = config.classes.front();
  simdb::SimUser strategist;
  strategist.workload = cls.workloads.front();
  switch (cls.executions.kind) {
    case strategy::ExecutionsSpec::Kind::kFixed:
      strategist.executions_per_slot = cls.executions.fixed;
      break;
    case strategy::ExecutionsSpec::Kind::kCycle:
      strategist.executions_per_slot =
          cls.executions.cycle.empty() ? 1.0 : cls.executions.cycle.front();
      break;
    case strategy::ExecutionsSpec::Kind::kUniform:
      strategist.executions_per_slot =
          0.5 * (cls.executions.lo + cls.executions.hi);
      break;
    case strategy::ExecutionsSpec::Kind::kPareto:
      strategist.executions_per_slot = cls.executions.scale;
      break;
  }
  strategist.start = 1;
  strategist.end = config.slots_per_period;
  return strategist;
}

/// The strategy lab: replays one multi-period wire program twice — the
/// strategist truthful, then playing an attack — and prints what the lie
/// bought (strategy/harness.h).
int Attack(int argc, char** argv) {
  std::string scenario_file;
  std::string mechanism;
  std::string player_spec;
  int periods = 0;
  int workers = 2;
  bool dry_run = false;
  bool json = false;
  for (int a = 2; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--scenario-file" && a + 1 < argc) {
      scenario_file = argv[++a];
    } else if (arg == "--mechanism" && a + 1 < argc) {
      mechanism = argv[++a];
    } else if (arg == "--player" && a + 1 < argc) {
      player_spec = argv[++a];
    } else if (arg == "--periods" && a + 1 < argc) {
      periods = std::atoi(argv[++a]);
      if (periods < 1) return Fail("--periods must be >= 1");
    } else if (arg == "--workers" && a + 1 < argc) {
      workers = std::atoi(argv[++a]);
      if (workers < 1) return Fail("--workers must be >= 1");
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      return Usage();
    }
  }

  strategy::TraceConfig config;
  if (!scenario_file.empty()) {
    Result<strategy::TraceConfig> loaded = LoadTraceConfig(scenario_file);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    config = std::move(*loaded);
  } else {
    // The default background world: the telemetry preset over three
    // periods, so periods 2+ exercise carried structures.
    Result<JsonValue> preset =
        strategy::PresetConfigDocument("telemetry", 6, 12);
    if (!preset.ok()) return Fail(preset.status().ToString());
    Result<strategy::TraceConfig> parsed =
        strategy::TraceConfigFromJson(*preset);
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    config = std::move(*parsed);
    config.name = "attack-lab";
    config.periods = 3;
  }
  if (!mechanism.empty()) config.mechanism = mechanism;
  if (periods > 0) config.periods = periods;

  if (dry_run) {
    Result<strategy::Trace> trace = strategy::GenerateTrace(config);
    if (!trace.ok()) return Fail(trace.status().ToString());
    Result<std::vector<std::string>> lines = strategy::TraceRequestLines(
        config, *trace, config.name.empty() ? "trace" : config.name);
    if (!lines.ok()) return Fail(lines.status().ToString());
    for (const std::string& line : *lines) std::cout << line << "\n";
    return 0;
  }

  Result<simdb::SimUser> strategist = DefaultStrategist(config);
  if (!strategist.ok()) return Fail(strategist.status().ToString());
  strategy::StrategyOptions options;
  options.background = std::move(config);
  options.strategist = *strategist;
  options.num_workers = workers;
  Result<strategy::StrategyHarness> harness =
      strategy::StrategyHarness::Make(std::move(options));
  if (!harness.ok()) return Fail(harness.status().ToString());

  std::vector<std::string> specs;
  if (player_spec.empty()) {
    specs = strategy::DefaultAttackSpecs();
  } else {
    specs.push_back(player_spec);
  }
  JsonValue outcomes = JsonValue::MakeArray();
  for (const std::string& spec : specs) {
    Result<std::unique_ptr<strategy::StrategyPlayer>> player =
        strategy::MakePlayer(spec);
    if (!player.ok()) return Fail(player.status().ToString());
    Result<strategy::AttackOutcome> outcome = harness->Run(**player);
    if (!outcome.ok()) return Fail(outcome.status().ToString());
    if (json) {
      outcomes.Append(strategy::ToJson(*outcome));
    } else {
      std::cout << outcome->player << " vs " << outcome->mechanism << " over "
                << outcome->periods << " periods: gain "
                << FormatDollars(outcome->gain) << " (truthful utility "
                << FormatDollars(outcome->truthful_utility) << ", strategic "
                << FormatDollars(outcome->strategic_utility)
                << "), cost-recovery error " << outcome->cost_recovery_error
                << ", regret " << FormatDollars(outcome->regret) << "\n";
    }
  }
  if (json) std::cout << outcomes.Dump(2) << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  RegisterBaselineMechanisms();
  if (argc >= 2 && std::string(argv[1]) == "mechanisms") {
    for (const std::string& name : MechanismRegistry::Global().Names()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (argc >= 2 && std::string(argv[1]) == "help") return Help(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "serve") return Serve(argc, argv);
  if (argc >= 2 && std::string(argv[1]) == "attack") {
    return Attack(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "connect") {
    return ConnectRemote(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "metrics") {
    return Metrics(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "node") {
    return RunClusterNode(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "route") {
    return RunClusterRouter(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "recover") {
    return Recover(argc, argv);
  }
  if (argc >= 2 && std::string(argv[1]) == "export") {
    return ExportColumnar(argc, argv);
  }
  if (argc < 3) return Usage();
  const std::string command = argv[1];

  if (command == "sample") return EmitSample(argv[2]);

  Result<JsonValue> doc = LoadGameFile(argv[2]);
  if (!doc.ok()) return Fail(doc.status().ToString());

  if (command == "validate") {
    const std::string type = GameTypeOf(*doc);
    Status st;
    if (type == "additive_offline") {
      auto g = AdditiveOfflineGameFromJson(*doc);
      st = g.ok() ? Status::OK() : g.status();
    } else if (type == "event_log") {
      auto log = EventLogFromJson(*doc);
      st = log.ok() ? Status::OK() : log.status();
    } else if (type == "additive_online") {
      auto g = AdditiveOnlineGameFromJson(*doc);
      st = g.ok() ? Status::OK() : g.status();
    } else if (type == "subst_offline") {
      auto g = SubstOfflineGameFromJson(*doc);
      st = g.ok() ? Status::OK() : g.status();
    } else if (type == "subst_online") {
      auto g = SubstOnlineGameFromJson(*doc);
      st = g.ok() ? Status::OK() : g.status();
    } else {
      return Fail("unknown game type: \"" + type + "\"");
    }
    if (!st.ok()) return Fail(st.ToString());
    std::cout << "valid " << type << " game\n";
    return 0;
  }

  if (command == "run" || command == "replay") {
    std::string mechanism = "default";
    bool json = false;
    for (int a = 3; a < argc; ++a) {
      const std::string arg = argv[a];
      if (arg == "--mechanism" && a + 1 < argc) {
        mechanism = argv[++a];
      } else if (arg == "--json") {
        json = true;
      } else {
        return Usage();
      }
    }
    if (command == "replay") return ReplayLogFile(*doc, mechanism, json);
    return RunGame(*doc, mechanism, json);
  }

  return Usage();
}

}  // namespace
}  // namespace optshare

int main(int argc, char** argv) { return optshare::Main(argc, argv); }
