// ColumnarWriter: the analytics export format — the cumulative ledger and
// per-period reports streamed out of the server so fleet-wide revenue
// analytics never touch the serving path.
//
// An export directory holds three logical tables, each in two encodings:
//
//   ledger   — one row per (tenancy, period, user): value, payment
//   reports  — one row per (tenancy, period, structure): cost, active,
//              carried_over, num_candidates, num_subscribers
//   periods  — one row per (tenancy, period): total_cost, cloud_balance,
//              total_utility
//
// Encodings: a plain CSV per table (ledger.csv, reports.csv, periods.csv —
// the grep-able form) and Parquet-shaped column chunks — one file per
// column, numbers as raw little-endian f64, strings dictionary-encoded —
// described by manifest.json:
//
//   { "format": "optshare-columnar", "version": 1,
//     "tables": [ { "name": "ledger", "rows": N, "csv": "ledger.csv",
//                   "columns": [ { "name": "payment", "type": "f64",
//                                  "file": "ledger.payment.col",
//                                  "rows": N, "min": ..., "max": ... },
//                                { "name": "tenancy", "type": "string",
//                                  "file": "ledger.tenancy.col",
//                                  "rows": N, "distinct": K } ] } ],
//     "tenancies": [ { "name": ..., "periods_run": ...,
//                      "reports_exported": ...,
//                      "cumulative_balance": ...,
//                      "cumulative_utility": ... } ] }
//
// The column files are the analytical contract: summing the periods
// table's cloud_balance (or recomputing it from ledger.payment and
// periods.total_cost) in row order reproduces the server's cumulative
// ledger bit-for-bit, because rows are emitted in the same order the
// server accumulated them (tests/analytics_export_test.cc pins this).
// Readers for both column kinds live here so the round trip is testable
// without external tooling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "service/cloud_service.h"
#include "service/state_store.h"

namespace optshare::analytics {

/// One tenancy's exportable state: the period-boundary snapshot plus the
/// retained closed-period reports, in close order.
struct TenancyExport {
  service::TenancySnapshot boundary;
  std::vector<service::PeriodReport> reports;
};

/// What one export pass wrote.
struct ColumnarExportStats {
  uint64_t ledger_rows = 0;
  uint64_t report_rows = 0;
  uint64_t period_rows = 0;
  int files_written = 0;  ///< CSVs + column chunks + manifest.
  int tenancies = 0;

  uint64_t rows() const { return ledger_rows + report_rows + period_rows; }
};

/// Buffers tenancy exports column-wise, then writes the whole directory
/// (CSVs, column chunks, manifest) in one Finish(). Not thread-safe; the
/// server serializes exports.
class ColumnarWriter {
 public:
  /// `dir` is created (with parents) by Finish() if needed.
  explicit ColumnarWriter(std::string dir) : dir_(std::move(dir)) {}

  /// Appends one tenancy's rows (ledger per user, reports per structure,
  /// periods per report) in the order the server accumulated them.
  void Add(const TenancyExport& tenancy);

  /// Writes every file and the manifest. Atomic per file (write-temp +
  /// rename), not per directory: a torn export is re-runnable.
  Result<ColumnarExportStats> Finish();

  const std::string& dir() const { return dir_; }

 private:
  struct NumberColumn {
    std::string name;
    std::vector<double> values;
  };
  struct StringColumn {
    std::string name;
    std::vector<std::string> values;
  };
  struct Table {
    std::string name;
    std::vector<StringColumn> strings;   ///< Leading key columns.
    std::vector<NumberColumn> numbers;   ///< Metric columns.
    uint64_t rows = 0;
  };

  Result<int> WriteTable(const Table& table, JsonValue* tables_out,
                         uint64_t* rows_out);

  std::string dir_;
  Table ledger_{"ledger",
                {{"tenancy", {}}},
                {{"period", {}}, {"user", {}}, {"value", {}}, {"payment", {}}},
                0};
  Table reports_{"reports",
                 {{"tenancy", {}}, {"structure", {}}},
                 {{"period", {}},
                  {"cost", {}},
                  {"active", {}},
                  {"carried_over", {}},
                  {"num_candidates", {}},
                  {"num_subscribers", {}}},
                 0};
  Table periods_{"periods",
                 {{"tenancy", {}}},
                 {{"period", {}},
                  {"total_cost", {}},
                  {"cloud_balance", {}},
                  {"total_utility", {}}},
                 0};
  JsonValue tenancies_ = JsonValue::MakeArray();
  int num_tenancies_ = 0;
};

/// Parses `<dir>/manifest.json`.
Result<JsonValue> ReadColumnarManifest(const std::string& dir);

/// Reads a raw-f64 column chunk written by ColumnarWriter.
Result<std::vector<double>> ReadNumberColumn(const std::string& dir,
                                             const std::string& file);

/// Reads a dictionary-encoded string column chunk, re-materialized.
Result<std::vector<std::string>> ReadStringColumn(const std::string& dir,
                                                  const std::string& file);

}  // namespace optshare::analytics
