// The HTAP read path's data plane: per-tenancy ReadViews — immutable,
// atomically-published snapshots of tenancy state — plus a lock-free
// published delta, so `report`-style reads are answered without ever
// entering the tenancy's FIFO shard (the write path).
//
// Shape (the Polynesia-style read/write co-design the ROADMAP calls for):
//
//   ReadView   — the period-boundary truth: the same TenancySnapshot the
//                durability layer checkpoints (catalog tables, config,
//                carried built-set, period counter, cumulative ledger),
//                plus the in-memory history of closed PeriodReports. A
//                view is rebuilt only at period boundaries (close_period,
//                creation, recovery) and is immutable once published.
//   ReadDelta  — the mid-period overlay: the open session's observable
//                scalars (period open, slots advanced, roster size). The
//                write path publishes a fresh delta after every committed
//                mutating op, BEFORE acknowledging the op — so a client
//                that waits for its write ack reads its own write.
//   ReadState  — one {view, delta, version} triple behind an RcuCell.
//                Publishing swaps the whole triple with a single atomic
//                store, so a reader can never observe a view from one
//                period paired with a delta from another (no torn reads).
//
// Concurrency contract: exactly one writer per tenancy (the tenancy's
// shard worker — the same serialization the write path already relies
// on), any number of concurrent readers on any thread. Readers take one
// atomic shared_ptr load and hold the snapshot for as long as they like;
// tests/analytics_read_path_test.cc runs a writer storm against readers
// under TSan to pin this.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rcu.h"
#include "common/status.h"
#include "service/cloud_service.h"
#include "service/state_store.h"

namespace optshare::analytics {

/// Mid-period overlay over the boundary view: the open session's
/// observable scalars. All-zero when no period is open.
struct ReadDelta {
  bool period_open = false;
  int current_slot = 0;
  int num_tenants = 0;
};

/// The immutable period-boundary state reads are served from.
struct ReadView {
  /// Bit-identical to what the durability layer checkpoints: name, catalog
  /// tables, config, carried built-set, periods_run, cumulative ledger.
  service::TenancySnapshot boundary;
  /// Closed PeriodReports retained in-memory since this process (re)built
  /// the tenancy, in close order. Shared across delta publishes — only a
  /// close_period rebuilds the vector. May start later than period 1 when
  /// earlier periods are summarized by the boundary snapshot (recovery).
  std::shared_ptr<const std::vector<service::PeriodReport>> history;
};

/// What one RcuCell publishes: the view and its delta as one atom.
struct ReadState {
  std::shared_ptr<const ReadView> view;
  ReadDelta delta;
  /// Monotonic per-tenancy publish counter (every view or delta publish
  /// bumps it) — the staleness version the cluster's stale reads carry.
  uint64_t version = 0;
};

/// The per-tenancy cells plus publish counters. One instance per
/// MarketplaceServer; the map mutex guards only the map shape (cell
/// lookup), never the read of a cell's contents.
class ReadRegistry {
 public:
  /// Lock-free-after-lookup read: the current {view, delta} atom, or null
  /// when the tenancy has never published (serve via the write path).
  std::shared_ptr<const ReadState> Read(const std::string& tenancy) const;

  /// Period-boundary publish: installs a fresh view built from `boundary`,
  /// appending `closed_report` (when non-null) to the retained history,
  /// and resets the delta. Caller must be the tenancy's single writer.
  void PublishView(const std::string& tenancy,
                   service::TenancySnapshot boundary,
                   const service::PeriodReport* closed_report);

  /// Mid-period publish: new delta over the existing view. No-op when no
  /// view exists yet. Caller must be the tenancy's single writer.
  void PublishDelta(const std::string& tenancy, ReadDelta delta);

  /// Drops the tenancy's read state (evict / rebalance hand-off).
  void Drop(const std::string& tenancy);

  /// Tenancies with a published view, sorted (the export surface).
  std::vector<std::string> TenancyNames() const;

  uint64_t views_published() const {
    return views_published_.load(std::memory_order_relaxed);
  }
  uint64_t delta_publishes() const {
    return delta_publishes_.load(std::memory_order_relaxed);
  }

  /// The registry's slice of server_info's "read_path" section.
  JsonValue InfoJson() const;

 private:
  std::shared_ptr<RcuCell<ReadState>> Cell(const std::string& tenancy,
                                           bool create) const;

  mutable std::mutex mu_;  ///< Guards cells_ (the map, not cell contents).
  mutable std::map<std::string, std::shared_ptr<RcuCell<ReadState>>> cells_;
  std::atomic<uint64_t> views_published_{0};
  std::atomic<uint64_t> delta_publishes_{0};
};

/// The `report` payload served from a read state — field-for-field the
/// write path's answer (tests/analytics_read_path_test.cc pins the two
/// bit-identical at every period boundary and mid-period).
JsonValue ReportPayload(const ReadState& state);

/// The historical `report` payload for one closed period, served from the
/// retained history. NotFound when the period's report is not retained
/// (reports live in-memory since the tenancy was last rebuilt).
Result<JsonValue> HistoricalReportPayload(const ReadState& state, int period);

}  // namespace optshare::analytics
