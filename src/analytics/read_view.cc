#include "analytics/read_view.h"

#include <algorithm>
#include <utility>

#include "service/protocol.h"

namespace optshare::analytics {

std::shared_ptr<RcuCell<ReadState>> ReadRegistry::Cell(
    const std::string& tenancy, bool create) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(tenancy);
  if (it != cells_.end()) return it->second;
  if (!create) return nullptr;
  auto cell = std::make_shared<RcuCell<ReadState>>();
  cells_.emplace(tenancy, cell);
  return cell;
}

std::shared_ptr<const ReadState> ReadRegistry::Read(
    const std::string& tenancy) const {
  std::shared_ptr<RcuCell<ReadState>> cell = Cell(tenancy, /*create=*/false);
  return cell ? cell->Read() : nullptr;
}

void ReadRegistry::PublishView(const std::string& tenancy,
                               service::TenancySnapshot boundary,
                               const service::PeriodReport* closed_report) {
  std::shared_ptr<RcuCell<ReadState>> cell = Cell(tenancy, /*create=*/true);
  std::shared_ptr<const ReadState> old = cell->Read();

  auto view = std::make_shared<ReadView>();
  view->boundary = std::move(boundary);
  if (closed_report != nullptr) {
    // Copy-on-write append: the old history vector stays alive for any
    // reader still holding it.
    auto history = old && old->view && old->view->history
                       ? std::make_shared<std::vector<service::PeriodReport>>(
                             *old->view->history)
                       : std::make_shared<std::vector<service::PeriodReport>>();
    history->push_back(*closed_report);
    view->history = std::move(history);
  } else if (old && old->view && old->view->history) {
    view->history = old->view->history;
  } else {
    view->history = std::make_shared<std::vector<service::PeriodReport>>();
  }

  auto next = std::make_shared<ReadState>();
  next->view = std::move(view);
  next->delta = ReadDelta{};  // A boundary has no open session.
  next->version = (old ? old->version : 0) + 1;
  cell->Publish(std::move(next));
  views_published_.fetch_add(1, std::memory_order_relaxed);
}

void ReadRegistry::PublishDelta(const std::string& tenancy, ReadDelta delta) {
  std::shared_ptr<RcuCell<ReadState>> cell = Cell(tenancy, /*create=*/false);
  if (!cell) return;
  std::shared_ptr<const ReadState> old = cell->Read();
  if (!old || !old->view) return;  // No boundary yet: nothing to overlay.
  auto next = std::make_shared<ReadState>();
  next->view = old->view;  // The view is shared; only the delta moves.
  next->delta = delta;
  next->version = old->version + 1;
  cell->Publish(std::move(next));
  delta_publishes_.fetch_add(1, std::memory_order_relaxed);
}

void ReadRegistry::Drop(const std::string& tenancy) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.erase(tenancy);
}

std::vector<std::string> ReadRegistry::TenancyNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(cells_.size());
    for (const auto& [name, cell] : cells_) {
      if (cell->Read() != nullptr) names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

JsonValue ReadRegistry::InfoJson() const {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("views_published",
          JsonValue::Number(static_cast<double>(views_published())));
  obj.Set("delta_publishes",
          JsonValue::Number(static_cast<double>(delta_publishes())));
  return obj;
}

JsonValue ReportPayload(const ReadState& state) {
  const service::TenancySnapshot& boundary = state.view->boundary;
  const ReadDelta& delta = state.delta;
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("tenancy", JsonValue::Str(boundary.name));
  payload.Set("periods_run", JsonValue::Number(boundary.periods_run));
  payload.Set("period_open", JsonValue::Bool(delta.period_open));
  payload.Set("current_slot", JsonValue::Number(delta.current_slot));
  payload.Set("num_tenants", JsonValue::Number(delta.num_tenants));
  JsonValue built = JsonValue::MakeArray();
  for (const std::string& name : boundary.built) {
    built.Append(JsonValue::Str(name));
  }
  payload.Set("built_structures", std::move(built));
  payload.Set("cumulative_balance",
              JsonValue::Number(boundary.cumulative_balance));
  payload.Set("cumulative_utility",
              JsonValue::Number(boundary.cumulative_utility));
  return payload;
}

Result<JsonValue> HistoricalReportPayload(const ReadState& state,
                                          int period) {
  const std::vector<service::PeriodReport>& history = *state.view->history;
  for (const service::PeriodReport& report : history) {
    if (report.period == period) {
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("tenancy", JsonValue::Str(state.view->boundary.name));
      payload.Set("period", JsonValue::Number(period));
      payload.Set("report", service::protocol::ToJson(report));
      return payload;
    }
  }
  return Status::NotFound(
      "no report retained for period " + std::to_string(period) +
      " of tenancy \"" + state.view->boundary.name +
      "\" (reports are retained in-memory since the tenancy was rebuilt)");
}

}  // namespace optshare::analytics
