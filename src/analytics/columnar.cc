#include "analytics/columnar.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>
#include <utility>

#include "common/csv.h"
#include "common/fs.h"

namespace optshare::analytics {
namespace {

// Column chunks are explicitly little-endian regardless of host order:
// values are packed byte-by-byte through integer shifts.

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "f64 must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

bool ReadU32(std::string_view data, size_t* pos, uint32_t* out) {
  if (*pos + 4 > data.size()) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  *out = v;
  return true;
}

bool ReadU64(std::string_view data, size_t* pos, uint64_t* out) {
  if (*pos + 8 > data.size()) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

constexpr char kNumberMagic[] = "OSCN";
constexpr char kStringMagic[] = "OSCS";

std::string EncodeNumberColumn(const std::vector<double>& values) {
  std::string out;
  out.reserve(4 + 8 + values.size() * 8);
  out.append(kNumberMagic, 4);
  AppendU64(&out, values.size());
  for (double v : values) AppendF64(&out, v);
  return out;
}

std::string EncodeStringColumn(const std::vector<std::string>& values) {
  // Dictionary-encode: Parquet's shape for low-cardinality key columns
  // (tenancy and structure names repeat per row).
  std::map<std::string, uint32_t> ids;
  std::vector<const std::string*> dict;
  std::vector<uint32_t> indexes;
  indexes.reserve(values.size());
  for (const std::string& value : values) {
    auto [it, inserted] =
        ids.emplace(value, static_cast<uint32_t>(dict.size()));
    if (inserted) dict.push_back(&it->first);
    indexes.push_back(it->second);
  }
  std::string out;
  out.append(kStringMagic, 4);
  AppendU64(&out, dict.size());
  for (const std::string* entry : dict) {
    AppendU32(&out, static_cast<uint32_t>(entry->size()));
    out.append(*entry);
  }
  AppendU64(&out, indexes.size());
  for (uint32_t index : indexes) AppendU32(&out, index);
  return out;
}

}  // namespace

void ColumnarWriter::Add(const TenancyExport& tenancy) {
  const std::string& name = tenancy.boundary.name;
  for (const service::PeriodReport& report : tenancy.reports) {
    const double period = static_cast<double>(report.period);
    // periods: one row per closed period, in close order — summing
    // cloud_balance/total_utility in row order reproduces the server's
    // cumulative accumulation exactly (same doubles, same order).
    periods_.strings[0].values.push_back(name);
    periods_.numbers[0].values.push_back(period);
    periods_.numbers[1].values.push_back(report.ledger.total_cost);
    periods_.numbers[2].values.push_back(report.ledger.CloudBalance());
    periods_.numbers[3].values.push_back(report.ledger.TotalUtility());
    ++periods_.rows;
    // ledger: one row per user, in roster order.
    for (size_t i = 0; i < report.ledger.user_value.size(); ++i) {
      ledger_.strings[0].values.push_back(name);
      ledger_.numbers[0].values.push_back(period);
      ledger_.numbers[1].values.push_back(static_cast<double>(i));
      ledger_.numbers[2].values.push_back(report.ledger.user_value[i]);
      ledger_.numbers[3].values.push_back(report.ledger.user_payment[i]);
      ++ledger_.rows;
    }
    // reports: one row per structure outcome.
    for (const service::StructureOutcome& outcome : report.structures) {
      reports_.strings[0].values.push_back(name);
      reports_.strings[1].values.push_back(outcome.name);
      reports_.numbers[0].values.push_back(period);
      reports_.numbers[1].values.push_back(outcome.cost);
      reports_.numbers[2].values.push_back(outcome.active ? 1.0 : 0.0);
      reports_.numbers[3].values.push_back(outcome.carried_over ? 1.0 : 0.0);
      reports_.numbers[4].values.push_back(
          static_cast<double>(outcome.num_candidates));
      reports_.numbers[5].values.push_back(
          static_cast<double>(outcome.num_subscribers));
      ++reports_.rows;
    }
  }
  JsonValue entry = JsonValue::MakeObject();
  entry.Set("name", JsonValue::Str(name));
  entry.Set("periods_run", JsonValue::Number(tenancy.boundary.periods_run));
  entry.Set("reports_exported",
            JsonValue::Number(static_cast<double>(tenancy.reports.size())));
  entry.Set("cumulative_balance",
            JsonValue::Number(tenancy.boundary.cumulative_balance));
  entry.Set("cumulative_utility",
            JsonValue::Number(tenancy.boundary.cumulative_utility));
  tenancies_.Append(std::move(entry));
  ++num_tenancies_;
}

Result<int> ColumnarWriter::WriteTable(const Table& table,
                                       JsonValue* tables_out,
                                       uint64_t* rows_out) {
  int files = 0;
  JsonValue columns = JsonValue::MakeArray();

  // CSV form: tenancy (and structure) first, then the numeric columns in
  // declared order — every column file's row i is the CSV's row i.
  std::ostringstream csv_stream;
  CsvWriter csv(&csv_stream);
  std::vector<std::string> header;
  for (const StringColumn& column : table.strings) header.push_back(column.name);
  for (const NumberColumn& column : table.numbers) header.push_back(column.name);
  OPTSHARE_RETURN_NOT_OK(csv.WriteHeader(header));
  for (uint64_t row = 0; row < table.rows; ++row) {
    std::vector<std::string> fields;
    fields.reserve(header.size());
    for (const StringColumn& column : table.strings) {
      fields.push_back(column.values[row]);
    }
    for (const NumberColumn& column : table.numbers) {
      fields.push_back(FormatDouble(column.values[row]));
    }
    OPTSHARE_RETURN_NOT_OK(csv.WriteRow(fields));
  }
  const std::string csv_file = table.name + ".csv";
  OPTSHARE_RETURN_NOT_OK(fs::WriteFileAtomic(dir_ + "/" + csv_file,
                                             csv_stream.str(),
                                             /*sync=*/false));
  ++files;

  for (const StringColumn& column : table.strings) {
    const std::string file = table.name + "." + column.name + ".col";
    OPTSHARE_RETURN_NOT_OK(fs::WriteFileAtomic(
        dir_ + "/" + file, EncodeStringColumn(column.values),
        /*sync=*/false));
    ++files;
    JsonValue meta = JsonValue::MakeObject();
    meta.Set("name", JsonValue::Str(column.name));
    meta.Set("type", JsonValue::Str("string"));
    meta.Set("file", JsonValue::Str(file));
    meta.Set("rows", JsonValue::Number(static_cast<double>(table.rows)));
    std::vector<std::string> distinct = column.values;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    meta.Set("distinct", JsonValue::Number(static_cast<double>(distinct.size())));
    columns.Append(std::move(meta));
  }
  for (const NumberColumn& column : table.numbers) {
    const std::string file = table.name + "." + column.name + ".col";
    OPTSHARE_RETURN_NOT_OK(fs::WriteFileAtomic(
        dir_ + "/" + file, EncodeNumberColumn(column.values),
        /*sync=*/false));
    ++files;
    JsonValue meta = JsonValue::MakeObject();
    meta.Set("name", JsonValue::Str(column.name));
    meta.Set("type", JsonValue::Str("f64"));
    meta.Set("file", JsonValue::Str(file));
    meta.Set("rows", JsonValue::Number(static_cast<double>(table.rows)));
    if (!column.values.empty()) {
      const auto [lo, hi] =
          std::minmax_element(column.values.begin(), column.values.end());
      meta.Set("min", JsonValue::Number(*lo));
      meta.Set("max", JsonValue::Number(*hi));
    }
    columns.Append(std::move(meta));
  }

  JsonValue table_meta = JsonValue::MakeObject();
  table_meta.Set("name", JsonValue::Str(table.name));
  table_meta.Set("rows", JsonValue::Number(static_cast<double>(table.rows)));
  table_meta.Set("csv", JsonValue::Str(csv_file));
  table_meta.Set("columns", std::move(columns));
  tables_out->Append(std::move(table_meta));
  *rows_out = table.rows;
  return files;
}

Result<ColumnarExportStats> ColumnarWriter::Finish() {
  OPTSHARE_RETURN_NOT_OK(fs::EnsureDir(dir_));
  ColumnarExportStats stats;
  stats.tenancies = num_tenancies_;
  JsonValue tables = JsonValue::MakeArray();
  for (const Table* table : {&ledger_, &reports_, &periods_}) {
    uint64_t rows = 0;
    Result<int> files = WriteTable(*table, &tables, &rows);
    if (!files.ok()) return files.status();
    stats.files_written += *files;
    if (table == &ledger_) stats.ledger_rows = rows;
    if (table == &reports_) stats.report_rows = rows;
    if (table == &periods_) stats.period_rows = rows;
  }
  JsonValue manifest = JsonValue::MakeObject();
  manifest.Set("format", JsonValue::Str("optshare-columnar"));
  manifest.Set("version", JsonValue::Number(1));
  manifest.Set("tables", std::move(tables));
  manifest.Set("tenancies", tenancies_);
  OPTSHARE_RETURN_NOT_OK(fs::WriteFileAtomic(dir_ + "/manifest.json",
                                             manifest.Dump(2) + "\n",
                                             /*sync=*/false));
  ++stats.files_written;
  return stats;
}

Result<JsonValue> ReadColumnarManifest(const std::string& dir) {
  Result<std::string> raw = fs::ReadFile(dir + "/manifest.json");
  if (!raw.ok()) return raw.status();
  return JsonValue::Parse(*raw);
}

Result<std::vector<double>> ReadNumberColumn(const std::string& dir,
                                             const std::string& file) {
  Result<std::string> raw = fs::ReadFile(dir + "/" + file);
  if (!raw.ok()) return raw.status();
  std::string_view data = *raw;
  if (data.substr(0, 4) != kNumberMagic) {
    return Status::InvalidArgument(file + ": not a number column chunk");
  }
  size_t pos = 4;
  uint64_t count = 0;
  if (!ReadU64(data, &pos, &count) || pos + count * 8 != data.size()) {
    return Status::InvalidArgument(file + ": truncated number column");
  }
  std::vector<double> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t bits = 0;
    ReadU64(data, &pos, &bits);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    values.push_back(v);
  }
  return values;
}

Result<std::vector<std::string>> ReadStringColumn(const std::string& dir,
                                                  const std::string& file) {
  Result<std::string> raw = fs::ReadFile(dir + "/" + file);
  if (!raw.ok()) return raw.status();
  std::string_view data = *raw;
  if (data.substr(0, 4) != kStringMagic) {
    return Status::InvalidArgument(file + ": not a string column chunk");
  }
  size_t pos = 4;
  uint64_t dict_size = 0;
  if (!ReadU64(data, &pos, &dict_size)) {
    return Status::InvalidArgument(file + ": truncated string column");
  }
  std::vector<std::string> dict;
  dict.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    uint32_t len = 0;
    if (!ReadU32(data, &pos, &len) || pos + len > data.size()) {
      return Status::InvalidArgument(file + ": truncated dictionary");
    }
    dict.emplace_back(data.substr(pos, len));
    pos += len;
  }
  uint64_t count = 0;
  if (!ReadU64(data, &pos, &count) || pos + count * 4 != data.size()) {
    return Status::InvalidArgument(file + ": truncated index section");
  }
  std::vector<std::string> values;
  values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t index = 0;
    ReadU32(data, &pos, &index);
    if (index >= dict.size()) {
      return Status::InvalidArgument(file + ": index out of dictionary range");
    }
    values.push_back(dict[index]);
  }
  return values;
}

}  // namespace optshare::analytics
