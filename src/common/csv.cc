#include "common/csv.h"

#include <charconv>
#include <cmath>

namespace optshare {

std::string CsvEscape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

Status CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("CSV header must have at least one column");
  }
  if (columns_ != 0) {
    return Status::FailedPrecondition("CSV header already written");
  }
  columns_ = columns.size();
  return WriteFields(columns);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (columns_ != 0 && fields.size() != columns_) {
    return Status::InvalidArgument("CSV row width does not match header");
  }
  Status st = WriteFields(fields);
  if (st.ok()) ++rows_written_;
  return st;
}

Status CsvWriter::WriteRow(const std::vector<double>& fields) {
  std::vector<std::string> as_strings;
  as_strings.reserve(fields.size());
  for (double v : fields) as_strings.push_back(FormatDouble(v));
  return WriteRow(as_strings);
}

Status CsvWriter::WriteFields(const std::vector<std::string>& fields) {
  if (out_ == nullptr) {
    return Status::FailedPrecondition("CSV writer has no output stream");
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << CsvEscape(fields[i]);
  }
  *out_ << '\n';
  if (!out_->good()) {
    return Status::Internal("CSV output stream write failed");
  }
  return Status::OK();
}

}  // namespace optshare
