// Monetary amounts. Mechanism arithmetic uses double (the paper's values are
// continuous); this header centralizes the tolerance used for monetary
// comparisons and provides display formatting.
#pragma once

#include <string>

namespace optshare {

/// Absolute tolerance for monetary/value comparisons throughout the library.
/// All experiment quantities are O(1)..O(1e3) dollars, so an absolute
/// epsilon is appropriate.
inline constexpr double kMoneyEpsilon = 1e-9;

/// a >= b within tolerance.
inline bool MoneyGe(double a, double b) { return a >= b - kMoneyEpsilon; }

/// a <= b within tolerance.
inline bool MoneyLe(double a, double b) { return a <= b + kMoneyEpsilon; }

/// |a - b| within tolerance.
inline bool MoneyEq(double a, double b) {
  return a - b <= kMoneyEpsilon && b - a <= kMoneyEpsilon;
}

/// Formats dollars as e.g. "$12.34" / "-$0.07".
std::string FormatDollars(double amount);

/// Formats cents-scale amounts as e.g. "18c".
std::string FormatCents(double dollars);

}  // namespace optshare
