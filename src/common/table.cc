#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace optshare {

std::string FormatFixed(double v, int precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Normalize negative zero so tables do not mix "-0.00" and "0.00".
  if (v == 0.0) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string out(buf);
  if (out == std::string("-0.") + std::string(precision, '0')) {
    out.erase(out.begin());
  }
  return out;
}

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)), aligns_(columns_.size(), Align::kRight) {
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TextTable::SetAlign(size_t column, Align align) {
  if (column < aligns_.size()) aligns_[column] = align;
}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddNumericRow(const std::vector<double>& cells,
                              int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(FormatFixed(v, precision));
  AddRow(std::move(formatted));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_cell = [&](const std::string& cell, size_t c) {
    std::string pad(widths[c] - cell.size(), ' ');
    return aligns_[c] == Align::kLeft ? cell + pad : pad + cell;
  };

  std::string out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += "  ";
    out += render_cell(columns_[c], c);
  }
  out += '\n';
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += "  ";
    out += std::string(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += "  ";
      out += render_cell(row[c], c);
    }
    out += '\n';
  }
  return out;
}

}  // namespace optshare
