// Status and Result<T>: lightweight, exception-free error propagation in the
// style of RocksDB/Arrow. Library entry points that validate external input
// return Status (or Result<T>); internal invariant violations use assertions.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace optshare {

/// Error taxonomy for the library. Keep the list short; the message string
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  /// Transient: the serving node is gone or mid-failover; the operation may
  /// or may not have executed, and an idempotent resend can succeed.
  kUnavailable,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName; nullopt for unknown names. Used by wire
/// protocols (service/protocol.h) that carry status codes as strings.
std::optional<StatusCode> StatusCodeFromName(std::string_view name);

/// A success-or-error value. Cheap to copy in the success case (no message
/// allocation). Statuses must be checked by callers; the library never
/// silently drops an error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Rebuilds a Status from a code and message (the wire-deserialization
/// counterpart of code()/message(); an OK code yields an OK status and the
/// message is dropped).
Status MakeStatus(StatusCode code, std::string message);

/// A value-or-error. Mirrors arrow::Result / absl::StatusOr with only the
/// operations this codebase needs.
template <typename T>
class Result {
 public:
  /*implicit*/ Result(T value) : value_(std::move(value)) {}
  /*implicit*/ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a non-OK Status from an expression to the caller.
#define OPTSHARE_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::optshare::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace optshare
