// ASCII table rendering for bench output: the figure-regeneration binaries
// print the same rows/series the paper plots, in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace optshare {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// Builds a fixed-schema text table row by row, then renders it with
/// per-column width computation and a header separator.
class TextTable {
 public:
  /// `columns` fixes the schema. Numeric columns default to right alignment
  /// when rendered via AddRow(vector<double>).
  explicit TextTable(std::vector<std::string> columns);

  /// Overrides alignment for one column (0-based). Out-of-range is ignored.
  void SetAlign(size_t column, Align align);

  /// Appends one row of preformatted cells. Rows narrower than the schema
  /// are padded with empty cells; wider rows are truncated.
  void AddRow(std::vector<std::string> cells);

  /// Appends one row of numbers formatted with `precision` decimals.
  void AddNumericRow(const std::vector<double>& cells, int precision = 4);

  /// Renders the full table, including header and separator.
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `v` with fixed `precision` decimals ("-0.0000" normalized to
/// "0.0000").
std::string FormatFixed(double v, int precision);

}  // namespace optshare
