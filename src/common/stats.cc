#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace optshare {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStat::max() const { return count_ == 0 ? 0.0 : max_; }

double Percentile(std::vector<double> sample, double q) {
  assert(!sample.empty());
  assert(0.0 <= q && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double pos = q * static_cast<double>(sample.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

double Mean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

Summary Summarize(const std::vector<double>& sample) {
  Summary s;
  if (sample.empty()) return s;
  RunningStat rs;
  for (double x : sample) rs.Add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.median = Percentile(sample, 0.5);
  s.p10 = Percentile(sample, 0.1);
  s.p90 = Percentile(sample, 0.9);
  return s;
}

}  // namespace optshare
