// Deterministic random number generation. All simulated experiments are
// seeded, and distribution sampling is implemented here (rather than via
// <random>'s distributions, whose output is implementation-defined) so that
// results are bit-reproducible across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace optshare {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Used directly and as
/// the seeding routine for derived streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Deterministic RNG with the distribution samplers the experiments need.
/// Independent streams for parallel/per-trial use come from `Fork`.
class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  /// Raw 64 bits.
  uint64_t NextUint64() { return gen_.Next(); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    // 53 high-quality bits -> [0,1) with full double precision.
    return static_cast<double>(gen_.Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Exponential with the given mean (= 1/lambda). Requires mean > 0.
  double Exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Chooses `k` distinct values from {0, .., n-1}, in random order
  /// (partial Fisher-Yates). Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Uniform random permutation of {0, .., n-1}.
  std::vector<int> Permutation(int n) {
    return SampleWithoutReplacement(n, n);
  }

  /// Derives an independent child stream. Children with distinct indices
  /// (and distinct parents) do not overlap for practical stream lengths.
  Rng Fork(uint64_t stream_index) {
    SplitMix64 mix(NextUint64() ^ (0xA5A5A5A5DEADBEEFULL + stream_index));
    return Rng(mix.Next());
  }

 private:
  SplitMix64 gen_;
};

}  // namespace optshare
