#include "common/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <functional>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace optshare::net {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// getaddrinfo over TCP; `passive` requests a bindable address.
Result<Socket> ResolveAndApply(const std::string& host, uint16_t port,
                               bool passive,
                               const std::function<Status(int, const addrinfo&)>&
                                   apply) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (passive) hints.ai_flags = AI_PASSIVE;

  const std::string port_text = std::to_string(port);
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_text.c_str(), &hints, &results);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve \"" + host + ":" +
                                   port_text + "\": " + gai_strerror(rc));
  }

  Status last = Status::Internal("no addresses resolved for \"" + host + "\"");
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket");
      continue;
    }
    Socket socket(fd);
    last = apply(fd, *ai);
    if (last.ok()) {
      ::freeaddrinfo(results);
      return socket;
    }
  }
  ::freeaddrinfo(results);
  return last;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("expected HOST:PORT, got \"" + spec +
                                   "\"");
  }
  const std::string host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad port in \"" + spec + "\"");
  }
  errno = 0;
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (errno == ERANGE || port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range in \"" + spec + "\"");
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return Status::OK();
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog) {
  return ResolveAndApply(
      host, port, /*passive=*/true, [backlog](int fd, const addrinfo& ai) {
        const int one = 1;
        if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
            0) {
          return Errno("setsockopt(SO_REUSEADDR)");
        }
        if (::bind(fd, ai.ai_addr, ai.ai_addrlen) < 0) return Errno("bind");
        if (::listen(fd, backlog) < 0) return Errno("listen");
        return SetNonBlocking(fd);
      });
}

Result<uint16_t> BoundPort(const Socket& socket) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  if (addr.ss_family == AF_INET) {
    return static_cast<uint16_t>(
        ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port));
  }
  if (addr.ss_family == AF_INET6) {
    return static_cast<uint16_t>(
        ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port));
  }
  return Status::Internal("unexpected socket family");
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  return ResolveAndApply(host.empty() ? std::string("127.0.0.1") : host, port,
                         /*passive=*/false, [](int fd, const addrinfo& ai) {
                           if (::connect(fd, ai.ai_addr, ai.ai_addrlen) < 0) {
                             return Errno("connect");
                           }
                           return Status::OK();
                         });
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          int timeout_ms) {
  if (timeout_ms <= 0) return ConnectTcp(host, port);
  return ResolveAndApply(
      host.empty() ? std::string("127.0.0.1") : host, port,
      /*passive=*/false, [timeout_ms](int fd, const addrinfo& ai) {
        const int flags = ::fcntl(fd, F_GETFL, 0);
        if (flags < 0) return Errno("fcntl(F_GETFL)");
        if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
          return Errno("fcntl(F_SETFL, O_NONBLOCK)");
        }
        if (::connect(fd, ai.ai_addr, ai.ai_addrlen) < 0) {
          if (errno != EINPROGRESS) return Errno("connect");
          pollfd pfd{};
          pfd.fd = fd;
          pfd.events = POLLOUT;
          int rc;
          do {
            rc = ::poll(&pfd, 1, timeout_ms);
          } while (rc < 0 && errno == EINTR);
          if (rc < 0) return Errno("poll");
          if (rc == 0) {
            return Status::Internal("connect timed out after " +
                                    std::to_string(timeout_ms) + "ms");
          }
          int err = 0;
          socklen_t len = sizeof(err);
          if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
            return Errno("getsockopt(SO_ERROR)");
          }
          if (err != 0) {
            return Status::Internal(std::string("connect: ") +
                                    std::strerror(err));
          }
        }
        // Restore blocking mode: callers expect round-trip semantics.
        if (::fcntl(fd, F_SETFL, flags) < 0) {
          return Errno("fcntl(F_SETFL)");
        }
        return Status::OK();
      });
}

Result<Socket> AcceptNonBlocking(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket accepted(fd);
      OPTSHARE_RETURN_NOT_OK(SetNonBlocking(fd));
      return accepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Socket();
    // A connection that died between ready and accept is not a listener
    // failure; report "none pending" and let the next poll round retry.
    if (errno == ECONNABORTED) return Socket();
    return Errno("accept");
  }
}

Result<IoChunk> ReadChunk(int fd, char* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0) {
      IoChunk chunk;
      chunk.bytes = static_cast<size_t>(n);
      return chunk;
    }
    if (n == 0) {
      IoChunk chunk;
      chunk.eof = true;
      return chunk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      IoChunk chunk;
      chunk.would_block = true;
      return chunk;
    }
    if (errno == ECONNRESET) {
      IoChunk chunk;
      chunk.eof = true;
      return chunk;
    }
    return Errno("recv");
  }
}

Result<IoChunk> WriteChunk(int fd, const char* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) {
      IoChunk chunk;
      chunk.bytes = static_cast<size_t>(n);
      return chunk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      IoChunk chunk;
      chunk.would_block = true;
      return chunk;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      IoChunk chunk;
      chunk.eof = true;
      return chunk;
    }
    return Errno("send");
  }
}

LineBuffer::Next LineBuffer::NextLine(std::string* line) {
  if (discarding_) {
    const size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
      buf_.clear();
      return Next::kNeedMore;
    }
    buf_.erase(0, nl + 1);
    discarding_ = false;
  }
  const size_t nl = buf_.find('\n');
  if (nl == std::string::npos) {
    if (cap_ > 0 && buf_.size() > cap_) {
      // The line already exceeds the cap with no terminator in sight: report
      // it once, then eat bytes until the newline restores framing.
      buf_.clear();
      discarding_ = true;
      return Next::kTooLong;
    }
    return Next::kNeedMore;
  }
  if (cap_ > 0 && nl > cap_) {
    buf_.erase(0, nl + 1);
    return Next::kTooLong;
  }
  line->assign(buf_, 0, nl);
  // A CRLF-minded client is indistinguishable from one whose line simply
  // ends in '\r'; strip it so both framings parse.
  if (!line->empty() && line->back() == '\r') line->pop_back();
  buf_.erase(0, nl + 1);
  return Next::kLine;
}

}  // namespace optshare::net
