#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "common/csv.h"  // FormatDouble.

namespace optshare {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const Object& obj = AsObject();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  AsObject()[key] = std::move(v);
}

void JsonValue::Append(JsonValue v) { AsArray().push_back(std::move(v)); }

void JsonValue::Reserve(size_t n) { AsArray().reserve(n); }

namespace {

/// Bytes `c` occupies once escaped (1 for the common passthrough case).
size_t EscapedLength(unsigned char c) {
  switch (c) {
    case '"':
    case '\\':
    case '\n':
    case '\r':
    case '\t':
    case '\b':
    case '\f':
      return 2;
    default:
      return c < 0x20 ? 6 : 1;  // \u00XX.
  }
}

const char kHexDigits[] = "0123456789abcdef";

}  // namespace

void JsonEscapeTo(std::string_view s, std::string* out) {
  size_t escaped = 0;
  for (unsigned char c : s) escaped += EscapedLength(c);
  out->reserve(out->size() + escaped + 2);
  out->push_back('"');
  if (escaped == s.size()) {
    // Nothing needs escaping: one bulk append.
    out->append(s.data(), s.size());
    out->push_back('"');
    return;
  }
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"", 2);
        break;
      case '\\':
        out->append("\\\\", 2);
        break;
      case '\n':
        out->append("\\n", 2);
        break;
      case '\r':
        out->append("\\r", 2);
        break;
      case '\t':
        out->append("\\t", 2);
        break;
      case '\b':
        out->append("\\b", 2);
        break;
      case '\f':
        out->append("\\f", 2);
        break;
      default:
        if (c < 0x20) {
          const char buf[6] = {'\\', 'u', '0', '0', kHexDigits[c >> 4],
                               kHexDigits[c & 0xF]};
          out->append(buf, sizeof(buf));
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  JsonEscapeTo(s, &out);
  return out;
}

namespace {

void DumpTo(const JsonValue& v, int indent, int depth, std::string* out) {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(
      static_cast<size_t>(indent) * static_cast<size_t>(depth + 1), ' ')
                                 : "";
  const std::string close_pad =
      pretty ? std::string(
          static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ')
             : "";
  const char* nl = pretty ? "\n" : "";

  switch (v.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      return;
    case JsonValue::Type::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      const double d = v.AsNumber();
      // JSON has no Infinity/NaN; serialize as null per common practice.
      if (std::isnan(d) || std::isinf(d)) {
        *out += "null";
      } else {
        // Same round-trip formatting as FormatDouble, appended in place.
        char buf[32];
        const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
        (void)ec;
        out->append(buf, static_cast<size_t>(ptr - buf));
      }
      return;
    }
    case JsonValue::Type::kString:
      JsonEscapeTo(v.AsString(), out);
      return;
    case JsonValue::Type::kArray: {
      const auto& arr = v.AsArray();
      if (arr.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      *out += nl;
      for (size_t i = 0; i < arr.size(); ++i) {
        *out += pad;
        DumpTo(arr[i], indent, depth + 1, out);
        if (i + 1 < arr.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      const auto& obj = v.AsObject();
      if (obj.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      *out += nl;
      size_t i = 0;
      for (const auto& [key, value] : obj) {
        *out += pad;
        *out += JsonEscape(key);
        *out += pretty ? ": " : ":";
        DumpTo(value, indent, depth + 1, out);
        if (++i < obj.size()) *out += ',';
        *out += nl;
      }
      *out += close_pad;
      *out += '}';
      return;
    }
  }
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent) const {
  optshare::DumpTo(*this, indent, 0, out);
}

namespace {

/// Recursive-descent parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    Result<JsonValue> v = ParseValue();
    if (!v.ok()) return v;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (depth_ > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') {
      if (ConsumeLiteral("null")) return JsonValue::Null();
      return Error("invalid literal");
    }
    if (c == 't') {
      if (ConsumeLiteral("true")) return JsonValue::Bool(true);
      return Error("invalid literal");
    }
    if (c == 'f') {
      if (ConsumeLiteral("false")) return JsonValue::Bool(false);
      return Error("invalid literal");
    }
    if (c == '"') return ParseString();
    if (c == '[') return ParseArray();
    if (c == '{') return ParseObject();
    return ParseNumber();
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Error("malformed number");
    }
    return JsonValue::Number(d);
  }

  Result<JsonValue> ParseString() {
    std::string s;
    OPTSHARE_RETURN_NOT_OK(ParseRawString(&s));
    return JsonValue::Str(std::move(s));
  }

  Status ParseRawString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("short \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    ++depth_;
    Consume('[');
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      SkipWhitespace();
      Result<JsonValue> v = ParseValue();
      if (!v.ok()) return v;
      arr.Append(std::move(*v));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
    --depth_;
    return arr;
  }

  Result<JsonValue> ParseObject() {
    ++depth_;
    Consume('{');
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      OPTSHARE_RETURN_NOT_OK(ParseRawString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      SkipWhitespace();
      Result<JsonValue> v = ParseValue();
      if (!v.ok()) return v;
      obj.Set(key, std::move(*v));
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
    --depth_;
    return obj;
  }

  static constexpr int kMaxDepth = 128;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

Result<double> JsonNumberField(const JsonValue& v, const std::string& key,
                               const char* ctx) {
  const JsonValue* field = v.Find(key);
  if (field == nullptr || !field->is_number()) {
    return Status::InvalidArgument(std::string(ctx) + ": field \"" + key +
                                   "\" must be a number");
  }
  return field->AsNumber();
}

Result<int64_t> JsonIntField(const JsonValue& v, const std::string& key,
                             const char* ctx) {
  Result<double> number = JsonNumberField(v, key, ctx);
  if (!number.ok()) return number.status();
  // The range guard keeps the cast defined; 2^63 is exactly representable.
  if (*number != std::floor(*number) ||
      *number < -9223372036854775808.0 || *number >= 9223372036854775808.0) {
    return Status::InvalidArgument(std::string(ctx) + ": field \"" + key +
                                   "\" must be an integer");
  }
  return static_cast<int64_t>(*number);
}

Result<std::string> JsonStringField(const JsonValue& v,
                                    const std::string& key, const char* ctx) {
  const JsonValue* field = v.Find(key);
  if (field == nullptr || !field->is_string()) {
    return Status::InvalidArgument(std::string(ctx) + ": field \"" + key +
                                   "\" must be a string");
  }
  return field->AsString();
}

Result<bool> JsonBoolField(const JsonValue& v, const std::string& key,
                           const char* ctx) {
  const JsonValue* field = v.Find(key);
  if (field == nullptr || !field->is_bool()) {
    return Status::InvalidArgument(std::string(ctx) + ": field \"" + key +
                                   "\" must be a boolean");
  }
  return field->AsBool();
}

}  // namespace optshare
