// RcuCell: the one-writer-many-readers publish/read primitive behind the
// analytics read path (src/analytics/read_view.h). A cell holds an
// immutable value behind a shared_ptr; readers take a reference-counted
// snapshot with a single atomic load and never block, while a writer
// publishes a wholly new value with a single atomic store — the classic
// RCU shape, with shared_ptr reference counting standing in for the grace
// period (the old value dies when its last reader drops it).
//
// Implemented with the C++17 std::atomic_load/atomic_store free-function
// overloads for shared_ptr (std::atomic<shared_ptr<T>> is C++20). The
// contract is strictly copy-on-write: a published T is immutable from the
// moment of Publish — mutating through a Read() snapshot is a data race by
// construction, which is why both accessors traffic in pointer-to-const.
#pragma once

#include <atomic>
#include <memory>
#include <utility>

namespace optshare {

template <typename T>
class RcuCell {
 public:
  RcuCell() = default;
  explicit RcuCell(std::shared_ptr<const T> initial)
      : value_(std::move(initial)) {}

  RcuCell(const RcuCell&) = delete;
  RcuCell& operator=(const RcuCell&) = delete;

  /// Lock-free snapshot of the current value (null before any Publish).
  /// The snapshot stays valid for as long as the caller holds it,
  /// regardless of later publishes.
  std::shared_ptr<const T> Read() const {
    return std::atomic_load_explicit(&value_, std::memory_order_acquire);
  }

  /// Atomically replaces the value. The release ordering pairs with
  /// Read()'s acquire: everything written into *next before the call is
  /// visible to any reader that observes the new pointer.
  void Publish(std::shared_ptr<const T> next) {
    std::atomic_store_explicit(&value_, std::move(next),
                               std::memory_order_release);
  }

 private:
  std::shared_ptr<const T> value_;
};

}  // namespace optshare
