// Test-only heap-allocation counting: replaces the global operator
// new/delete with malloc-backed versions that bump a thread-local counter,
// so tests and benches can pin "zero allocations per request" as a hard
// number instead of a hope (tests/service_wire_fast_test.cc,
// bench/protocol_speed.cc).
//
// This header DEFINES the replacement operators — include it in exactly
// one translation unit per binary (the test's or bench's own .cc), never
// from another header and never in library code. Under ASan/TSan the
// replacement is disabled (the sanitizer runtimes own the allocator and
// interpose malloc themselves); callers must check
// AllocationCountingAvailable() and skip the assertion when false.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define OPTSHARE_ALLOC_COUNT_ENABLED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define OPTSHARE_ALLOC_COUNT_ENABLED 0
#else
#define OPTSHARE_ALLOC_COUNT_ENABLED 1
#endif
#else
#define OPTSHARE_ALLOC_COUNT_ENABLED 1
#endif

namespace optshare::alloc_count {

inline thread_local uint64_t thread_allocations = 0;

/// False when a sanitizer owns the allocator and the counter never moves.
constexpr bool AllocationCountingAvailable() {
  return OPTSHARE_ALLOC_COUNT_ENABLED != 0;
}

/// Heap allocations made by this thread since it started (new/new[] calls;
/// deletes are not counted). Subtract two readings around the code under
/// measurement.
inline uint64_t ThreadAllocations() { return thread_allocations; }

}  // namespace optshare::alloc_count

#if OPTSHARE_ALLOC_COUNT_ENABLED

namespace optshare::alloc_count {

inline void* CountedAlloc(std::size_t size) {
  ++thread_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace optshare::alloc_count

void* operator new(std::size_t size) {
  return optshare::alloc_count::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return optshare::alloc_count::CountedAlloc(size);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++optshare::alloc_count::thread_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++optshare::alloc_count::thread_allocations;
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // OPTSHARE_ALLOC_COUNT_ENABLED
