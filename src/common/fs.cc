#include "common/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

namespace optshare::fs {
namespace {

namespace stdfs = std::filesystem;

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return ErrnoStatus("read", path);
  return buffer.str();
}

Status WriteAllFd(int fd, std::string_view contents,
                  const std::string& path) {
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       bool sync, bool* published) {
  if (published != nullptr) *published = false;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);
  Status st = WriteAllFd(fd, contents, tmp);
  if (st.ok() && sync && ::fsync(fd) != 0) st = ErrnoStatus("fsync", tmp);
  if (::close(fd) != 0 && st.ok()) st = ErrnoStatus("close", tmp);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    st = ErrnoStatus("rename", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  if (published != nullptr) *published = true;
  if (sync) {
    const std::string parent = stdfs::path(path).parent_path().string();
    OPTSHARE_RETURN_NOT_OK(SyncDir(parent.empty() ? "." : parent));
  }
  return Status::OK();
}

Status EnsureDir(const std::string& path) {
  std::error_code ec;
  stdfs::create_directories(path, ec);
  if (ec) {
    return Status::Internal("mkdir " + path + ": " + ec.message());
  }
  if (!stdfs::is_directory(path, ec)) {
    return Status::Internal("mkdir " + path + ": exists but not a directory");
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return stdfs::exists(path, ec);
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  std::error_code ec;
  if (!stdfs::is_directory(path, ec)) {
    return Status::NotFound("not a directory: " + path);
  }
  std::vector<std::string> names;
  for (stdfs::directory_iterator it(path, ec), end; it != end;
       it.increment(ec)) {
    if (ec) return Status::Internal("readdir " + path + ": " + ec.message());
    names.push_back(it->path().filename().string());
  }
  if (ec) return Status::Internal("readdir " + path + ": " + ec.message());
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  stdfs::remove(path, ec);
  if (ec) return Status::Internal("unlink " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  stdfs::remove_all(path, ec);
  if (ec) return Status::Internal("rm -r " + path + ": " + ec.message());
  return Status::OK();
}

Status SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open", path);
  Status st;
  if (::fsync(fd) != 0) st = ErrnoStatus("fsync", path);
  ::close(fd);
  return st;
}

std::string EncodePathComponent(std::string_view name) {
  if (name.empty()) return "%";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool safe = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (safe) {
      out.push_back(c);
    } else {
      const auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xf]);
    }
  }
  return out;
}

Result<std::string> DecodePathComponent(std::string_view component) {
  if (component == "%") return std::string();
  std::string out;
  out.reserve(component.size());
  for (size_t i = 0; i < component.size(); ++i) {
    if (component[i] != '%') {
      out.push_back(component[i]);
      continue;
    }
    if (i + 2 >= component.size()) {
      return Status::InvalidArgument("truncated escape in \"" +
                                     std::string(component) + "\"");
    }
    const int hi = HexDigit(component[i + 1]);
    const int lo = HexDigit(component[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed escape in \"" +
                                     std::string(component) + "\"");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

}  // namespace optshare::fs
