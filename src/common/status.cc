#include "common/status.h"

namespace optshare {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromName(std::string_view name) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kUnavailable}) {
    if (StatusCodeName(code) == name) return code;
  }
  return std::nullopt;
}

Status MakeStatus(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
  }
  return Status::Internal(std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace optshare
