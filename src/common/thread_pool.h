// Sharded worker pool: N workers, each owning one FIFO queue. A task is
// posted under a shard key; tasks sharing a key land on the same worker and
// therefore execute in submission order, while tasks under different keys
// run concurrently (up to the worker count). This is the execution substrate
// of the marketplace server (service/marketplace_server.h): tenancies hash
// onto shards, so one tenancy's requests are serialized without locks while
// distinct tenancies price in parallel.
//
// Keyed FIFO is a deliberately stronger contract than a work-stealing pool:
// no task for key K ever runs concurrently with, or ahead of, an earlier
// task for K. Tasks must not block on later tasks of their own shard (that
// deadlocks by construction), and should not throw — an exception escaping
// a task is swallowed to keep the worker alive (catch inside the task to
// observe it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace optshare {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The worker index `key` maps onto.
  size_t ShardOf(size_t key) const { return key % workers_.size(); }

  /// Enqueues `task` on the shard for `key`. Tasks with keys mapping to the
  /// same shard execute in Post order on one worker. Never blocks (queues
  /// are unbounded).
  void Post(size_t key, std::function<void()> task);

  /// Blocks until every task posted before this call has finished. Posts
  /// from other threads may keep the pool busy past the return.
  void Drain();

  /// Snapshot of each worker's queued-but-not-started task count, indexed
  /// by shard. Advisory (depths move the moment the locks drop) — this is
  /// the `server_info` metrics view, not a synchronization point.
  std::vector<size_t> QueueDepths() const;

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;
    bool stop = false;  // Guarded by mu.
    std::thread thread;
  };

  void WorkerLoop(Worker* worker);

  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  size_t pending_ = 0;  // Posted but not yet completed tasks.
};

}  // namespace optshare
