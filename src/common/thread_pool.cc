#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace optshare {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Threads start only after the vector is fully built: WorkerLoop never
  // touches workers_ but the two-phase construction keeps the object
  // well-formed before any worker observes it.
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->stop = true;
    }
    worker->cv.notify_one();
  }
  for (auto& worker : workers_) {
    worker->thread.join();
  }
}

void ThreadPool::Post(size_t key, std::function<void()> task) {
  Worker& worker = *workers_[ShardOf(key)];
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(worker.mu);
    worker.queue.push_back(std::move(task));
  }
  worker.cv.notify_one();
}

std::vector<size_t> ThreadPool::QueueDepths() const {
  std::vector<size_t> depths;
  depths.reserve(workers_.size());
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    depths.push_back(worker->queue.size());
  }
  return depths;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop(Worker* worker) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [worker] {
        return worker->stop || !worker->queue.empty();
      });
      // Stop only once the queue is drained: a task posted before the
      // destructor always runs.
      if (worker->queue.empty()) return;
      task = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    // An escaping exception would std::terminate the process and take every
    // other shard with it; one task's failure is not the pool's. Callers
    // that need the error must catch it inside the task (the marketplace
    // server converts it into an error response there).
    try {
      task();
    } catch (...) {
    }
    bool idle;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      idle = --pending_ == 0;
    }
    if (idle) pending_cv_.notify_all();
  }
}

}  // namespace optshare
