// Streaming and batch statistics used by the experiment harness to aggregate
// repeated trials (mean, stddev, min/max, percentiles).
#pragma once

#include <cstddef>
#include <vector>

namespace optshare {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Sum of squared deviations from the running mean.
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;
  double p90 = 0.0;
};

/// Summarizes a sample. Percentiles use linear interpolation between order
/// statistics. An empty sample yields an all-zero summary.
Summary Summarize(const std::vector<double>& sample);

/// Linear-interpolated percentile of a sample, q in [0, 1].
/// Requires a non-empty sample.
double Percentile(std::vector<double> sample, double q);

/// Mean of a sample (0 for an empty sample).
double Mean(const std::vector<double>& sample);

}  // namespace optshare
