// Minimal CSV writer for exporting experiment series (one file per figure).
// Handles RFC-4180 quoting of fields containing commas, quotes, or newlines.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace optshare {

/// Escapes one CSV field per RFC 4180 (quote iff it contains , " or newline).
std::string CsvEscape(std::string_view field);

/// Streams rows to an std::ostream as CSV. The writer does not own the
/// stream. Row widths are validated against the header when one is set.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream* out) : out_(out) {}

  /// Writes the header row and fixes the column count.
  Status WriteHeader(const std::vector<std::string>& columns);

  /// Writes one row of string fields.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Writes one row of doubles with full round-trip precision.
  Status WriteRow(const std::vector<double>& fields);

  size_t rows_written() const { return rows_written_; }

 private:
  Status WriteFields(const std::vector<std::string>& fields);

  std::ostream* out_;
  size_t columns_ = 0;  // 0 until the header defines the width.
  size_t rows_written_ = 0;
};

/// Formats a double with enough digits to round-trip.
std::string FormatDouble(double v);

}  // namespace optshare
