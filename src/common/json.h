// Minimal JSON document model, parser and serializer — enough for the game
// file format (core/serialization.h) and the CLI, with RFC 8259 escaping
// and round-trip number formatting. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace optshare {

/// A JSON value: null, bool, number (double), string, array or object.
/// Objects preserve no insertion order (keys are sorted), which keeps
/// serialization deterministic.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) { return JsonValue(b); }
  static JsonValue Number(double d) { return JsonValue(d); }
  static JsonValue Str(std::string s) { return JsonValue(std::move(s)); }
  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Type type() const { return static_cast<Type>(value_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; precondition: matching type.
  bool AsBool() const { return std::get<bool>(value_); }
  double AsNumber() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const Array& AsArray() const { return std::get<Array>(value_); }
  Array& AsArray() { return std::get<Array>(value_); }
  const Object& AsObject() const { return std::get<Object>(value_); }
  Object& AsObject() { return std::get<Object>(value_); }

  /// Object field lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Object field write (precondition: is_object()).
  void Set(const std::string& key, JsonValue v);
  /// Array append (precondition: is_array()).
  void Append(JsonValue v);
  /// Array capacity hint (precondition: is_array()) — the serializers call
  /// it where the element count is known up front, so the hot-path arrays
  /// (ledger vectors, tenant id lists) grow exactly once.
  void Reserve(size_t n);

  /// Serializes; `indent` < 0 emits compact JSON, otherwise pretty-prints
  /// with that many spaces per level.
  std::string Dump(int indent = -1) const;
  /// Appends the serialization to *out instead of allocating a fresh
  /// string — the wire hot path reuses one scratch buffer across requests.
  void DumpTo(std::string* out, int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  static Result<JsonValue> Parse(std::string_view text);

  bool operator==(const JsonValue& other) const {
    return value_ == other.value_;
  }

 private:
  explicit JsonValue(std::nullptr_t) : value_(nullptr) {}
  explicit JsonValue(bool b) : value_(b) {}
  explicit JsonValue(double d) : value_(d) {}
  explicit JsonValue(std::string s) : value_(std::move(s)) {}
  explicit JsonValue(Array a) : value_(std::move(a)) {}
  explicit JsonValue(Object o) : value_(std::move(o)) {}

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Escapes a string per RFC 8259 (quotes included).
std::string JsonEscape(std::string_view s);
/// Append-form JsonEscape: precomputes the escaped length, reserves once,
/// and appends to *out — no per-string temporary, no incremental growth.
void JsonEscapeTo(std::string_view s, std::string* out);

// -- Typed object-field accessors -------------------------------------------
// One implementation for every strict schema in the codebase (wire
// protocol, snapshots): a missing or mistyped field is an InvalidArgument
// of the uniform shape `<ctx>: field "<key>" must be a <type>`.

Result<double> JsonNumberField(const JsonValue& v, const std::string& key,
                               const char* ctx);
/// A number that is integral (and within int64 range).
Result<int64_t> JsonIntField(const JsonValue& v, const std::string& key,
                             const char* ctx);
Result<std::string> JsonStringField(const JsonValue& v,
                                    const std::string& key, const char* ctx);
Result<bool> JsonBoolField(const JsonValue& v, const std::string& key,
                           const char* ctx);

}  // namespace optshare
