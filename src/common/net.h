// Minimal TCP building blocks for the marketplace's network transport:
// RAII socket ownership, listener setup, non-blocking accept/read/write
// wrappers with explicit would-block/EOF outcomes, and newline framing with
// a per-line byte cap (the same cap the wire protocol's bounded stdin
// reader enforces, so a hostile peer cannot balloon server memory).
//
// Everything here is transport plumbing with no protocol knowledge; the
// poll()-based event loop that composes these primitives lives in
// service/net_server.cc, and the blocking client in service/net_client.cc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace optshare::net {

/// Owning file-descriptor handle; closes on destruction. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Splits "HOST:PORT" (the --listen / connect argument form). An empty host
/// ("":8080" or ":8080") means all interfaces for a listener and loopback
/// for a client; the port must be a decimal number in [0, 65535].
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec);

/// Binds and listens on host:port and puts the socket in non-blocking mode
/// (SO_REUSEADDR set, so test servers can rebind promptly). Port 0 asks the
/// kernel for an ephemeral port — read it back with BoundPort.
Result<Socket> ListenTcp(const std::string& host, uint16_t port,
                         int backlog = 128);

/// The local port a bound socket ended up on.
Result<uint16_t> BoundPort(const Socket& socket);

/// Blocking connect to host:port (names resolve via getaddrinfo). The
/// returned socket is in blocking mode — NetClient's round-trip style.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Connect with a deadline: the connect itself runs non-blocking and is
/// awaited with poll() for at most `timeout_ms`, then the socket is
/// switched back to blocking mode. A down-but-routable peer fails in
/// `timeout_ms` instead of the OS default (minutes). `timeout_ms <= 0`
/// delegates to the blocking variant above.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          int timeout_ms);

/// Accepts one pending connection from a non-blocking listener. Returns an
/// invalid Socket (fd -1) when no connection is pending; the accepted
/// socket is switched to non-blocking mode.
Result<Socket> AcceptNonBlocking(const Socket& listener);

Status SetNonBlocking(int fd);

/// Outcome of one non-blocking read/write attempt. Exactly one of
/// {bytes > 0, eof, would_block} describes what happened (a Status error is
/// reserved for real socket failures).
struct IoChunk {
  size_t bytes = 0;
  bool eof = false;         ///< Peer closed (read) or went away (write).
  bool would_block = false; ///< Kernel buffer empty/full; retry on poll().
};

Result<IoChunk> ReadChunk(int fd, char* buf, size_t len);
/// send() with SIGPIPE suppressed; a vanished peer reports eof, not a
/// process-killing signal.
Result<IoChunk> WriteChunk(int fd, const char* buf, size_t len);

/// Incremental newline framing over a TCP byte stream. Append() raw reads
/// as they arrive (lines may span reads, or several lines may land in one
/// read); NextLine() yields each complete line without its terminator.
/// A line longer than `max_line_bytes` reports kTooLong exactly once and
/// the rest of that line is discarded as it streams in — framing stays
/// aligned on the next newline, and buffered memory stays bounded by
/// roughly the cap plus one read chunk. cap 0 = unlimited.
class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes = 0) : cap_(max_line_bytes) {}

  void Append(const char* data, size_t len) { buf_.append(data, len); }

  enum class Next {
    kLine,      ///< *line holds the next complete line.
    kNeedMore,  ///< No complete line buffered; Append more bytes.
    kTooLong,   ///< A line exceeded the cap and is being discarded.
  };
  Next NextLine(std::string* line);

  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  size_t cap_ = 0;
  bool discarding_ = false;  ///< Inside an over-cap line, eating to '\n'.
};

}  // namespace optshare::net
