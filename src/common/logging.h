// Minimal leveled logger. Benches and examples log at Info; tests keep the
// default threshold at Warning so output stays clean.
//
// The initial threshold can come from the environment: OPTSHARE_LOG_LEVEL
// accepts "debug", "info", "warning"/"warn", "error" (case-insensitive) or
// the numeric levels 0-3, and is read once before the first log statement.
// SetLogLevel overrides it afterwards. The stderr sink is mutex-guarded so
// concurrent workers (service/marketplace_server.h) never interleave bytes
// of two log lines.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace optshare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses an OPTSHARE_LOG_LEVEL value; nullopt for unrecognized strings.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

/// Re-reads OPTSHARE_LOG_LEVEL and applies it (unset or unparsable values
/// leave the threshold untouched). Returns the applied level when one was.
/// The environment is otherwise consulted once, before the first log call;
/// this hook exists for tests and embedders that change the environment
/// mid-process.
std::optional<LogLevel> ReloadLogLevelFromEnv();

/// Emits one log line ("[LEVEL] message") to stderr if `level` passes the
/// threshold. Lines are written atomically with respect to other callers.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log statement builder; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define OPTSHARE_LOG(level) \
  ::optshare::internal::LogStream(::optshare::LogLevel::k##level)

}  // namespace optshare
