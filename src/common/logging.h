// Minimal leveled logger. Benches and examples log at Info; tests keep the
// default threshold at Warning so output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace optshare {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line ("[LEVEL] message") to stderr if `level` passes the
/// threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style log statement builder; emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define OPTSHARE_LOG(level) \
  ::optshare::internal::LogStream(::optshare::LogLevel::k##level)

}  // namespace optshare
