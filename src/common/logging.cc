#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace optshare {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::once_flag g_env_once;

// The stderr sink lock: one log line is one fprintf, and the mutex keeps
// concurrent workers from interleaving even when stderr is fully buffered
// (e.g. redirected to a file).
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> ReadEnvLevel() {
  const char* value = std::getenv("OPTSHARE_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  return ParseLogLevel(value);
}

/// Applies OPTSHARE_LOG_LEVEL exactly once, before the threshold is first
/// consulted; explicit SetLogLevel calls afterwards win.
void EnsureEnvApplied() {
  std::call_once(g_env_once, [] {
    if (std::optional<LogLevel> level = ReadEnvLevel()) {
      g_level.store(*level);
    }
  });
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

std::optional<LogLevel> ReloadLogLevelFromEnv() {
  EnsureEnvApplied();  // Consume the once-flag so a later first log call
                       // cannot clobber what this reload applies.
  std::optional<LogLevel> level = ReadEnvLevel();
  if (level) g_level.store(*level);
  return level;
}

void SetLogLevel(LogLevel level) {
  EnsureEnvApplied();
  g_level.store(level);
}

LogLevel GetLogLevel() {
  EnsureEnvApplied();
  return g_level.load();
}

void LogMessage(LogLevel level, const std::string& message) {
  EnsureEnvApplied();
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace optshare
