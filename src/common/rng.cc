#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace optshare {

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    // Full 64-bit range requested.
    return static_cast<int64_t>(NextUint64());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  // Inverse transform; guard against log(0).
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  assert(0 <= k && k <= n);
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    const int j = static_cast<int>(UniformInt(i, n - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace optshare
