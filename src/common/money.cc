#include "common/money.h"

#include <cmath>
#include <cstdio>

namespace optshare {

std::string FormatDollars(double amount) {
  char buf[64];
  // Normalize sub-cent negatives so ledgers do not print "-$0.00".
  if (amount < 0.0 && amount > -0.005) amount = 0.0;
  if (amount < 0) {
    std::snprintf(buf, sizeof(buf), "-$%.2f", -amount);
  } else {
    std::snprintf(buf, sizeof(buf), "$%.2f", amount);
  }
  return buf;
}

std::string FormatCents(double dollars) {
  char buf[64];
  const double cents = dollars * 100.0;
  if (std::abs(cents - std::round(cents)) < 1e-9) {
    std::snprintf(buf, sizeof(buf), "%.0fc", cents);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fc", cents);
  }
  return buf;
}

}  // namespace optshare
