// Filesystem helpers for the durability layer (service/state_store.h):
// atomic whole-file replacement (write-temp, fsync, rename, fsync the
// directory), directory enumeration, and a reversible encoding that turns
// arbitrary identifiers (tenancy names) into safe path components. POSIX
// fsync semantics are assumed; everything else goes through
// std::filesystem.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace optshare::fs {

/// Reads a whole file; NotFound when it does not exist.
Result<std::string> ReadFile(const std::string& path);

/// Atomically replaces `path` with `contents`: writes `path`.tmp, optionally
/// fsyncs it, renames over `path`, and (when `sync`) fsyncs the parent
/// directory so the rename itself is durable. Readers never observe a
/// partial file. `published` (optional) reports whether the rename took
/// effect — on an error after that point (directory fsync) the new file IS
/// visible, and callers tracking filesystem-visible state must treat it as
/// live.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       bool sync, bool* published = nullptr);

/// Writes the whole buffer to `fd` through short writes and EINTR.
/// `path` only labels the error message.
Status WriteAllFd(int fd, std::string_view contents, const std::string& path);

/// Creates `path` (and parents) as a directory; ok if it already exists.
Status EnsureDir(const std::string& path);

/// True when `path` exists (any kind).
bool PathExists(const std::string& path);

/// Entry names (not full paths) directly under `path`, sorted. NotFound
/// when the directory does not exist.
Result<std::vector<std::string>> ListDir(const std::string& path);

/// Deletes a file; ok if it does not exist.
Status RemoveFile(const std::string& path);

/// Recursively deletes `path`; ok if it does not exist.
Status RemoveAll(const std::string& path);

/// fsyncs a directory so renames/unlinks inside it are durable.
Status SyncDir(const std::string& path);

/// Encodes an arbitrary identifier as a filesystem-safe path component:
/// [A-Za-z0-9_-] pass through, everything else (dots included, so "." and
/// ".." cannot be produced) becomes %XX. Empty input encodes to "%".
std::string EncodePathComponent(std::string_view name);

/// Inverse of EncodePathComponent; InvalidArgument for malformed escapes.
Result<std::string> DecodePathComponent(std::string_view component);

}  // namespace optshare::fs
