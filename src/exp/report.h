// Rendering of figure series as aligned text tables (what the bench
// binaries print) and CSV files (for external plotting).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "exp/figures.h"

namespace optshare::exp {

/// Figure 1 table: executions, baseline cost, AddOn/Regret utility +/- sd,
/// Regret balance.
std::string RenderFig1(const std::vector<Fig1Point>& points);

/// Utility-curve table (Figures 2 and 5 panels): cost, mechanism utility,
/// Regret utility, Regret balance. `mech_name` labels the mechanism column
/// ("AddOn" or "SubstOn").
std::string RenderUtilityCurve(const std::vector<UtilityPoint>& points,
                               const std::string& mech_name);

/// Figure 3 table: x (slots or duration) and the AddOn-Regret gap.
std::string RenderFig3(const std::vector<Fig3Point>& points,
                       const std::string& x_name);

/// Figure 4 table of utility ratios relative to Early-AddOn.
std::string RenderFig4(const std::vector<Fig4Point>& points);

/// CSV exports matching the tables.
Status WriteFig1Csv(std::ostream* out, const std::vector<Fig1Point>& points);
Status WriteUtilityCurveCsv(std::ostream* out,
                            const std::vector<UtilityPoint>& points);
Status WriteFig3Csv(std::ostream* out, const std::vector<Fig3Point>& points);
Status WriteFig4Csv(std::ostream* out, const std::vector<Fig4Point>& points);

}  // namespace optshare::exp
