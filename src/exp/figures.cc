#include "exp/figures.h"

#include "baseline/regret.h"
#include "common/stats.h"
#include "core/accounting.h"
#include "core/add_on.h"

namespace optshare::exp {

std::vector<Fig1Point> RunFig1(const astro::AstroWorkloadModel& model,
                               const Fig1Config& config) {
  std::vector<Fig1Point> points;
  points.reserve(config.executions.size());
  Rng root(config.seed);

  // The interval alternatives are resampled identically for every x value
  // so the curves differ only in usage intensity.
  std::vector<std::vector<std::pair<TimeSlot, TimeSlot>>> assignments;
  {
    Rng rng = root.Fork(0);
    assignments.reserve(static_cast<size_t>(config.sampled_alternatives));
    for (int a = 0; a < config.sampled_alternatives; ++a) {
      assignments.push_back(
          astro::SampleIntervals(4, model.num_users(), rng));
    }
  }

  for (double executions : config.executions) {
    Fig1Point p;
    p.executions = executions;
    for (int u = 0; u < model.num_users(); ++u) {
      p.baseline_cost += model.BaselineDollarsPerExecution(u) * executions;
    }

    RunningStat addon_stat, regret_stat, balance_stat;
    for (const auto& intervals : assignments) {
      astro::AstroGameSpec spec;
      spec.num_slots = 4;
      spec.intervals = intervals;
      spec.executions = executions;
      auto game_r = astro::BuildAstroGame(model, spec);
      if (!game_r.ok()) continue;  // Defensive; spec is always valid here.
      const MultiAdditiveOnlineGame& game = *game_r;

      const std::vector<AddOnResult> mech = RunAddOnAll(game);
      const Accounting acc = AccountAddOnAll(game, mech);
      addon_stat.Add(acc.TotalUtility());

      const RegretLedger ledger = SumLedgers(RunRegretAdditiveAll(game));
      regret_stat.Add(ledger.TotalUtility());
      balance_stat.Add(ledger.CloudBalance());
    }
    p.addon_mean = addon_stat.mean();
    p.addon_std = addon_stat.stddev();
    p.regret_mean = regret_stat.mean();
    p.regret_std = regret_stat.stddev();
    p.regret_balance_mean = balance_stat.mean();
    points.push_back(p);
  }
  return points;
}

Fig2Series RunFig2(const Fig2Config& config) {
  Fig2Series series;

  AdditiveScenario small_add;
  small_add.num_users = 6;
  small_add.num_slots = 12;
  series.additive_small = RunAdditiveComparison(
      small_add, Fig2SmallCosts(), config.trials, config.seed ^ 0xA1);

  AdditiveScenario large_add = small_add;
  large_add.num_users = 24;
  series.additive_large = RunAdditiveComparison(
      large_add, Fig2LargeCosts(), config.trials, config.seed ^ 0xA2);

  SubstScenario small_sub;
  small_sub.num_users = 6;
  small_sub.num_slots = 12;
  small_sub.num_opts = 12;
  small_sub.substitutes_per_user = 3;
  series.subst_small = RunSubstComparison(
      small_sub, Fig2SmallCosts(), config.trials, config.seed ^ 0xA3);

  SubstScenario large_sub = small_sub;
  large_sub.num_users = 24;
  series.subst_large = RunSubstComparison(
      large_sub, Fig2LargeCosts(), config.trials, config.seed ^ 0xA4);

  return series;
}

std::vector<Fig3Point> RunFig3SingleSlot(const Fig3Config& config) {
  std::vector<Fig3Point> points;
  for (int slots = 1; slots <= 12; ++slots) {
    AdditiveScenario scenario;
    scenario.num_users = 6;
    scenario.num_slots = slots;
    scenario.duration = 1;
    const auto curve =
        RunAdditiveComparison(scenario, Fig2SmallCosts(), config.trials,
                              config.seed + static_cast<uint64_t>(slots));
    points.push_back({slots, MeanUtilityGap(curve)});
  }
  return points;
}

std::vector<Fig3Point> RunFig3MultiSlot(const Fig3Config& config) {
  std::vector<Fig3Point> points;
  for (int d = 1; d <= 12; ++d) {
    AdditiveScenario scenario;
    scenario.num_users = 6;
    scenario.num_slots = 12;
    scenario.duration = d;
    const auto curve = RunAdditiveComparison(
        scenario, Fig2SmallCosts(), config.trials,
        config.seed + 100 + static_cast<uint64_t>(d));
    points.push_back({d, MeanUtilityGap(curve)});
  }
  return points;
}

std::vector<Fig4Point> RunFig4(const Fig4Config& config) {
  const std::vector<double> costs = Fig4Costs();

  auto run = [&](ArrivalProcess arrival, uint64_t salt) {
    AdditiveScenario scenario;
    scenario.num_users = 6;
    scenario.num_slots = 12;
    scenario.arrival = arrival;
    return RunAdditiveComparison(scenario, costs, config.trials,
                                 config.seed ^ salt);
  };
  const auto uniform = run(ArrivalProcess::kUniform, 0xB1);
  const auto early = run(ArrivalProcess::kEarly, 0xB2);
  const auto late = run(ArrivalProcess::kLate, 0xB3);

  std::vector<Fig4Point> points;
  points.reserve(costs.size());
  for (size_t k = 0; k < costs.size(); ++k) {
    Fig4Point p;
    p.cost = costs[k];
    p.uniform_addon = uniform[k].mech_utility;
    p.uniform_regret = uniform[k].regret_utility;
    p.early_addon = early[k].mech_utility;
    p.early_regret = early[k].regret_utility;
    p.late_addon = late[k].mech_utility;
    p.late_regret = late[k].regret_utility;
    points.push_back(p);
  }
  return points;
}

double Fig4Ratio(const Fig4Point& point, double value) {
  if (point.early_addon == 0.0) return 0.0;
  return value / point.early_addon;
}

Fig5Series RunFig5(const Fig5Config& config) {
  Fig5Series series;

  SubstScenario low;  // 3 substitutes of 4 optimizations.
  low.num_users = 6;
  low.num_slots = 12;
  low.num_opts = 4;
  low.substitutes_per_user = 3;
  series.low_selectivity = RunSubstComparison(low, Fig5Costs(), config.trials,
                                              config.seed ^ 0xC1);

  SubstScenario high = low;  // 3 of 12.
  high.num_opts = 12;
  series.high_selectivity = RunSubstComparison(
      high, Fig5Costs(), config.trials, config.seed ^ 0xC2);

  return series;
}

}  // namespace optshare::exp
