#include "exp/experiment.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "baseline/baseline_mechanisms.h"
#include "baseline/regret.h"
#include "core/accounting.h"
#include "core/mechanism.h"
#include "core/online_mechanism.h"

namespace optshare::exp {
namespace {

// Resolves the mechanism once per sweep, in its *streaming* form — the
// comparison games are replayed as event streams (users declaring at their
// arrival slots), so the figures exercise the same surface a live session
// uses. Native engines (addon, subston) price slot by slot; online
// baselines run through the buffering adapter with results identical to
// the batch path. Offline-only names are rejected here even though the
// session surface would accept them via stream collapsing: a collapsed
// result has no slot structure, and accounting it against the online
// truth game would yield silently wrong utility curves — the support
// check happens at resolve time so an incompatible name fails before the
// sweep starts, not on its first Run.
Result<std::unique_ptr<OnlineMechanism>> Resolve(const std::string& name,
                                                 GameKind kind) {
  RegisterBaselineMechanisms();
  Result<std::unique_ptr<Mechanism>> batch = ResolveMechanism(name, kind);
  if (!batch.ok()) return batch.status();
  return ResolveOnlineMechanism(name, kind);
}

// The plain overloads run the paper's own mechanisms, which are always
// registered and support their game class — a failure here is a bug, not
// an input error.
std::vector<UtilityPoint> MustRun(Result<std::vector<UtilityPoint>> points) {
  if (!points.ok()) {
    std::fprintf(stderr, "comparison sweep: %s\n",
                 points.status().ToString().c_str());
    std::abort();
  }
  return std::move(*points);
}

}  // namespace

std::vector<double> LinearSweep(double start, double step, int count) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(count));
  for (int k = 0; k < count; ++k) out.push_back(start + step * k);
  return out;
}

std::vector<double> Fig2SmallCosts() { return LinearSweep(0.03, 0.18, 17); }
std::vector<double> Fig2LargeCosts() { return LinearSweep(0.12, 0.72, 17); }
std::vector<double> Fig4Costs() { return LinearSweep(0.03, 0.12, 15); }
std::vector<double> Fig5Costs() { return LinearSweep(0.03, 0.15, 19); }

std::vector<UtilityPoint> RunAdditiveComparison(
    const AdditiveScenario& scenario, const std::vector<double>& costs,
    int trials, uint64_t seed) {
  return MustRun(RunAdditiveComparison("addon", scenario, costs, trials, seed));
}

Result<std::vector<UtilityPoint>> RunAdditiveComparison(
    const std::string& mechanism, const AdditiveScenario& scenario,
    const std::vector<double>& costs, int trials, uint64_t seed) {
  Result<std::unique_ptr<OnlineMechanism>> mech =
      Resolve(mechanism, GameKind::kAdditiveOnline);
  if (!mech.ok()) return mech.status();
  Rng root(seed);
  std::vector<UtilityPoint> points;
  points.reserve(costs.size());
  for (double cost : costs) {
    UtilityPoint p;
    p.cost = cost;
    Rng rng = root.Fork(static_cast<uint64_t>(points.size()));
    for (int trial = 0; trial < trials; ++trial) {
      const AdditiveOnlineGame game = MakeAdditiveGame(scenario, cost, rng);

      const Result<MechanismResult> result =
          ReplayLog(EventLogFromGame(game), **mech);
      if (!result.ok()) return result.status();
      const Accounting acc = AccountResult(GameView(game), *result);
      p.mech_utility += acc.TotalUtility();
      p.mech_balance += acc.CloudBalance();

      const RegretAdditiveResult reg = RunRegretAdditive(game);
      p.regret_utility += reg.TotalUtility();
      p.regret_balance += reg.CloudBalance();
    }
    const double n = static_cast<double>(trials);
    p.mech_utility /= n;
    p.mech_balance /= n;
    p.regret_utility /= n;
    p.regret_balance /= n;
    points.push_back(p);
  }
  return points;
}

std::vector<UtilityPoint> RunSubstComparison(const SubstScenario& scenario,
                                             const std::vector<double>& costs,
                                             int trials, uint64_t seed) {
  return MustRun(RunSubstComparison("subston", scenario, costs, trials, seed));
}

Result<std::vector<UtilityPoint>> RunSubstComparison(
    const std::string& mechanism, const SubstScenario& scenario,
    const std::vector<double>& costs, int trials, uint64_t seed) {
  Result<std::unique_ptr<OnlineMechanism>> mech =
      Resolve(mechanism, GameKind::kSubstOnline);
  if (!mech.ok()) return mech.status();
  Rng root(seed);
  std::vector<UtilityPoint> points;
  points.reserve(costs.size());
  for (double mean_cost : costs) {
    UtilityPoint p;
    p.cost = mean_cost;
    Rng rng = root.Fork(static_cast<uint64_t>(points.size()));
    for (int trial = 0; trial < trials; ++trial) {
      const SubstOnlineGame game = MakeSubstGame(scenario, mean_cost, rng);

      const Result<MechanismResult> result =
          ReplayLog(EventLogFromGame(game), **mech);
      if (!result.ok()) return result.status();
      const Accounting acc = AccountResult(GameView(game), *result);
      p.mech_utility += acc.TotalUtility();
      p.mech_balance += acc.CloudBalance();

      const RegretSubstResult reg = RunRegretSubst(game);
      p.regret_utility += reg.TotalUtility();
      p.regret_balance += reg.CloudBalance();
    }
    const double n = static_cast<double>(trials);
    p.mech_utility /= n;
    p.mech_balance /= n;
    p.regret_utility /= n;
    p.regret_balance /= n;
    points.push_back(p);
  }
  return points;
}

double MeanUtilityGap(const std::vector<UtilityPoint>& points) {
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : points) sum += p.mech_utility - p.regret_utility;
  return sum / static_cast<double>(points.size());
}

}  // namespace optshare::exp
