// Shared experiment infrastructure: cost sweeps, trial aggregation, and the
// comparison runners (mechanism vs Regret) every figure is built from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/scenario.h"

namespace optshare::exp {

/// `count` evenly spaced values start, start+step, ...
std::vector<double> LinearSweep(double start, double step, int count);

/// The paper's x-axes (figure tick spacing).
std::vector<double> Fig2SmallCosts();   ///< 0.03 .. 2.91 step 0.18.
std::vector<double> Fig2LargeCosts();   ///< 0.12 .. 11.64 step 0.72.
std::vector<double> Fig4Costs();        ///< 0.03 .. 1.71 step 0.12.
std::vector<double> Fig5Costs();        ///< 0.03 .. 2.73 step 0.15.

/// One point of a mechanism-vs-Regret utility curve, averaged over trials.
struct UtilityPoint {
  double cost = 0.0;             ///< Mean optimization cost (x axis).
  double mech_utility = 0.0;     ///< AddOn / SubstOn total utility.
  double regret_utility = 0.0;   ///< Regret total utility.
  double regret_balance = 0.0;   ///< Regret cloud balance (<0 = loss).
  double mech_balance = 0.0;     ///< Mechanism balance (always >= 0).
};

/// Sweeps additive optimization costs, averaging AddOn and Regret over
/// `trials` seeded game draws per cost (§7.3.1 setup).
std::vector<UtilityPoint> RunAdditiveComparison(
    const AdditiveScenario& scenario, const std::vector<double>& costs,
    int trials, uint64_t seed);

/// Same sweep with the mechanism side selected by registry name (any
/// mechanism supporting additive online games: "addon", "naive_online",
/// "regret", ...). NotFound / InvalidArgument for unknown or incompatible
/// names. The plain overload above is equivalent to passing "addon".
Result<std::vector<UtilityPoint>> RunAdditiveComparison(
    const std::string& mechanism, const AdditiveScenario& scenario,
    const std::vector<double>& costs, int trials, uint64_t seed);

/// Same for substitutable optimizations (SubstOn vs substitutable Regret,
/// §7.3.2): `mean_costs` are the x-axis means of the U[0, 2c] cost draws.
std::vector<UtilityPoint> RunSubstComparison(const SubstScenario& scenario,
                                             const std::vector<double>& costs,
                                             int trials, uint64_t seed);

/// Substitutable sweep with the mechanism side selected by registry name
/// ("subston", "regret", ...). NotFound / InvalidArgument for unknown or
/// incompatible names. The plain overload passes "subston".
Result<std::vector<UtilityPoint>> RunSubstComparison(
    const std::string& mechanism, const SubstScenario& scenario,
    const std::vector<double>& costs, int trials, uint64_t seed);

/// Mean over the points' mech_utility - regret_utility (Figure 3's y axis).
double MeanUtilityGap(const std::vector<UtilityPoint>& points);

}  // namespace optshare::exp
