#include "exp/scaling.h"

namespace optshare::exp {

std::vector<ScalingPoint> RunGroupScaling(const ScalingConfig& config) {
  std::vector<ScalingPoint> points;
  points.reserve(config.group_sizes.size());
  for (int users : config.group_sizes) {
    ScalingPoint p;
    p.num_users = users;

    AdditiveScenario additive;
    additive.num_users = users;
    additive.num_slots = 12;
    const auto add_curve =
        RunAdditiveComparison(additive, {config.cost}, config.trials,
                              config.seed + static_cast<uint64_t>(users));
    p.addon_utility = add_curve[0].mech_utility;
    p.regret_utility = add_curve[0].regret_utility;
    p.regret_balance = add_curve[0].regret_balance;

    SubstScenario subst;
    subst.num_users = users;
    subst.num_slots = 12;
    subst.num_opts = 12;
    subst.substitutes_per_user = 3;
    const auto sub_curve = RunSubstComparison(
        subst, {config.cost}, config.trials,
        config.seed + 1000 + static_cast<uint64_t>(users));
    p.subst_utility = sub_curve[0].mech_utility;
    p.subst_regret_utility = sub_curve[0].regret_utility;

    points.push_back(p);
  }
  return points;
}

}  // namespace optshare::exp
