// One driver per paper figure. Each returns the plotted series so benches
// print them, integration tests assert their shapes, and examples reuse
// them. Figure/section mapping is in DESIGN.md §4.
#pragma once

#include <cstdint>
#include <vector>

#include "astro/astro_workload.h"
#include "exp/experiment.h"
#include "workload/arrival.h"

namespace optshare::exp {

// ---------------------------------------------------------------------------
// Figure 1 — astronomy use-case (§7.2).

struct Fig1Point {
  double executions = 0.0;       ///< Workload executions per user (x axis).
  double baseline_cost = 0.0;    ///< Operating expense without views.
  double addon_mean = 0.0;       ///< AddOn total utility, mean over bids.
  double addon_std = 0.0;
  double regret_mean = 0.0;      ///< Regret total utility.
  double regret_std = 0.0;
  double regret_balance_mean = 0.0;
};

struct Fig1Config {
  std::vector<double> executions = {1, 10, 20, 30, 40, 50, 60, 70, 80, 90};
  /// Bid-interval assignments sampled from the 10^6 alternatives
  /// (DESIGN.md §3 documents the sampling substitution).
  int sampled_alternatives = 500;
  uint64_t seed = 20120827;  ///< VLDB'12 started Aug 27, 2012.
};

std::vector<Fig1Point> RunFig1(const astro::AstroWorkloadModel& model,
                               const Fig1Config& config);

// ---------------------------------------------------------------------------
// Figure 2 — collaboration size (§7.3).

struct Fig2Series {
  std::vector<UtilityPoint> additive_small;  ///< (a) 6 users.
  std::vector<UtilityPoint> additive_large;  ///< (b) 24 users.
  std::vector<UtilityPoint> subst_small;     ///< (c) 6 users.
  std::vector<UtilityPoint> subst_large;     ///< (d) 24 users.
};

struct Fig2Config {
  int trials = 1000;
  uint64_t seed = 2;
};

Fig2Series RunFig2(const Fig2Config& config);

// ---------------------------------------------------------------------------
// Figure 3 — overlap in usage (§7.4).

struct Fig3Point {
  int x = 0;          ///< (a): total slots; (b): bid duration d.
  double gap = 0.0;   ///< Mean AddOn utility minus Regret utility.
};

struct Fig3Config {
  int trials = 400;
  uint64_t seed = 3;
};

/// (a): 6 users bidding one slot while the horizon shrinks 12 -> 1.
std::vector<Fig3Point> RunFig3SingleSlot(const Fig3Config& config);
/// (b): 12-slot horizon, users bid d contiguous slots, d = 1..12.
std::vector<Fig3Point> RunFig3MultiSlot(const Fig3Config& config);

// ---------------------------------------------------------------------------
// Figure 4 — arrival skew (§7.5).

struct Fig4Point {
  double cost = 0.0;
  /// Utilities in paper order: Uniform/Early/Late x AddOn/Regret.
  double uniform_addon = 0.0, uniform_regret = 0.0;
  double early_addon = 0.0, early_regret = 0.0;
  double late_addon = 0.0, late_regret = 0.0;
};

struct Fig4Config {
  int trials = 1000;
  uint64_t seed = 4;
};

/// Absolute utilities; the paper plots each divided by early_addon at the
/// same cost (helper below).
std::vector<Fig4Point> RunFig4(const Fig4Config& config);

/// Ratio of `value` to the early-AddOn utility at the same point, the
/// paper's y axis (0 when the denominator vanishes).
double Fig4Ratio(const Fig4Point& point, double value);

// ---------------------------------------------------------------------------
// Figure 5 — selectivity of substitutes (§7.6).

struct Fig5Series {
  std::vector<UtilityPoint> low_selectivity;   ///< (a) 3 of 4 opts.
  std::vector<UtilityPoint> high_selectivity;  ///< (b) 3 of 12 opts.
};

struct Fig5Config {
  int trials = 1000;
  uint64_t seed = 5;
};

Fig5Series RunFig5(const Fig5Config& config);

}  // namespace optshare::exp
