#include "exp/report.h"

#include "common/csv.h"
#include "common/table.h"

namespace optshare::exp {

std::string RenderFig1(const std::vector<Fig1Point>& points) {
  TextTable t({"executions", "baseline_cost", "addon_utility", "addon_sd",
               "regret_utility", "regret_sd", "regret_balance"});
  for (const auto& p : points) {
    t.AddNumericRow({p.executions, p.baseline_cost, p.addon_mean, p.addon_std,
                     p.regret_mean, p.regret_std, p.regret_balance_mean},
                    2);
  }
  return t.Render();
}

std::string RenderUtilityCurve(const std::vector<UtilityPoint>& points,
                               const std::string& mech_name) {
  TextTable t({"cost", mech_name + "_utility", "regret_utility",
               "regret_balance"});
  for (const auto& p : points) {
    t.AddNumericRow(
        {p.cost, p.mech_utility, p.regret_utility, p.regret_balance}, 4);
  }
  return t.Render();
}

std::string RenderFig3(const std::vector<Fig3Point>& points,
                       const std::string& x_name) {
  TextTable t({x_name, "addon_minus_regret"});
  for (const auto& p : points) {
    t.AddNumericRow({static_cast<double>(p.x), p.gap}, 4);
  }
  return t.Render();
}

std::string RenderFig4(const std::vector<Fig4Point>& points) {
  TextTable t({"cost", "uniform_addon", "uniform_regret", "early_addon",
               "early_regret", "late_addon", "late_regret"});
  for (const auto& p : points) {
    t.AddNumericRow({p.cost, Fig4Ratio(p, p.uniform_addon),
                     Fig4Ratio(p, p.uniform_regret),
                     Fig4Ratio(p, p.early_addon),
                     Fig4Ratio(p, p.early_regret), Fig4Ratio(p, p.late_addon),
                     Fig4Ratio(p, p.late_regret)},
                    4);
  }
  return t.Render();
}

Status WriteFig1Csv(std::ostream* out, const std::vector<Fig1Point>& points) {
  CsvWriter w(out);
  OPTSHARE_RETURN_NOT_OK(w.WriteHeader({"executions", "baseline_cost",
                                        "addon_utility", "addon_sd",
                                        "regret_utility", "regret_sd",
                                        "regret_balance"}));
  for (const auto& p : points) {
    OPTSHARE_RETURN_NOT_OK(w.WriteRow(std::vector<double>{
        p.executions, p.baseline_cost, p.addon_mean, p.addon_std,
        p.regret_mean, p.regret_std, p.regret_balance_mean}));
  }
  return Status::OK();
}

Status WriteUtilityCurveCsv(std::ostream* out,
                            const std::vector<UtilityPoint>& points) {
  CsvWriter w(out);
  OPTSHARE_RETURN_NOT_OK(w.WriteHeader(
      {"cost", "mech_utility", "regret_utility", "regret_balance"}));
  for (const auto& p : points) {
    OPTSHARE_RETURN_NOT_OK(w.WriteRow(std::vector<double>{
        p.cost, p.mech_utility, p.regret_utility, p.regret_balance}));
  }
  return Status::OK();
}

Status WriteFig3Csv(std::ostream* out, const std::vector<Fig3Point>& points) {
  CsvWriter w(out);
  OPTSHARE_RETURN_NOT_OK(w.WriteHeader({"x", "addon_minus_regret"}));
  for (const auto& p : points) {
    OPTSHARE_RETURN_NOT_OK(
        w.WriteRow(std::vector<double>{static_cast<double>(p.x), p.gap}));
  }
  return Status::OK();
}

Status WriteFig4Csv(std::ostream* out, const std::vector<Fig4Point>& points) {
  CsvWriter w(out);
  OPTSHARE_RETURN_NOT_OK(w.WriteHeader(
      {"cost", "uniform_addon", "uniform_regret", "early_addon",
       "early_regret", "late_addon", "late_regret"}));
  for (const auto& p : points) {
    OPTSHARE_RETURN_NOT_OK(w.WriteRow(std::vector<double>{
        p.cost, Fig4Ratio(p, p.uniform_addon), Fig4Ratio(p, p.uniform_regret),
        Fig4Ratio(p, p.early_addon), Fig4Ratio(p, p.early_regret),
        Fig4Ratio(p, p.late_addon), Fig4Ratio(p, p.late_regret)}));
  }
  return Status::OK();
}

}  // namespace optshare::exp
