// Extension experiment (not a paper figure): total utility as the
// collaboration grows, at a fixed optimization cost. §7.3 varies cost for
// two group sizes; this driver fixes the cost and sweeps the size, which
// shows where a collaboration becomes large enough to fund an optimization
// under each approach.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/experiment.h"

namespace optshare::exp {

struct ScalingPoint {
  int num_users = 0;
  double addon_utility = 0.0;
  double regret_utility = 0.0;
  double regret_balance = 0.0;
  double subst_utility = 0.0;          ///< SubstOn (12 opts, 3 substitutes).
  double subst_regret_utility = 0.0;
};

struct ScalingConfig {
  /// Group sizes to sweep.
  std::vector<int> group_sizes = {2, 4, 6, 9, 12, 18, 24, 36, 48};
  /// Fixed additive optimization cost and substitutable mean cost.
  double cost = 1.5;
  int trials = 500;
  uint64_t seed = 6;
};

std::vector<ScalingPoint> RunGroupScaling(const ScalingConfig& config);

}  // namespace optshare::exp
