// A small columnar row store with synthetic data generation. The cost
// model (cost_model.h) predicts runtimes from statistics; this executor
// actually runs the queries on generated data so tests can cross-validate
// the model's *ordering* (an index must touch fewer rows than a scan, a
// materialized view must touch fewer than the base table, predicted
// selectivities must match realized frequencies).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "simdb/schema.h"

namespace optshare::simdb {

/// Value distribution of a generated int64 column.
enum class ValueDistribution {
  kUniform,  ///< Uniform over [0, distinct_values).
  kZipf,     ///< Zipf(s ~ 1.1) over [0, distinct_values): skewed hot keys.
};

/// Generation recipe for one column (strings are "s<int>" of the drawn
/// key; doubles are the drawn key scaled to [0, 1)).
struct ColumnGenSpec {
  ValueDistribution distribution = ValueDistribution::kUniform;
};

/// Materialized table: column-major storage of generated rows. Only the
/// int64 representation is stored; strings/doubles are derived views of
/// the key space, which is all the executor's equality predicates need.
class StoredTable {
 public:
  /// Generates `table.row_count` rows per `table`'s schema. `specs` gives
  /// per-column distributions (defaults to uniform when shorter than the
  /// column list).
  static Result<StoredTable> Generate(const TableDef& table,
                                      const std::vector<ColumnGenSpec>& specs,
                                      Rng& rng);

  const TableDef& schema() const { return schema_; }
  uint64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  /// Key of `row` in column `col` (bounds-checked by assertion).
  int64_t At(size_t row, size_t col) const {
    return columns_[col][row];
  }

  /// Raw column data (for index builds).
  const std::vector<int64_t>& Column(size_t col) const {
    return columns_[col];
  }

 private:
  TableDef schema_;
  std::vector<std::vector<int64_t>> columns_;
};

/// Hash-based secondary index: key -> row ids.
class HashIndex {
 public:
  /// Builds over one column of a stored table.
  static Result<HashIndex> Build(const StoredTable& table,
                                 const std::string& column);

  /// Row ids with the given key (empty when absent).
  const std::vector<uint32_t>& Lookup(int64_t key) const;

  size_t num_keys() const { return buckets_.size(); }
  int column_index() const { return column_index_; }

 private:
  std::unordered_map<int64_t, std::vector<uint32_t>> buckets_;
  int column_index_ = -1;
  static const std::vector<uint32_t> kEmpty;
};

/// Materialized view: the subset of rows matching `column == key`,
/// stored as row ids into the base table (a positional view).
class MaterializedViewData {
 public:
  static Result<MaterializedViewData> Build(const StoredTable& table,
                                            const std::string& column,
                                            int64_t key);

  const std::vector<uint32_t>& rows() const { return rows_; }
  int column_index() const { return column_index_; }
  int64_t key() const { return key_; }

 private:
  std::vector<uint32_t> rows_;
  int column_index_ = -1;
  int64_t key_ = 0;
};

}  // namespace optshare::simdb
