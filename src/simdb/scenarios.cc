#include "simdb/scenarios.h"

#include "strategy/trace.h"

namespace optshare::simdb {
namespace {

// The presets are now expressed as scenario-config documents
// (strategy::PresetConfigDocument) and expanded through the one trace
// loader the CLI, benches and soak tests all share; these entry points are
// thin adapters kept for source compatibility. The draws are pinned
// bit-identical to the historical C++ formulas by
// tests/strategy_trace_test.cc.
Result<Scenario> ExpandPreset(const std::string& name, int num_tenants,
                              int num_slots) {
  Result<JsonValue> doc =
      strategy::PresetConfigDocument(name, num_tenants, num_slots);
  if (!doc.ok()) return doc.status();
  Result<strategy::TraceConfig> config = strategy::TraceConfigFromJson(*doc);
  if (!config.ok()) return config.status();
  Result<strategy::Trace> trace = strategy::GenerateTrace(*config);
  if (!trace.ok()) return trace.status();
  Scenario s;
  for (const TableDef& table : config->catalog.tables) {
    OPTSHARE_RETURN_NOT_OK(s.catalog.AddTable(table));
  }
  for (strategy::TraceTenant& drawn : trace->periods.front().tenants) {
    s.tenants.push_back(std::move(drawn.tenant));
  }
  return s;
}

}  // namespace

Result<Scenario> ClickstreamScenario(int num_tenants, int num_slots) {
  return ExpandPreset("clickstream", num_tenants, num_slots);
}

Result<Scenario> RetailScenario(int num_tenants, int num_slots) {
  return ExpandPreset("retail", num_tenants, num_slots);
}

Result<Scenario> TelemetryScenario(int num_tenants, int num_slots) {
  return ExpandPreset("telemetry", num_tenants, num_slots);
}

std::vector<SimUser> JitterTenants(std::vector<SimUser> tenants,
                                   int num_slots, Rng& rng, double scale_lo,
                                   double scale_hi) {
  for (SimUser& tenant : tenants) {
    const TimeSlot a = static_cast<TimeSlot>(rng.UniformInt(1, num_slots));
    const TimeSlot b = static_cast<TimeSlot>(rng.UniformInt(1, num_slots));
    tenant.start = std::min(a, b);
    tenant.end = std::max(a, b);
    tenant.executions_per_slot *= rng.Uniform(scale_lo, scale_hi);
  }
  return tenants;
}

}  // namespace optshare::simdb
