#include "simdb/scenarios.h"

namespace optshare::simdb {
namespace {

SimUser MakeTenant(Query query, TimeSlot start, TimeSlot end,
                   double executions) {
  SimUser tenant;
  tenant.workload.entries = {{std::move(query), 1.0}};
  tenant.start = start;
  tenant.end = end;
  tenant.executions_per_slot = executions;
  return tenant;
}

}  // namespace

Result<Scenario> ClickstreamScenario(int num_tenants, int num_slots) {
  if (num_tenants < 1 || num_slots < 1) {
    return Status::InvalidArgument("need at least one tenant and one slot");
  }
  Scenario s;
  TableDef events;
  events.name = "events";
  events.columns = {
      {"event_id", ColumnType::kInt64, 2'000'000'000},
      {"user_id", ColumnType::kInt64, 50'000'000},
      {"kind", ColumnType::kString, 200},
      {"ts", ColumnType::kInt64, 86'400'000},
  };
  events.row_count = 2'000'000'000;
  OPTSHARE_RETURN_NOT_OK(s.catalog.AddTable(events));

  Query funnel;
  funnel.table = "events";
  funnel.predicates = {{"user_id", 2e-8}, {"kind", 0.005}};
  funnel.aggregate = true;

  for (int i = 0; i < num_tenants; ++i) {
    const TimeSlot start = 1 + (i % std::max(1, num_slots / 2));
    const TimeSlot end =
        std::min<TimeSlot>(start + num_slots / 2, num_slots);
    const double executions = 200.0 * (1 + i % 4);
    s.tenants.push_back(MakeTenant(funnel, start, end, executions));
  }
  return s;
}

Result<Scenario> RetailScenario(int num_tenants, int num_slots) {
  if (num_tenants < 1 || num_slots < 1) {
    return Status::InvalidArgument("need at least one tenant and one slot");
  }
  Scenario s;
  TableDef sales;
  sales.name = "sales";
  sales.columns = {
      {"sale_id", ColumnType::kInt64, 800'000'000},
      {"region", ColumnType::kString, 40},
      {"sku", ColumnType::kInt64, 100'000},
      {"amount", ColumnType::kDouble, 1'000'000},
  };
  sales.row_count = 800'000'000;
  OPTSHARE_RETURN_NOT_OK(s.catalog.AddTable(sales));

  for (int i = 0; i < num_tenants; ++i) {
    Query report;
    report.table = "sales";
    // Alternate between region rollups and sku drill-downs.
    if (i % 2 == 0) {
      report.predicates = {{"region", 1.0 / 40}};
    } else {
      report.predicates = {{"sku", 1.0 / 100'000}};
    }
    report.aggregate = true;
    s.tenants.push_back(
        MakeTenant(report, 1, num_slots, 50.0 * (1 + i % 3)));
  }
  return s;
}

Result<Scenario> TelemetryScenario(int num_tenants, int num_slots) {
  if (num_tenants < 1 || num_slots < 1) {
    return Status::InvalidArgument("need at least one tenant and one slot");
  }
  Scenario s;
  TableDef telemetry;
  telemetry.name = "telemetry";
  telemetry.columns = {
      {"device", ColumnType::kInt64, 5'000'000},
      {"metric", ColumnType::kInt64, 64},
      {"value", ColumnType::kDouble, 1'000'000},
  };
  telemetry.row_count = 1'000'000'000;
  OPTSHARE_RETURN_NOT_OK(s.catalog.AddTable(telemetry));

  Query series;
  series.table = "telemetry";
  series.predicates = {{"device", 2e-7}};
  series.aggregate = true;

  for (int i = 0; i < num_tenants; ++i) {
    // A mix of enterprise (heavy) and starter (light) tenants.
    const double executions = (i % 3 == 0) ? 2500.0 : 150.0;
    s.tenants.push_back(MakeTenant(series, 1, num_slots, executions));
  }
  return s;
}

std::vector<SimUser> JitterTenants(std::vector<SimUser> tenants,
                                   int num_slots, Rng& rng, double scale_lo,
                                   double scale_hi) {
  for (SimUser& tenant : tenants) {
    const TimeSlot a = static_cast<TimeSlot>(rng.UniformInt(1, num_slots));
    const TimeSlot b = static_cast<TimeSlot>(rng.UniformInt(1, num_slots));
    tenant.start = std::min(a, b);
    tenant.end = std::max(a, b);
    tenant.executions_per_slot *= rng.Uniform(scale_lo, scale_hi);
  }
  return tenants;
}

}  // namespace optshare::simdb
