#include "simdb/cost_model.h"

#include <algorithm>
#include <cmath>

namespace optshare::simdb {
namespace {

constexpr double kAggregateOutputBytes = 64.0;

}  // namespace

Result<double> CostModel::ScanTime(const TableDef& table,
                                   const Query& query) const {
  const double bytes = static_cast<double>(table.TotalBytes());
  const double rows = static_cast<double>(table.row_count);
  const double matching = rows * query.CombinedSelectivity();
  double t = bytes / params_.seq_scan_bytes_per_sec +
             rows * params_.per_row_cpu_sec;
  const double out_bytes =
      query.aggregate ? kAggregateOutputBytes
                      : matching * static_cast<double>(table.RowBytes());
  t += out_bytes / params_.network_bytes_per_sec;
  return t;
}

Result<double> CostModel::QueryTime(const Query& query,
                                    const std::vector<int>& available) const {
  OPTSHARE_RETURN_NOT_OK(query.Validate());
  Result<const TableDef*> table_r = catalog_->GetTable(query.table);
  if (!table_r.ok()) return table_r.status();
  const TableDef& table = **table_r;
  for (const auto& p : query.predicates) {
    if (table.FindColumn(p.column) < 0) {
      return Status::NotFound("no column " + p.column + " in " + query.table);
    }
  }

  Result<double> base = ScanTime(table, query);
  double best = *base;
  bool replica_available = false;

  const auto& specs = catalog_->optimizations();
  for (int id : available) {
    if (id < 0 || id >= static_cast<int>(specs.size())) {
      return Status::OutOfRange("optimization id out of range");
    }
    const OptimizationSpec& spec = specs[static_cast<size_t>(id)];
    if (spec.table != query.table) continue;

    switch (spec.kind) {
      case OptKind::kSecondaryIndex: {
        // Applicable when some predicate filters the indexed column.
        double index_sel = 1.0;
        bool applicable = false;
        for (const auto& p : query.predicates) {
          if (p.column == spec.column) {
            applicable = true;
            index_sel = p.selectivity;
          }
        }
        if (!applicable) break;
        const double rows = static_cast<double>(table.row_count);
        const double fetched = rows * index_sel;
        // Descend the B-tree, then fetch matching rows; clustered-run
        // assumption caps random reads at one per 100 rows fetched.
        double t = params_.random_io_sec * std::log2(std::max(rows, 2.0)) +
                   std::min(fetched, fetched / 100.0 + 1.0) *
                       params_.random_io_sec +
                   fetched * params_.per_row_cpu_sec;
        // Residual predicates filter fetched rows; output ships the final
        // matching set.
        const double matching = rows * query.CombinedSelectivity();
        const double out_bytes =
            query.aggregate
                ? kAggregateOutputBytes
                : matching * static_cast<double>(table.RowBytes());
        t += out_bytes / params_.network_bytes_per_sec;
        best = std::min(best, t);
        break;
      }
      case OptKind::kMaterializedView: {
        // Applicable when the view's filter column is one of the query's
        // predicates: the view pre-applies that predicate.
        bool applicable = false;
        double residual_sel = 1.0;
        for (const auto& p : query.predicates) {
          if (p.column == spec.column) {
            applicable = true;
          } else {
            residual_sel *= p.selectivity;
          }
        }
        if (!applicable) break;
        const double view_rows =
            static_cast<double>(table.row_count) * spec.view_selectivity;
        const double view_bytes =
            view_rows * static_cast<double>(table.RowBytes());
        double t = view_bytes / params_.seq_scan_bytes_per_sec +
                   view_rows * params_.per_row_cpu_sec;
        const double matching = view_rows * residual_sel;
        const double out_bytes =
            query.aggregate
                ? kAggregateOutputBytes
                : matching * static_cast<double>(table.RowBytes());
        t += out_bytes / params_.network_bytes_per_sec;
        best = std::min(best, t);
        break;
      }
      case OptKind::kReplica:
        replica_available = true;
        break;
    }
  }

  if (replica_available) best *= params_.replica_speedup;
  return best;
}

Result<double> CostModel::WorkloadTime(const Workload& workload,
                                       const std::vector<int>& available) const {
  OPTSHARE_RETURN_NOT_OK(workload.Validate());
  double total = 0.0;
  for (const auto& e : workload.entries) {
    Result<double> t = QueryTime(e.query, available);
    if (!t.ok()) return t.status();
    total += *t * e.frequency;
  }
  return total;
}

Result<double> CostModel::BuildTimeSec(int id) const {
  const auto& specs = catalog_->optimizations();
  if (id < 0 || id >= static_cast<int>(specs.size())) {
    return Status::OutOfRange("optimization id out of range");
  }
  const OptimizationSpec& spec = specs[static_cast<size_t>(id)];
  Result<const TableDef*> table_r = catalog_->GetTable(spec.table);
  if (!table_r.ok()) return table_r.status();
  const TableDef& table = **table_r;

  const double rows = static_cast<double>(table.row_count);
  const double scan =
      static_cast<double>(table.TotalBytes()) / params_.seq_scan_bytes_per_sec;
  switch (spec.kind) {
    case OptKind::kSecondaryIndex:
      // Scan + sort-build.
      return scan + rows * params_.per_row_cpu_sec *
                        std::log2(std::max(rows, 2.0));
    case OptKind::kMaterializedView: {
      Result<uint64_t> bytes = StorageBytes(id);
      return scan + rows * params_.per_row_cpu_sec +
             static_cast<double>(*bytes) / params_.seq_scan_bytes_per_sec;
    }
    case OptKind::kReplica:
      // Full copy.
      return 2.0 * scan;
  }
  return Status::Internal("unknown optimization kind");
}

Result<uint64_t> CostModel::StorageBytes(int id) const {
  const auto& specs = catalog_->optimizations();
  if (id < 0 || id >= static_cast<int>(specs.size())) {
    return Status::OutOfRange("optimization id out of range");
  }
  const OptimizationSpec& spec = specs[static_cast<size_t>(id)];
  Result<const TableDef*> table_r = catalog_->GetTable(spec.table);
  if (!table_r.ok()) return table_r.status();
  const TableDef& table = **table_r;

  switch (spec.kind) {
    case OptKind::kSecondaryIndex: {
      const int col = table.FindColumn(spec.column);
      const uint64_t key_bytes = static_cast<uint64_t>(
          ColumnTypeWidth(table.columns[static_cast<size_t>(col)].type));
      return table.row_count * (key_bytes + 8);  // Key + row pointer.
    }
    case OptKind::kMaterializedView:
      return static_cast<uint64_t>(static_cast<double>(table.TotalBytes()) *
                                   spec.view_selectivity);
    case OptKind::kReplica:
      return table.TotalBytes();
  }
  return Status::Internal("unknown optimization kind");
}

}  // namespace optshare::simdb
