// Canned catalogs and workloads: ready-made shared-dataset scenarios used
// by examples, tests and benches (and a convenient starting point for
// library users). Each returns a populated catalog plus a set of tenants
// whose workloads exercise it.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "simdb/catalog.h"
#include "simdb/pricing.h"

namespace optshare::simdb {

/// A packaged scenario: catalog + tenants.
struct Scenario {
  Catalog catalog;
  std::vector<SimUser> tenants;
};

/// Clickstream analytics: one wide event table, tenants running per-user
/// funnels (highly selective lookups) at different intensities.
Result<Scenario> ClickstreamScenario(int num_tenants = 6, int num_slots = 12);

/// Retail sales: fact table filtered by region/sku; tenants run regional
/// aggregate reports. Substitutable structures (index vs filtered view)
/// both help.
Result<Scenario> RetailScenario(int num_tenants = 6, int num_slots = 12);

/// IoT telemetry: device-series lookups over a billion-row table; a mix of
/// enterprise and starter tenants.
Result<Scenario> TelemetryScenario(int num_tenants = 6, int num_slots = 12);

/// Seeded perturbation of a tenant set: each tenant's interval is redrawn
/// within [1, num_slots] and her intensity scaled by a factor in
/// [scale_lo, scale_hi]. One shared helper so the differential suites and
/// benches derive their varied workloads from the exact same draws.
std::vector<SimUser> JitterTenants(std::vector<SimUser> tenants,
                                   int num_slots, Rng& rng,
                                   double scale_lo = 0.2,
                                   double scale_hi = 3.0);

}  // namespace optshare::simdb
