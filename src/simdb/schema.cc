#include "simdb/schema.h"

#include <unordered_set>

namespace optshare::simdb {

int ColumnTypeWidth(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kString:
      return 32;  // Average inline string payload.
  }
  return 8;
}

Status Column::Validate() const {
  if (name.empty()) return Status::InvalidArgument("column name is empty");
  if (distinct_values == 0) {
    return Status::InvalidArgument("column must have at least one distinct value");
  }
  return Status::OK();
}

uint64_t TableDef::RowBytes() const {
  uint64_t bytes = 0;
  for (const auto& c : columns) {
    bytes += static_cast<uint64_t>(ColumnTypeWidth(c.type));
  }
  return bytes;
}

int TableDef::FindColumn(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Status TableDef::Validate() const {
  if (name.empty()) return Status::InvalidArgument("table name is empty");
  if (columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  std::unordered_set<std::string> seen;
  for (const auto& c : columns) {
    OPTSHARE_RETURN_NOT_OK(c.Validate());
    if (!seen.insert(c.name).second) {
      return Status::AlreadyExists("duplicate column name: " + c.name);
    }
  }
  return Status::OK();
}

}  // namespace optshare::simdb
