// Pricing model: converts instance time and storage into dollars, and
// derives the mechanism inputs — optimization costs C_j and user values
// v_ij — from the cost model. Defaults follow the paper's §7.2 setup
// (Amazon EC2 High-Memory Extra Large, 2011 on-demand pricing).
#pragma once

#include <vector>

#include "common/status.h"
#include "core/coalition.h"
#include "core/game.h"
#include "core/online_mechanism.h"
#include "simdb/cost_model.h"
#include "simdb/query.h"

namespace optshare::simdb {

/// Dollar rates of the reference instance.
struct PricingParams {
  double instance_per_hour = 0.50;     ///< EC2 m2.xlarge, 2011 on-demand.
  double storage_per_gb_month = 0.10;  ///< EBS-era storage rate.
};

/// Converts times/bytes into money.
class PricingModel {
 public:
  explicit PricingModel(PricingParams params = {}) : params_(params) {}

  /// Dollars for `seconds` of instance time.
  double InstanceDollars(double seconds) const {
    return seconds / 3600.0 * params_.instance_per_hour;
  }

  /// Dollars to keep `bytes` stored for `months`.
  double StorageDollars(uint64_t bytes, double months) const {
    return static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0) *
           params_.storage_per_gb_month * months;
  }

  /// Full cost C_j of an optimization: build instance time plus storage
  /// for the model's maintenance period (paper §5: one fixed cost covering
  /// implementation and maintenance over T).
  Result<double> OptimizationCost(const CostModel& model, int opt_id) const;

  const PricingParams& params() const { return params_; }

 private:
  PricingParams params_;
};

/// A cloud user: her workload and how often she runs it per time slot over
/// her subscription interval.
struct SimUser {
  Workload workload;
  TimeSlot start = 1;
  TimeSlot end = 1;
  double executions_per_slot = 1.0;
};

/// Streams the additive online game out of the simulated database instead
/// of materializing it: tenants are added incrementally, and each AddTenant
/// computes the tenant's per-optimization value streams once and emits them
/// as sparse SlotEvents (a kUserArrive announcement plus one kDeclareValues
/// per optimization she derives value from — most tenants derive no value
/// from most structures, so columns stay small relative to the tenant
/// universe). The events feed any OnlineMechanism; BuildAdditiveGame is now
/// a thin batch adapter over this class.
class GameStream {
 public:
  /// Computes per-optimization costs up front. `catalog`, `model` and
  /// `pricing` must outlive the stream.
  static Result<GameStream> Open(const Catalog* catalog,
                                 const CostModel* model,
                                 const PricingModel* pricing, int num_slots);

  const std::vector<double>& costs() const { return costs_; }
  int num_slots() const { return num_slots_; }
  int num_tenants() const { return num_tenants_; }

  /// Stream meta for OnlineMechanism::Begin.
  OnlineGameMeta Meta() const;

  /// Computes `tenant`'s per-optimization savings streams
  /// (v_ij(t) = (workload time without j - with j) * instance rate *
  /// executions for t in [start, end]) and appends her events to `out`.
  /// Returns her assigned user id (dense, in call order).
  Result<UserId> AddTenant(const SimUser& tenant, std::vector<SlotEvent>* out);

 private:
  GameStream(const Catalog* catalog, const CostModel* model,
             const PricingModel* pricing, int num_slots)
      : catalog_(catalog), model_(model), pricing_(pricing),
        num_slots_(num_slots) {}

  const Catalog* catalog_;
  const CostModel* model_;
  const PricingModel* pricing_;
  int num_slots_;
  std::vector<double> costs_;
  int num_tenants_ = 0;
};

/// Derives the full additive online game from the simulated database:
/// v_ij(t) = (workload time without j - with j) * instance rate *
/// executions, for t in [start_i, end_i]; C_j from build + storage cost.
/// Optimizations are taken as additive (each saves on different queries),
/// matching §7.2's treatment. Batch adapter over GameStream (results are
/// identical to the historical materialization).
Result<MultiAdditiveOnlineGame> BuildAdditiveGame(
    const Catalog& catalog, const CostModel& model, const PricingModel& pricing,
    const std::vector<SimUser>& users, int num_slots);

/// One optimization's sparse column of an additive online game: the users
/// with any positive declared value for it, with their value streams. This
/// is the representation the engine (core/mechanism.h) consumes — everyone
/// outside `users` is an implicit zero bidder.
struct SparseOnlineColumn {
  double cost = 0.0;
  Coalition users;
  std::vector<SlotValues> streams;  ///< Aligned with users.ids().
};

/// Projects optimization j's sparse column from a multi-opt game (most
/// tenants derive no value from most structures, so columns are small
/// relative to the tenant universe).
SparseOnlineColumn ProjectSparseColumn(const MultiAdditiveOnlineGame& game,
                                       OptId j);

}  // namespace optshare::simdb
