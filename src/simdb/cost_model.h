// I/O-centric cost model: estimates per-query runtime given the catalog and
// the set of available optimizations, in the style of a textbook optimizer
// cost function. Times are seconds on the reference instance.
//
// Plan selection is implicit and greedy: for each query the model uses the
// single best applicable structure (cheapest estimated time) among
// sequential scan, secondary index lookup, and materialized-view scan;
// a replica applies a latency discount multiplicatively.
#pragma once

#include <vector>

#include "common/status.h"
#include "simdb/catalog.h"
#include "simdb/query.h"

namespace optshare::simdb {

/// Hardware/service constants of the reference instance. Defaults are
/// ballpark 2011 cloud-instance figures (the paper's EC2 High-Memory XL).
struct CostModelParams {
  double seq_scan_bytes_per_sec = 100.0 * 1024 * 1024;  ///< 100 MB/s.
  double random_io_sec = 5e-3;                          ///< 5 ms seek.
  double per_row_cpu_sec = 2e-7;                        ///< Tuple overhead.
  double network_bytes_per_sec = 25.0 * 1024 * 1024;    ///< Result shipping.
  /// Latency multiplier when a replica of the table is available (< 1).
  double replica_speedup = 0.7;
  /// Months of maintenance folded into an optimization's one-time cost
  /// (the paper's period T, e.g. a month-granularity subscription).
  double maintenance_months = 12.0;
};

/// Cost model bound to a catalog.
class CostModel {
 public:
  CostModel(const Catalog* catalog, CostModelParams params = {})
      : catalog_(catalog), params_(params) {}

  /// Estimated runtime (seconds) of `query` when the optimizations whose
  /// ids appear in `available` (indices into catalog->optimizations())
  /// exist. Unknown tables/columns yield an error.
  Result<double> QueryTime(const Query& query,
                           const std::vector<int>& available) const;

  /// Total runtime of a workload (one run).
  Result<double> WorkloadTime(const Workload& workload,
                              const std::vector<int>& available) const;

  /// One-time build cost (seconds of instance time) of optimization `id`:
  /// a full scan plus per-row build work (and write-out for views).
  Result<double> BuildTimeSec(int id) const;

  /// Storage footprint (bytes) of optimization `id`.
  Result<uint64_t> StorageBytes(int id) const;

  const CostModelParams& params() const { return params_; }

 private:
  Result<double> ScanTime(const TableDef& table, const Query& query) const;

  const Catalog* catalog_;
  CostModelParams params_;
};

}  // namespace optshare::simdb
