// Query executor over the row store: sequential scan, index scan, and
// materialized-view scan with equality predicates and count/sum
// aggregation. Every operator reports the rows it touched, which is the
// executor-side quantity the cost model predicts.
#pragma once

#include <optional>
#include <vector>

#include "common/status.h"
#include "simdb/rowstore.h"

namespace optshare::simdb {

/// Concrete equality predicate: column == key.
struct EqPredicate {
  std::string column;
  int64_t key = 0;
};

/// A concrete executable query: conjunctive equality predicates over one
/// stored table, optionally summing a column instead of returning ids.
struct ExecQuery {
  std::vector<EqPredicate> predicates;
  /// When set, the result is the sum of this column over matching rows;
  /// otherwise matching row ids are returned.
  std::optional<std::string> sum_column;
};

/// Result of an execution.
struct ExecResult {
  std::vector<uint32_t> row_ids;  ///< Matching rows (empty when summing).
  double sum = 0.0;               ///< Sum when sum_column was requested.
  uint64_t matched = 0;           ///< Number of matching rows.
  uint64_t rows_touched = 0;      ///< Rows the operator inspected.
};

/// Executes by full sequential scan.
Result<ExecResult> ExecuteSeqScan(const StoredTable& table,
                                  const ExecQuery& query);

/// Executes via the hash index: the index's column must appear among the
/// predicates; residual predicates are applied to fetched rows.
Result<ExecResult> ExecuteIndexScan(const StoredTable& table,
                                    const HashIndex& index,
                                    const ExecQuery& query);

/// Executes via a materialized view: the view's (column, key) must match
/// one predicate exactly; residual predicates are applied to view rows.
Result<ExecResult> ExecuteViewScan(const StoredTable& table,
                                   const MaterializedViewData& view,
                                   const ExecQuery& query);

}  // namespace optshare::simdb
