#include "simdb/advisor.h"

#include <algorithm>
#include <map>
#include <set>

namespace optshare::simdb {
namespace {

/// Period savings of one user for a hypothetical optimization: time saved
/// per run times executions per slot times interval length, in dollars.
Result<double> UserPeriodSavings(const CostModel& model,
                                 const PricingModel& pricing,
                                 const SimUser& user, int opt_id) {
  Result<double> base = model.WorkloadTime(user.workload, {});
  if (!base.ok()) return base.status();
  Result<double> with = model.WorkloadTime(user.workload, {opt_id});
  if (!with.ok()) return with.status();
  const double slots = static_cast<double>(user.end - user.start + 1);
  return pricing.InstanceDollars(std::max(0.0, *base - *with)) *
         user.executions_per_slot * slots;
}

}  // namespace

Result<std::vector<Proposal>> ProposeOptimizations(
    const Catalog& catalog, const CostModel& model,
    const PricingModel& pricing, const std::vector<SimUser>& users,
    const AdvisorOptions& options) {
  // Collect filtered (table, column, selectivity) triples and touched
  // tables across all workloads.
  std::set<std::pair<std::string, std::string>> filtered;
  std::map<std::pair<std::string, std::string>, double> min_selectivity;
  std::set<std::string> touched_tables;
  for (const auto& user : users) {
    OPTSHARE_RETURN_NOT_OK(user.workload.Validate());
    for (const auto& entry : user.workload.entries) {
      Result<const TableDef*> table = catalog.GetTable(entry.query.table);
      if (!table.ok()) return table.status();
      touched_tables.insert(entry.query.table);
      for (const auto& pred : entry.query.predicates) {
        if ((*table)->FindColumn(pred.column) < 0) {
          return Status::NotFound("no column " + pred.column + " in " +
                                  entry.query.table);
        }
        const auto key = std::make_pair(entry.query.table, pred.column);
        filtered.insert(key);
        auto it = min_selectivity.find(key);
        if (it == min_selectivity.end() || pred.selectivity < it->second) {
          min_selectivity[key] = pred.selectivity;
        }
      }
    }
  }

  // Candidate specs: index + view per filtered column, replica per table.
  std::vector<OptimizationSpec> candidates;
  for (const auto& [table, column] : filtered) {
    OptimizationSpec index;
    index.kind = OptKind::kSecondaryIndex;
    index.table = table;
    index.column = column;
    candidates.push_back(index);

    OptimizationSpec view;
    view.kind = OptKind::kMaterializedView;
    view.table = table;
    view.column = column;
    view.view_selectivity = min_selectivity[{table, column}];
    candidates.push_back(view);
  }
  if (options.propose_replicas) {
    for (const auto& table : touched_tables) {
      OptimizationSpec replica;
      replica.kind = OptKind::kReplica;
      replica.table = table;
      candidates.push_back(replica);
    }
  }

  // Score candidates in a scratch catalog (so the caller's catalog is not
  // mutated during evaluation).
  Catalog scratch;
  for (const auto& t : catalog.tables()) {
    OPTSHARE_RETURN_NOT_OK(scratch.AddTable(t));
  }
  CostModel scratch_model(&scratch, model.params());

  std::vector<Proposal> proposals;
  for (const auto& spec : candidates) {
    Result<int> id = scratch.AddOptimization(spec);
    if (!id.ok()) return id.status();
    Proposal p;
    p.spec = spec;
    Result<double> cost = pricing.OptimizationCost(scratch_model, *id);
    if (!cost.ok()) return cost.status();
    p.cost = *cost;
    for (const auto& user : users) {
      Result<double> savings =
          UserPeriodSavings(scratch_model, pricing, user, *id);
      if (!savings.ok()) return savings.status();
      if (*savings > 0.0) {
        p.beneficiaries.Insert(
            static_cast<UserId>(p.user_savings.size()));
      }
      p.user_savings.push_back(*savings);
      p.total_savings += *savings;
    }
    if (p.cost > 0.0 && p.BenefitRatio() >= options.min_benefit_ratio) {
      proposals.push_back(std::move(p));
    }
  }

  std::sort(proposals.begin(), proposals.end(),
            [](const Proposal& a, const Proposal& b) {
              if (a.BenefitRatio() != b.BenefitRatio()) {
                return a.BenefitRatio() > b.BenefitRatio();
              }
              return a.spec.DisplayName() < b.spec.DisplayName();
            });
  if (options.max_proposals > 0 &&
      static_cast<int>(proposals.size()) > options.max_proposals) {
    proposals.resize(static_cast<size_t>(options.max_proposals));
  }
  return proposals;
}

Result<std::vector<double>> ProposalUserSavings(
    const Catalog& catalog, const CostModel& model,
    const PricingModel& pricing, const OptimizationSpec& spec,
    const std::vector<SimUser>& users) {
  Catalog scratch;
  for (const auto& t : catalog.tables()) {
    OPTSHARE_RETURN_NOT_OK(scratch.AddTable(t));
  }
  Result<int> id = scratch.AddOptimization(spec);
  if (!id.ok()) return id.status();
  CostModel scratch_model(&scratch, model.params());
  std::vector<double> savings;
  savings.reserve(users.size());
  for (const auto& user : users) {
    Result<double> one = UserPeriodSavings(scratch_model, pricing, user, *id);
    if (!one.ok()) return one.status();
    savings.push_back(*one);
  }
  return savings;
}

Result<AdditiveOfflineGame> GameFromProposals(
    const std::vector<Proposal>& proposals) {
  AdditiveOfflineGame game;
  if (proposals.empty()) {
    return Status::FailedPrecondition("no proposals to build a game from");
  }
  const size_t m = proposals.front().user_savings.size();
  for (const auto& p : proposals) {
    if (p.user_savings.size() != m) {
      return Status::InvalidArgument(
          "proposals disagree on the number of users");
    }
    game.costs.push_back(p.cost);
  }
  for (size_t i = 0; i < m; ++i) {
    std::vector<double> row;
    row.reserve(proposals.size());
    for (const auto& p : proposals) row.push_back(p.user_savings[i]);
    game.bids.push_back(std::move(row));
  }
  OPTSHARE_RETURN_NOT_OK(game.Validate());
  return game;
}

}  // namespace optshare::simdb
