// Optimization advisor: proposes the candidate optimization set J that the
// mechanisms then select from and price (the paper assumes J exists; a real
// cloud derives it from observed workloads, the way index advisors do).
//
// For every (table, column) pair filtered by any user's workload, the
// advisor considers a secondary index and a materialized view (with the
// view selectivity matched to the predicate), plus one replica per touched
// table; it scores each candidate by total estimated workload savings per
// period against its cost and returns those above a benefit threshold.
#pragma once

#include <vector>

#include "common/status.h"
#include "core/coalition.h"
#include "simdb/cost_model.h"
#include "simdb/pricing.h"

namespace optshare::simdb {

/// One advisor proposal.
struct Proposal {
  OptimizationSpec spec;
  double cost = 0.0;            ///< C_j from the pricing model.
  double total_savings = 0.0;   ///< Summed per-period user savings.
  /// Per-user per-period dollar savings (aligned with the users argument).
  std::vector<double> user_savings;
  /// Users with positive savings — the sparse game column this proposal
  /// induces. Everyone else is an implicit zero bidder, which the engine
  /// (core/mechanism.h) counts without materializing.
  Coalition beneficiaries;

  /// Benefit ratio used for ranking.
  double BenefitRatio() const {
    return cost > 0.0 ? total_savings / cost : 0.0;
  }
};

/// Advisor options.
struct AdvisorOptions {
  /// Keep only proposals whose total savings exceed this fraction of cost.
  double min_benefit_ratio = 0.1;
  /// Propose replicas (off by default: they help every query a little,
  /// which inflates J with weak candidates).
  bool propose_replicas = false;
  /// Cap on proposals (highest benefit first; 0 = unlimited).
  int max_proposals = 0;
};

/// Analyzes the users' workloads against the catalog and proposes
/// optimizations. The catalog's existing optimization list is ignored;
/// proposals are returned ranked by descending benefit ratio.
Result<std::vector<Proposal>> ProposeOptimizations(
    const Catalog& catalog, const CostModel& model,
    const PricingModel& pricing, const std::vector<SimUser>& users,
    const AdvisorOptions& options = {});

/// Per-period savings of a batch of users for one proposal spec, scored
/// exactly as ProposeOptimizations scores it (one scratch catalog for the
/// whole batch, non-negative). Used by streaming sessions to admit tenants
/// into structures proposed before they arrived.
Result<std::vector<double>> ProposalUserSavings(const Catalog& catalog,
                                                const CostModel& model,
                                                const PricingModel& pricing,
                                                const OptimizationSpec& spec,
                                                const std::vector<SimUser>& users);

/// Registers the proposals in `catalog` and builds the additive offline
/// game for one period: bids[i][j] = user i's per-period savings from
/// proposal j, costs[j] = proposal cost. (Offline because the advisor runs
/// once per period; use BuildAdditiveGame for the online formulation.)
Result<AdditiveOfflineGame> GameFromProposals(
    const std::vector<Proposal>& proposals);

}  // namespace optshare::simdb
