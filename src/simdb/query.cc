#include "simdb/query.h"

namespace optshare::simdb {

double Query::CombinedSelectivity() const {
  double s = 1.0;
  for (const auto& p : predicates) s *= p.selectivity;
  return s;
}

Status Query::Validate() const {
  if (table.empty()) return Status::InvalidArgument("query has no table");
  for (const auto& p : predicates) {
    if (p.column.empty()) {
      return Status::InvalidArgument("predicate has no column");
    }
    if (!(p.selectivity > 0.0) || p.selectivity > 1.0) {
      return Status::InvalidArgument("selectivity must be in (0, 1]");
    }
  }
  return Status::OK();
}

Status Workload::Validate() const {
  for (const auto& e : entries) {
    OPTSHARE_RETURN_NOT_OK(e.query.Validate());
    if (!(e.frequency > 0.0)) {
      return Status::InvalidArgument("query frequency must be positive");
    }
  }
  return Status::OK();
}

}  // namespace optshare::simdb
