// Logical schema of the simulated cloud database: tables, columns, and the
// physical statistics (row counts, widths, distinct values) the cost model
// consumes. The simulator does not store tuples; it stores statistics, the
// way a query optimizer sees a database.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace optshare::simdb {

/// Column data types (affects width and index key size).
enum class ColumnType { kInt64, kDouble, kString };

/// Bytes a value of this type occupies in a row (strings use an average
/// inline width).
int ColumnTypeWidth(ColumnType type);

/// One column with the statistics a cost model needs.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Number of distinct values (for equality selectivity = 1/distinct).
  uint64_t distinct_values = 1;

  Status Validate() const;
};

/// One table: columns plus cardinality.
struct TableDef {
  std::string name;
  std::vector<Column> columns;
  uint64_t row_count = 0;

  /// Width of one row in bytes (sum of column widths).
  uint64_t RowBytes() const;
  /// Total table size in bytes.
  uint64_t TotalBytes() const { return row_count * RowBytes(); }
  /// Index of a column by name, or -1.
  int FindColumn(const std::string& column_name) const;

  Status Validate() const;
};

}  // namespace optshare::simdb
