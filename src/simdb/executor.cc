#include "simdb/executor.h"

namespace optshare::simdb {
namespace {

/// Resolves predicate/sum column names to indices once per execution.
struct BoundQuery {
  std::vector<std::pair<size_t, int64_t>> predicates;  // (column idx, key).
  int sum_column = -1;
};

Result<BoundQuery> Bind(const StoredTable& table, const ExecQuery& query) {
  BoundQuery bound;
  for (const auto& p : query.predicates) {
    const int col = table.schema().FindColumn(p.column);
    if (col < 0) return Status::NotFound("no column " + p.column);
    bound.predicates.emplace_back(static_cast<size_t>(col), p.key);
  }
  if (query.sum_column.has_value()) {
    bound.sum_column = table.schema().FindColumn(*query.sum_column);
    if (bound.sum_column < 0) {
      return Status::NotFound("no column " + *query.sum_column);
    }
  }
  return bound;
}

bool RowMatches(const StoredTable& table, const BoundQuery& bound,
                uint32_t row) {
  for (const auto& [col, key] : bound.predicates) {
    if (table.At(row, col) != key) return false;
  }
  return true;
}

void Emit(const StoredTable& table, const BoundQuery& bound, uint32_t row,
          ExecResult* out) {
  ++out->matched;
  if (bound.sum_column >= 0) {
    out->sum += static_cast<double>(
        table.At(row, static_cast<size_t>(bound.sum_column)));
  } else {
    out->row_ids.push_back(row);
  }
}

}  // namespace

Result<ExecResult> ExecuteSeqScan(const StoredTable& table,
                                  const ExecQuery& query) {
  Result<BoundQuery> bound = Bind(table, query);
  if (!bound.ok()) return bound.status();
  ExecResult out;
  const uint32_t n = static_cast<uint32_t>(table.num_rows());
  out.rows_touched = n;
  for (uint32_t r = 0; r < n; ++r) {
    if (RowMatches(table, *bound, r)) Emit(table, *bound, r, &out);
  }
  return out;
}

Result<ExecResult> ExecuteIndexScan(const StoredTable& table,
                                    const HashIndex& index,
                                    const ExecQuery& query) {
  Result<BoundQuery> bound = Bind(table, query);
  if (!bound.ok()) return bound.status();

  // Find the predicate served by the index.
  int64_t index_key = 0;
  bool found = false;
  for (const auto& [col, key] : bound->predicates) {
    if (static_cast<int>(col) == index.column_index()) {
      index_key = key;
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::FailedPrecondition(
        "query has no predicate on the indexed column");
  }

  ExecResult out;
  for (uint32_t r : index.Lookup(index_key)) {
    ++out.rows_touched;
    if (RowMatches(table, *bound, r)) Emit(table, *bound, r, &out);
  }
  return out;
}

Result<ExecResult> ExecuteViewScan(const StoredTable& table,
                                   const MaterializedViewData& view,
                                   const ExecQuery& query) {
  Result<BoundQuery> bound = Bind(table, query);
  if (!bound.ok()) return bound.status();

  bool found = false;
  for (const auto& [col, key] : bound->predicates) {
    if (static_cast<int>(col) == view.column_index() && key == view.key()) {
      found = true;
      break;
    }
  }
  if (!found) {
    return Status::FailedPrecondition(
        "query predicates do not cover the view's filter");
  }

  ExecResult out;
  for (uint32_t r : view.rows()) {
    ++out.rows_touched;
    if (RowMatches(table, *bound, r)) Emit(table, *bound, r, &out);
  }
  return out;
}

}  // namespace optshare::simdb
