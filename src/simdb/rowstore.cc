#include "simdb/rowstore.h"

#include <cmath>

namespace optshare::simdb {
namespace {

/// Samples Zipf(s = 1.1) over [0, n) by inverse-CDF on a precomputed
/// cumulative table (n is bounded by the column's distinct_values; callers
/// keep generated tables small).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s = 1.1) : cdf_(n) {
    double sum = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (uint64_t k = 0; k < n; ++k) cdf_[k] /= sum;
  }

  int64_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search the CDF.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int64_t>(lo);
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Result<StoredTable> StoredTable::Generate(
    const TableDef& table, const std::vector<ColumnGenSpec>& specs, Rng& rng) {
  OPTSHARE_RETURN_NOT_OK(table.Validate());
  if (table.row_count > 50'000'000) {
    return Status::InvalidArgument(
        "refusing to materialize more than 50M rows; use the cost model for "
        "larger scales");
  }
  StoredTable stored;
  stored.schema_ = table;
  stored.columns_.resize(table.columns.size());

  for (size_t c = 0; c < table.columns.size(); ++c) {
    const uint64_t distinct = table.columns[c].distinct_values;
    const ColumnGenSpec spec =
        c < specs.size() ? specs[c] : ColumnGenSpec{};
    auto& data = stored.columns_[c];
    data.reserve(table.row_count);
    if (spec.distribution == ValueDistribution::kZipf) {
      ZipfSampler zipf(distinct);
      for (uint64_t r = 0; r < table.row_count; ++r) {
        data.push_back(zipf.Sample(rng));
      }
    } else {
      for (uint64_t r = 0; r < table.row_count; ++r) {
        data.push_back(rng.UniformInt(0, static_cast<int64_t>(distinct) - 1));
      }
    }
  }
  return stored;
}

const std::vector<uint32_t> HashIndex::kEmpty{};

Result<HashIndex> HashIndex::Build(const StoredTable& table,
                                   const std::string& column) {
  const int col = table.schema().FindColumn(column);
  if (col < 0) return Status::NotFound("no column " + column);
  HashIndex index;
  index.column_index_ = col;
  const auto& data = table.Column(static_cast<size_t>(col));
  for (uint32_t r = 0; r < static_cast<uint32_t>(data.size()); ++r) {
    index.buckets_[data[r]].push_back(r);
  }
  return index;
}

const std::vector<uint32_t>& HashIndex::Lookup(int64_t key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? kEmpty : it->second;
}

Result<MaterializedViewData> MaterializedViewData::Build(
    const StoredTable& table, const std::string& column, int64_t key) {
  const int col = table.schema().FindColumn(column);
  if (col < 0) return Status::NotFound("no column " + column);
  MaterializedViewData view;
  view.column_index_ = col;
  view.key_ = key;
  const auto& data = table.Column(static_cast<size_t>(col));
  for (uint32_t r = 0; r < static_cast<uint32_t>(data.size()); ++r) {
    if (data[r] == key) view.rows_.push_back(r);
  }
  return view;
}

}  // namespace optshare::simdb
