// Query and workload model. A query is a predicate scan (optionally
// aggregating) over one table; a workload is a weighted bag of queries run
// some number of times per slot. This is the level of detail the paper's
// economy operates at: what matters is how much time an optimization saves
// each workload.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace optshare::simdb {

/// Equality/range predicate with an estimated selectivity.
struct Predicate {
  std::string column;
  /// Fraction of rows matching, in (0, 1].
  double selectivity = 1.0;
};

/// One query: scan `table`, apply `predicates` (conjunctive), optionally
/// aggregate the result (aggregation makes the output tiny; otherwise
/// matching rows are shipped to the client).
struct Query {
  std::string table;
  std::vector<Predicate> predicates;
  bool aggregate = false;

  /// Combined selectivity under independence.
  double CombinedSelectivity() const;

  Status Validate() const;
};

/// A user's workload: queries with per-execution frequencies.
struct Workload {
  struct Entry {
    Query query;
    /// Executions of this query per workload run.
    double frequency = 1.0;
  };
  std::vector<Entry> entries;

  Status Validate() const;
};

}  // namespace optshare::simdb
