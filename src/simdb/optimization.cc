#include "simdb/optimization.h"

namespace optshare::simdb {

const char* OptKindName(OptKind kind) {
  switch (kind) {
    case OptKind::kSecondaryIndex:
      return "index";
    case OptKind::kMaterializedView:
      return "matview";
    case OptKind::kReplica:
      return "replica";
  }
  return "?";
}

std::string OptimizationSpec::DisplayName() const {
  if (!label.empty()) return label;
  std::string out(OptKindName(kind));
  out += "(";
  out += table;
  if (kind != OptKind::kReplica) {
    out += ".";
    out += column;
  }
  out += ")";
  return out;
}

}  // namespace optshare::simdb
