// Catalog: the named collection of tables shared by all cloud users, plus
// the candidate physical optimizations defined over them.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "simdb/optimization.h"
#include "simdb/schema.h"

namespace optshare::simdb {

/// Shared-dataset catalog. Tables are registered once; optimizations refer
/// to tables by name and are validated against the schema.
class Catalog {
 public:
  /// Registers a table; rejects duplicates and invalid definitions.
  Status AddTable(TableDef table);

  /// Looks up a table by name.
  Result<const TableDef*> GetTable(const std::string& name) const;

  /// Registers a candidate optimization after validating its references.
  /// Returns the assigned optimization id.
  Result<int> AddOptimization(OptimizationSpec spec);

  const std::vector<TableDef>& tables() const { return tables_; }
  const std::vector<OptimizationSpec>& optimizations() const {
    return optimizations_;
  }
  int num_optimizations() const {
    return static_cast<int>(optimizations_.size());
  }

 private:
  Status ValidateSpec(const OptimizationSpec& spec) const;

  std::vector<TableDef> tables_;
  std::vector<OptimizationSpec> optimizations_;
};

}  // namespace optshare::simdb
