#include "simdb/pricing.h"

namespace optshare::simdb {

Result<double> PricingModel::OptimizationCost(const CostModel& model,
                                              int opt_id) const {
  Result<double> build = model.BuildTimeSec(opt_id);
  if (!build.ok()) return build.status();
  Result<uint64_t> bytes = model.StorageBytes(opt_id);
  if (!bytes.ok()) return bytes.status();
  return InstanceDollars(*build) +
         StorageDollars(*bytes, model.params().maintenance_months);
}

Result<GameStream> GameStream::Open(const Catalog* catalog,
                                    const CostModel* model,
                                    const PricingModel* pricing,
                                    int num_slots) {
  if (num_slots < 1) {
    return Status::InvalidArgument("game must have at least one slot");
  }
  GameStream stream(catalog, model, pricing, num_slots);
  const int n = catalog->num_optimizations();
  stream.costs_.reserve(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    Result<double> cost = pricing->OptimizationCost(*model, j);
    if (!cost.ok()) return cost.status();
    stream.costs_.push_back(*cost);
  }
  return stream;
}

OnlineGameMeta GameStream::Meta() const {
  OnlineGameMeta meta;
  meta.kind = GameKind::kMultiAdditiveOnline;
  meta.num_slots = num_slots_;
  meta.costs = costs_;
  return meta;
}

Result<UserId> GameStream::AddTenant(const SimUser& tenant,
                                     std::vector<SlotEvent>* out) {
  if (tenant.start < 1 || tenant.end < tenant.start ||
      tenant.end > num_slots_) {
    return Status::InvalidArgument("user interval outside game horizon");
  }
  if (!(tenant.executions_per_slot >= 0.0)) {
    return Status::InvalidArgument("executions per slot must be >= 0");
  }
  Result<double> base = model_->WorkloadTime(tenant.workload, {});
  if (!base.ok()) return base.status();

  const UserId id = num_tenants_++;
  out->push_back(SlotEvent::UserArrive(id, tenant.start, tenant.end));
  const int n = static_cast<int>(costs_.size());
  for (int j = 0; j < n; ++j) {
    Result<double> with_j = model_->WorkloadTime(tenant.workload, {j});
    if (!with_j.ok()) return with_j.status();
    const double saved_sec = *base - *with_j;
    const double dollars_per_slot =
        pricing_->InstanceDollars(saved_sec) * tenant.executions_per_slot;
    if (dollars_per_slot != 0.0) {
      out->push_back(SlotEvent::DeclareValues(
          id, j,
          SlotValues::Constant(tenant.start, tenant.end, dollars_per_slot)));
    }
  }
  return id;
}

Result<MultiAdditiveOnlineGame> BuildAdditiveGame(
    const Catalog& catalog, const CostModel& model, const PricingModel& pricing,
    const std::vector<SimUser>& users, int num_slots) {
  Result<GameStream> stream = GameStream::Open(&catalog, &model, &pricing,
                                               num_slots);
  if (!stream.ok()) return stream.status();

  SlotEventLog log;
  log.kind = GameKind::kMultiAdditiveOnline;
  log.num_slots = num_slots;
  log.costs = stream->costs();
  log.events.resize(static_cast<size_t>(num_slots));
  for (const auto& user : users) {
    Result<UserId> id = stream->AddTenant(user, &log.events[0]);
    if (!id.ok()) return id.status();
  }
  return MaterializeAdditiveLog(log);
}

SparseOnlineColumn ProjectSparseColumn(const MultiAdditiveOnlineGame& game,
                                       OptId j) {
  SparseOnlineColumn column;
  column.cost = game.costs[static_cast<size_t>(j)];
  for (UserId i = 0; i < game.num_users(); ++i) {
    const SlotValues& stream =
        game.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
    if (stream.Total() > 0.0) {
      column.users.Insert(i);
      column.streams.push_back(stream);
    }
  }
  return column;
}

}  // namespace optshare::simdb
