#include "simdb/pricing.h"

namespace optshare::simdb {

Result<double> PricingModel::OptimizationCost(const CostModel& model,
                                              int opt_id) const {
  Result<double> build = model.BuildTimeSec(opt_id);
  if (!build.ok()) return build.status();
  Result<uint64_t> bytes = model.StorageBytes(opt_id);
  if (!bytes.ok()) return bytes.status();
  return InstanceDollars(*build) +
         StorageDollars(*bytes, model.params().maintenance_months);
}

Result<MultiAdditiveOnlineGame> BuildAdditiveGame(
    const Catalog& catalog, const CostModel& model, const PricingModel& pricing,
    const std::vector<SimUser>& users, int num_slots) {
  MultiAdditiveOnlineGame game;
  game.num_slots = num_slots;

  const int n = catalog.num_optimizations();
  for (int j = 0; j < n; ++j) {
    Result<double> cost = pricing.OptimizationCost(model, j);
    if (!cost.ok()) return cost.status();
    game.costs.push_back(*cost);
  }

  for (const auto& user : users) {
    if (user.start < 1 || user.end < user.start || user.end > num_slots) {
      return Status::InvalidArgument("user interval outside game horizon");
    }
    if (!(user.executions_per_slot >= 0.0)) {
      return Status::InvalidArgument("executions per slot must be >= 0");
    }
    Result<double> base = model.WorkloadTime(user.workload, {});
    if (!base.ok()) return base.status();

    std::vector<SlotValues> row;
    row.reserve(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      Result<double> with_j = model.WorkloadTime(user.workload, {j});
      if (!with_j.ok()) return with_j.status();
      const double saved_sec = *base - *with_j;
      const double dollars_per_slot =
          pricing.InstanceDollars(saved_sec) * user.executions_per_slot;
      row.push_back(
          SlotValues::Constant(user.start, user.end, dollars_per_slot));
    }
    game.bids.push_back(std::move(row));
  }

  Status st = game.Validate();
  if (!st.ok()) return st;
  return game;
}

SparseOnlineColumn ProjectSparseColumn(const MultiAdditiveOnlineGame& game,
                                       OptId j) {
  SparseOnlineColumn column;
  column.cost = game.costs[static_cast<size_t>(j)];
  for (UserId i = 0; i < game.num_users(); ++i) {
    const SlotValues& stream =
        game.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
    if (stream.Total() > 0.0) {
      column.users.Insert(i);
      column.streams.push_back(stream);
    }
  }
  return column;
}

}  // namespace optshare::simdb
