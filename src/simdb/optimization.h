// Candidate physical optimizations over the shared datasets (paper §1, §3):
// secondary indexes, materialized views, and replicas — the "binary
// optimizations" the mechanisms select and price.
#pragma once

#include <string>

namespace optshare::simdb {

/// Kind of physical structure.
enum class OptKind {
  kSecondaryIndex,    ///< B-tree on (table, column).
  kMaterializedView,  ///< Precomputed filtered projection of a table.
  kReplica,           ///< Extra copy in another zone (cuts access latency).
};

const char* OptKindName(OptKind kind);

/// Specification of one candidate optimization.
struct OptimizationSpec {
  OptKind kind = OptKind::kSecondaryIndex;
  std::string table;   ///< Base table name.
  std::string column;  ///< Indexed / view-filter column (unused by replica).
  /// For materialized views: fraction of base rows the view retains.
  double view_selectivity = 1.0;
  /// Human-readable label for reports.
  std::string label;

  /// Canonical label when none was provided, e.g. "idx(particles.haloId)".
  std::string DisplayName() const;
};

}  // namespace optshare::simdb
