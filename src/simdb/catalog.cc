#include "simdb/catalog.h"

namespace optshare::simdb {

Status Catalog::AddTable(TableDef table) {
  OPTSHARE_RETURN_NOT_OK(table.Validate());
  for (const auto& t : tables_) {
    if (t.name == table.name) {
      return Status::AlreadyExists("table already registered: " + table.name);
    }
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return &t;
  }
  return Status::NotFound("no such table: " + name);
}

Status Catalog::ValidateSpec(const OptimizationSpec& spec) const {
  Result<const TableDef*> table = GetTable(spec.table);
  if (!table.ok()) return table.status();
  if (spec.kind != OptKind::kReplica) {
    if ((*table)->FindColumn(spec.column) < 0) {
      return Status::NotFound("no column " + spec.column + " in table " +
                              spec.table);
    }
  }
  if (spec.kind == OptKind::kMaterializedView) {
    if (!(spec.view_selectivity > 0.0) || spec.view_selectivity > 1.0) {
      return Status::InvalidArgument(
          "materialized view selectivity must be in (0, 1]");
    }
  }
  return Status::OK();
}

Result<int> Catalog::AddOptimization(OptimizationSpec spec) {
  OPTSHARE_RETURN_NOT_OK(ValidateSpec(spec));
  optimizations_.push_back(std::move(spec));
  return static_cast<int>(optimizations_.size()) - 1;
}

}  // namespace optshare::simdb
