#include "strategy/player.h"

#include <algorithm>
#include <cmath>

namespace optshare::strategy {
namespace {

/// The declared intensity of a free-rider: small enough that the advisor
/// scores her savings as negligible (she is never a candidate, never
/// charged), large enough to stay a well-formed positive workload.
constexpr double kFreeRideScale = 1e-9;

class TruthfulPlayer final : public StrategyPlayer {
 public:
  std::string name() const override { return "truthful"; }
  StrategistMove Declare(const simdb::SimUser& truth,
                         int /*slots_per_period*/) const override {
    return {{{truth, truth}}, std::nullopt};
  }
};

class MisreportPlayer final : public StrategyPlayer {
 public:
  explicit MisreportPlayer(double factor) : factor_(factor) {}
  std::string name() const override {
    return "misreport:" + std::to_string(factor_);
  }
  StrategistMove Declare(const simdb::SimUser& truth,
                         int /*slots_per_period*/) const override {
    simdb::SimUser declared = truth;
    declared.executions_per_slot *= factor_;
    return {{{declared, truth}}, std::nullopt};
  }

 private:
  double factor_;
};

class SybilPlayer final : public StrategyPlayer {
 public:
  explicit SybilPlayer(int identities) : identities_(identities) {}
  std::string name() const override {
    return "sybil:" + std::to_string(identities_);
  }
  StrategistMove Declare(const simdb::SimUser& truth,
                         int /*slots_per_period*/) const override {
    StrategistMove move;
    simdb::SimUser split = truth;
    // The workload is genuinely split: each identity runs (and declares)
    // 1/K of the executions. The lie is the identity count, not the demand.
    split.executions_per_slot =
        truth.executions_per_slot / static_cast<double>(identities_);
    for (int k = 0; k < identities_; ++k) {
      move.identities.push_back({split, split});
    }
    return move;
  }

 private:
  int identities_;
};

class DelayPlayer final : public StrategyPlayer {
 public:
  explicit DelayPlayer(int delay) : delay_(delay) {}
  std::string name() const override {
    return "delay:" + std::to_string(delay_);
  }
  StrategistMove Declare(const simdb::SimUser& truth,
                         int /*slots_per_period*/) const override {
    simdb::SimUser late = truth;
    late.start = std::min<TimeSlot>(truth.start + delay_, truth.end);
    // She really does show up late — value before her arrival is forfeited
    // (that is the gamble: skip the funding slots, keep the access).
    return {{{late, late}}, std::nullopt};
  }

 private:
  int delay_;
};

class FreeRidePlayer final : public StrategyPlayer {
 public:
  std::string name() const override { return "freeride"; }
  StrategistMove Declare(const simdb::SimUser& truth,
                         int /*slots_per_period*/) const override {
    simdb::SimUser declared = truth;
    declared.executions_per_slot *= kFreeRideScale;
    return {{{declared, truth}}, std::nullopt};
  }
};

}  // namespace

std::unique_ptr<StrategyPlayer> MakeTruthfulPlayer() {
  return std::make_unique<TruthfulPlayer>();
}

std::unique_ptr<StrategyPlayer> MakeMisreportPlayer(double factor) {
  return std::make_unique<MisreportPlayer>(factor);
}

std::unique_ptr<StrategyPlayer> MakeSybilPlayer(int identities) {
  return std::make_unique<SybilPlayer>(identities);
}

std::unique_ptr<StrategyPlayer> MakeDelayPlayer(int delay) {
  return std::make_unique<DelayPlayer>(delay);
}

std::unique_ptr<StrategyPlayer> MakeFreeRidePlayer() {
  return std::make_unique<FreeRidePlayer>();
}

Result<std::unique_ptr<StrategyPlayer>> MakePlayer(const std::string& spec) {
  const size_t colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  const auto want_no_arg = [&](const char* name) {
    return Status::InvalidArgument("player \"" + std::string(name) +
                                   "\" takes no parameter");
  };
  if (kind == "truthful") {
    if (!arg.empty()) return want_no_arg("truthful");
    return MakeTruthfulPlayer();
  }
  if (kind == "freeride") {
    if (!arg.empty()) return want_no_arg("freeride");
    return MakeFreeRidePlayer();
  }
  if (kind == "misreport") {
    char* end = nullptr;
    const double factor = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end != arg.c_str() + arg.size() || !(factor > 0.0) ||
        !std::isfinite(factor)) {
      return Status::InvalidArgument(
          "player \"misreport\" wants a positive factor, e.g. "
          "\"misreport:0.25\"");
    }
    return MakeMisreportPlayer(factor);
  }
  if (kind == "sybil" || kind == "delay") {
    char* end = nullptr;
    const long value = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || end != arg.c_str() + arg.size() || value < 1 ||
        value > 1000) {
      return Status::InvalidArgument("player \"" + kind +
                                     "\" wants an integer in [1, 1000], "
                                     "e.g. \"" +
                                     kind + ":3\"");
    }
    return kind == "sybil" ? MakeSybilPlayer(static_cast<int>(value))
                           : MakeDelayPlayer(static_cast<int>(value));
  }
  return Status::InvalidArgument(
      "unknown player \"" + kind +
      "\" (want truthful, misreport:<factor>, sybil:<k>, delay:<slots> or "
      "freeride)");
}

std::vector<std::string> DefaultAttackSpecs() {
  return {"misreport:0.25", "sybil:3", "delay:3", "freeride"};
}

}  // namespace optshare::strategy
