#include "strategy/trace.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "simdb/scenarios.h"

namespace optshare::strategy {
namespace {

constexpr double kPi = 3.14159265358979323846;

// -- Strict-schema helpers (the wire-protocol parsing style) ----------------

Status CheckObject(const JsonValue& v, const char* ctx) {
  if (!v.is_object()) {
    return Status::InvalidArgument(std::string(ctx) + ": must be an object");
  }
  return Status::OK();
}

Status CheckFields(const JsonValue& v,
                   std::initializer_list<const char*> allowed,
                   const char* ctx) {
  for (const auto& [key, value] : v.AsObject()) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(std::string(ctx) + ": unknown field \"" +
                                     key + "\"");
    }
  }
  return Status::OK();
}

Result<double> GetNumber(const JsonValue& v, const char* key,
                         const char* ctx) {
  return JsonNumberField(v, key, ctx);
}

Result<int> GetInt(const JsonValue& v, const char* key, const char* ctx) {
  Result<int64_t> number = JsonIntField(v, key, ctx);
  if (!number.ok()) return number.status();
  if (*number < std::numeric_limits<int>::min() ||
      *number > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument(std::string(ctx) + ": field \"" + key +
                                   "\" must be an integer");
  }
  return static_cast<int>(*number);
}

Result<std::string> GetString(const JsonValue& v, const char* key,
                              const char* ctx) {
  return JsonStringField(v, key, ctx);
}

std::string_view ColumnTypeName(simdb::ColumnType type) {
  switch (type) {
    case simdb::ColumnType::kInt64:
      return "int64";
    case simdb::ColumnType::kDouble:
      return "double";
    case simdb::ColumnType::kString:
      return "string";
  }
  return "int64";
}

// -- Workload / table documents (same field shapes as the wire protocol) ----

JsonValue ToJson(const simdb::Workload& workload) {
  JsonValue entries = JsonValue::MakeArray();
  entries.Reserve(workload.entries.size());
  for (const simdb::Workload::Entry& entry : workload.entries) {
    JsonValue query = JsonValue::MakeObject();
    query.Set("table", JsonValue::Str(entry.query.table));
    query.Set("aggregate", JsonValue::Bool(entry.query.aggregate));
    JsonValue predicates = JsonValue::MakeArray();
    predicates.Reserve(entry.query.predicates.size());
    for (const simdb::Predicate& pred : entry.query.predicates) {
      JsonValue p = JsonValue::MakeObject();
      p.Set("column", JsonValue::Str(pred.column));
      p.Set("selectivity", JsonValue::Number(pred.selectivity));
      predicates.Append(std::move(p));
    }
    query.Set("predicates", std::move(predicates));
    JsonValue e = JsonValue::MakeObject();
    e.Set("frequency", JsonValue::Number(entry.frequency));
    e.Set("query", std::move(query));
    entries.Append(std::move(e));
  }
  return entries;
}

Result<simdb::Workload> WorkloadFromJson(const JsonValue& v,
                                         const char* ctx) {
  if (!v.is_array()) {
    return Status::InvalidArgument(std::string(ctx) +
                                   ": a workload must be an array of entries");
  }
  simdb::Workload workload;
  for (const JsonValue& entry_v : v.AsArray()) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(entry_v, "workload entry"));
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(entry_v, {"frequency", "query"}, "workload entry"));
    simdb::Workload::Entry entry;
    Result<double> frequency =
        GetNumber(entry_v, "frequency", "workload entry");
    if (!frequency.ok()) return frequency.status();
    entry.frequency = *frequency;
    const JsonValue* query_v = entry_v.Find("query");
    if (query_v == nullptr) {
      return Status::InvalidArgument("workload entry: missing \"query\"");
    }
    OPTSHARE_RETURN_NOT_OK(CheckObject(*query_v, "query"));
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(*query_v, {"table", "aggregate", "predicates"}, "query"));
    Result<std::string> table = GetString(*query_v, "table", "query");
    if (!table.ok()) return table.status();
    entry.query.table = std::move(*table);
    Result<bool> aggregate = JsonBoolField(*query_v, "aggregate", "query");
    if (!aggregate.ok()) return aggregate.status();
    entry.query.aggregate = *aggregate;
    const JsonValue* predicates = query_v->Find("predicates");
    if (predicates == nullptr || !predicates->is_array()) {
      return Status::InvalidArgument(
          "query: field \"predicates\" must be an array");
    }
    for (const JsonValue& pred_v : predicates->AsArray()) {
      OPTSHARE_RETURN_NOT_OK(CheckObject(pred_v, "predicate"));
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(pred_v, {"column", "selectivity"}, "predicate"));
      simdb::Predicate pred;
      Result<std::string> column = GetString(pred_v, "column", "predicate");
      if (!column.ok()) return column.status();
      pred.column = std::move(*column);
      Result<double> selectivity =
          GetNumber(pred_v, "selectivity", "predicate");
      if (!selectivity.ok()) return selectivity.status();
      pred.selectivity = *selectivity;
      entry.query.predicates.push_back(std::move(pred));
    }
    workload.entries.push_back(std::move(entry));
  }
  OPTSHARE_RETURN_NOT_OK(workload.Validate());
  return workload;
}

JsonValue ToJson(const simdb::TableDef& table) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue::Str(table.name));
  obj.Set("row_count",
          JsonValue::Number(static_cast<double>(table.row_count)));
  JsonValue columns = JsonValue::MakeArray();
  for (const simdb::Column& column : table.columns) {
    JsonValue c = JsonValue::MakeObject();
    c.Set("name", JsonValue::Str(column.name));
    c.Set("type", JsonValue::Str(std::string(ColumnTypeName(column.type))));
    c.Set("distinct_values",
          JsonValue::Number(static_cast<double>(column.distinct_values)));
    columns.Append(std::move(c));
  }
  obj.Set("columns", std::move(columns));
  return obj;
}

Result<simdb::TableDef> TableDefFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "table"));
  OPTSHARE_RETURN_NOT_OK(
      CheckFields(v, {"name", "row_count", "columns"}, "table"));
  simdb::TableDef table;
  Result<std::string> name = GetString(v, "name", "table");
  if (!name.ok()) return name.status();
  table.name = std::move(*name);
  Result<double> rows = GetNumber(v, "row_count", "table");
  if (!rows.ok()) return rows.status();
  if (*rows < 0.0 || *rows != std::floor(*rows)) {
    return Status::InvalidArgument(
        "table: \"row_count\" must be a non-negative integer");
  }
  table.row_count = static_cast<uint64_t>(*rows);
  const JsonValue* columns = v.Find("columns");
  if (columns == nullptr || !columns->is_array()) {
    return Status::InvalidArgument(
        "table: field \"columns\" must be an array");
  }
  for (const JsonValue& column_v : columns->AsArray()) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(column_v, "column"));
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(column_v, {"name", "type", "distinct_values"}, "column"));
    simdb::Column column;
    Result<std::string> column_name = GetString(column_v, "name", "column");
    if (!column_name.ok()) return column_name.status();
    column.name = std::move(*column_name);
    Result<std::string> type = GetString(column_v, "type", "column");
    if (!type.ok()) return type.status();
    if (*type == "int64") {
      column.type = simdb::ColumnType::kInt64;
    } else if (*type == "double") {
      column.type = simdb::ColumnType::kDouble;
    } else if (*type == "string") {
      column.type = simdb::ColumnType::kString;
    } else {
      return Status::InvalidArgument(
          "column: unknown type \"" + *type +
          "\" (want int64, double or string)");
    }
    Result<double> distinct = GetNumber(column_v, "distinct_values", "column");
    if (!distinct.ok()) return distinct.status();
    if (*distinct < 1.0 || *distinct != std::floor(*distinct)) {
      return Status::InvalidArgument(
          "column: \"distinct_values\" must be a positive integer");
    }
    column.distinct_values = static_cast<uint64_t>(*distinct);
    table.columns.push_back(std::move(column));
  }
  OPTSHARE_RETURN_NOT_OK(table.Validate());
  return table;
}

// -- Variant sub-schemas ----------------------------------------------------

const char* ArrivalProcessTag(ArrivalSpec::Process process) {
  switch (process) {
    case ArrivalSpec::Process::kUniform:
      return "uniform";
    case ArrivalSpec::Process::kEarly:
      return "early";
    case ArrivalSpec::Process::kLate:
      return "late";
    case ArrivalSpec::Process::kDiurnal:
      return "diurnal";
    case ArrivalSpec::Process::kFlash:
      return "flash";
  }
  return "uniform";
}

JsonValue ToJson(const ArrivalSpec& arrival) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("process", JsonValue::Str(ArrivalProcessTag(arrival.process)));
  switch (arrival.process) {
    case ArrivalSpec::Process::kUniform:
      break;
    case ArrivalSpec::Process::kEarly:
    case ArrivalSpec::Process::kLate:
      obj.Set("mean", JsonValue::Number(arrival.mean));
      break;
    case ArrivalSpec::Process::kDiurnal:
      obj.Set("amplitude", JsonValue::Number(arrival.amplitude));
      obj.Set("wavelength", JsonValue::Number(arrival.wavelength));
      obj.Set("phase", JsonValue::Number(arrival.phase));
      break;
    case ArrivalSpec::Process::kFlash:
      obj.Set("peak_slot", JsonValue::Number(arrival.peak_slot));
      obj.Set("width", JsonValue::Number(arrival.width));
      obj.Set("multiplier", JsonValue::Number(arrival.multiplier));
      break;
  }
  return obj;
}

Result<ArrivalSpec> ArrivalFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "arrival"));
  Result<std::string> process = GetString(v, "process", "arrival");
  if (!process.ok()) return process.status();
  ArrivalSpec arrival;
  if (*process == "uniform") {
    arrival.process = ArrivalSpec::Process::kUniform;
    OPTSHARE_RETURN_NOT_OK(CheckFields(v, {"process"}, "arrival"));
  } else if (*process == "early" || *process == "late") {
    arrival.process = *process == "early" ? ArrivalSpec::Process::kEarly
                                          : ArrivalSpec::Process::kLate;
    OPTSHARE_RETURN_NOT_OK(CheckFields(v, {"process", "mean"}, "arrival"));
    if (v.Find("mean") != nullptr) {
      Result<double> mean = GetNumber(v, "mean", "arrival");
      if (!mean.ok()) return mean.status();
      arrival.mean = *mean;
    }
  } else if (*process == "diurnal") {
    arrival.process = ArrivalSpec::Process::kDiurnal;
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        v, {"process", "amplitude", "wavelength", "phase"}, "arrival"));
    Result<double> amplitude = GetNumber(v, "amplitude", "arrival");
    if (!amplitude.ok()) return amplitude.status();
    arrival.amplitude = *amplitude;
    Result<double> wavelength = GetNumber(v, "wavelength", "arrival");
    if (!wavelength.ok()) return wavelength.status();
    arrival.wavelength = *wavelength;
    if (v.Find("phase") != nullptr) {
      Result<double> phase = GetNumber(v, "phase", "arrival");
      if (!phase.ok()) return phase.status();
      arrival.phase = *phase;
    } else {
      arrival.phase = 0.0;
    }
  } else if (*process == "flash") {
    arrival.process = ArrivalSpec::Process::kFlash;
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        v, {"process", "peak_slot", "width", "multiplier"}, "arrival"));
    Result<int> peak = GetInt(v, "peak_slot", "arrival");
    if (!peak.ok()) return peak.status();
    arrival.peak_slot = *peak;
    Result<int> width = GetInt(v, "width", "arrival");
    if (!width.ok()) return width.status();
    arrival.width = *width;
    Result<double> multiplier = GetNumber(v, "multiplier", "arrival");
    if (!multiplier.ok()) return multiplier.status();
    arrival.multiplier = *multiplier;
  } else {
    return Status::InvalidArgument(
        "arrival: unknown process \"" + *process +
        "\" (want uniform, early, late, diurnal or flash)");
  }
  return arrival;
}

JsonValue ToJson(const DurationSpec& duration) {
  JsonValue obj = JsonValue::MakeObject();
  switch (duration.kind) {
    case DurationSpec::Kind::kToHorizon:
      obj.Set("to_horizon", JsonValue::Bool(true));
      break;
    case DurationSpec::Kind::kFixed:
      obj.Set("fixed", JsonValue::Number(duration.fixed));
      break;
    case DurationSpec::Kind::kUniform: {
      JsonValue bounds = JsonValue::MakeArray();
      bounds.Append(JsonValue::Number(duration.lo));
      bounds.Append(JsonValue::Number(duration.hi));
      obj.Set("uniform", std::move(bounds));
      break;
    }
  }
  return obj;
}

Result<DurationSpec> DurationFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "duration"));
  OPTSHARE_RETURN_NOT_OK(
      CheckFields(v, {"to_horizon", "fixed", "uniform"}, "duration"));
  if (v.AsObject().size() != 1) {
    return Status::InvalidArgument(
        "duration: want exactly one of \"to_horizon\", \"fixed\" or "
        "\"uniform\"");
  }
  DurationSpec duration;
  if (v.Find("to_horizon") != nullptr) {
    Result<bool> flag = JsonBoolField(v, "to_horizon", "duration");
    if (!flag.ok()) return flag.status();
    if (!*flag) {
      return Status::InvalidArgument("duration: \"to_horizon\" must be true");
    }
    duration.kind = DurationSpec::Kind::kToHorizon;
  } else if (v.Find("fixed") != nullptr) {
    Result<int> fixed = GetInt(v, "fixed", "duration");
    if (!fixed.ok()) return fixed.status();
    duration.kind = DurationSpec::Kind::kFixed;
    duration.fixed = *fixed;
  } else {
    const JsonValue* bounds = v.Find("uniform");
    if (!bounds->is_array() || bounds->AsArray().size() != 2 ||
        !bounds->AsArray()[0].is_number() ||
        !bounds->AsArray()[1].is_number()) {
      return Status::InvalidArgument(
          "duration: \"uniform\" must be a [lo, hi] number pair");
    }
    const double lo = bounds->AsArray()[0].AsNumber();
    const double hi = bounds->AsArray()[1].AsNumber();
    if (lo != std::floor(lo) || hi != std::floor(hi)) {
      return Status::InvalidArgument(
          "duration: \"uniform\" bounds must be integers");
    }
    duration.kind = DurationSpec::Kind::kUniform;
    duration.lo = static_cast<int>(lo);
    duration.hi = static_cast<int>(hi);
  }
  return duration;
}

const char* IntervalKindTag(IntervalSpec::Kind kind) {
  switch (kind) {
    case IntervalSpec::Kind::kFull:
      return "full";
    case IntervalSpec::Kind::kStaggered:
      return "staggered";
    case IntervalSpec::Kind::kSampled:
      return "sampled";
  }
  return "full";
}

JsonValue ToJson(const IntervalSpec& interval) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("kind", JsonValue::Str(IntervalKindTag(interval.kind)));
  switch (interval.kind) {
    case IntervalSpec::Kind::kFull:
      break;
    case IntervalSpec::Kind::kStaggered:
      obj.Set("modulo", JsonValue::Number(interval.modulo));
      obj.Set("span", JsonValue::Number(interval.span));
      break;
    case IntervalSpec::Kind::kSampled:
      obj.Set("arrival", ToJson(interval.arrival));
      obj.Set("duration", ToJson(interval.duration));
      break;
  }
  return obj;
}

Result<IntervalSpec> IntervalFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "interval"));
  Result<std::string> kind = GetString(v, "kind", "interval");
  if (!kind.ok()) return kind.status();
  IntervalSpec interval;
  if (*kind == "full") {
    OPTSHARE_RETURN_NOT_OK(CheckFields(v, {"kind"}, "interval"));
    interval.kind = IntervalSpec::Kind::kFull;
  } else if (*kind == "staggered") {
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(v, {"kind", "modulo", "span"}, "interval"));
    interval.kind = IntervalSpec::Kind::kStaggered;
    Result<int> modulo = GetInt(v, "modulo", "interval");
    if (!modulo.ok()) return modulo.status();
    interval.modulo = *modulo;
    Result<int> span = GetInt(v, "span", "interval");
    if (!span.ok()) return span.status();
    interval.span = *span;
  } else if (*kind == "sampled") {
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(v, {"kind", "arrival", "duration"}, "interval"));
    interval.kind = IntervalSpec::Kind::kSampled;
    const JsonValue* arrival = v.Find("arrival");
    if (arrival == nullptr) {
      return Status::InvalidArgument("interval: missing \"arrival\"");
    }
    Result<ArrivalSpec> parsed = ArrivalFromJson(*arrival);
    if (!parsed.ok()) return parsed.status();
    interval.arrival = *parsed;
    const JsonValue* duration = v.Find("duration");
    if (duration == nullptr) {
      return Status::InvalidArgument("interval: missing \"duration\"");
    }
    Result<DurationSpec> dur = DurationFromJson(*duration);
    if (!dur.ok()) return dur.status();
    interval.duration = *dur;
  } else {
    return Status::InvalidArgument(
        "interval: unknown kind \"" + *kind +
        "\" (want full, staggered or sampled)");
  }
  return interval;
}

JsonValue ToJson(const ExecutionsSpec& executions) {
  JsonValue obj = JsonValue::MakeObject();
  switch (executions.kind) {
    case ExecutionsSpec::Kind::kFixed:
      obj.Set("fixed", JsonValue::Number(executions.fixed));
      break;
    case ExecutionsSpec::Kind::kCycle: {
      JsonValue cycle = JsonValue::MakeArray();
      cycle.Reserve(executions.cycle.size());
      for (double value : executions.cycle) {
        cycle.Append(JsonValue::Number(value));
      }
      obj.Set("cycle", std::move(cycle));
      break;
    }
    case ExecutionsSpec::Kind::kUniform: {
      JsonValue bounds = JsonValue::MakeArray();
      bounds.Append(JsonValue::Number(executions.lo));
      bounds.Append(JsonValue::Number(executions.hi));
      obj.Set("uniform", std::move(bounds));
      break;
    }
    case ExecutionsSpec::Kind::kPareto: {
      JsonValue pareto = JsonValue::MakeObject();
      pareto.Set("scale", JsonValue::Number(executions.scale));
      pareto.Set("alpha", JsonValue::Number(executions.alpha));
      pareto.Set("cap", JsonValue::Number(executions.cap));
      obj.Set("pareto", std::move(pareto));
      break;
    }
  }
  return obj;
}

Result<ExecutionsSpec> ExecutionsFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "executions"));
  OPTSHARE_RETURN_NOT_OK(CheckFields(
      v, {"fixed", "cycle", "uniform", "pareto"}, "executions"));
  if (v.AsObject().size() != 1) {
    return Status::InvalidArgument(
        "executions: want exactly one of \"fixed\", \"cycle\", \"uniform\" "
        "or \"pareto\"");
  }
  ExecutionsSpec executions;
  if (v.Find("fixed") != nullptr) {
    Result<double> fixed = GetNumber(v, "fixed", "executions");
    if (!fixed.ok()) return fixed.status();
    executions.kind = ExecutionsSpec::Kind::kFixed;
    executions.fixed = *fixed;
  } else if (v.Find("cycle") != nullptr) {
    const JsonValue* cycle = v.Find("cycle");
    if (!cycle->is_array()) {
      return Status::InvalidArgument(
          "executions: \"cycle\" must be an array of numbers");
    }
    executions.kind = ExecutionsSpec::Kind::kCycle;
    for (const JsonValue& value : cycle->AsArray()) {
      if (!value.is_number()) {
        return Status::InvalidArgument(
            "executions: \"cycle\" entries must be numbers");
      }
      executions.cycle.push_back(value.AsNumber());
    }
  } else if (v.Find("uniform") != nullptr) {
    const JsonValue* bounds = v.Find("uniform");
    if (!bounds->is_array() || bounds->AsArray().size() != 2 ||
        !bounds->AsArray()[0].is_number() ||
        !bounds->AsArray()[1].is_number()) {
      return Status::InvalidArgument(
          "executions: \"uniform\" must be a [lo, hi] number pair");
    }
    executions.kind = ExecutionsSpec::Kind::kUniform;
    executions.lo = bounds->AsArray()[0].AsNumber();
    executions.hi = bounds->AsArray()[1].AsNumber();
  } else {
    const JsonValue* pareto = v.Find("pareto");
    OPTSHARE_RETURN_NOT_OK(CheckObject(*pareto, "pareto"));
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(*pareto, {"scale", "alpha", "cap"}, "pareto"));
    executions.kind = ExecutionsSpec::Kind::kPareto;
    Result<double> scale = GetNumber(*pareto, "scale", "pareto");
    if (!scale.ok()) return scale.status();
    executions.scale = *scale;
    Result<double> alpha = GetNumber(*pareto, "alpha", "pareto");
    if (!alpha.ok()) return alpha.status();
    executions.alpha = *alpha;
    if (pareto->Find("cap") != nullptr) {
      Result<double> cap = GetNumber(*pareto, "cap", "pareto");
      if (!cap.ok()) return cap.status();
      executions.cap = *cap;
    } else {
      executions.cap = 0.0;
    }
  }
  return executions;
}

// -- Validation -------------------------------------------------------------

Status ValidateArrival(const ArrivalSpec& arrival, int slots,
                       const std::string& ctx) {
  switch (arrival.process) {
    case ArrivalSpec::Process::kUniform:
      break;
    case ArrivalSpec::Process::kEarly:
    case ArrivalSpec::Process::kLate:
      if (!(arrival.mean > 0.0)) {
        return Status::InvalidArgument(ctx + ": arrival mean must be > 0");
      }
      break;
    case ArrivalSpec::Process::kDiurnal:
      if (arrival.amplitude < 0.0 || arrival.amplitude >= 1.0) {
        return Status::InvalidArgument(
            ctx + ": diurnal amplitude must lie in [0, 1)");
      }
      if (!(arrival.wavelength > 0.0)) {
        return Status::InvalidArgument(
            ctx + ": diurnal wavelength must be > 0");
      }
      break;
    case ArrivalSpec::Process::kFlash:
      if (arrival.peak_slot < 1 || arrival.peak_slot > slots) {
        return Status::InvalidArgument(
            ctx + ": flash peak_slot must lie in [1, slots_per_period]");
      }
      if (arrival.width < 0) {
        return Status::InvalidArgument(ctx + ": flash width must be >= 0");
      }
      if (!(arrival.multiplier >= 1.0)) {
        return Status::InvalidArgument(
            ctx + ": flash multiplier must be >= 1");
      }
      break;
  }
  return Status::OK();
}

Status ValidateClass(const TenantClass& cls, int slots,
                     const std::string& ctx) {
  if (cls.count < 0) {
    return Status::InvalidArgument(ctx + ": count must be >= 0");
  }
  if (cls.workloads.empty()) {
    return Status::InvalidArgument(ctx + ": needs at least one workload");
  }
  for (const simdb::Workload& workload : cls.workloads) {
    OPTSHARE_RETURN_NOT_OK(workload.Validate());
  }
  switch (cls.executions.kind) {
    case ExecutionsSpec::Kind::kFixed:
      if (!(cls.executions.fixed > 0.0)) {
        return Status::InvalidArgument(ctx + ": fixed executions must be > 0");
      }
      break;
    case ExecutionsSpec::Kind::kCycle:
      if (cls.executions.cycle.empty()) {
        return Status::InvalidArgument(
            ctx + ": executions cycle must be non-empty");
      }
      for (double value : cls.executions.cycle) {
        if (!(value > 0.0)) {
          return Status::InvalidArgument(
              ctx + ": executions cycle entries must be > 0");
        }
      }
      break;
    case ExecutionsSpec::Kind::kUniform:
      if (!(cls.executions.lo > 0.0) || cls.executions.lo > cls.executions.hi) {
        return Status::InvalidArgument(
            ctx + ": executions uniform bounds need 0 < lo <= hi");
      }
      break;
    case ExecutionsSpec::Kind::kPareto:
      if (!(cls.executions.scale > 0.0)) {
        return Status::InvalidArgument(ctx + ": pareto scale must be > 0");
      }
      if (!(cls.executions.alpha > 0.0)) {
        return Status::InvalidArgument(ctx + ": pareto alpha must be > 0");
      }
      if (cls.executions.cap < 0.0) {
        return Status::InvalidArgument(ctx + ": pareto cap must be >= 0");
      }
      break;
  }
  switch (cls.interval.kind) {
    case IntervalSpec::Kind::kFull:
      break;
    case IntervalSpec::Kind::kStaggered:
      if (cls.interval.modulo < 1) {
        return Status::InvalidArgument(
            ctx + ": staggered modulo must be >= 1");
      }
      if (cls.interval.modulo > slots) {
        return Status::InvalidArgument(
            ctx + ": staggered modulo exceeds slots_per_period");
      }
      if (cls.interval.span < 0) {
        return Status::InvalidArgument(ctx + ": staggered span must be >= 0");
      }
      break;
    case IntervalSpec::Kind::kSampled: {
      OPTSHARE_RETURN_NOT_OK(
          ValidateArrival(cls.interval.arrival, slots, ctx));
      const DurationSpec& duration = cls.interval.duration;
      switch (duration.kind) {
        case DurationSpec::Kind::kToHorizon:
          break;
        case DurationSpec::Kind::kFixed:
          if (duration.fixed < 1) {
            return Status::InvalidArgument(
                ctx + ": fixed duration must be >= 1");
          }
          break;
        case DurationSpec::Kind::kUniform:
          if (duration.lo < 1 || duration.lo > duration.hi) {
            return Status::InvalidArgument(
                ctx + ": duration uniform bounds need 1 <= lo <= hi");
          }
          break;
      }
      break;
    }
  }
  return Status::OK();
}

// -- Sampling ---------------------------------------------------------------

/// Discrete slot draw from per-slot weights (cumulative inversion).
TimeSlot SampleWeightedSlot(Rng& rng, const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng.NextDouble() * total;
  for (size_t s = 0; s < weights.size(); ++s) {
    u -= weights[s];
    if (u < 0.0) return static_cast<TimeSlot>(s) + 1;
  }
  return static_cast<TimeSlot>(weights.size());
}

TimeSlot SampleArrivalSlot(Rng& rng, const ArrivalSpec& arrival, int slots) {
  switch (arrival.process) {
    case ArrivalSpec::Process::kUniform:
      return SampleArrival(rng, ArrivalProcess::kUniform, slots);
    case ArrivalSpec::Process::kEarly: {
      ArrivalParams params;
      params.early_mean = arrival.mean;
      return SampleArrival(rng, ArrivalProcess::kEarly, slots, params);
    }
    case ArrivalSpec::Process::kLate: {
      ArrivalParams params;
      params.late_mean = arrival.mean;
      return SampleArrival(rng, ArrivalProcess::kLate, slots, params);
    }
    case ArrivalSpec::Process::kDiurnal: {
      std::vector<double> weights(static_cast<size_t>(slots));
      for (int s = 1; s <= slots; ++s) {
        weights[static_cast<size_t>(s - 1)] =
            1.0 + arrival.amplitude *
                      std::sin(2.0 * kPi *
                               (static_cast<double>(s - 1) + arrival.phase) /
                               arrival.wavelength);
      }
      return SampleWeightedSlot(rng, weights);
    }
    case ArrivalSpec::Process::kFlash: {
      std::vector<double> weights(static_cast<size_t>(slots), 1.0);
      for (int s = 1; s <= slots; ++s) {
        if (std::abs(s - arrival.peak_slot) <= arrival.width) {
          weights[static_cast<size_t>(s - 1)] = arrival.multiplier;
        }
      }
      return SampleWeightedSlot(rng, weights);
    }
  }
  return 1;
}

double SampleExecutions(Rng& rng, const ExecutionsSpec& executions,
                        int member_index) {
  switch (executions.kind) {
    case ExecutionsSpec::Kind::kFixed:
      return executions.fixed;
    case ExecutionsSpec::Kind::kCycle:
      return executions.cycle[static_cast<size_t>(member_index) %
                              executions.cycle.size()];
    case ExecutionsSpec::Kind::kUniform:
      return rng.Uniform(executions.lo, executions.hi);
    case ExecutionsSpec::Kind::kPareto: {
      // Inverse-CDF Pareto: x = scale * u^(-1/alpha), u in (0, 1].
      const double u = 1.0 - rng.NextDouble();
      double x = executions.scale * std::pow(u, -1.0 / executions.alpha);
      if (executions.cap > 0.0) x = std::min(x, executions.cap);
      return x;
    }
  }
  return 1.0;
}

}  // namespace

Status TraceConfig::Validate() const {
  if (periods < 1) {
    return Status::InvalidArgument("trace: periods must be >= 1");
  }
  if (slots_per_period < 1) {
    return Status::InvalidArgument("trace: slots_per_period must be >= 1");
  }
  if (mechanism.empty()) {
    return Status::InvalidArgument("trace: mechanism must be non-empty");
  }
  if (maintenance_fraction < 0.0 || maintenance_fraction > 1.0) {
    return Status::InvalidArgument(
        "trace: maintenance_fraction must lie in [0, 1]");
  }
  const bool has_scenario = !catalog.scenario.empty();
  const bool has_tables = !catalog.tables.empty();
  if (has_scenario == has_tables) {
    return Status::InvalidArgument(
        "catalog: want exactly one of \"scenario\" or \"tables\"");
  }
  if (has_scenario &&
      (catalog.scenario_tenants < 1 || catalog.scenario_slots < 1)) {
    return Status::InvalidArgument(
        "catalog: scenario tenants/slots must be >= 1");
  }
  for (size_t c = 0; c < classes.size(); ++c) {
    const std::string ctx = "class \"" + classes[c].name + "\"";
    OPTSHARE_RETURN_NOT_OK(ValidateClass(classes[c], slots_per_period, ctx));
    for (size_t d = 0; d < c; ++d) {
      if (classes[d].name == classes[c].name) {
        return Status::InvalidArgument("trace: duplicate class name \"" +
                                       classes[c].name + "\"");
      }
    }
  }
  for (const DepartureSpec& departure : departures) {
    if (departure.period < 0 || departure.period > periods) {
      return Status::InvalidArgument(
          "departure: period must lie in [0, periods] (0 = every period)");
    }
    if (departure.slot < 1 || departure.slot > slots_per_period) {
      return Status::InvalidArgument(
          "departure: slot must lie in [1, slots_per_period]");
    }
    if (departure.fraction < 0.0 || departure.fraction > 1.0) {
      return Status::InvalidArgument(
          "departure: fraction must lie in [0, 1]");
    }
    if (!departure.class_name.empty()) {
      bool known = false;
      for (const TenantClass& cls : classes) {
        if (cls.name == departure.class_name) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::InvalidArgument("departure: unknown class \"" +
                                       departure.class_name + "\"");
      }
    }
  }
  return Status::OK();
}

Result<TraceConfig> TraceConfigFromJson(const JsonValue& doc) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(doc, "trace"));
  OPTSHARE_RETURN_NOT_OK(CheckFields(
      doc,
      {"name", "seed", "periods", "slots_per_period", "mechanism",
       "maintenance_fraction", "catalog", "classes", "departures"},
      "trace"));
  TraceConfig config;
  if (doc.Find("name") != nullptr) {
    Result<std::string> name = GetString(doc, "name", "trace");
    if (!name.ok()) return name.status();
    config.name = std::move(*name);
  }
  if (doc.Find("seed") != nullptr) {
    Result<int64_t> seed = JsonIntField(doc, "seed", "trace");
    if (!seed.ok()) return seed.status();
    if (*seed < 0) {
      return Status::InvalidArgument("trace: seed must be >= 0");
    }
    config.seed = static_cast<uint64_t>(*seed);
  }
  if (doc.Find("periods") != nullptr) {
    Result<int> periods = GetInt(doc, "periods", "trace");
    if (!periods.ok()) return periods.status();
    config.periods = *periods;
  }
  if (doc.Find("slots_per_period") != nullptr) {
    Result<int> slots = GetInt(doc, "slots_per_period", "trace");
    if (!slots.ok()) return slots.status();
    config.slots_per_period = *slots;
  }
  if (doc.Find("mechanism") != nullptr) {
    Result<std::string> mechanism = GetString(doc, "mechanism", "trace");
    if (!mechanism.ok()) return mechanism.status();
    config.mechanism = std::move(*mechanism);
  }
  if (doc.Find("maintenance_fraction") != nullptr) {
    Result<double> fraction =
        GetNumber(doc, "maintenance_fraction", "trace");
    if (!fraction.ok()) return fraction.status();
    config.maintenance_fraction = *fraction;
  }

  const JsonValue* catalog = doc.Find("catalog");
  if (catalog == nullptr) {
    return Status::InvalidArgument("trace: missing \"catalog\"");
  }
  OPTSHARE_RETURN_NOT_OK(CheckObject(*catalog, "catalog"));
  OPTSHARE_RETURN_NOT_OK(CheckFields(
      *catalog, {"scenario", "tenants", "slots", "tables"}, "catalog"));
  if (catalog->Find("scenario") != nullptr) {
    Result<std::string> scenario = GetString(*catalog, "scenario", "catalog");
    if (!scenario.ok()) return scenario.status();
    config.catalog.scenario = std::move(*scenario);
    if (catalog->Find("tenants") != nullptr) {
      Result<int> tenants = GetInt(*catalog, "tenants", "catalog");
      if (!tenants.ok()) return tenants.status();
      config.catalog.scenario_tenants = *tenants;
    }
    if (catalog->Find("slots") != nullptr) {
      Result<int> slots = GetInt(*catalog, "slots", "catalog");
      if (!slots.ok()) return slots.status();
      config.catalog.scenario_slots = *slots;
    }
  }
  if (catalog->Find("tables") != nullptr) {
    const JsonValue* tables = catalog->Find("tables");
    if (!tables->is_array()) {
      return Status::InvalidArgument(
          "catalog: field \"tables\" must be an array");
    }
    for (const JsonValue& table_v : tables->AsArray()) {
      Result<simdb::TableDef> table = TableDefFromJson(table_v);
      if (!table.ok()) return table.status();
      config.catalog.tables.push_back(std::move(*table));
    }
  }

  const JsonValue* classes = doc.Find("classes");
  if (classes == nullptr || !classes->is_array()) {
    return Status::InvalidArgument(
        "trace: field \"classes\" must be an array");
  }
  for (const JsonValue& class_v : classes->AsArray()) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(class_v, "class"));
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        class_v, {"name", "count", "workloads", "executions", "interval"},
        "class"));
    TenantClass cls;
    Result<std::string> name = GetString(class_v, "name", "class");
    if (!name.ok()) return name.status();
    cls.name = std::move(*name);
    Result<int> count = GetInt(class_v, "count", "class");
    if (!count.ok()) return count.status();
    cls.count = *count;
    const JsonValue* workloads = class_v.Find("workloads");
    if (workloads == nullptr || !workloads->is_array()) {
      return Status::InvalidArgument(
          "class: field \"workloads\" must be an array");
    }
    for (const JsonValue& workload_v : workloads->AsArray()) {
      Result<simdb::Workload> workload =
          WorkloadFromJson(workload_v, "class");
      if (!workload.ok()) return workload.status();
      cls.workloads.push_back(std::move(*workload));
    }
    const JsonValue* executions = class_v.Find("executions");
    if (executions == nullptr) {
      return Status::InvalidArgument("class: missing \"executions\"");
    }
    Result<ExecutionsSpec> parsed_exec = ExecutionsFromJson(*executions);
    if (!parsed_exec.ok()) return parsed_exec.status();
    cls.executions = std::move(*parsed_exec);
    const JsonValue* interval = class_v.Find("interval");
    if (interval == nullptr) {
      return Status::InvalidArgument("class: missing \"interval\"");
    }
    Result<IntervalSpec> parsed_interval = IntervalFromJson(*interval);
    if (!parsed_interval.ok()) return parsed_interval.status();
    cls.interval = *parsed_interval;
    config.classes.push_back(std::move(cls));
  }

  if (doc.Find("departures") != nullptr) {
    const JsonValue* departures = doc.Find("departures");
    if (!departures->is_array()) {
      return Status::InvalidArgument(
          "trace: field \"departures\" must be an array");
    }
    for (const JsonValue& departure_v : departures->AsArray()) {
      OPTSHARE_RETURN_NOT_OK(CheckObject(departure_v, "departure"));
      OPTSHARE_RETURN_NOT_OK(CheckFields(
          departure_v, {"period", "slot", "fraction", "class"}, "departure"));
      DepartureSpec departure;
      Result<int> period = GetInt(departure_v, "period", "departure");
      if (!period.ok()) return period.status();
      departure.period = *period;
      Result<int> slot = GetInt(departure_v, "slot", "departure");
      if (!slot.ok()) return slot.status();
      departure.slot = *slot;
      Result<double> fraction =
          GetNumber(departure_v, "fraction", "departure");
      if (!fraction.ok()) return fraction.status();
      departure.fraction = *fraction;
      if (departure_v.Find("class") != nullptr) {
        Result<std::string> cls = GetString(departure_v, "class", "departure");
        if (!cls.ok()) return cls.status();
        departure.class_name = std::move(*cls);
      }
      config.departures.push_back(std::move(departure));
    }
  }

  OPTSHARE_RETURN_NOT_OK(config.Validate());
  return config;
}

Result<TraceConfig> ParseTraceConfig(std::string_view text) {
  Result<JsonValue> doc = JsonValue::Parse(text);
  if (!doc.ok()) return doc.status();
  return TraceConfigFromJson(*doc);
}

JsonValue ToJson(const TraceConfig& config) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", JsonValue::Str(config.name));
  doc.Set("seed", JsonValue::Number(static_cast<double>(config.seed)));
  doc.Set("periods", JsonValue::Number(config.periods));
  doc.Set("slots_per_period", JsonValue::Number(config.slots_per_period));
  doc.Set("mechanism", JsonValue::Str(config.mechanism));
  doc.Set("maintenance_fraction",
          JsonValue::Number(config.maintenance_fraction));
  JsonValue catalog = JsonValue::MakeObject();
  if (!config.catalog.scenario.empty()) {
    catalog.Set("scenario", JsonValue::Str(config.catalog.scenario));
    catalog.Set("tenants", JsonValue::Number(config.catalog.scenario_tenants));
    catalog.Set("slots", JsonValue::Number(config.catalog.scenario_slots));
  } else {
    JsonValue tables = JsonValue::MakeArray();
    tables.Reserve(config.catalog.tables.size());
    for (const simdb::TableDef& table : config.catalog.tables) {
      tables.Append(ToJson(table));
    }
    catalog.Set("tables", std::move(tables));
  }
  doc.Set("catalog", std::move(catalog));
  JsonValue classes = JsonValue::MakeArray();
  classes.Reserve(config.classes.size());
  for (const TenantClass& cls : config.classes) {
    JsonValue c = JsonValue::MakeObject();
    c.Set("name", JsonValue::Str(cls.name));
    c.Set("count", JsonValue::Number(cls.count));
    JsonValue workloads = JsonValue::MakeArray();
    workloads.Reserve(cls.workloads.size());
    for (const simdb::Workload& workload : cls.workloads) {
      workloads.Append(ToJson(workload));
    }
    c.Set("workloads", std::move(workloads));
    c.Set("executions", ToJson(cls.executions));
    c.Set("interval", ToJson(cls.interval));
    classes.Append(std::move(c));
  }
  doc.Set("classes", std::move(classes));
  JsonValue departures = JsonValue::MakeArray();
  departures.Reserve(config.departures.size());
  for (const DepartureSpec& departure : config.departures) {
    JsonValue d = JsonValue::MakeObject();
    d.Set("period", JsonValue::Number(departure.period));
    d.Set("slot", JsonValue::Number(departure.slot));
    d.Set("fraction", JsonValue::Number(departure.fraction));
    if (!departure.class_name.empty()) {
      d.Set("class", JsonValue::Str(departure.class_name));
    }
    departures.Append(std::move(d));
  }
  doc.Set("departures", std::move(departures));
  return doc;
}

Result<Trace> GenerateTrace(const TraceConfig& config) {
  OPTSHARE_RETURN_NOT_OK(config.Validate());
  Trace trace;
  trace.name = config.name;
  trace.seed = config.seed;
  trace.slots_per_period = config.slots_per_period;
  const int z = config.slots_per_period;

  Rng root(config.seed);
  for (int p = 1; p <= config.periods; ++p) {
    // One independent stream per period: editing a later period's
    // population never perturbs an earlier one.
    Rng rng = root.Fork(static_cast<uint64_t>(p));
    TracePeriod period;

    // Draw order is frozen (and therefore part of the format): classes in
    // document order, members in index order; within a member, interval
    // first (arrival, then duration), then executions.
    for (size_t c = 0; c < config.classes.size(); ++c) {
      const TenantClass& cls = config.classes[c];
      for (int i = 0; i < cls.count; ++i) {
        TraceTenant drawn;
        drawn.class_index = static_cast<int>(c);
        drawn.member_index = i;
        simdb::SimUser& tenant = drawn.tenant;
        tenant.workload =
            cls.workloads[static_cast<size_t>(i) % cls.workloads.size()];
        switch (cls.interval.kind) {
          case IntervalSpec::Kind::kFull:
            tenant.start = 1;
            tenant.end = z;
            break;
          case IntervalSpec::Kind::kStaggered:
            tenant.start = 1 + (i % cls.interval.modulo);
            tenant.end = std::min<TimeSlot>(
                tenant.start + cls.interval.span, z);
            break;
          case IntervalSpec::Kind::kSampled: {
            tenant.start = SampleArrivalSlot(rng, cls.interval.arrival, z);
            const DurationSpec& duration = cls.interval.duration;
            switch (duration.kind) {
              case DurationSpec::Kind::kToHorizon:
                tenant.end = z;
                break;
              case DurationSpec::Kind::kFixed:
                tenant.end = std::min<TimeSlot>(
                    tenant.start + duration.fixed - 1, z);
                break;
              case DurationSpec::Kind::kUniform: {
                const int d = static_cast<int>(
                    rng.UniformInt(duration.lo, duration.hi));
                tenant.end = std::min<TimeSlot>(tenant.start + d - 1, z);
                break;
              }
            }
            break;
          }
        }
        tenant.executions_per_slot = SampleExecutions(rng, cls.executions, i);
        period.tenants.push_back(std::move(drawn));
      }
    }

    // Correlated mass-departures, rules in document order. A tenant's
    // effective end shrinks monotonically; rules only consider tenants
    // still present at the rule's slot.
    std::vector<TimeSlot> eff_end(period.tenants.size());
    for (size_t t = 0; t < period.tenants.size(); ++t) {
      eff_end[t] = period.tenants[t].tenant.end;
    }
    for (const DepartureSpec& rule : config.departures) {
      if (rule.period != 0 && rule.period != p) continue;
      std::vector<int> eligible;
      for (size_t t = 0; t < period.tenants.size(); ++t) {
        const TraceTenant& drawn = period.tenants[t];
        if (!rule.class_name.empty() &&
            config.classes[static_cast<size_t>(drawn.class_index)].name !=
                rule.class_name) {
          continue;
        }
        if (drawn.tenant.start <= rule.slot && rule.slot < eff_end[t]) {
          eligible.push_back(static_cast<int>(t));
        }
      }
      const int k = static_cast<int>(std::floor(
          rule.fraction * static_cast<double>(eligible.size()) + 0.5));
      if (k <= 0) continue;
      std::vector<int> picks =
          rng.SampleWithoutReplacement(static_cast<int>(eligible.size()), k);
      for (int pick : picks) {
        const int t = eligible[static_cast<size_t>(pick)];
        eff_end[static_cast<size_t>(t)] = rule.slot;
        period.departures.push_back({rule.slot, t});
      }
    }
    std::sort(period.departures.begin(), period.departures.end(),
              [](const TraceDeparture& a, const TraceDeparture& b) {
                return a.slot != b.slot ? a.slot < b.slot
                                        : a.tenant_index < b.tenant_index;
              });
    trace.periods.push_back(std::move(period));
  }
  return trace;
}

JsonValue ToJson(const Trace& trace) {
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("name", JsonValue::Str(trace.name));
  doc.Set("seed", JsonValue::Number(static_cast<double>(trace.seed)));
  doc.Set("slots_per_period", JsonValue::Number(trace.slots_per_period));
  JsonValue periods = JsonValue::MakeArray();
  periods.Reserve(trace.periods.size());
  for (const TracePeriod& period : trace.periods) {
    JsonValue p = JsonValue::MakeObject();
    JsonValue tenants = JsonValue::MakeArray();
    tenants.Reserve(period.tenants.size());
    for (const TraceTenant& drawn : period.tenants) {
      JsonValue t = JsonValue::MakeObject();
      t.Set("class", JsonValue::Number(drawn.class_index));
      t.Set("member", JsonValue::Number(drawn.member_index));
      t.Set("start", JsonValue::Number(drawn.tenant.start));
      t.Set("end", JsonValue::Number(drawn.tenant.end));
      t.Set("executions_per_slot",
            JsonValue::Number(drawn.tenant.executions_per_slot));
      t.Set("workload", ToJson(drawn.tenant.workload));
      tenants.Append(std::move(t));
    }
    p.Set("tenants", std::move(tenants));
    JsonValue departures = JsonValue::MakeArray();
    departures.Reserve(period.departures.size());
    for (const TraceDeparture& departure : period.departures) {
      JsonValue d = JsonValue::MakeObject();
      d.Set("slot", JsonValue::Number(departure.slot));
      d.Set("tenant", JsonValue::Number(departure.tenant_index));
      departures.Append(std::move(d));
    }
    p.Set("departures", std::move(departures));
    periods.Append(std::move(p));
  }
  doc.Set("periods", std::move(periods));
  return doc;
}

Result<JsonValue> PresetConfigDocument(const std::string& name,
                                       int num_tenants, int num_slots) {
  if (num_tenants < 1 || num_slots < 1) {
    return Status::InvalidArgument("need at least one tenant and one slot");
  }
  TraceConfig config;
  config.name = name;
  config.seed = 0;  // The presets are fully deterministic: no draws.
  config.periods = 1;
  config.slots_per_period = num_slots;

  const auto single_query_workload = [](std::string table,
                                        std::vector<simdb::Predicate> preds) {
    simdb::Workload workload;
    simdb::Workload::Entry entry;
    entry.frequency = 1.0;
    entry.query.table = std::move(table);
    entry.query.predicates = std::move(preds);
    entry.query.aggregate = true;
    workload.entries.push_back(std::move(entry));
    return workload;
  };

  if (name == "clickstream") {
    simdb::TableDef events;
    events.name = "events";
    events.columns = {
        {"event_id", simdb::ColumnType::kInt64, 2'000'000'000},
        {"user_id", simdb::ColumnType::kInt64, 50'000'000},
        {"kind", simdb::ColumnType::kString, 200},
        {"ts", simdb::ColumnType::kInt64, 86'400'000},
    };
    events.row_count = 2'000'000'000;
    config.catalog.tables.push_back(std::move(events));

    TenantClass funnels;
    funnels.name = "funnels";
    funnels.count = num_tenants;
    funnels.workloads.push_back(single_query_workload(
        "events", {{"user_id", 2e-8}, {"kind", 0.005}}));
    funnels.executions.kind = ExecutionsSpec::Kind::kCycle;
    funnels.executions.cycle = {200.0, 400.0, 600.0, 800.0};
    funnels.interval.kind = IntervalSpec::Kind::kStaggered;
    funnels.interval.modulo = std::max(1, num_slots / 2);
    funnels.interval.span = num_slots / 2;
    config.classes.push_back(std::move(funnels));
  } else if (name == "retail") {
    simdb::TableDef sales;
    sales.name = "sales";
    sales.columns = {
        {"sale_id", simdb::ColumnType::kInt64, 800'000'000},
        {"region", simdb::ColumnType::kString, 40},
        {"sku", simdb::ColumnType::kInt64, 100'000},
        {"amount", simdb::ColumnType::kDouble, 1'000'000},
    };
    sales.row_count = 800'000'000;
    config.catalog.tables.push_back(std::move(sales));

    TenantClass reports;
    reports.name = "reports";
    reports.count = num_tenants;
    // Alternate between region rollups and sku drill-downs.
    reports.workloads.push_back(
        single_query_workload("sales", {{"region", 1.0 / 40}}));
    reports.workloads.push_back(
        single_query_workload("sales", {{"sku", 1.0 / 100'000}}));
    reports.executions.kind = ExecutionsSpec::Kind::kCycle;
    reports.executions.cycle = {50.0, 100.0, 150.0};
    reports.interval.kind = IntervalSpec::Kind::kFull;
    config.classes.push_back(std::move(reports));
  } else if (name == "telemetry") {
    simdb::TableDef telemetry;
    telemetry.name = "telemetry";
    telemetry.columns = {
        {"device", simdb::ColumnType::kInt64, 5'000'000},
        {"metric", simdb::ColumnType::kInt64, 64},
        {"value", simdb::ColumnType::kDouble, 1'000'000},
    };
    telemetry.row_count = 1'000'000'000;
    config.catalog.tables.push_back(std::move(telemetry));

    TenantClass series;
    series.name = "series";
    series.count = num_tenants;
    series.workloads.push_back(
        single_query_workload("telemetry", {{"device", 2e-7}}));
    // A mix of enterprise (heavy) and starter (light) tenants.
    series.executions.kind = ExecutionsSpec::Kind::kCycle;
    series.executions.cycle = {2500.0, 150.0, 150.0};
    series.interval.kind = IntervalSpec::Kind::kFull;
    config.classes.push_back(std::move(series));
  } else {
    return Status::InvalidArgument(
        "unknown preset \"" + name +
        "\" (want clickstream, retail or telemetry)");
  }
  return ToJson(config);
}

Result<simdb::Catalog> BuildTraceCatalog(const TraceCatalog& catalog) {
  if (!catalog.scenario.empty()) {
    Result<simdb::Scenario> scenario =
        catalog.scenario == "clickstream"
            ? simdb::ClickstreamScenario(catalog.scenario_tenants,
                                         catalog.scenario_slots)
        : catalog.scenario == "retail"
            ? simdb::RetailScenario(catalog.scenario_tenants,
                                    catalog.scenario_slots)
        : catalog.scenario == "telemetry"
            ? simdb::TelemetryScenario(catalog.scenario_tenants,
                                       catalog.scenario_slots)
            : Result<simdb::Scenario>(Status::NotFound(
                  "unknown scenario \"" + catalog.scenario +
                  "\" (clickstream, retail, telemetry)"));
    if (!scenario.ok()) return scenario.status();
    return std::move(scenario->catalog);
  }
  simdb::Catalog built;
  for (const simdb::TableDef& table : catalog.tables) {
    OPTSHARE_RETURN_NOT_OK(built.AddTable(table));
  }
  return built;
}

std::vector<int> ArrivalHistogram(const TracePeriod& period, int num_slots) {
  std::vector<int> counts(static_cast<size_t>(std::max(0, num_slots)), 0);
  for (const TraceTenant& drawn : period.tenants) {
    const TimeSlot s = drawn.tenant.start;
    if (s >= 1 && s <= num_slots) ++counts[static_cast<size_t>(s - 1)];
  }
  return counts;
}

double TailRatio(const TracePeriod& period) {
  if (period.tenants.empty()) return 0.0;
  std::vector<double> sizes;
  sizes.reserve(period.tenants.size());
  for (const TraceTenant& drawn : period.tenants) {
    sizes.push_back(drawn.tenant.executions_per_slot);
  }
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  return median > 0.0 ? sizes.back() / median : 0.0;
}

}  // namespace optshare::strategy
