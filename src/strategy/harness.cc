#include "strategy/harness.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "service/net_client.h"
#include "service/net_server.h"
#include "simdb/advisor.h"
#include "simdb/cost_model.h"

namespace optshare::strategy {
namespace {

using service::MarketplaceServer;
using service::NetClient;
using service::NetServer;
using service::PeriodReport;
using service::ServiceConfig;
using service::StructureOutcome;
using Op = service::protocol::RequestOp;
using service::protocol::Request;
using service::protocol::Response;

constexpr char kTenancy[] = "strategy-lab";

ServiceConfig ConfigFromTrace(const TraceConfig& config) {
  ServiceConfig service;
  service.slots_per_period = config.slots_per_period;
  service.maintenance_fraction = config.maintenance_fraction;
  service.mechanism = config.mechanism;
  return service;
}

service::protocol::CatalogSpec CatalogSpecFromTrace(
    const TraceCatalog& catalog) {
  service::protocol::CatalogSpec spec;
  spec.scenario = catalog.scenario;
  spec.scenario_tenants = catalog.scenario_tenants;
  spec.scenario_slots = catalog.scenario_slots;
  spec.tables = catalog.tables;
  return spec;
}

Request TenancyRequest(Op op, const std::string& tenancy) {
  Request request;
  request.op = op;
  request.version = 2;
  request.tenancy = tenancy;
  return request;
}

/// One executed period of one run.
struct PeriodTrack {
  PeriodReport report;
  std::string line;  ///< Canonical report dump (the determinism surface).
  std::vector<StrategistIdentity> identities;
  std::vector<UserId> identity_ids;  ///< Roster ids, aligned above.
  std::optional<TimeSlot> depart_after;
  std::vector<simdb::SimUser> background;  ///< Declared == true demand.
};

struct RunOutput {
  std::vector<PeriodTrack> periods;
};

/// The slot-major program of one period, shared by the harness runs and
/// TraceRequestLines: per slot, submissions for that slot, then
/// departures effective through it, then one advance.
struct SlotProgram {
  std::vector<std::vector<simdb::SimUser>> submits;    ///< [slot-1].
  std::vector<std::vector<int>> departs;               ///< Submission order.
};

/// Orders one trace period slot-major. `departs` entries index the
/// period's flat submission order (background tenants, generation order).
SlotProgram LayoutPeriod(const TracePeriod& period, int slots) {
  SlotProgram program;
  program.submits.resize(static_cast<size_t>(slots));
  program.departs.resize(static_cast<size_t>(slots));
  std::vector<int> order(period.tenants.size(), -1);
  int next = 0;
  for (int s = 1; s <= slots; ++s) {
    for (size_t t = 0; t < period.tenants.size(); ++t) {
      if (period.tenants[t].tenant.start != s) continue;
      program.submits[static_cast<size_t>(s - 1)].push_back(
          period.tenants[t].tenant);
      order[t] = next++;
    }
  }
  for (const TraceDeparture& departure : period.departures) {
    // Departing tenants were eligible (present), so they were submitted.
    program.departs[static_cast<size_t>(departure.slot - 1)].push_back(
        order[static_cast<size_t>(departure.tenant_index)]);
  }
  return program;
}

Result<Response> CallChecked(NetClient& client, const Request& request) {
  Result<Response> response = client.Call(request);
  if (!response.ok()) return response.status();
  if (!response->ok()) return response->status;
  return response;
}

/// Runs the whole multi-period program for one player over TCP.
Result<RunOutput> RunProgram(const StrategyOptions& options,
                             const Trace& trace,
                             const StrategyPlayer& player) {
  const TraceConfig& config = options.background;
  const int z = config.slots_per_period;

  service::ServerOptions server_options;
  server_options.num_workers = options.num_workers;
  MarketplaceServer server(server_options);
  NetServer net(&server, {});
  OPTSHARE_RETURN_NOT_OK(net.Start());
  Result<NetClient> client = NetClient::Connect("127.0.0.1", net.port());
  if (!client.ok()) return client.status();

  RunOutput run;
  for (int p = 1; p <= config.periods; ++p) {
    Request open = TenancyRequest(Op::kOpenPeriod, kTenancy);
    if (p == 1) {
      open.catalog = CatalogSpecFromTrace(config.catalog);
      open.config = ConfigFromTrace(config);
    }
    OPTSHARE_RETURN_NOT_OK(CallChecked(*client, open).status());

    PeriodTrack track;
    const TracePeriod& period = trace.periods[static_cast<size_t>(p - 1)];
    SlotProgram program = LayoutPeriod(period, z);
    StrategistMove move = player.Declare(options.strategist, z);
    track.identities = move.identities;
    track.depart_after = move.depart_after;
    track.identity_ids.assign(move.identities.size(), -1);
    for (const auto& slot_submits : program.submits) {
      for (const simdb::SimUser& tenant : slot_submits) {
        track.background.push_back(tenant);
      }
    }

    // Roster ids are assigned by submission order; track them as we go.
    // Within one slot's batch the background tenants go first, then any
    // strategist identities arriving that slot.
    std::vector<UserId> background_ids;
    UserId next_id = 0;
    for (TimeSlot s = 1; s <= z; ++s) {
      Request submit = TenancyRequest(Op::kSubmit, kTenancy);
      submit.tenants = program.submits[static_cast<size_t>(s - 1)];
      for (size_t j = 0; j < submit.tenants.size(); ++j) {
        background_ids.push_back(next_id + static_cast<UserId>(j));
      }
      std::vector<size_t> arriving;
      for (size_t k = 0; k < move.identities.size(); ++k) {
        if (move.identities[k].declared.start == s) {
          submit.tenants.push_back(move.identities[k].declared);
          arriving.push_back(k);
        }
      }
      if (!submit.tenants.empty()) {
        OPTSHARE_RETURN_NOT_OK(CallChecked(*client, submit).status());
        const UserId strategist_base =
            next_id + static_cast<UserId>(submit.tenants.size()) -
            static_cast<UserId>(arriving.size());
        for (size_t j = 0; j < arriving.size(); ++j) {
          track.identity_ids[arriving[j]] =
              strategist_base + static_cast<UserId>(j);
        }
        next_id += static_cast<UserId>(submit.tenants.size());
      }
      for (int submit_order : program.departs[static_cast<size_t>(s - 1)]) {
        Request depart = TenancyRequest(Op::kDepart, kTenancy);
        depart.tenant = background_ids[static_cast<size_t>(submit_order)];
        OPTSHARE_RETURN_NOT_OK(CallChecked(*client, depart).status());
      }
      if (track.depart_after && *track.depart_after == s) {
        for (size_t k = 0; k < track.identity_ids.size(); ++k) {
          if (track.identity_ids[k] < 0) continue;
          Request depart = TenancyRequest(Op::kDepart, kTenancy);
          depart.tenant = track.identity_ids[k];
          OPTSHARE_RETURN_NOT_OK(CallChecked(*client, depart).status());
        }
      }
      Request advance = TenancyRequest(Op::kAdvanceSlot, kTenancy);
      advance.slots = 1;
      OPTSHARE_RETURN_NOT_OK(CallChecked(*client, advance).status());
    }

    Request close = TenancyRequest(Op::kClosePeriod, kTenancy);
    Result<Response> closed = CallChecked(*client, close);
    if (!closed.ok()) return closed.status();
    const JsonValue* report_v = closed->payload.Find("report");
    if (report_v == nullptr) {
      return Status::Internal("close_period response carried no report");
    }
    Result<PeriodReport> report =
        service::protocol::PeriodReportFromJson(*report_v);
    if (!report.ok()) return report.status();
    track.line = service::protocol::ToJson(*report).Dump();
    track.report = std::move(*report);
    run.periods.push_back(std::move(track));
  }
  net.Stop();
  return run;
}

/// Metrics computed against recomputed *true* values.
struct RunMetrics {
  double utility = 0.0;
  double cost_recovery_error = 0.0;  ///< Max over periods.
  double regret = 0.0;               ///< Max over periods.
};

Result<RunMetrics> Measure(const simdb::Catalog& catalog,
                           const ServiceConfig& config,
                           const RunOutput& run) {
  const simdb::CostModel model(&catalog);
  const simdb::PricingModel pricing(config.pricing);
  const int z = config.slots_per_period;
  RunMetrics metrics;

  for (const PeriodTrack& track : run.periods) {
    // The period's true roster: background declarations are honest, the
    // strategist contributes each identity's *actual* demand.
    std::vector<simdb::SimUser> true_roster = track.background;
    for (const StrategistIdentity& identity : track.identities) {
      true_roster.push_back(identity.actual);
    }
    // Every candidate structure against the true roster — the hindsight
    // menu (min_benefit_ratio 0: the benchmark may build what the advisor
    // would have filtered).
    simdb::AdvisorOptions all;
    all.min_benefit_ratio = 0.0;
    Result<std::vector<simdb::Proposal>> proposals =
        simdb::ProposeOptimizations(catalog, model, pricing, true_roster,
                                    all);
    if (!proposals.ok()) return proposals.status();
    std::map<std::string, const simdb::Proposal*> by_name;
    for (const simdb::Proposal& proposal : *proposals) {
      by_name.emplace(proposal.spec.DisplayName(), &proposal);
    }

    // Per-slot true rates of each identity (interval-independent: scored
    // on a one-slot copy, so savings == rate).
    std::vector<simdb::SimUser> one_slot;
    for (const StrategistIdentity& identity : track.identities) {
      simdb::SimUser actual = identity.actual;
      actual.start = 1;
      actual.end = 1;
      one_slot.push_back(std::move(actual));
    }

    double strategist_value = 0.0;
    for (const StructureOutcome& outcome : track.report.structures) {
      if (!outcome.active) continue;
      const auto found = by_name.find(outcome.name);
      if (found == by_name.end()) continue;
      Result<std::vector<double>> rates = simdb::ProposalUserSavings(
          catalog, model, pricing, found->second->spec, one_slot);
      if (!rates.ok()) return rates.status();
      for (size_t k = 0; k < track.identities.size(); ++k) {
        const UserId u = track.identity_ids[k];
        if (u < 0) continue;
        TimeSlot from = 0;
        for (const StructureOutcome::ServicedEntry& entry :
             outcome.serviced) {
          if (entry.tenant == u) {
            from = entry.from_slot;
            break;
          }
        }
        if (from == 0) continue;
        const simdb::SimUser& actual = track.identities[k].actual;
        TimeSlot until = std::min<TimeSlot>(actual.end, z);
        if (track.depart_after) {
          until = std::min(until, *track.depart_after);
        }
        const TimeSlot lo = std::max(from, actual.start);
        if (lo <= until) {
          strategist_value += (*rates)[k] * static_cast<double>(until - lo + 1);
        }
      }
    }

    double strategist_paid = 0.0;
    double background_declared_value = 0.0;
    double total_paid = 0.0;
    for (double payment : track.report.ledger.user_payment) {
      total_paid += payment;
    }
    std::vector<char> is_strategist(track.report.ledger.user_value.size(), 0);
    for (const UserId u : track.identity_ids) {
      if (u >= 0 &&
          static_cast<size_t>(u) < track.report.ledger.user_payment.size()) {
        strategist_paid += track.report.ledger.user_payment[static_cast<size_t>(u)];
        is_strategist[static_cast<size_t>(u)] = 1;
      }
    }
    for (size_t u = 0; u < track.report.ledger.user_value.size(); ++u) {
      if (!is_strategist[u]) {
        background_declared_value += track.report.ledger.user_value[u];
      }
    }
    metrics.utility += strategist_value - strategist_paid;

    const double total_cost = track.report.ledger.total_cost;
    if (total_cost > 0.0) {
      metrics.cost_recovery_error =
          std::max(metrics.cost_recovery_error,
                   std::abs(total_cost - total_paid) / total_cost);
    }

    // Hindsight welfare: best structure portfolio against the true
    // demands, priced at what the period actually charged (maintenance
    // for carried structures, the advisor's build cost otherwise).
    double hindsight = 0.0;
    for (const auto& [name, proposal] : by_name) {
      double cost = proposal->cost;
      for (const StructureOutcome& outcome : track.report.structures) {
        if (outcome.name == name) {
          cost = outcome.cost;
          break;
        }
      }
      hindsight += std::max(0.0, proposal->total_savings - cost);
    }
    const double achieved =
        background_declared_value + strategist_value - total_cost;
    metrics.regret = std::max(metrics.regret, hindsight - achieved);
  }
  metrics.regret = std::max(metrics.regret, 0.0);
  return metrics;
}

}  // namespace

JsonValue ToJson(const AttackOutcome& outcome) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("player", JsonValue::Str(outcome.player));
  obj.Set("mechanism", JsonValue::Str(outcome.mechanism));
  obj.Set("periods", JsonValue::Number(outcome.periods));
  obj.Set("truthful_utility", JsonValue::Number(outcome.truthful_utility));
  obj.Set("strategic_utility", JsonValue::Number(outcome.strategic_utility));
  obj.Set("gain", JsonValue::Number(outcome.gain));
  obj.Set("cost_recovery_error",
          JsonValue::Number(outcome.cost_recovery_error));
  obj.Set("regret", JsonValue::Number(outcome.regret));
  return obj;
}

Result<StrategyHarness> StrategyHarness::Make(StrategyOptions options) {
  OPTSHARE_RETURN_NOT_OK(options.background.Validate());
  const int z = options.background.slots_per_period;
  const simdb::SimUser& strategist = options.strategist;
  if (strategist.start < 1 || strategist.end < strategist.start ||
      strategist.end > z) {
    return Status::InvalidArgument(
        "strategist interval must lie within [1, slots_per_period]");
  }
  OPTSHARE_RETURN_NOT_OK(strategist.workload.Validate());
  if (!(strategist.executions_per_slot > 0.0)) {
    return Status::InvalidArgument(
        "strategist executions_per_slot must be > 0");
  }
  Result<Trace> trace = GenerateTrace(options.background);
  if (!trace.ok()) return trace.status();
  return StrategyHarness(std::move(options), std::move(*trace));
}

Result<AttackOutcome> StrategyHarness::Run(const StrategyPlayer& player) {
  const ServiceConfig config = ConfigFromTrace(options_.background);
  Result<simdb::Catalog> catalog =
      BuildTraceCatalog(options_.background.catalog);
  if (!catalog.ok()) return catalog.status();

  const std::unique_ptr<StrategyPlayer> truthful = MakeTruthfulPlayer();
  Result<RunOutput> truthful_run =
      RunProgram(options_, trace_, *truthful);
  if (!truthful_run.ok()) return truthful_run.status();
  Result<RunOutput> strategic_run = RunProgram(options_, trace_, player);
  if (!strategic_run.ok()) return strategic_run.status();

  Result<RunMetrics> truthful_metrics =
      Measure(*catalog, config, *truthful_run);
  if (!truthful_metrics.ok()) return truthful_metrics.status();
  Result<RunMetrics> strategic_metrics =
      Measure(*catalog, config, *strategic_run);
  if (!strategic_metrics.ok()) return strategic_metrics.status();

  AttackOutcome outcome;
  outcome.player = player.name();
  outcome.mechanism = options_.background.mechanism;
  outcome.periods = options_.background.periods;
  outcome.truthful_utility = truthful_metrics->utility;
  outcome.strategic_utility = strategic_metrics->utility;
  outcome.gain = outcome.strategic_utility - outcome.truthful_utility;
  outcome.cost_recovery_error = truthful_metrics->cost_recovery_error;
  outcome.regret = truthful_metrics->regret;
  for (const PeriodTrack& track : truthful_run->periods) {
    outcome.truthful_report_lines.push_back(track.line);
  }
  for (const PeriodTrack& track : strategic_run->periods) {
    outcome.strategic_report_lines.push_back(track.line);
  }
  return outcome;
}

Result<std::vector<std::string>> TraceRequestLines(const TraceConfig& config,
                                                   const Trace& trace,
                                                   const std::string& tenancy) {
  OPTSHARE_RETURN_NOT_OK(config.Validate());
  if (trace.periods.size() != static_cast<size_t>(config.periods) ||
      trace.slots_per_period != config.slots_per_period) {
    return Status::InvalidArgument("trace does not match the config");
  }
  const int z = config.slots_per_period;
  std::vector<std::string> lines;
  for (int p = 1; p <= config.periods; ++p) {
    Request open = TenancyRequest(Op::kOpenPeriod, tenancy);
    if (p == 1) {
      open.catalog = CatalogSpecFromTrace(config.catalog);
      open.config = ConfigFromTrace(config);
    }
    lines.push_back(service::protocol::ToJson(open).Dump());
    SlotProgram program =
        LayoutPeriod(trace.periods[static_cast<size_t>(p - 1)], z);
    for (TimeSlot s = 1; s <= z; ++s) {
      if (!program.submits[static_cast<size_t>(s - 1)].empty()) {
        Request submit = TenancyRequest(Op::kSubmit, tenancy);
        submit.tenants = program.submits[static_cast<size_t>(s - 1)];
        lines.push_back(service::protocol::ToJson(submit).Dump());
      }
      for (int id : program.departs[static_cast<size_t>(s - 1)]) {
        Request depart = TenancyRequest(Op::kDepart, tenancy);
        depart.tenant = id;
        lines.push_back(service::protocol::ToJson(depart).Dump());
      }
      Request advance = TenancyRequest(Op::kAdvanceSlot, tenancy);
      advance.slots = 1;
      lines.push_back(service::protocol::ToJson(advance).Dump());
    }
    Request close = TenancyRequest(Op::kClosePeriod, tenancy);
    lines.push_back(service::protocol::ToJson(close).Dump());
  }
  return lines;
}

}  // namespace optshare::strategy
