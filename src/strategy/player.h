// Strategy players: the attack taxonomy for the strategy lab. A player
// turns one strategist tenant's *true* demand into the identities she
// submits over the wire — what she declares, what she actually runs, and
// when she leaves — so the harness (strategy/harness.h) can replay the
// same period with and without the lie and measure what the lie bought.
//
// The taxonomy mirrors the manipulation channels the paper's mechanisms
// must close:
//
//   truthful        declare exactly the true demand (the counterfactual)
//   misreport:F     scale the declared intensity by F (understate demand,
//                   hoping to pay less for the same access)
//   sybil:K         split one tenant into K identities, each running 1/K
//                   of the true workload (dilute per-identity shares)
//   delay:D         arrive D slots late, hoping the structure is already
//                   funded by the others (the timing game)
//   freeride        declare (nearly) zero demand while still running the
//                   true workload — profitable only if access is granted
//                   to non-payers, as the naive baseline does on carried
//                   structures
//
// Players are deterministic: the same truth produces the same move, so
// harness runs are bit-reproducible.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "simdb/pricing.h"

namespace optshare::strategy {

/// One identity the strategist operates: what she tells the marketplace
/// and what she truly runs. For honest identities the two coincide; the
/// gap between them is the lie the mechanism must not reward.
struct StrategistIdentity {
  simdb::SimUser declared;  ///< Submitted over the wire.
  simdb::SimUser actual;    ///< Basis of her realized value.
};

/// The strategist's play for one period.
struct StrategistMove {
  std::vector<StrategistIdentity> identities;  ///< At least one.
  /// If set, every identity departs after this slot (wire `depart` sent
  /// before the slot advances, matching PricingSession::Depart semantics).
  std::optional<TimeSlot> depart_after;
};

/// One attack strategy.
class StrategyPlayer {
 public:
  virtual ~StrategyPlayer() = default;
  /// The spec string that recreates this player ("misreport:0.25", ...).
  virtual std::string name() const = 0;
  /// The move for one period. `truth` is the strategist's real demand,
  /// already clipped to [1, slots_per_period].
  virtual StrategistMove Declare(const simdb::SimUser& truth,
                                 int slots_per_period) const = 0;
};

/// Declares the truth; every attack is measured against this baseline.
std::unique_ptr<StrategyPlayer> MakeTruthfulPlayer();
/// Declares executions_per_slot scaled by `factor` (true demand unchanged).
std::unique_ptr<StrategyPlayer> MakeMisreportPlayer(double factor);
/// Splits the true workload across `identities` equal identities.
std::unique_ptr<StrategyPlayer> MakeSybilPlayer(int identities);
/// Arrives `delay` slots after the true start (clamped to the interval).
std::unique_ptr<StrategyPlayer> MakeDelayPlayer(int delay);
/// Declares a vanishing intensity while truly running the full workload.
std::unique_ptr<StrategyPlayer> MakeFreeRidePlayer();

/// Parses a player spec string: "truthful", "misreport:<factor>",
/// "sybil:<k>", "delay:<slots>", "freeride". Typed InvalidArgument on
/// unknown names or out-of-range parameters.
Result<std::unique_ptr<StrategyPlayer>> MakePlayer(const std::string& spec);

/// Every spec the CLI sweep runs by default (one per taxonomy row).
std::vector<std::string> DefaultAttackSpecs();

}  // namespace optshare::strategy
