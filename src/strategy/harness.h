// StrategyHarness: the system-level incentive probe. Where
// core_truthfulness_test checks the mechanisms' properties on hand-built
// games in-process, the harness attacks the whole stack: it boots a real
// MarketplaceServer behind a NetServer, drives a multi-period tenancy over
// the v2 wire protocol with NetClient — a trace-generated background
// population plus one strategist — and replays the identical program twice,
// once with the strategist truthful and once playing an attack
// (strategy/player.h). The attack's worth is then measured in *realized*
// terms:
//
//   gain                 strategist's realized utility (true value of the
//                        slots she was actually serviced in, minus her
//                        ledger payments over all her identities) under the
//                        attack, minus the same quantity when truthful. A
//                        truthful mechanism keeps this <= epsilon; the
//                        naive baseline pays attackers.
//   cost_recovery_error  max over periods of |total cost - sum of
//                        payments| / total cost (truthful run).
//   regret               max over periods of the hindsight-welfare
//                        shortfall: the best single-period welfare any
//                        structure choice could have achieved against the
//                        *true* demands, minus the welfare achieved.
//
// Realized value is rebuilt from StructureOutcome::serviced (who was
// serviced from which slot) and per-slot true rates recomputed through the
// advisor's own scoring (ProposalUserSavings on a one-slot copy of the
// true demand) — declared ledger values are never trusted, which is the
// whole point. Every run is deterministic: the same options produce
// bit-identical PeriodReport lines.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "service/cloud_service.h"
#include "strategy/player.h"
#include "strategy/trace.h"

namespace optshare::strategy {

/// One harness setup: the background world plus the strategist's truth.
struct StrategyOptions {
  /// Background population, catalog, mechanism, periods and slots. The
  /// harness runs config.periods periods (>= 2 gives carried structures).
  TraceConfig background;
  /// The strategist's true per-period demand (interval within
  /// [1, background.slots_per_period]).
  simdb::SimUser strategist;
  /// Worker threads for the MarketplaceServer under test.
  int num_workers = 2;
};

/// What one attack bought, against the truthful counterfactual.
struct AttackOutcome {
  std::string player;     ///< Player spec (player.h name()).
  std::string mechanism;  ///< From the background config.
  int periods = 0;
  double truthful_utility = 0.0;
  double strategic_utility = 0.0;
  double gain = 0.0;  ///< strategic_utility - truthful_utility.
  double cost_recovery_error = 0.0;
  double regret = 0.0;
  /// Canonical protocol::ToJson(report).Dump() per period — the
  /// determinism surface (identical options must reproduce these bytes).
  std::vector<std::string> truthful_report_lines;
  std::vector<std::string> strategic_report_lines;
};

JsonValue ToJson(const AttackOutcome& outcome);

class StrategyHarness {
 public:
  /// Validates the options (background config validity, strategist
  /// interval in range).
  static Result<StrategyHarness> Make(StrategyOptions options);

  /// Runs the attack and its truthful counterfactual over the wire and
  /// measures the outcome.
  Result<AttackOutcome> Run(const StrategyPlayer& player);

  const StrategyOptions& options() const { return options_; }

 private:
  explicit StrategyHarness(StrategyOptions options, Trace trace)
      : options_(std::move(options)), trace_(std::move(trace)) {}

  StrategyOptions options_;
  Trace trace_;  ///< Expanded background population.
};

/// The wire program of a bare trace (no strategist): open_period, slot-major
/// submit/depart/advance, close_period per period — one request per line,
/// ready for HandleLine, the dispatcher, or a NetClient. The soak suite and
/// `optshare_cli attack --dry-run` both replay these.
Result<std::vector<std::string>> TraceRequestLines(const TraceConfig& config,
                                                   const Trace& trace,
                                                   const std::string& tenancy);

}  // namespace optshare::strategy
