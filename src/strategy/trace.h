// Trace-shaped workload engine: a small JSON scenario-config format that
// describes a multi-period tenant population — diurnal arrival cycles,
// flash crowds, heavy-tailed tenant sizes, correlated mass-departures —
// and a deterministic generator that expands a config into a Trace: the
// per-period tenant draws plus departure events, ready to drive a
// PricingSession or a MarketplaceServer period.
//
// One config document, many consumers: the CLI (`sample trace`,
// `serve --scenario-file`, `attack`), the strategy harness
// (strategy/harness.h), `bench/strategy_sweep.cc`, and the soak/shape
// suites all expand configs through this one loader, and the canned
// presets in simdb/scenarios.cc are themselves expressed as config
// documents (strategy::PresetConfigDocument) so the scenario zoo and the
// trace engine cannot drift apart.
//
// A document looks like:
//
//   {"name": "flash-telemetry", "seed": 7, "periods": 3,
//    "slots_per_period": 24, "mechanism": "addon",
//    "catalog": {"tables": [{"name": "telemetry", "row_count": 1000000000,
//       "columns": [{"name": "device", "type": "int64",
//                    "distinct_values": 5000000}]}]},
//    "classes": [
//      {"name": "steady", "count": 40,
//       "workloads": [[{"frequency": 1, "query": {"table": "telemetry",
//          "aggregate": true,
//          "predicates": [{"column": "device", "selectivity": 2e-7}]}}]],
//       "executions": {"pareto": {"scale": 50, "alpha": 1.3, "cap": 50000}},
//       "interval": {"kind": "sampled",
//                    "arrival": {"process": "diurnal", "amplitude": 0.8,
//                                "wavelength": 24, "phase": 0},
//                    "duration": {"to_horizon": true}}}],
//    "departures": [{"period": 2, "slot": 12, "fraction": 0.5,
//                    "class": "steady"}]}
//
// Parsing is strict in the wire-protocol style (service/protocol.h):
// unknown fields, missing fields and type mismatches are rejected with a
// typed InvalidArgument whose message names the context — never a crash
// (the loader is fuzzed in tests/strategy_fuzz_test.cc). Generation is
// bit-deterministic: the same document produces byte-identical traces on
// every platform (common/rng.h samplers only).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/types.h"
#include "simdb/catalog.h"
#include "simdb/pricing.h"
#include "simdb/schema.h"
#include "workload/arrival.h"

namespace optshare::strategy {

/// How a tenant's arrival slot is drawn within the period.
struct ArrivalSpec {
  enum class Process {
    kUniform,  ///< workload/arrival.h: s ~ U{1..z}.
    kEarly,    ///< workload/arrival.h: exponential clustering at slot 1.
    kLate,     ///< workload/arrival.h: reflected exponential at slot z.
    kDiurnal,  ///< Sinusoidal slot weights: 1 + amplitude*sin(2π(s-1+phase)/wavelength).
    kFlash,    ///< Uniform base load plus a crowd spike around peak_slot.
  };
  Process process = Process::kUniform;
  /// Mean of the early/late exponential (paper §7.5 defaults).
  double mean = 1.28;
  // Diurnal cycle.
  double amplitude = 0.8;    ///< In [0, 1): modulation depth of the cycle.
  double wavelength = 12.0;  ///< Slots per cycle.
  double phase = 0.0;        ///< Offset in slots.
  // Flash crowd.
  TimeSlot peak_slot = 1;    ///< Center of the spike.
  int width = 0;             ///< Spike half-width in slots.
  double multiplier = 10.0;  ///< Weight of a spike slot vs a base slot (>= 1).
};

/// How long a sampled tenant stays from her arrival slot.
struct DurationSpec {
  enum class Kind { kToHorizon, kFixed, kUniform };
  Kind kind = Kind::kToHorizon;
  int fixed = 1;
  int lo = 1, hi = 1;  ///< Uniform duration bounds (inclusive).
};

/// A tenant's subscription interval within the period.
struct IntervalSpec {
  enum class Kind {
    kFull,       ///< [1, slots_per_period].
    kStaggered,  ///< start = 1 + (i % modulo), end = min(start + span, z).
    kSampled,    ///< Arrival process + duration draw.
  };
  Kind kind = Kind::kFull;
  int modulo = 1;  ///< Staggered: arrival cycle length (>= 1).
  int span = 0;    ///< Staggered: slots past the start (clipped to z).
  ArrivalSpec arrival;
  DurationSpec duration;
};

/// How a tenant's per-slot intensity (executions_per_slot) is drawn.
struct ExecutionsSpec {
  enum class Kind { kFixed, kCycle, kUniform, kPareto };
  Kind kind = Kind::kFixed;
  double fixed = 1.0;
  std::vector<double> cycle;  ///< Member i draws cycle[i % size].
  double lo = 0.0, hi = 0.0;  ///< Uniform bounds.
  // Heavy tail: x = scale * U^(-1/alpha), optionally capped.
  double scale = 1.0;
  double alpha = 1.5;
  double cap = 0.0;  ///< 0 = uncapped.
};

/// A homogeneous group of tenants drawn from shared distributions.
struct TenantClass {
  std::string name;
  int count = 0;
  /// Workload templates; member i runs workloads[i % size].
  std::vector<simdb::Workload> workloads;
  ExecutionsSpec executions;
  IntervalSpec interval;
};

/// A correlated mass-departure: at `slot` of `period`, `fraction` of the
/// then-present tenants of `class_name` (all classes when empty) leave.
struct DepartureSpec {
  int period = 0;  ///< 1-based; 0 = fires every period.
  TimeSlot slot = 1;
  double fraction = 1.0;
  std::string class_name;
};

/// Where the tenancy's catalog comes from: a canned simdb scenario by name
/// ("clickstream", "retail", "telemetry") or inline table definitions.
/// Mirrors the wire CatalogSpec so a config maps 1:1 onto open_period.
struct TraceCatalog {
  std::string scenario;  ///< Empty = inline tables.
  int scenario_tenants = 6;
  int scenario_slots = 12;
  std::vector<simdb::TableDef> tables;
};

/// One parsed scenario-config document.
struct TraceConfig {
  std::string name;
  uint64_t seed = 1;
  int periods = 1;
  int slots_per_period = 12;
  std::string mechanism = "addon";
  double maintenance_fraction = 0.25;
  TraceCatalog catalog;
  std::vector<TenantClass> classes;
  std::vector<DepartureSpec> departures;

  /// Structural validity (also enforced by the parser; callers building
  /// configs in C++ get the same typed errors).
  Status Validate() const;
};

/// Strict parse of a config document (see the header comment for the
/// schema). Unknown fields, wrong types and out-of-range values are all
/// typed InvalidArgument errors naming the offending context.
Result<TraceConfig> TraceConfigFromJson(const JsonValue& doc);
/// Parse from raw text (the CLI/file path); parse errors included.
Result<TraceConfig> ParseTraceConfig(std::string_view text);
/// Serializes a config back to its document form. Round-trips:
/// TraceConfigFromJson(ToJson(c)) reproduces c and re-serializes
/// byte-identically (JsonValue objects sort keys).
JsonValue ToJson(const TraceConfig& config);

/// One generated tenant: the draw plus where it came from.
struct TraceTenant {
  simdb::SimUser tenant;
  int class_index = 0;   ///< Into TraceConfig::classes.
  int member_index = 0;  ///< Position within the class.
};

/// A departure event: tenant `tenant_index` (into TracePeriod::tenants) is
/// present through `slot` and gone afterwards.
struct TraceDeparture {
  TimeSlot slot = 1;
  int tenant_index = 0;
};

/// One period's expanded events, in generation order (class-major; the
/// wire submission order is slot-major — see TraceProgram in
/// strategy/harness.h).
struct TracePeriod {
  std::vector<TraceTenant> tenants;
  std::vector<TraceDeparture> departures;  ///< Sorted by (slot, index).
};

/// A fully expanded trace.
struct Trace {
  std::string name;
  uint64_t seed = 1;
  int slots_per_period = 12;
  std::vector<TracePeriod> periods;
};

/// Expands a config deterministically: same config (and therefore seed) →
/// byte-identical Trace on every run and platform. Each period draws from
/// an independent forked stream, so editing period p's population never
/// perturbs period q != p.
Result<Trace> GenerateTrace(const TraceConfig& config);

/// Serializes a trace (the determinism suite compares Dump() bytes).
JsonValue ToJson(const Trace& trace);

/// The canned scenario presets of simdb/scenarios.cc, re-expressed as
/// config documents ("clickstream", "retail", "telemetry", sized like the
/// C++ entry points). The adapters in scenarios.cc expand exactly these
/// documents, and tests/strategy_trace_test.cc pins the draws bit-identical
/// to the historical formulas. Unknown names: InvalidArgument.
Result<JsonValue> PresetConfigDocument(const std::string& name,
                                       int num_tenants, int num_slots);

/// Materializes the config's catalog: a canned scenario's catalog by name
/// (its tenants are discarded, as on the wire) or the inline tables. The
/// same expansion MarketplaceServer applies to a wire CatalogSpec.
Result<simdb::Catalog> BuildTraceCatalog(const TraceCatalog& catalog);

// -- Shape measurement (tests + bench assertions) ---------------------------

/// Arrival histogram of one period: counts[s-1] = tenants with start == s.
std::vector<int> ArrivalHistogram(const TracePeriod& period, int num_slots);

/// Largest executions_per_slot divided by the median — the heavy-tail
/// statistic the shape tests gate on (Pareto draws push it far above any
/// bounded distribution). 0 when the period is empty.
double TailRatio(const TracePeriod& period);

}  // namespace optshare::strategy
