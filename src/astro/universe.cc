#include "astro/universe.h"

#include <cassert>
#include <cmath>

namespace optshare::astro {
namespace {

/// Standard normal via Box-Muller on the deterministic RNG.
double Gaussian(Rng& rng) {
  double u1;
  do {
    u1 = rng.NextDouble();
  } while (u1 <= 0.0);
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double WrapIntoBox(double v, double box) {
  v = std::fmod(v, box);
  return v < 0 ? v + box : v;
}

}  // namespace

Status UniverseParams::Validate() const {
  if (num_snapshots < 1) {
    return Status::InvalidArgument("need at least one snapshot");
  }
  if (num_halos < 1) return Status::InvalidArgument("need at least one halo");
  if (particles_per_halo < 1) {
    return Status::InvalidArgument("need at least one particle per halo");
  }
  if (!(box_size > 0.0) || !(halo_sigma > 0.0)) {
    return Status::InvalidArgument("box size and halo sigma must be positive");
  }
  if (merge_probability < 0.0 || merge_probability > 1.0) {
    return Status::InvalidArgument("merge probability must be in [0, 1]");
  }
  if (!(mass_min > 0.0) || mass_max < mass_min) {
    return Status::InvalidArgument("mass range must satisfy 0 < min <= max");
  }
  return Status::OK();
}

UniverseSimulator::UniverseSimulator(UniverseParams params)
    : params_(params) {}

std::vector<Snapshot> UniverseSimulator::Run() {
  assert(params_.Validate().ok());
  Rng rng(params_.seed);
  const int n_halos = params_.num_halos;
  const int n_particles = num_particles();

  // Halo state: center coordinates and whether the halo has been absorbed
  // into another (alive[h] == false after a merger).
  std::vector<double> cx(static_cast<size_t>(n_halos));
  std::vector<double> cy(static_cast<size_t>(n_halos));
  std::vector<double> cz(static_cast<size_t>(n_halos));
  std::vector<bool> alive(static_cast<size_t>(n_halos), true);
  for (int h = 0; h < n_halos; ++h) {
    cx[static_cast<size_t>(h)] = rng.Uniform(0.0, params_.box_size);
    cy[static_cast<size_t>(h)] = rng.Uniform(0.0, params_.box_size);
    cz[static_cast<size_t>(h)] = rng.Uniform(0.0, params_.box_size);
  }

  // Particle state: owning halo and fixed mass.
  std::vector<int> owner(static_cast<size_t>(n_particles));
  std::vector<double> mass(static_cast<size_t>(n_particles));
  for (int p = 0; p < n_particles; ++p) {
    owner[static_cast<size_t>(p)] = p % n_halos;
    mass[static_cast<size_t>(p)] = rng.Uniform(params_.mass_min,
                                               params_.mass_max);
  }

  std::vector<Snapshot> snapshots;
  snapshots.reserve(static_cast<size_t>(params_.num_snapshots));
  true_membership_.clear();
  true_membership_.reserve(static_cast<size_t>(params_.num_snapshots));

  for (int t = 1; t <= params_.num_snapshots; ++t) {
    if (t > 1) {
      // Drift surviving halo centers.
      for (int h = 0; h < n_halos; ++h) {
        if (!alive[static_cast<size_t>(h)]) continue;
        cx[static_cast<size_t>(h)] = WrapIntoBox(
            cx[static_cast<size_t>(h)] + params_.drift_sigma * Gaussian(rng),
            params_.box_size);
        cy[static_cast<size_t>(h)] = WrapIntoBox(
            cy[static_cast<size_t>(h)] + params_.drift_sigma * Gaussian(rng),
            params_.box_size);
        cz[static_cast<size_t>(h)] = WrapIntoBox(
            cz[static_cast<size_t>(h)] + params_.drift_sigma * Gaussian(rng),
            params_.box_size);
      }
      // Occasional mergers: an alive halo is absorbed by another alive
      // halo; its particles change owner (hierarchical structure growth).
      for (int h = 0; h < n_halos; ++h) {
        if (!alive[static_cast<size_t>(h)]) continue;
        if (!rng.Bernoulli(params_.merge_probability)) continue;
        // Pick the absorber uniformly among other alive halos.
        int target = -1;
        int alive_others = 0;
        for (int g = 0; g < n_halos; ++g) {
          if (g != h && alive[static_cast<size_t>(g)]) ++alive_others;
        }
        if (alive_others == 0) continue;
        int pick = static_cast<int>(rng.UniformInt(0, alive_others - 1));
        for (int g = 0; g < n_halos; ++g) {
          if (g != h && alive[static_cast<size_t>(g)] && pick-- == 0) {
            target = g;
            break;
          }
        }
        alive[static_cast<size_t>(h)] = false;
        for (int p = 0; p < n_particles; ++p) {
          if (owner[static_cast<size_t>(p)] == h) {
            owner[static_cast<size_t>(p)] = target;
          }
        }
      }
    }

    Snapshot snap;
    snap.index = t;
    snap.particles.reserve(static_cast<size_t>(n_particles));
    for (int p = 0; p < n_particles; ++p) {
      const int h = owner[static_cast<size_t>(p)];
      Particle particle;
      particle.id = p;
      particle.mass = mass[static_cast<size_t>(p)];
      particle.x = WrapIntoBox(
          cx[static_cast<size_t>(h)] + params_.halo_sigma * Gaussian(rng),
          params_.box_size);
      particle.y = WrapIntoBox(
          cy[static_cast<size_t>(h)] + params_.halo_sigma * Gaussian(rng),
          params_.box_size);
      particle.z = WrapIntoBox(
          cz[static_cast<size_t>(h)] + params_.halo_sigma * Gaussian(rng),
          params_.box_size);
      snap.particles.push_back(particle);
    }
    snapshots.push_back(std::move(snap));
    true_membership_.push_back(owner);
  }
  return snapshots;
}

}  // namespace optshare::astro
