// Analysis statistics astronomers compute over halo catalogs (paper §2:
// "three or four different halo mass ranges that different people focus
// on"): the halo mass function (counts per logarithmic mass bin), mass-band
// selection used to build the γ target sets, and merger rates between
// snapshots. These drive workload construction and the examples.
#pragma once

#include <vector>

#include "common/status.h"
#include "astro/halo_finder.h"

namespace optshare::astro {

/// Halo mass function: halo counts in logarithmic mass bins.
struct MassFunction {
  double log10_min = 0.0;   ///< Lower edge of the first bin.
  double bin_width = 0.25;  ///< Bin width in log10(mass).
  std::vector<int> counts;

  int TotalHalos() const;
};

/// Computes the mass function of one catalog with `num_bins` bins spanning
/// [min halo mass, max halo mass]. Requires a non-empty catalog and
/// num_bins >= 1.
Result<MassFunction> ComputeMassFunction(const HaloCatalog& catalog,
                                         int num_bins);

/// Mass bands of §2 ("cluster", "Milky Way", "sub-Milky-Way", "dwarf"),
/// defined by quartiles of the catalog's halo masses.
enum class MassBand { kDwarf = 0, kSubMilkyWay = 1, kMilkyWay = 2, kCluster = 3 };

/// Halos of the catalog falling in the requested quartile band, heaviest
/// band = kCluster. Requires a non-empty catalog.
Result<std::vector<int>> HalosInBand(const HaloCatalog& catalog,
                                     MassBand band);

/// Merger statistics between two consecutive catalogs: how many halos of
/// `earlier` merged (their particles' plurality-successor halo is shared
/// with another earlier halo).
struct MergerStats {
  int earlier_halos = 0;
  int later_halos = 0;
  /// Earlier halos whose plurality successor also absorbs another earlier
  /// halo (i.e. participated in a merger).
  int merged = 0;

  double MergerFraction() const {
    return earlier_halos > 0
               ? static_cast<double>(merged) / earlier_halos
               : 0.0;
  }
};

/// Computes merger stats; the two catalogs must describe the same particle
/// set (equal halo_of sizes).
Result<MergerStats> ComputeMergerStats(const HaloCatalog& earlier,
                                       const HaloCatalog& later);

}  // namespace optshare::astro
