#include "astro/merger_tree.h"

#include <unordered_map>

namespace optshare::astro {

MergerTreeEngine::MergerTreeEngine(const std::vector<Snapshot>* snapshots,
                                   const std::vector<HaloCatalog>* catalogs)
    : snapshots_(snapshots), catalogs_(catalogs),
      has_view_(snapshots->size(), false) {}

void MergerTreeEngine::SetAvailableViews(std::vector<bool> has_view) {
  has_view.resize(snapshots_->size(), false);
  has_view_ = std::move(has_view);
}

Status MergerTreeEngine::CheckIndex(int idx) const {
  if (idx < 0 || idx >= static_cast<int>(snapshots_->size())) {
    return Status::OutOfRange("snapshot index out of range");
  }
  return Status::OK();
}

std::vector<int> MergerTreeEngine::ResolveMembership(
    int idx, const std::vector<int>& particle_ids) {
  const HaloCatalog& catalog = (*catalogs_)[static_cast<size_t>(idx)];
  if (has_view_[static_cast<size_t>(idx)]) {
    stats_.view_lookups += static_cast<int64_t>(particle_ids.size());
  } else {
    stats_.rows_scanned += static_cast<int64_t>(catalog.halo_of.size());
  }
  std::vector<int> membership;
  membership.reserve(particle_ids.size());
  for (int pid : particle_ids) {
    membership.push_back(catalog.halo_of[static_cast<size_t>(pid)]);
  }
  return membership;
}

std::vector<int> MergerTreeEngine::ParticlesOfHalo(int idx, int halo) {
  const HaloCatalog& catalog = (*catalogs_)[static_cast<size_t>(idx)];
  // Inverting particle -> halo needs a pass either way, but the
  // materialized view is a compact two-column relation: scanning it is far
  // cheaper than deriving membership from the raw particle data.
  if (has_view_[static_cast<size_t>(idx)]) {
    stats_.view_lookups += static_cast<int64_t>(catalog.halo_of.size());
  } else {
    stats_.rows_scanned += static_cast<int64_t>(catalog.halo_of.size());
  }
  std::vector<int> ids;
  for (size_t i = 0; i < catalog.halo_of.size(); ++i) {
    if (catalog.halo_of[i] == halo) ids.push_back(static_cast<int>(i));
  }
  return ids;
}

Result<int> MergerTreeEngine::ProgenitorByCount(int at_idx, int halo,
                                                int from_idx) {
  OPTSHARE_RETURN_NOT_OK(CheckIndex(at_idx));
  OPTSHARE_RETURN_NOT_OK(CheckIndex(from_idx));
  if (at_idx == from_idx) {
    return Status::InvalidArgument("progenitor snapshot equals target");
  }
  const HaloCatalog& at = (*catalogs_)[static_cast<size_t>(at_idx)];
  if (halo < 0 || halo >= at.num_halos()) {
    return Status::OutOfRange("halo id out of range");
  }
  ++stats_.queries_run;

  const std::vector<int> members = ParticlesOfHalo(at_idx, halo);
  const std::vector<int> origin = ResolveMembership(from_idx, members);

  std::unordered_map<int, int> counts;
  for (int h : origin) {
    if (h >= 0) ++counts[h];
  }
  int best = -1, best_count = 0;
  for (const auto& [h, c] : counts) {
    if (c > best_count || (c == best_count && best >= 0 && h < best)) {
      best = h;
      best_count = c;
    }
  }
  return best;
}

Result<std::vector<ChainLink>> MergerTreeEngine::TraceChain(int final_halo,
                                                            int stride) {
  if (stride < 1) return Status::InvalidArgument("stride must be >= 1");
  const int last = static_cast<int>(snapshots_->size()) - 1;
  OPTSHARE_RETURN_NOT_OK(CheckIndex(last));
  const HaloCatalog& final_catalog = (*catalogs_)[static_cast<size_t>(last)];
  if (final_halo < 0 || final_halo >= final_catalog.num_halos()) {
    return Status::OutOfRange("final halo id out of range");
  }

  std::vector<ChainLink> chain;
  chain.push_back(
      {(*snapshots_)[static_cast<size_t>(last)].index, final_halo, 0.0});

  int current_idx = last;
  int current_halo = final_halo;
  while (current_idx - stride >= 0) {
    const int prev_idx = current_idx - stride;
    ++stats_.queries_run;
    const std::vector<int> members = ParticlesOfHalo(current_idx, current_halo);
    const std::vector<int> origin = ResolveMembership(prev_idx, members);

    // Max *mass* contribution (query (b)).
    std::unordered_map<int, double> mass;
    const Snapshot& prev_snap = (*snapshots_)[static_cast<size_t>(prev_idx)];
    for (size_t k = 0; k < members.size(); ++k) {
      const int h = origin[k];
      if (h < 0) continue;
      mass[h] += prev_snap.particles[static_cast<size_t>(members[k])].mass;
    }
    int best = -1;
    double best_mass = 0.0;
    for (const auto& [h, m] : mass) {
      if (m > best_mass || (m == best_mass && best >= 0 && h < best)) {
        best = h;
        best_mass = m;
      }
    }
    if (best < 0) break;  // The halo has no traceable ancestor.
    chain.push_back({prev_snap.index, best, best_mass});
    current_idx = prev_idx;
    current_halo = best;
  }
  return chain;
}

}  // namespace optshare::astro
