// Friends-of-friends (FoF) halo finder, the clustering step astronomers run
// on every snapshot (paper §2). Particles closer than a linking length are
// "friends"; halos are the connected components. Implemented with a uniform
// spatial grid (cell = linking length) and union-find, O(n) expected for
// well-separated halos.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "astro/universe.h"

namespace optshare::astro {

/// Result of halo finding on one snapshot: a halo id per particle (halo ids
/// are dense, 0-based, ordered by discovery) plus per-halo aggregates.
struct HaloCatalog {
  /// halo_of[i] is the halo id of snapshot.particles[i] (particle ids are
  /// dense, so this doubles as the paper's (particleID, haloID) relation —
  /// exactly what the §7.2 materialized views store).
  std::vector<int> halo_of;
  /// Total mass per halo.
  std::vector<double> halo_mass;
  /// Particle count per halo.
  std::vector<int> halo_size;

  int num_halos() const { return static_cast<int>(halo_mass.size()); }

  /// Halo ids sorted by descending mass (ties by id) — "high mass
  /// corresponds to a cluster, then Milky Way mass, ..." (§2).
  std::vector<int> HalosByMass() const;
};

/// FoF parameters.
struct FofParams {
  double linking_length = 0.9;
  /// Halos with fewer particles are discarded as noise (their particles
  /// get halo id -1). 1 keeps everything.
  int min_halo_size = 1;
};

/// Runs FoF on one snapshot with periodic boundaries in a cubic box of
/// edge `box_size`. Returns an error for non-positive linking length or
/// box size.
Result<HaloCatalog> FindHalos(const Snapshot& snapshot, double box_size,
                              const FofParams& params = {});

/// Union-find over dense integer ids (exposed for tests).
class DisjointSets {
 public:
  explicit DisjointSets(int n);
  int Find(int x);
  void Union(int a, int b);
  int num_components() const { return components_; }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  int components_;
};

}  // namespace optshare::astro
