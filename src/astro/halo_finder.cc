#include "astro/halo_finder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace optshare::astro {

DisjointSets::DisjointSets(int n)
    : parent_(static_cast<size_t>(n)), rank_(static_cast<size_t>(n), 0),
      components_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

int DisjointSets::Find(int x) {
  while (parent_[static_cast<size_t>(x)] != x) {
    parent_[static_cast<size_t>(x)] =
        parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
    x = parent_[static_cast<size_t>(x)];
  }
  return x;
}

void DisjointSets::Union(int a, int b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  if (rank_[static_cast<size_t>(a)] < rank_[static_cast<size_t>(b)]) {
    std::swap(a, b);
  }
  parent_[static_cast<size_t>(b)] = a;
  if (rank_[static_cast<size_t>(a)] == rank_[static_cast<size_t>(b)]) {
    ++rank_[static_cast<size_t>(a)];
  }
  --components_;
}

namespace {

/// Packs three non-negative cell coordinates into one hashable key.
uint64_t CellKey(int cx, int cy, int cz) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 42) |
         (static_cast<uint64_t>(static_cast<uint32_t>(cy)) << 21) |
         static_cast<uint64_t>(static_cast<uint32_t>(cz));
}

/// Minimum-image distance squared under periodic boundaries.
double PeriodicDist2(const Particle& a, const Particle& b, double box) {
  auto axis = [box](double d) {
    d = std::abs(d);
    return std::min(d, box - d);
  };
  const double dx = axis(a.x - b.x);
  const double dy = axis(a.y - b.y);
  const double dz = axis(a.z - b.z);
  return dx * dx + dy * dy + dz * dz;
}

}  // namespace

Result<HaloCatalog> FindHalos(const Snapshot& snapshot, double box_size,
                              const FofParams& params) {
  if (!(box_size > 0.0)) {
    return Status::InvalidArgument("box size must be positive");
  }
  if (!(params.linking_length > 0.0)) {
    return Status::InvalidArgument("linking length must be positive");
  }
  if (params.min_halo_size < 1) {
    return Status::InvalidArgument("min halo size must be >= 1");
  }

  const int n = static_cast<int>(snapshot.particles.size());
  const double b = params.linking_length;
  const double b2 = b * b;
  const int cells = std::max(1, static_cast<int>(box_size / b));
  const double cell_size = box_size / cells;

  // Bucket particles into grid cells.
  std::unordered_map<uint64_t, std::vector<int>> grid;
  grid.reserve(static_cast<size_t>(n));
  auto cell_of = [&](double v) {
    int c = static_cast<int>(v / cell_size);
    if (c >= cells) c = cells - 1;
    if (c < 0) c = 0;
    return c;
  };
  for (int i = 0; i < n; ++i) {
    const Particle& p = snapshot.particles[static_cast<size_t>(i)];
    grid[CellKey(cell_of(p.x), cell_of(p.y), cell_of(p.z))].push_back(i);
  }

  // Link friends across each cell's 3x3x3 neighborhood (periodic wrap).
  DisjointSets sets(n);
  for (const auto& [key, members] : grid) {
    const int cx = static_cast<int>((key >> 42) & 0x1FFFFF);
    const int cy = static_cast<int>((key >> 21) & 0x1FFFFF);
    const int cz = static_cast<int>(key & 0x1FFFFF);
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          const int nx = (cx + dx + cells) % cells;
          const int ny = (cy + dy + cells) % cells;
          const int nz = (cz + dz + cells) % cells;
          auto it = grid.find(CellKey(nx, ny, nz));
          if (it == grid.end()) continue;
          for (int i : members) {
            for (int j : it->second) {
              if (j <= i) continue;  // Each pair once.
              if (PeriodicDist2(snapshot.particles[static_cast<size_t>(i)],
                                snapshot.particles[static_cast<size_t>(j)],
                                box_size) <= b2) {
                sets.Union(i, j);
              }
            }
          }
        }
      }
    }
  }

  // Densify component ids into halo ids and aggregate.
  HaloCatalog catalog;
  catalog.halo_of.assign(static_cast<size_t>(n), -1);
  std::unordered_map<int, int> root_to_halo;
  std::unordered_map<int, int> root_count;
  for (int i = 0; i < n; ++i) ++root_count[sets.Find(i)];

  for (int i = 0; i < n; ++i) {
    const int root = sets.Find(i);
    if (root_count[root] < params.min_halo_size) continue;  // Noise.
    auto [it, inserted] =
        root_to_halo.emplace(root, static_cast<int>(catalog.halo_mass.size()));
    if (inserted) {
      catalog.halo_mass.push_back(0.0);
      catalog.halo_size.push_back(0);
    }
    const int halo = it->second;
    catalog.halo_of[static_cast<size_t>(i)] = halo;
    catalog.halo_mass[static_cast<size_t>(halo)] +=
        snapshot.particles[static_cast<size_t>(i)].mass;
    ++catalog.halo_size[static_cast<size_t>(halo)];
  }
  return catalog;
}

std::vector<int> HaloCatalog::HalosByMass() const {
  std::vector<int> order(halo_mass.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    if (halo_mass[static_cast<size_t>(a)] != halo_mass[static_cast<size_t>(b)])
      return halo_mass[static_cast<size_t>(a)] >
             halo_mass[static_cast<size_t>(b)];
    return a < b;
  });
  return order;
}

}  // namespace optshare::astro
