#include "astro/astro_workload.h"

#include <algorithm>

namespace optshare::astro {

std::vector<int> SnapshotsForStride(int stride, int num_snapshots) {
  std::vector<int> out;
  for (int s = num_snapshots; s >= 1; s -= stride) out.push_back(s);
  return out;
}

double AstroWorkloadModel::BaselineDollarsPerExecution(int user) const {
  return runtime_sec[static_cast<size_t>(user)] / 3600.0 * instance_per_hour;
}

AstroWorkloadModel PaperWorkloadModel() {
  AstroWorkloadModel m;
  m.instance_per_hour = 0.50;

  // §7.2: per-execution runtimes without optimizations (minutes).
  const double runtime_min[kAstroUsers] = {81, 36, 16, 83, 44, 17};
  // Savings from the snapshot-27 view (cents per execution).
  const double final_view_cents[kAstroUsers] = {18, 7, 3, 16, 9, 4};
  // Savings from any other consulted view (cents per execution).
  const double other_view_cents = 1.0;
  // Strides: users 0-2 trace γ1, users 3-5 trace γ2.
  const int strides[kAstroUsers] = {1, 2, 4, 1, 2, 4};

  m.view_cost_dollars.assign(kAstroSnapshots, 2.31);  // §7.2 average cost.
  for (int u = 0; u < kAstroUsers; ++u) {
    m.runtime_sec.push_back(runtime_min[u] * 60.0);
    std::vector<double> savings(kAstroSnapshots, 0.0);
    for (int s : SnapshotsForStride(strides[u], kAstroSnapshots)) {
      savings[static_cast<size_t>(s - 1)] =
          (s == kAstroSnapshots ? final_view_cents[u] : other_view_cents) /
          100.0;
    }
    m.savings_dollars.push_back(std::move(savings));
  }
  return m;
}

Result<AstroWorkloadModel> MeasureWorkloads(
    const std::vector<Snapshot>& snapshots,
    const std::vector<HaloCatalog>& catalogs, const QueryCosts& costs,
    double instance_per_hour, double view_cost_dollars, int targets_per_set) {
  if (snapshots.empty() || snapshots.size() != catalogs.size()) {
    return Status::InvalidArgument(
        "need equally many snapshots and halo catalogs");
  }
  if (targets_per_set < 1) {
    return Status::InvalidArgument("need at least one target halo per set");
  }
  const int num_snaps = static_cast<int>(snapshots.size());
  const HaloCatalog& final_catalog = catalogs.back();
  if (final_catalog.num_halos() < 2 * targets_per_set) {
    return Status::FailedPrecondition(
        "final snapshot has too few halos for two disjoint target sets");
  }

  // γ1 = heaviest halos, γ2 = next heaviest — "different halo mass ranges
  // that different people focus on" (§2).
  const std::vector<int> by_mass = final_catalog.HalosByMass();
  std::vector<int> gamma1(by_mass.begin(), by_mass.begin() + targets_per_set);
  std::vector<int> gamma2(by_mass.begin() + targets_per_set,
                          by_mass.begin() + 2 * targets_per_set);

  const int strides[kAstroUsers] = {1, 2, 4, 1, 2, 4};
  const std::vector<int>* gammas[kAstroUsers] = {&gamma1, &gamma1, &gamma1,
                                                 &gamma2, &gamma2, &gamma2};

  MergerTreeEngine engine(&snapshots, &catalogs);

  // One user's workload: queries (a) and (b) for each target halo over her
  // snapshot set. Returns simulated seconds under the given view set.
  auto run_user = [&](int u, const std::vector<bool>& views) -> double {
    engine.SetAvailableViews(views);
    engine.ResetStats();
    const int stride = strides[u];
    for (int g : *gammas[u]) {
      // Query (b): the stride-spaced max-mass chain.
      auto chain = engine.TraceChain(g, stride);
      // Query (a): top particle contributor in each consulted snapshot.
      for (int s : SnapshotsForStride(stride, num_snaps)) {
        if (s == num_snaps) continue;
        auto pr = engine.ProgenitorByCount(num_snaps - 1, g, s - 1);
        (void)pr;
      }
      (void)chain;
    }
    return costs.Seconds(engine.stats());
  };

  AstroWorkloadModel model;
  model.instance_per_hour = instance_per_hour;
  model.view_cost_dollars.assign(static_cast<size_t>(num_snaps),
                                 view_cost_dollars);

  const std::vector<bool> no_views(static_cast<size_t>(num_snaps), false);
  for (int u = 0; u < kAstroUsers; ++u) {
    const double base_sec = run_user(u, no_views);
    model.runtime_sec.push_back(base_sec);
    std::vector<double> savings(static_cast<size_t>(num_snaps), 0.0);
    for (int s : SnapshotsForStride(strides[u], num_snaps)) {
      std::vector<bool> views = no_views;
      views[static_cast<size_t>(s - 1)] = true;
      const double with_view_sec = run_user(u, views);
      savings[static_cast<size_t>(s - 1)] =
          std::max(0.0, base_sec - with_view_sec) / 3600.0 * instance_per_hour;
    }
    model.savings_dollars.push_back(std::move(savings));
  }
  return model;
}

Result<MultiAdditiveOnlineGame> BuildAstroGame(const AstroWorkloadModel& model,
                                               const AstroGameSpec& spec) {
  if (static_cast<int>(spec.intervals.size()) != model.num_users()) {
    return Status::InvalidArgument("need one interval per user");
  }
  if (spec.num_slots < 1) {
    return Status::InvalidArgument("need at least one slot");
  }
  if (!(spec.executions >= 0.0)) {
    return Status::InvalidArgument("executions must be non-negative");
  }

  MultiAdditiveOnlineGame game;
  game.num_slots = spec.num_slots;
  game.costs = model.view_cost_dollars;

  for (int u = 0; u < model.num_users(); ++u) {
    const auto [s, e] = spec.intervals[static_cast<size_t>(u)];
    if (s < 1 || e < s || e > spec.num_slots) {
      return Status::InvalidArgument("user interval outside the horizon");
    }
    const double slots = static_cast<double>(e - s + 1);
    std::vector<SlotValues> row;
    row.reserve(static_cast<size_t>(model.num_views()));
    for (int j = 0; j < model.num_views(); ++j) {
      const double total =
          model.savings_dollars[static_cast<size_t>(u)][static_cast<size_t>(j)] *
          spec.executions;
      row.push_back(SlotValues::Constant(s, e, total / slots));
    }
    game.bids.push_back(std::move(row));
  }

  Status st = game.Validate();
  if (!st.ok()) return st;
  return game;
}

std::vector<std::pair<TimeSlot, TimeSlot>> AllIntervals(int num_slots) {
  std::vector<std::pair<TimeSlot, TimeSlot>> out;
  for (TimeSlot s = 1; s <= num_slots; ++s) {
    for (TimeSlot e = s; e <= num_slots; ++e) out.emplace_back(s, e);
  }
  return out;
}

std::vector<std::pair<TimeSlot, TimeSlot>> SampleIntervals(int num_slots,
                                                           int num_users,
                                                           Rng& rng) {
  const auto all = AllIntervals(num_slots);
  std::vector<std::pair<TimeSlot, TimeSlot>> out;
  out.reserve(static_cast<size_t>(num_users));
  for (int u = 0; u < num_users; ++u) {
    out.push_back(all[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(all.size()) - 1))]);
  }
  return out;
}

}  // namespace optshare::astro
