// Merger-tree queries over halo catalogs — the two query templates of the
// §7.2 workload:
//   (a) for a halo g in snapshot t, the halo in an earlier snapshot
//       contributing the most *particles* to g;
//   (b) the chain (h_1, ..., h_final = g) following, backward in time, the
//       progenitor contributing the most *mass*.
//
// The engine also does the bookkeeping that turns these logical queries
// into simulated runtimes: resolving the halo membership of a particle
// batch at snapshot τ costs a full scan of that snapshot's particle-halo
// association unless the (particleID, haloID) materialized view for τ is
// available, in which case it costs per-particle lookups. This is exactly
// the speedup the paper's per-snapshot materialized views buy.
#pragma once

#include <vector>

#include "common/status.h"
#include "astro/halo_finder.h"
#include "astro/universe.h"

namespace optshare::astro {

/// Simulated I/O counters accumulated by the engine.
struct OpStats {
  int64_t rows_scanned = 0;   ///< Rows touched via full association scans.
  int64_t view_lookups = 0;   ///< Point lookups through materialized views.
  int64_t queries_run = 0;

  void Reset() { *this = OpStats{}; }
};

/// Runtime model: converts operation counts into seconds.
struct QueryCosts {
  double sec_per_scanned_row = 2.0e-4;
  double sec_per_lookup = 1.0e-5;

  double Seconds(const OpStats& stats) const {
    return static_cast<double>(stats.rows_scanned) * sec_per_scanned_row +
           static_cast<double>(stats.view_lookups) * sec_per_lookup;
  }
};

/// One step of a traced chain.
struct ChainLink {
  int snapshot_index = 0;  ///< 1-based snapshot.
  int halo = -1;           ///< Halo id within that snapshot's catalog.
  double contributed_mass = 0.0;  ///< Mass it contributes to the next link.
};

/// Engine bound to a snapshot sequence and its halo catalogs
/// (catalogs[k] corresponds to snapshots[k]).
class MergerTreeEngine {
 public:
  MergerTreeEngine(const std::vector<Snapshot>* snapshots,
                   const std::vector<HaloCatalog>* catalogs);

  /// Marks the set of snapshots whose (particleID, haloID) view exists;
  /// has_view[k] guards snapshots[k]. Defaults to no views.
  void SetAvailableViews(std::vector<bool> has_view);

  /// Query (a): the halo of snapshots[from_idx] contributing the most
  /// particles to halo `halo` of snapshots[at_idx]. Returns -1 if no
  /// particle of the halo belongs to any halo there. Indices are 0-based
  /// positions in the snapshot vector; from_idx != at_idx.
  Result<int> ProgenitorByCount(int at_idx, int halo, int from_idx);

  /// Query (b): trace the max-mass-contribution chain of `final_halo`
  /// (halo id in the last snapshot) visiting every `stride`-th snapshot
  /// backward. The chain stops early if a step has no progenitor.
  Result<std::vector<ChainLink>> TraceChain(int final_halo, int stride);

  /// Simulated I/O counters since the last Reset.
  const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  /// Membership of the given particle ids at snapshot `idx`, with cost
  /// accounting: view -> per-particle lookups; no view -> full scan.
  std::vector<int> ResolveMembership(int idx,
                                     const std::vector<int>& particle_ids);
  /// Particle ids belonging to `halo` at snapshot `idx`. The inverse image
  /// requires a pass either way, but with the view it is a cheap scan of
  /// the compact (particleID, haloID) relation instead of a derivation
  /// from raw particle data.
  std::vector<int> ParticlesOfHalo(int idx, int halo);

  Status CheckIndex(int idx) const;

  const std::vector<Snapshot>* snapshots_;
  const std::vector<HaloCatalog>* catalogs_;
  std::vector<bool> has_view_;
  OpStats stats_;
};

}  // namespace optshare::astro
