#include "astro/statistics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace optshare::astro {

int MassFunction::TotalHalos() const {
  int sum = 0;
  for (int c : counts) sum += c;
  return sum;
}

Result<MassFunction> ComputeMassFunction(const HaloCatalog& catalog,
                                         int num_bins) {
  if (catalog.num_halos() == 0) {
    return Status::FailedPrecondition("catalog has no halos");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("need at least one bin");
  }
  double lo = catalog.halo_mass[0], hi = catalog.halo_mass[0];
  for (double m : catalog.halo_mass) {
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  if (!(lo > 0.0)) {
    return Status::FailedPrecondition("halo masses must be positive");
  }

  MassFunction mf;
  mf.log10_min = std::log10(lo);
  const double log_hi = std::log10(hi);
  mf.bin_width =
      std::max((log_hi - mf.log10_min) / num_bins, 1e-12);
  mf.counts.assign(static_cast<size_t>(num_bins), 0);
  for (double m : catalog.halo_mass) {
    int bin = static_cast<int>((std::log10(m) - mf.log10_min) / mf.bin_width);
    bin = std::clamp(bin, 0, num_bins - 1);
    ++mf.counts[static_cast<size_t>(bin)];
  }
  return mf;
}

Result<std::vector<int>> HalosInBand(const HaloCatalog& catalog,
                                     MassBand band) {
  if (catalog.num_halos() == 0) {
    return Status::FailedPrecondition("catalog has no halos");
  }
  const std::vector<int> by_mass = catalog.HalosByMass();  // Heaviest first.
  const int n = static_cast<int>(by_mass.size());
  // Quartiles over the mass-ranked list; kCluster = top quartile.
  const int quartile = 3 - static_cast<int>(band);
  const int begin = quartile * n / 4;
  const int end = (quartile + 1) * n / 4;
  std::vector<int> out(by_mass.begin() + begin,
                       by_mass.begin() + std::max(begin, end));
  if (out.empty() && n > 0) {
    // Tiny catalogs: fall back to the nearest halo by rank.
    out.push_back(by_mass[std::min(begin, n - 1)]);
  }
  return out;
}

Result<MergerStats> ComputeMergerStats(const HaloCatalog& earlier,
                                       const HaloCatalog& later) {
  if (earlier.halo_of.size() != later.halo_of.size()) {
    return Status::InvalidArgument(
        "catalogs describe different particle sets");
  }
  MergerStats stats;
  stats.earlier_halos = earlier.num_halos();
  stats.later_halos = later.num_halos();

  // Plurality successor of each earlier halo.
  std::vector<std::unordered_map<int, int>> successor_votes(
      static_cast<size_t>(earlier.num_halos()));
  for (size_t p = 0; p < earlier.halo_of.size(); ++p) {
    const int from = earlier.halo_of[p];
    const int to = later.halo_of[p];
    if (from >= 0 && to >= 0) {
      ++successor_votes[static_cast<size_t>(from)][to];
    }
  }
  std::vector<int> successor(static_cast<size_t>(earlier.num_halos()), -1);
  std::unordered_map<int, int> successors_in_use;
  for (int h = 0; h < earlier.num_halos(); ++h) {
    int best = -1, votes = 0;
    for (const auto& [to, v] : successor_votes[static_cast<size_t>(h)]) {
      if (v > votes || (v == votes && to < best)) {
        best = to;
        votes = v;
      }
    }
    successor[static_cast<size_t>(h)] = best;
    if (best >= 0) ++successors_in_use[best];
  }
  for (int h = 0; h < earlier.num_halos(); ++h) {
    const int s = successor[static_cast<size_t>(h)];
    if (s >= 0 && successors_in_use[s] > 1) ++stats.merged;
  }
  return stats;
}

}  // namespace optshare::astro
