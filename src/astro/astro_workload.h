// The §7.2 astronomy workload: six users tracing halo evolution (two halo
// sets γ1/γ2, each studied at snapshot strides 1, 2 and 4), the per-user
// runtimes and per-view savings, and the construction of the mechanism
// game (27 per-snapshot materialized views, quarterly slots, EC2 pricing).
//
// Two sources for the workload numbers:
//  * MeasureWorkloads() runs the real (simulated) pipeline — universe,
//    FoF, merger-tree queries — and measures runtimes with/without views.
//  * PaperWorkloadModel() returns the constants §7.2 reports (runtimes
//    81/36/16/83/44/17 min; snapshot-27 view savings 18/7/3/16/9/4 cents
//    per execution; 1 cent per other used view), used by the Figure 1
//    bench so the economic layer reproduces the paper exactly.
#pragma once

#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/game.h"
#include "astro/merger_tree.h"

namespace optshare::astro {

/// Number of users in the §7.2 study.
inline constexpr int kAstroUsers = 6;
/// Snapshots in the simulation trace.
inline constexpr int kAstroSnapshots = 27;

/// Which snapshots a user with the given stride consults: the final
/// snapshot and every `stride`-th one before it (1-based indices,
/// descending).
std::vector<int> SnapshotsForStride(int stride, int num_snapshots);

/// Per-user workload economics: per-execution runtime and per-execution
/// dollar savings from each candidate view.
struct AstroWorkloadModel {
  /// runtime_sec[u]: one workload execution without any views.
  std::vector<double> runtime_sec;
  /// savings_dollars[u][s]: dollars saved per execution by the view on
  /// snapshot s+1 (0 when the user does not consult that snapshot).
  std::vector<std::vector<double>> savings_dollars;
  /// Cost of each view for the subscription period.
  std::vector<double> view_cost_dollars;
  /// Instance $/hour used to monetize runtimes.
  double instance_per_hour = 0.50;

  int num_users() const { return static_cast<int>(runtime_sec.size()); }
  int num_views() const { return static_cast<int>(view_cost_dollars.size()); }

  /// Dollars one execution of user u's workload costs without views.
  double BaselineDollarsPerExecution(int user) const;
};

/// The paper's calibrated constants (see file comment).
AstroWorkloadModel PaperWorkloadModel();

/// Measures the workload model from an actual simulated universe: runs the
/// merger-tree queries of users {γ1, γ2} x strides {1, 2, 4} with and
/// without each per-snapshot view, converting operation counts to time via
/// `costs` and time to money via `instance_per_hour`. `targets_per_set`
/// controls how many top-mass halos each γ set traces.
Result<AstroWorkloadModel> MeasureWorkloads(
    const std::vector<Snapshot>& snapshots,
    const std::vector<HaloCatalog>& catalogs, const QueryCosts& costs,
    double instance_per_hour, double view_cost_dollars,
    int targets_per_set = 2);

/// Builds the Figure 1 game: every view is one additive optimization; user
/// u bids over her quarter interval, with her total `executions` spread
/// evenly across its slots.
struct AstroGameSpec {
  /// Quarters in the service year.
  int num_slots = 4;
  /// [start, end] quarter per user (1-based, inclusive).
  std::vector<std::pair<TimeSlot, TimeSlot>> intervals;
  /// Total workload executions per user over her interval.
  double executions = 1.0;
};

Result<MultiAdditiveOnlineGame> BuildAstroGame(const AstroWorkloadModel& model,
                                               const AstroGameSpec& spec);

/// All contiguous [s, e] intervals over `num_slots` slots (the 10 quarter
/// choices of §7.2; 10^6 combinations across six users).
std::vector<std::pair<TimeSlot, TimeSlot>> AllIntervals(int num_slots);

/// Draws one interval assignment (one interval per user) uniformly.
std::vector<std::pair<TimeSlot, TimeSlot>> SampleIntervals(int num_slots,
                                                           int num_users,
                                                           Rng& rng);

}  // namespace optshare::astro
