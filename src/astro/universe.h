// Procedural universe simulation — the substitute for the UW astronomy
// N-body dataset of paper §2 (see DESIGN.md §3). The universe is a set of
// particles grouped into halos; halos drift and occasionally merge across
// snapshots. Particle ids persist across snapshots, which is what makes
// merger-tree queries meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace optshare::astro {

/// One simulation particle (dark matter / gas / star abstracted away:
/// only position and mass matter to the queries).
struct Particle {
  int64_t id = 0;
  double x = 0.0, y = 0.0, z = 0.0;
  double mass = 1.0;
};

/// One snapshot: the state of all particles at a simulation step.
struct Snapshot {
  int index = 0;  ///< 1-based snapshot number.
  std::vector<Particle> particles;
};

/// Simulation parameters. Defaults produce a small universe adequate for
/// tests and examples; scale knobs let benches grow it.
struct UniverseParams {
  int num_snapshots = 27;      ///< The paper's workload traces 27.
  int num_halos = 16;          ///< Initial halo count.
  int particles_per_halo = 48;
  double box_size = 100.0;     ///< Periodic box edge length.
  double halo_sigma = 0.45;    ///< Gaussian radius of a halo.
  double drift_sigma = 0.25;   ///< Per-snapshot center drift.
  double merge_probability = 0.04;  ///< Per halo-pair-eligible step.
  double mass_min = 0.5, mass_max = 4.0;  ///< Particle mass range.
  uint64_t seed = 42;

  Status Validate() const;
};

/// Generates the snapshot sequence. Deterministic in the seed.
class UniverseSimulator {
 public:
  explicit UniverseSimulator(UniverseParams params);

  /// Runs the simulation and returns all snapshots in order.
  /// Precondition: params().Validate().ok().
  std::vector<Snapshot> Run();

  /// Ground-truth halo membership per snapshot (halo index per particle id)
  /// — used by tests to score the halo finder; real astronomers do not
  /// have this.
  const std::vector<std::vector<int>>& TrueMembership() const {
    return true_membership_;
  }

  const UniverseParams& params() const { return params_; }
  int num_particles() const {
    return params_.num_halos * params_.particles_per_halo;
  }

 private:
  UniverseParams params_;
  std::vector<std::vector<int>> true_membership_;
};

}  // namespace optshare::astro
