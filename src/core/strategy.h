// Strategy analysis: utilities a single user obtains from deviating bids.
// Used by the truthfulness property tests and by the examples to
// demonstrate strategy-proofness empirically.
//
// For online mechanisms, truthfulness is model-free (paper §5.2): a user
// evaluates her *worst-case* utility over future arrivals, and the paper
// shows the worst case is "no further bids arrive". The helpers here
// therefore run the game exactly as given (the no-future-arrivals
// completion) and report the deviating user's realized utility.
#pragma once

#include <vector>

#include "core/accounting.h"
#include "core/game.h"

namespace optshare {

/// Utility of user i in an offline additive game when she bids
/// `deviating_bids` (one bid per optimization) while everyone else bids
/// truthfully. `truth` holds true values for all users.
double AddOffUtilityUnderBid(const AdditiveOfflineGame& truth, UserId i,
                             const std::vector<double>& deviating_bids);

/// Utility of user i in an online additive game when she declares
/// `deviating_stream` instead of her true stream. Other users bid
/// truthfully; value is realized against her true stream.
double AddOnUtilityUnderBid(const AdditiveOnlineGame& truth, UserId i,
                            const SlotValues& deviating_stream);

/// Utility of user i in an offline substitutable game when she declares
/// (deviating_substitutes, deviating_value).
double SubstOffUtilityUnderBid(const SubstOfflineGame& truth, UserId i,
                               const std::vector<OptId>& deviating_substitutes,
                               double deviating_value);

/// Utility of user i in an online substitutable game under a deviating
/// declaration.
double SubstOnUtilityUnderBid(const SubstOnlineGame& truth, UserId i,
                              const SubstOnlineUser& deviation);

/// Candidate deviating bid values around the interesting thresholds of a
/// game: 0, each cost split by each possible coalition size, each user's
/// value, and small perturbations of these. Used to probe truthfulness
/// without exhaustively scanning the reals.
std::vector<double> CandidateDeviationBids(const std::vector<double>& costs,
                                           const std::vector<double>& values,
                                           int max_users);

}  // namespace optshare
