#include "core/add_on.h"

#include <algorithm>
#include <cassert>

#include "core/mechanism.h"

namespace optshare {

bool AddOnResult::InCumulative(UserId i, TimeSlot t) const {
  if (t < 1 || t > static_cast<TimeSlot>(cumulative.size())) return false;
  const auto& cs = cumulative[static_cast<size_t>(t - 1)];
  return std::binary_search(cs.begin(), cs.end(), i);
}

double AddOnResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

// Engine-backed since the unified-mechanism refactor: the slot loop runs in
// engine::RunAddOnEngine (residual suffix sums computed once, per-slot
// sorted prefix scans over present users only); this adapter materializes
// the legacy per-slot CS_j(t)/S_j(t) views from the engine's per-slot
// deltas. Results are identical to reference::RunAddOnDense.
AddOnResult RunAddOn(const AdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  const int z = game.num_slots;

  engine::OnlineAdditiveOutcome eng = engine::RunAddOnEngine(game);

  AddOnResult result;
  result.implemented = eng.implemented;
  result.implemented_at = eng.implemented_at;
  result.payments = std::move(eng.payments);
  result.cost_share = std::move(eng.slot_share);
  result.serviced.resize(static_cast<size_t>(z));
  result.cumulative.resize(static_cast<size_t>(z));

  std::vector<UserId> cs;  // cumulative serviced set, ascending
  std::vector<UserId> merged;
  for (TimeSlot t = 1; t <= z; ++t) {
    const auto& added = eng.newly_serviced[static_cast<size_t>(t - 1)];
    if (!added.empty()) {
      merged.clear();
      merged.reserve(cs.size() + added.size());
      std::merge(cs.begin(), cs.end(), added.begin(), added.end(),
                 std::back_inserter(merged));
      cs.swap(merged);
    }
    // The dense loop left both views empty at slots before the first
    // implementation; afterwards CS is non-empty and always implemented.
    if (cs.empty()) continue;
    result.cumulative[static_cast<size_t>(t - 1)] = cs;
    auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
    for (UserId i : cs) {
      if (t <= game.users[static_cast<size_t>(i)].end) s_t.push_back(i);
    }
  }
  return result;
}

std::vector<AddOnResult> RunAddOnAll(const MultiAdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  std::vector<AddOnResult> results;
  results.reserve(static_cast<size_t>(game.num_opts()));
  for (OptId j = 0; j < game.num_opts(); ++j) {
    results.push_back(RunAddOn(game.ProjectOpt(j)));
  }
  return results;
}

}  // namespace optshare
