#include "core/add_on.h"

#include <algorithm>
#include <cassert>

#include "core/shapley.h"

namespace optshare {

bool AddOnResult::InCumulative(UserId i, TimeSlot t) const {
  if (t < 1 || t > static_cast<TimeSlot>(cumulative.size())) return false;
  const auto& cs = cumulative[static_cast<size_t>(t - 1)];
  return std::binary_search(cs.begin(), cs.end(), i);
}

double AddOnResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

AddOnResult RunAddOn(const AdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int z = game.num_slots;

  AddOnResult result;
  result.serviced.resize(static_cast<size_t>(z));
  result.cumulative.resize(static_cast<size_t>(z));
  result.payments.assign(static_cast<size_t>(m), 0.0);
  result.cost_share.assign(static_cast<size_t>(z), kInfiniteBid);

  // in_cs[i]: i entered the cumulative serviced set at some earlier slot.
  std::vector<bool> in_cs(static_cast<size_t>(m), false);
  std::vector<double> residual(static_cast<size_t>(m));

  for (TimeSlot t = 1; t <= z; ++t) {
    for (UserId i = 0; i < m; ++i) {
      const auto& u = game.users[static_cast<size_t>(i)];
      if (in_cs[static_cast<size_t>(i)]) {
        // Mechanism 2 line 5: force previously serviced users to stay.
        residual[static_cast<size_t>(i)] = kInfiniteBid;
      } else if (t >= u.start) {
        // Line 7: remaining declared value from slot t onward.
        residual[static_cast<size_t>(i)] = u.ResidualFrom(t);
      } else {
        // Line 9: bids are not visible before the user arrives.
        residual[static_cast<size_t>(i)] = 0.0;
      }
    }

    ShapleyResult sh = RunShapley(game.cost, residual);

    auto& cs_t = result.cumulative[static_cast<size_t>(t - 1)];
    auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
    if (sh.implemented) {
      if (!result.implemented) {
        result.implemented = true;
        result.implemented_at = t;
      }
      result.cost_share[static_cast<size_t>(t - 1)] = sh.cost_share;
      for (UserId i = 0; i < m; ++i) {
        if (!sh.serviced[static_cast<size_t>(i)]) continue;
        in_cs[static_cast<size_t>(i)] = true;
        cs_t.push_back(i);
        // Line 14: only users whose declared interval is still running are
        // actively serviced.
        if (t <= game.users[static_cast<size_t>(i)].end) s_t.push_back(i);
      }
    }

    // Lines 15-19: users departing now pay the current share if serviced.
    for (UserId i = 0; i < m; ++i) {
      if (game.users[static_cast<size_t>(i)].end == t &&
          sh.implemented && sh.serviced[static_cast<size_t>(i)]) {
        result.payments[static_cast<size_t>(i)] = sh.cost_share;
      }
    }
  }
  return result;
}

std::vector<AddOnResult> RunAddOnAll(const MultiAdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  std::vector<AddOnResult> results;
  results.reserve(static_cast<size_t>(game.num_opts()));
  for (OptId j = 0; j < game.num_opts(); ++j) {
    results.push_back(RunAddOn(game.ProjectOpt(j)));
  }
  return results;
}

}  // namespace optshare
