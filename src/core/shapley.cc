#include "core/shapley.h"

#include <cassert>

#include "common/money.h"

namespace optshare {

int ShapleyResult::NumServiced() const {
  int n = 0;
  for (bool s : serviced) n += s ? 1 : 0;
  return n;
}

std::vector<UserId> ShapleyResult::ServicedUsers() const {
  std::vector<UserId> out;
  for (UserId i = 0; i < static_cast<UserId>(serviced.size()); ++i) {
    if (serviced[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

double ShapleyResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

ShapleyResult RunShapley(double cost, const std::vector<double>& bids) {
  assert(cost > 0.0 && "optimization cost must be positive");
  const size_t m = bids.size();

  ShapleyResult result;
  result.serviced.assign(m, true);
  result.payments.assign(m, 0.0);

  size_t remaining = m;
  bool changed = true;
  double share = 0.0;
  while (remaining > 0 && changed) {
    ++result.iterations;
    share = cost / static_cast<double>(remaining);
    changed = false;
    for (size_t i = 0; i < m; ++i) {
      if (!result.serviced[i]) continue;
      // Keep users willing to pay the even share (p <= b_ij, with tolerance
      // so a bid exactly at the share is serviced).
      if (!MoneyGe(bids[i], share)) {
        result.serviced[i] = false;
        --remaining;
        changed = true;
      }
    }
  }

  if (remaining == 0) {
    // No subset of users bid enough: the optimization is not implemented.
    result.serviced.assign(m, false);
    return result;
  }

  result.implemented = true;
  result.cost_share = cost / static_cast<double>(remaining);
  for (size_t i = 0; i < m; ++i) {
    if (result.serviced[i]) result.payments[i] = result.cost_share;
  }
  return result;
}

}  // namespace optshare
