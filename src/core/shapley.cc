#include "core/shapley.h"

#include <cassert>

#include "common/money.h"
#include "core/mechanism.h"

namespace optshare {

int ShapleyResult::NumServiced() const {
  int n = 0;
  for (bool s : serviced) n += s ? 1 : 0;
  return n;
}

std::vector<UserId> ShapleyResult::ServicedUsers() const {
  std::vector<UserId> out;
  for (UserId i = 0; i < static_cast<UserId>(serviced.size()); ++i) {
    if (serviced[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

double ShapleyResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

// Engine-backed since the unified-mechanism refactor: the eviction fixed
// point is found by counting rounds over the finite candidates (sort
// fallback for adversarial cascades) instead of rescanning a dense
// serviced mask every round. Results are identical to the dense loop
// (reference::RunShapleyDense).
ShapleyResult RunShapley(double cost, const std::vector<double>& bids) {
  assert(cost > 0.0 && "optimization cost must be positive");
  const int m = static_cast<int>(bids.size());

  ShapleyResult result;
  result.serviced.assign(static_cast<size_t>(m), false);
  result.payments.assign(static_cast<size_t>(m), 0.0);

  // Partition: pinned infinite bids / finite bids / zero bids.
  std::vector<double> finite;
  int num_pinned = 0;
  int num_zero = 0;
  for (UserId i = 0; i < m; ++i) {
    const double b = bids[static_cast<size_t>(i)];
    if (b == kInfiniteBid) {
      ++num_pinned;
    } else if (b == 0.0) {
      ++num_zero;
    } else {
      finite.push_back(b);
    }
  }

  const engine::EvenSplitOutcome fp =
      engine::EvenSplitFixedPoint(cost, finite, num_pinned, num_zero);
  result.iterations = fp.iterations;
  if (!fp.implemented) return result;

  result.implemented = true;
  result.cost_share = fp.share;
  // Membership is the dense loop's final-round rule: afford the final
  // share. Infinite bids always pass; zero bids pass only when the share
  // fell to <= epsilon.
  for (UserId i = 0; i < m; ++i) {
    if (MoneyGe(bids[static_cast<size_t>(i)], fp.share)) {
      result.serviced[static_cast<size_t>(i)] = true;
      result.payments[static_cast<size_t>(i)] = result.cost_share;
    }
  }
  return result;
}

}  // namespace optshare
