// Group (coalition) strategy analysis. Moulin mechanisms with
// cross-monotonic cost sharing are *group*-strategyproof: no coalition can
// misreport so that every member is no worse off and some member is
// strictly better off. This module provides the empirical coalition probe
// used by property tests, and is exposed publicly so operators can audit
// custom cost-sharing methods.
#pragma once

#include <vector>

#include "core/moulin.h"

namespace optshare {

/// Outcome of probing one coalition deviation.
struct GroupDeviationOutcome {
  /// True iff every coalition member's utility is >= truthful (within
  /// tolerance) and at least one is strictly greater.
  bool successful_manipulation = false;
  /// Per-coalition-member utility change (deviation minus truthful).
  std::vector<double> utility_delta;
};

/// Evaluates one coalition deviation under a Moulin mechanism: members of
/// `coalition` (user indices) bid `coalition_bids` (same order) while
/// everyone else bids truthfully; utilities are measured against `values`.
GroupDeviationOutcome ProbeGroupDeviation(
    const CostSharingMethod& method, const std::vector<double>& values,
    const std::vector<UserId>& coalition,
    const std::vector<double>& coalition_bids);

/// Searches all coalitions up to `max_coalition_size` over a deviation grid
/// per member (grid size^|coalition| combinations — keep inputs small).
/// Returns true iff some coalition finds a successful manipulation.
bool ExistsGroupManipulation(const CostSharingMethod& method,
                             const std::vector<double>& values,
                             int max_coalition_size,
                             const std::vector<double>& grid);

}  // namespace optshare
