#include "core/accounting.h"

#include <algorithm>
#include <cassert>

#include "common/money.h"

namespace optshare {
namespace {

bool Contains(const std::vector<OptId>& set, OptId j) {
  return std::find(set.begin(), set.end(), j) != set.end();
}

}  // namespace

double Accounting::TotalValue() const {
  double sum = 0.0;
  for (double v : user_value) sum += v;
  return sum;
}

double Accounting::TotalPayment() const {
  double sum = 0.0;
  for (double p : user_payment) sum += p;
  return sum;
}

bool Accounting::CostRecovered() const {
  return MoneyGe(TotalPayment(), total_cost);
}

Accounting AccountAddOff(const AdditiveOfflineGame& truth,
                         const AddOffResult& outcome) {
  const int m = truth.num_users();
  const int n = truth.num_opts();
  assert(static_cast<int>(outcome.per_opt.size()) == n);

  Accounting acc;
  acc.user_value.assign(static_cast<size_t>(m), 0.0);
  acc.user_payment = outcome.total_payment;
  for (OptId j = 0; j < n; ++j) {
    const auto& r = outcome.per_opt[static_cast<size_t>(j)];
    if (!r.implemented) continue;
    acc.total_cost += truth.costs[static_cast<size_t>(j)];
    for (UserId i = 0; i < m; ++i) {
      if (r.serviced[static_cast<size_t>(i)]) {
        acc.user_value[static_cast<size_t>(i)] +=
            truth.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
      }
    }
  }
  return acc;
}

Accounting AccountAddOn(const AdditiveOnlineGame& truth,
                        const AddOnResult& outcome) {
  const int m = truth.num_users();

  Accounting acc;
  acc.user_value.assign(static_cast<size_t>(m), 0.0);
  acc.user_payment = outcome.payments;
  if (outcome.implemented) acc.total_cost = truth.cost;

  for (TimeSlot t = 1; t <= static_cast<TimeSlot>(outcome.serviced.size());
       ++t) {
    for (UserId i : outcome.serviced[static_cast<size_t>(t - 1)]) {
      acc.user_value[static_cast<size_t>(i)] +=
          truth.users[static_cast<size_t>(i)].At(t);
    }
  }
  return acc;
}

Accounting AccountAddOnAll(const MultiAdditiveOnlineGame& truth,
                           const std::vector<AddOnResult>& outcomes) {
  const int m = truth.num_users();
  const int n = truth.num_opts();
  assert(static_cast<int>(outcomes.size()) == n);

  Accounting acc;
  acc.user_value.assign(static_cast<size_t>(m), 0.0);
  acc.user_payment.assign(static_cast<size_t>(m), 0.0);
  for (OptId j = 0; j < n; ++j) {
    Accounting one = AccountAddOn(truth.ProjectOpt(j),
                                  outcomes[static_cast<size_t>(j)]);
    acc.total_cost += one.total_cost;
    for (UserId i = 0; i < m; ++i) {
      acc.user_value[static_cast<size_t>(i)] +=
          one.user_value[static_cast<size_t>(i)];
      acc.user_payment[static_cast<size_t>(i)] +=
          one.user_payment[static_cast<size_t>(i)];
    }
  }
  return acc;
}

Accounting AccountSubstOff(const SubstOfflineGame& truth,
                           const SubstOffResult& outcome) {
  const int m = truth.num_users();

  Accounting acc;
  acc.user_value.assign(static_cast<size_t>(m), 0.0);
  acc.user_payment = outcome.payments;
  acc.total_cost = outcome.ImplementedCost(truth.costs);
  for (UserId i = 0; i < m; ++i) {
    const OptId g = outcome.grant[static_cast<size_t>(i)];
    if (g == kNoOpt) continue;
    const auto& u = truth.users[static_cast<size_t>(i)];
    // Value accrues only when the grant is truly useful to the user.
    if (Contains(u.substitutes, g)) {
      acc.user_value[static_cast<size_t>(i)] = u.value;
    }
  }
  return acc;
}

Accounting AccountResult(const GameView& truth,
                         const MechanismResult& outcome) {
  const int m = truth.num_users();
  assert(outcome.num_users == m);

  Accounting acc;
  acc.user_value.assign(static_cast<size_t>(m), 0.0);
  acc.user_payment = outcome.payments;

  switch (truth.kind()) {
    case GameKind::kAdditiveOffline: {
      const AdditiveOfflineGame& g = truth.additive_offline();
      acc.total_cost = outcome.ImplementedCost(g.costs);
      for (OptId j : outcome.ImplementedOpts()) {
        for (UserId i : outcome.serviced[static_cast<size_t>(j)]) {
          acc.user_value[static_cast<size_t>(i)] +=
              g.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
        }
      }
      break;
    }
    case GameKind::kAdditiveOnline: {
      const AdditiveOnlineGame& g = truth.additive_online();
      if (outcome.implemented) acc.total_cost = g.cost;
      for (const auto& per_slot : outcome.active) {
        for (TimeSlot t = 1; t <= static_cast<TimeSlot>(per_slot.size());
             ++t) {
          for (UserId i : per_slot[static_cast<size_t>(t - 1)]) {
            acc.user_value[static_cast<size_t>(i)] +=
                g.users[static_cast<size_t>(i)].At(t);
          }
        }
      }
      break;
    }
    case GameKind::kMultiAdditiveOnline: {
      const MultiAdditiveOnlineGame& g = truth.multi_additive_online();
      acc.total_cost = outcome.ImplementedCost(g.costs);
      for (OptId j = 0;
           j < static_cast<OptId>(outcome.active.size()); ++j) {
        const auto& per_slot = outcome.active[static_cast<size_t>(j)];
        for (TimeSlot t = 1; t <= static_cast<TimeSlot>(per_slot.size());
             ++t) {
          for (UserId i : per_slot[static_cast<size_t>(t - 1)]) {
            acc.user_value[static_cast<size_t>(i)] +=
                g.bids[static_cast<size_t>(i)][static_cast<size_t>(j)].At(t);
          }
        }
      }
      break;
    }
    case GameKind::kSubstOffline: {
      const SubstOfflineGame& g = truth.subst_offline();
      acc.total_cost = outcome.ImplementedCost(g.costs);
      for (UserId i = 0; i < m; ++i) {
        const OptId gnt = outcome.grant[static_cast<size_t>(i)];
        if (gnt == kNoOpt) continue;
        const auto& u = g.users[static_cast<size_t>(i)];
        // Value accrues only when the grant is truly useful to the user.
        if (Contains(u.substitutes, gnt)) {
          acc.user_value[static_cast<size_t>(i)] = u.value;
        }
      }
      break;
    }
    case GameKind::kSubstOnline: {
      const SubstOnlineGame& g = truth.subst_online();
      acc.total_cost = outcome.ImplementedCost(g.costs);
      for (OptId j = 0;
           j < static_cast<OptId>(outcome.active.size()); ++j) {
        const auto& per_slot = outcome.active[static_cast<size_t>(j)];
        for (TimeSlot t = 1; t <= static_cast<TimeSlot>(per_slot.size());
             ++t) {
          for (UserId i : per_slot[static_cast<size_t>(t - 1)]) {
            const auto& u = g.users[static_cast<size_t>(i)];
            if (Contains(u.substitutes, j)) {
              acc.user_value[static_cast<size_t>(i)] += u.stream.At(t);
            }
          }
        }
      }
      break;
    }
  }
  return acc;
}

Accounting AccountSubstOn(const SubstOnlineGame& truth,
                          const SubstOnResult& outcome) {
  const int m = truth.num_users();

  Accounting acc;
  acc.user_value.assign(static_cast<size_t>(m), 0.0);
  acc.user_payment = outcome.payments;
  acc.total_cost = outcome.ImplementedCost(truth.costs);

  for (TimeSlot t = 1; t <= static_cast<TimeSlot>(outcome.serviced.size());
       ++t) {
    for (UserId i : outcome.serviced[static_cast<size_t>(t - 1)]) {
      const auto& u = truth.users[static_cast<size_t>(i)];
      const OptId g = outcome.grant[static_cast<size_t>(i)];
      if (g != kNoOpt && Contains(u.substitutes, g)) {
        acc.user_value[static_cast<size_t>(i)] += u.stream.At(t);
      }
    }
  }
  return acc;
}

}  // namespace optshare
