#include "core/add_off.h"

#include <cassert>

namespace optshare {

std::vector<OptId> AddOffResult::ImplementedOpts() const {
  std::vector<OptId> out;
  for (OptId j = 0; j < static_cast<OptId>(per_opt.size()); ++j) {
    if (per_opt[static_cast<size_t>(j)].implemented) out.push_back(j);
  }
  return out;
}

bool AddOffResult::Granted(UserId i, OptId j) const {
  const auto& r = per_opt[static_cast<size_t>(j)];
  return r.implemented && r.serviced[static_cast<size_t>(i)];
}

double AddOffResult::ImplementedCost(const std::vector<double>& costs) const {
  assert(costs.size() == per_opt.size());
  double sum = 0.0;
  for (size_t j = 0; j < per_opt.size(); ++j) {
    if (per_opt[j].implemented) sum += costs[j];
  }
  return sum;
}

// Additivity makes the per-optimization runs independent; each column goes
// through the engine-backed RunShapley (sorted prefix scan).
AddOffResult RunAddOff(const AdditiveOfflineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();

  AddOffResult result;
  result.per_opt.reserve(static_cast<size_t>(n));
  result.total_payment.assign(static_cast<size_t>(m), 0.0);

  std::vector<double> column(static_cast<size_t>(m));
  for (OptId j = 0; j < n; ++j) {
    for (UserId i = 0; i < m; ++i) {
      column[static_cast<size_t>(i)] =
          game.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    ShapleyResult r = RunShapley(game.costs[static_cast<size_t>(j)], column);
    for (UserId i = 0; i < m; ++i) {
      result.total_payment[static_cast<size_t>(i)] +=
          r.payments[static_cast<size_t>(i)];
    }
    result.per_opt.push_back(std::move(r));
  }
  return result;
}

}  // namespace optshare
