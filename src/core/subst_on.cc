#include "core/subst_on.h"

#include <algorithm>
#include <cassert>

#include "core/mechanism.h"

namespace optshare {

std::vector<OptId> SubstOnResult::ImplementedOpts() const {
  std::vector<OptId> out;
  for (OptId j = 0; j < static_cast<OptId>(implemented_at.size()); ++j) {
    if (implemented_at[static_cast<size_t>(j)] > 0) out.push_back(j);
  }
  return out;
}

double SubstOnResult::ImplementedCost(const std::vector<double>& costs) const {
  double sum = 0.0;
  for (OptId j : ImplementedOpts()) sum += costs[static_cast<size_t>(j)];
  return sum;
}

double SubstOnResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

SubstOnEngineOutcome RunSubstOnEngine(const SubstOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();
  const int z = game.num_slots;

  SubstOnEngineOutcome out;
  SubstOnResult& result = out.result;
  result.grant.assign(static_cast<size_t>(m), kNoOpt);
  result.grant_slot.assign(static_cast<size_t>(m), 0);
  result.payments.assign(static_cast<size_t>(m), 0.0);
  result.implemented_at.assign(static_cast<size_t>(n), 0);
  result.serviced.resize(static_cast<size_t>(z));
  out.last_share.assign(static_cast<size_t>(n), 0.0);

  // Residual-bid state, computed once and reused across slots.
  engine::ResidualSuffixArena residuals(m);
  size_t total_values = 0;
  for (UserId i = 0; i < m; ++i) {
    total_values += game.users[static_cast<size_t>(i)].stream.values.size();
  }
  residuals.ReserveValues(total_values);
  for (UserId i = 0; i < m; ++i) {
    const auto& s = game.users[static_cast<size_t>(i)].stream;
    residuals.AddUser(s.start, s.end, s.values);
  }

  // Users become bid-visible at their arrival slot.
  std::vector<std::vector<UserId>> by_start(static_cast<size_t>(z) + 1);
  for (UserId i = 0; i < m; ++i) {
    by_start[static_cast<size_t>(game.users[static_cast<size_t>(i)]
                                     .stream.start)]
        .push_back(i);
  }

  // Active candidates: arrived, not yet granted. Granted users leave this
  // list (they are pinned instead); users past their interval contribute a
  // zero residual and are dropped lazily.
  std::vector<UserId> alive;
  // Granted users in increasing id order — the serviced lists and sparse
  // pin rows are built from this.
  std::vector<UserId> granted;

  std::vector<SparseSubstUserRow> rows;

  for (TimeSlot t = 1; t <= z; ++t) {
    for (UserId i : by_start[static_cast<size_t>(t)]) alive.push_back(i);

    rows.assign(static_cast<size_t>(m), SparseSubstUserRow{});
    // Once serviced by j, the user is pinned to j: infinite bid on j,
    // zero on everything else (no switching).
    for (UserId i : granted) {
      rows[static_cast<size_t>(i)].bids.push_back(
          {result.grant[static_cast<size_t>(i)], kInfiniteBid});
    }
    size_t write = 0;
    for (UserId i : alive) {
      if (result.grant[static_cast<size_t>(i)] != kNoOpt) continue;
      // Departed, never-granted users keep an (implicit) all-zero row and
      // need no further per-slot work.
      if (t > game.users[static_cast<size_t>(i)].stream.end) continue;
      const double residual = residuals.ResidualFrom(i, t);
      if (residual > 0.0) {
        for (OptId j : game.users[static_cast<size_t>(i)].substitutes) {
          rows[static_cast<size_t>(i)].bids.push_back({j, residual});
        }
      }
      alive[write++] = i;
    }
    alive.resize(write);

    SubstOffResult off = RunSubstOffSparse(game.costs, std::move(rows));

    for (size_t k = 0; k < off.implemented.size(); ++k) {
      const OptId j = off.implemented[k];
      if (result.implemented_at[static_cast<size_t>(j)] == 0) {
        result.implemented_at[static_cast<size_t>(j)] = t;
      }
      out.last_share[static_cast<size_t>(j)] = off.cost_share[k];
    }

    // Record new grants; the granted list stays sorted by id.
    bool granted_changed = false;
    for (UserId i = 0; i < m; ++i) {
      const OptId g = off.grant[static_cast<size_t>(i)];
      if (g == kNoOpt) continue;
      if (result.grant[static_cast<size_t>(i)] == kNoOpt) {
        result.grant[static_cast<size_t>(i)] = g;
        result.grant_slot[static_cast<size_t>(i)] = t;
        granted.push_back(i);
        granted_changed = true;
      }
    }
    if (granted_changed) std::sort(granted.begin(), granted.end());

    // A pinned user is always re-granted her optimization; record her as
    // actively serviced while her declared interval lasts, and charge her
    // this run's share at her departure slot.
    auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
    for (UserId i : granted) {
      const TimeSlot end = game.users[static_cast<size_t>(i)].stream.end;
      if (t <= end) s_t.push_back(i);
      if (end == t) {
        result.payments[static_cast<size_t>(i)] =
            off.payments[static_cast<size_t>(i)];
      }
    }
  }
  return out;
}

SubstOnResult RunSubstOn(const SubstOnlineGame& game) {
  return RunSubstOnEngine(game).result;
}

}  // namespace optshare
