#include "core/subst_on.h"

#include <cassert>

namespace optshare {

std::vector<OptId> SubstOnResult::ImplementedOpts() const {
  std::vector<OptId> out;
  for (OptId j = 0; j < static_cast<OptId>(implemented_at.size()); ++j) {
    if (implemented_at[static_cast<size_t>(j)] > 0) out.push_back(j);
  }
  return out;
}

double SubstOnResult::ImplementedCost(const std::vector<double>& costs) const {
  double sum = 0.0;
  for (OptId j : ImplementedOpts()) sum += costs[static_cast<size_t>(j)];
  return sum;
}

double SubstOnResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

SubstOnResult RunSubstOn(const SubstOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();
  const int z = game.num_slots;

  SubstOnResult result;
  result.grant.assign(static_cast<size_t>(m), kNoOpt);
  result.grant_slot.assign(static_cast<size_t>(m), 0);
  result.payments.assign(static_cast<size_t>(m), 0.0);
  result.implemented_at.assign(static_cast<size_t>(n), 0);
  result.serviced.resize(static_cast<size_t>(z));

  std::vector<std::vector<double>> bids(
      static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(n)));

  for (TimeSlot t = 1; t <= z; ++t) {
    for (UserId i = 0; i < m; ++i) {
      auto& row = bids[static_cast<size_t>(i)];
      const auto& u = game.users[static_cast<size_t>(i)];
      const OptId granted = result.grant[static_cast<size_t>(i)];
      if (granted != kNoOpt) {
        // Once serviced by j, the user is pinned to j: infinite bid on j,
        // zero on everything else (no switching).
        for (OptId j = 0; j < n; ++j) {
          row[static_cast<size_t>(j)] = (j == granted) ? kInfiniteBid : 0.0;
        }
      } else if (t >= u.stream.start) {
        const double residual = u.stream.ResidualFrom(t);
        for (OptId j = 0; j < n; ++j) row[static_cast<size_t>(j)] = 0.0;
        for (OptId j : u.substitutes) {
          row[static_cast<size_t>(j)] = residual;
        }
      } else {
        // Not yet arrived: invisible to the mechanism.
        for (OptId j = 0; j < n; ++j) row[static_cast<size_t>(j)] = 0.0;
      }
    }

    SubstOffResult off = RunSubstOffMatrix(game.costs, bids);

    for (OptId j : off.implemented) {
      if (result.implemented_at[static_cast<size_t>(j)] == 0) {
        result.implemented_at[static_cast<size_t>(j)] = t;
      }
    }

    auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
    for (UserId i = 0; i < m; ++i) {
      const OptId g = off.grant[static_cast<size_t>(i)];
      if (g == kNoOpt) continue;
      if (result.grant[static_cast<size_t>(i)] == kNoOpt) {
        result.grant[static_cast<size_t>(i)] = g;
        result.grant_slot[static_cast<size_t>(i)] = t;
      }
      // A pinned user is always re-granted her optimization; record her as
      // actively serviced while her declared interval lasts.
      if (t <= game.users[static_cast<size_t>(i)].stream.end) {
        s_t.push_back(i);
      }
      // Users departing now pay the share computed by this run.
      if (game.users[static_cast<size_t>(i)].stream.end == t) {
        result.payments[static_cast<size_t>(i)] =
            off.payments[static_cast<size_t>(i)];
      }
    }
  }
  return result;
}

}  // namespace optshare
