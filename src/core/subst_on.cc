#include "core/subst_on.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace optshare {

std::vector<OptId> SubstOnResult::ImplementedOpts() const {
  std::vector<OptId> out;
  for (OptId j = 0; j < static_cast<OptId>(implemented_at.size()); ++j) {
    if (implemented_at[static_cast<size_t>(j)] > 0) out.push_back(j);
  }
  return out;
}

double SubstOnResult::ImplementedCost(const std::vector<double>& costs) const {
  double sum = 0.0;
  for (OptId j : ImplementedOpts()) sum += costs[static_cast<size_t>(j)];
  return sum;
}

double SubstOnResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

SubstOnSlotEngine::SubstOnSlotEngine(std::vector<double> costs, int num_slots)
    : costs_(std::move(costs)), num_slots_(num_slots), residuals_(0) {
  assert(ValidateCosts(costs_).ok());
  assert(num_slots_ >= 1 && "period needs at least one slot");
  out_.result.implemented_at.assign(costs_.size(), 0);
  out_.last_share.assign(costs_.size(), 0.0);
  out_.result.serviced.resize(static_cast<size_t>(num_slots_));
  by_start_.resize(static_cast<size_t>(num_slots_) + 2);
}

void SubstOnSlotEngine::Reserve(int num_users, size_t total_values) {
  const size_t n = static_cast<size_t>(num_users);
  present_.reserve(n);
  joined_.reserve(n);
  start_.reserve(n);
  decl_end_.reserve(n);
  eff_end_.reserve(n);
  stream_idx_.reserve(n);
  substitutes_.reserve(n);
  out_.result.grant.reserve(n);
  out_.result.grant_slot.reserve(n);
  out_.result.payments.reserve(n);
  residuals_.ReserveValues(total_values);
}

Result<OptId> SubstOnSlotEngine::AddOpt(double cost) {
  if (std::isnan(cost) || std::isinf(cost) || cost <= 0.0) {
    return Status::InvalidArgument(
        "optimization costs must be finite and positive");
  }
  costs_.push_back(cost);
  out_.result.implemented_at.push_back(0);
  out_.last_share.push_back(0.0);
  return static_cast<OptId>(costs_.size()) - 1;
}

Status SubstOnSlotEngine::Register(UserId i, TimeSlot start, TimeSlot end,
                                   const std::vector<double>* values,
                                   std::vector<OptId> substitutes) {
  if (i < 0) return Status::InvalidArgument("user id must be non-negative");
  if (start < 1 || end < start || end > num_slots_) {
    return Status::InvalidArgument("user interval outside the period's slots");
  }
  if (values != nullptr) {
    OPTSHARE_RETURN_NOT_OK(ValidateSubstituteSet(substitutes, num_opts()));
  }
  const size_t u = static_cast<size_t>(i);
  if (u >= present_.size()) {
    const size_t n = u + 1;
    present_.resize(n, 0);
    joined_.resize(n, 0);
    start_.resize(n, 0);
    decl_end_.resize(n, 0);
    eff_end_.resize(n, 0);
    stream_idx_.resize(n, -1);
    substitutes_.resize(n);
    out_.result.grant.resize(n, kNoOpt);
    out_.result.grant_slot.resize(n, 0);
    out_.result.payments.resize(n, 0.0);
  }
  const bool fresh = present_[u] == 0;
  if (!fresh) {
    if (values == nullptr) {
      return Status::AlreadyExists("user already registered");
    }
    if (stream_idx_[u] >= 0) {
      return Status::AlreadyExists("user already declared a bid");
    }
    if (eff_end_[u] < decl_end_[u]) {
      return Status::FailedPrecondition("user departed; cannot declare");
    }
  }
  present_[u] = 1;
  start_[u] = start;
  decl_end_[u] = end;
  eff_end_[u] = end;
  if (values != nullptr) {
    residuals_.AddUser(start, end, *values);
    stream_idx_[u] = arena_users_++;
    substitutes_[u] = std::move(substitutes);
  }
  if (!joined_[u]) {
    const TimeSlot join = start > current_ ? start : current_ + 1;
    by_start_[static_cast<size_t>(join)].push_back(i);
  }
  return Status::OK();
}

Status SubstOnSlotEngine::Arrive(UserId i, TimeSlot start, TimeSlot end) {
  return Register(i, start, end, nullptr, {});
}

Status SubstOnSlotEngine::Declare(UserId i, const SlotValues& stream,
                                  std::vector<OptId> substitutes) {
  OPTSHARE_RETURN_NOT_OK(stream.Validate());
  return Register(i, stream.start, stream.end, &stream.values,
                  std::move(substitutes));
}

Status SubstOnSlotEngine::Depart(UserId i) {
  if (!registered(i)) return Status::NotFound("unknown user id");
  const size_t u = static_cast<size_t>(i);
  const TimeSlot t = current_ + 1;  // Present through the upcoming slot.
  if (start_[u] > t) {
    return Status::InvalidArgument("cannot depart before arrival");
  }
  if (eff_end_[u] <= t) return Status::OK();  // Already ends by then.
  eff_end_[u] = t;
  return Status::OK();
}

Status SubstOnSlotEngine::StepSlot() {
  if (current_ >= num_slots_) {
    return Status::FailedPrecondition("period exhausted");
  }
  const TimeSlot t = ++current_;
  SubstOnResult& result = out_.result;
  const size_t m = present_.size();

  for (UserId i : by_start_[static_cast<size_t>(t)]) {
    if (!joined_[static_cast<size_t>(i)]) {
      joined_[static_cast<size_t>(i)] = 1;
      alive_.push_back(i);
    }
  }

  rows_.assign(m, SparseSubstUserRow{});
  // Once serviced by j, the user is pinned to j: infinite bid on j,
  // zero on everything else (no switching).
  for (UserId i : granted_) {
    rows_[static_cast<size_t>(i)].bids.push_back(
        {result.grant[static_cast<size_t>(i)], kInfiniteBid});
  }
  size_t write = 0;
  for (UserId i : alive_) {
    const size_t u = static_cast<size_t>(i);
    if (result.grant[u] != kNoOpt) continue;
    // Departed, never-granted users keep an (implicit) all-zero row and
    // need no further per-slot work.
    if (t > eff_end_[u]) continue;
    double residual = 0.0;
    if (stream_idx_[u] >= 0) {
      residual = residuals_.ResidualFrom(stream_idx_[u], t);
      if (eff_end_[u] < decl_end_[u]) {
        // Early departure truncates the declared stream.
        residual -= residuals_.ResidualFrom(stream_idx_[u], eff_end_[u] + 1);
      }
    }
    if (residual > 0.0) {
      for (OptId j : substitutes_[u]) {
        rows_[u].bids.push_back({j, residual});
      }
    }
    alive_[write++] = i;
  }
  alive_.resize(write);

  SubstOffResult off = RunSubstOffSparse(costs_, std::move(rows_));

  for (size_t k = 0; k < off.implemented.size(); ++k) {
    const OptId j = off.implemented[k];
    if (result.implemented_at[static_cast<size_t>(j)] == 0) {
      result.implemented_at[static_cast<size_t>(j)] = t;
    }
    out_.last_share[static_cast<size_t>(j)] = off.cost_share[k];
  }

  // Record new grants; the granted list stays sorted by id.
  last_new_grants_.clear();
  for (UserId i = 0; i < static_cast<UserId>(m); ++i) {
    const OptId g = off.grant[static_cast<size_t>(i)];
    if (g == kNoOpt) continue;
    if (result.grant[static_cast<size_t>(i)] == kNoOpt) {
      result.grant[static_cast<size_t>(i)] = g;
      result.grant_slot[static_cast<size_t>(i)] = t;
      granted_.push_back(i);
      last_new_grants_.push_back(i);
    }
  }
  if (!last_new_grants_.empty()) std::sort(granted_.begin(), granted_.end());

  // A pinned user is always re-granted her optimization; record her as
  // actively serviced while her declared interval lasts, and charge her
  // this run's share at her departure slot.
  auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
  for (UserId i : granted_) {
    const TimeSlot end = eff_end_[static_cast<size_t>(i)];
    if (t <= end) s_t.push_back(i);
    if (end == t) {
      result.payments[static_cast<size_t>(i)] =
          off.payments[static_cast<size_t>(i)];
    }
  }
  last_off_ = std::move(off);
  return Status::OK();
}

SubstOnEngineOutcome RunSubstOnEngine(const SubstOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();

  SubstOnSlotEngine eng(game.costs, game.num_slots);
  size_t total_values = 0;
  for (UserId i = 0; i < m; ++i) {
    total_values += game.users[static_cast<size_t>(i)].stream.values.size();
  }
  eng.Reserve(m, total_values);
  for (UserId i = 0; i < m; ++i) {
    const auto& u = game.users[static_cast<size_t>(i)];
    const Status st = eng.Declare(i, u.stream, u.substitutes);
    assert(st.ok());
    (void)st;
  }
  for (TimeSlot t = 1; t <= game.num_slots; ++t) {
    const Status st = eng.StepSlot();
    assert(st.ok());
    (void)st;
  }
  return eng.TakeOutcome();
}

SubstOnResult RunSubstOn(const SubstOnlineGame& game) {
  return RunSubstOnEngine(game).result;
}

}  // namespace optshare
