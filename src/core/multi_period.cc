#include "core/multi_period.h"

#include <cassert>

#include "common/money.h"

namespace optshare {

double MultiPeriodResult::TotalUtility() const {
  double sum = 0.0;
  for (const auto& l : ledgers) sum += l.TotalUtility();
  return sum;
}

double MultiPeriodResult::TotalPayment() const {
  double sum = 0.0;
  for (const auto& l : ledgers) sum += l.TotalPayment();
  return sum;
}

double MultiPeriodResult::TotalCost() const {
  double sum = 0.0;
  for (const auto& l : ledgers) sum += l.total_cost;
  return sum;
}

bool MultiPeriodResult::AllPeriodsRecovered() const {
  for (const auto& l : ledgers) {
    if (!l.CostRecovered()) return false;
  }
  return true;
}

MultiPeriodResult RunMultiPeriod(std::vector<ServicePeriod> periods,
                                 double rebuild_discount) {
  assert(rebuild_discount >= 0.0 && rebuild_discount <= 1.0);
  MultiPeriodResult result;
  bool built_before = false;
  for (auto& period : periods) {
    if (built_before && rebuild_discount < 1.0) {
      period.game.cost =
          std::max(period.game.cost * rebuild_discount, 1e-12);
    }
    assert(period.game.Validate().ok());
    AddOnResult outcome = RunAddOn(period.game);
    result.ledgers.push_back(AccountAddOn(period.game, outcome));
    built_before = built_before || outcome.implemented;
    result.per_period.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace optshare
