#include "core/serialization.h"

namespace optshare {
namespace {

JsonValue NumbersToJson(const std::vector<double>& xs) {
  JsonValue arr = JsonValue::MakeArray();
  for (double x : xs) arr.Append(JsonValue::Number(x));
  return arr;
}

JsonValue OptIdsToJson(const std::vector<OptId>& xs) {
  JsonValue arr = JsonValue::MakeArray();
  for (OptId x : xs) arr.Append(JsonValue::Number(x));
  return arr;
}

JsonValue StreamToJson(const SlotValues& sv) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("start", JsonValue::Number(sv.start));
  obj.Set("end", JsonValue::Number(sv.end));
  obj.Set("values", NumbersToJson(sv.values));
  return obj;
}

Result<std::vector<double>> NumbersFromJson(const JsonValue* v,
                                            const std::string& field) {
  if (v == nullptr || !v->is_array()) {
    return Status::InvalidArgument("missing or non-array field: " + field);
  }
  std::vector<double> out;
  out.reserve(v->AsArray().size());
  for (const auto& item : v->AsArray()) {
    if (!item.is_number()) {
      return Status::InvalidArgument("non-numeric entry in " + field);
    }
    out.push_back(item.AsNumber());
  }
  return out;
}

Result<double> NumberFromJson(const JsonValue* v, const std::string& field) {
  if (v == nullptr || !v->is_number()) {
    return Status::InvalidArgument("missing or non-numeric field: " + field);
  }
  return v->AsNumber();
}

Result<int> IntFromJson(const JsonValue* v, const std::string& field) {
  Result<double> d = NumberFromJson(v, field);
  if (!d.ok()) return d.status();
  const int i = static_cast<int>(*d);
  if (static_cast<double>(i) != *d) {
    return Status::InvalidArgument("field must be an integer: " + field);
  }
  return i;
}

Result<SlotValues> StreamFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("user entry must be an object");
  }
  Result<int> start = IntFromJson(v.Find("start"), "start");
  if (!start.ok()) return start.status();
  Result<int> end = IntFromJson(v.Find("end"), "end");
  if (!end.ok()) return end.status();
  Result<std::vector<double>> values =
      NumbersFromJson(v.Find("values"), "values");
  if (!values.ok()) return values.status();
  return SlotValues::Make(*start, *end, std::move(*values));
}

Result<std::vector<OptId>> OptIdsFromJson(const JsonValue* v,
                                          const std::string& field) {
  Result<std::vector<double>> nums = NumbersFromJson(v, field);
  if (!nums.ok()) return nums.status();
  std::vector<OptId> out;
  out.reserve(nums->size());
  for (double d : *nums) {
    const OptId j = static_cast<OptId>(d);
    if (static_cast<double>(j) != d) {
      return Status::InvalidArgument("non-integer optimization id in " +
                                     field);
    }
    out.push_back(j);
  }
  return out;
}

Status CheckType(const JsonValue& v, const std::string& expected) {
  if (GameTypeOf(v) != expected) {
    return Status::InvalidArgument("expected game type \"" + expected +
                                   "\", found \"" + GameTypeOf(v) + "\"");
  }
  return Status::OK();
}

}  // namespace

std::string GameTypeOf(const JsonValue& v) {
  const JsonValue* type = v.Find("type");
  return (type != nullptr && type->is_string()) ? type->AsString() : "";
}

JsonValue ToJson(const AdditiveOfflineGame& game) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("type", JsonValue::Str("additive_offline"));
  obj.Set("costs", NumbersToJson(game.costs));
  JsonValue bids = JsonValue::MakeArray();
  for (const auto& row : game.bids) bids.Append(NumbersToJson(row));
  obj.Set("bids", std::move(bids));
  return obj;
}

JsonValue ToJson(const AdditiveOnlineGame& game) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("type", JsonValue::Str("additive_online"));
  obj.Set("num_slots", JsonValue::Number(game.num_slots));
  obj.Set("cost", JsonValue::Number(game.cost));
  JsonValue users = JsonValue::MakeArray();
  for (const auto& u : game.users) users.Append(StreamToJson(u));
  obj.Set("users", std::move(users));
  return obj;
}

JsonValue ToJson(const SubstOfflineGame& game) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("type", JsonValue::Str("subst_offline"));
  obj.Set("costs", NumbersToJson(game.costs));
  JsonValue users = JsonValue::MakeArray();
  for (const auto& u : game.users) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("substitutes", OptIdsToJson(u.substitutes));
    entry.Set("value", JsonValue::Number(u.value));
    users.Append(std::move(entry));
  }
  obj.Set("users", std::move(users));
  return obj;
}

JsonValue ToJson(const SubstOnlineGame& game) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("type", JsonValue::Str("subst_online"));
  obj.Set("num_slots", JsonValue::Number(game.num_slots));
  obj.Set("costs", NumbersToJson(game.costs));
  JsonValue users = JsonValue::MakeArray();
  for (const auto& u : game.users) {
    JsonValue entry = StreamToJson(u.stream);
    entry.Set("substitutes", OptIdsToJson(u.substitutes));
    users.Append(std::move(entry));
  }
  obj.Set("users", std::move(users));
  return obj;
}

Result<AdditiveOfflineGame> AdditiveOfflineGameFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckType(v, "additive_offline"));
  AdditiveOfflineGame game;
  Result<std::vector<double>> costs = NumbersFromJson(v.Find("costs"), "costs");
  if (!costs.ok()) return costs.status();
  game.costs = std::move(*costs);
  const JsonValue* bids = v.Find("bids");
  if (bids == nullptr || !bids->is_array()) {
    return Status::InvalidArgument("missing or non-array field: bids");
  }
  for (const auto& row : bids->AsArray()) {
    Result<std::vector<double>> parsed = NumbersFromJson(&row, "bids row");
    if (!parsed.ok()) return parsed.status();
    game.bids.push_back(std::move(*parsed));
  }
  OPTSHARE_RETURN_NOT_OK(game.Validate());
  return game;
}

Result<AdditiveOnlineGame> AdditiveOnlineGameFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckType(v, "additive_online"));
  AdditiveOnlineGame game;
  Result<int> slots = IntFromJson(v.Find("num_slots"), "num_slots");
  if (!slots.ok()) return slots.status();
  game.num_slots = *slots;
  Result<double> cost = NumberFromJson(v.Find("cost"), "cost");
  if (!cost.ok()) return cost.status();
  game.cost = *cost;
  const JsonValue* users = v.Find("users");
  if (users == nullptr || !users->is_array()) {
    return Status::InvalidArgument("missing or non-array field: users");
  }
  for (const auto& u : users->AsArray()) {
    Result<SlotValues> stream = StreamFromJson(u);
    if (!stream.ok()) return stream.status();
    game.users.push_back(std::move(*stream));
  }
  OPTSHARE_RETURN_NOT_OK(game.Validate());
  return game;
}

Result<SubstOfflineGame> SubstOfflineGameFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckType(v, "subst_offline"));
  SubstOfflineGame game;
  Result<std::vector<double>> costs = NumbersFromJson(v.Find("costs"), "costs");
  if (!costs.ok()) return costs.status();
  game.costs = std::move(*costs);
  const JsonValue* users = v.Find("users");
  if (users == nullptr || !users->is_array()) {
    return Status::InvalidArgument("missing or non-array field: users");
  }
  for (const auto& u : users->AsArray()) {
    SubstOfflineUser user;
    Result<std::vector<OptId>> subs =
        OptIdsFromJson(u.Find("substitutes"), "substitutes");
    if (!subs.ok()) return subs.status();
    user.substitutes = std::move(*subs);
    Result<double> value = NumberFromJson(u.Find("value"), "value");
    if (!value.ok()) return value.status();
    user.value = *value;
    game.users.push_back(std::move(user));
  }
  OPTSHARE_RETURN_NOT_OK(game.Validate());
  return game;
}

JsonValue ToJson(const SlotEventLog& log) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("type", JsonValue::Str("event_log"));
  obj.Set("game", JsonValue::Str(std::string(GameKindName(log.kind))));
  obj.Set("num_slots", JsonValue::Number(log.num_slots));
  obj.Set("costs", NumbersToJson(log.costs));
  JsonValue slots = JsonValue::MakeArray();
  for (TimeSlot t = 1; t <= log.num_slots; ++t) {
    const auto& batch = log.events[static_cast<size_t>(t - 1)];
    if (batch.empty()) continue;  // Idle slots are implicit.
    JsonValue slot_obj = JsonValue::MakeObject();
    slot_obj.Set("slot", JsonValue::Number(t));
    JsonValue events = JsonValue::MakeArray();
    for (const SlotEvent& e : batch) {
      JsonValue ev = JsonValue::MakeObject();
      switch (e.kind) {
        case SlotEvent::Kind::kUserArrive:
          ev.Set("event", JsonValue::Str("user_arrive"));
          ev.Set("user", JsonValue::Number(e.user));
          ev.Set("start", JsonValue::Number(e.stream.start));
          ev.Set("end", JsonValue::Number(e.stream.end));
          break;
        case SlotEvent::Kind::kUserDepart:
          ev.Set("event", JsonValue::Str("user_depart"));
          ev.Set("user", JsonValue::Number(e.user));
          break;
        case SlotEvent::Kind::kDeclareValues:
          ev = StreamToJson(e.stream);
          ev.Set("event", JsonValue::Str("declare"));
          ev.Set("user", JsonValue::Number(e.user));
          if (log.kind == GameKind::kSubstOnline) {
            ev.Set("substitutes", OptIdsToJson(e.substitutes));
          } else {
            ev.Set("opt", JsonValue::Number(e.opt));
          }
          break;
        case SlotEvent::Kind::kOptAdd:
          ev.Set("event", JsonValue::Str("opt_add"));
          ev.Set("opt", JsonValue::Number(e.opt));
          ev.Set("cost", JsonValue::Number(e.cost));
          break;
        case SlotEvent::Kind::kOptRetire:
          ev.Set("event", JsonValue::Str("opt_retire"));
          ev.Set("opt", JsonValue::Number(e.opt));
          break;
      }
      events.Append(std::move(ev));
    }
    slot_obj.Set("events", std::move(events));
    slots.Append(std::move(slot_obj));
  }
  obj.Set("slots", std::move(slots));
  return obj;
}

Result<SlotEventLog> EventLogFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckType(v, "event_log"));
  SlotEventLog log;
  const JsonValue* game = v.Find("game");
  const std::string game_name =
      (game != nullptr && game->is_string()) ? game->AsString() : "";
  if (game_name == "additive_online") {
    log.kind = GameKind::kAdditiveOnline;
  } else if (game_name == "multi_additive_online") {
    log.kind = GameKind::kMultiAdditiveOnline;
  } else if (game_name == "subst_online") {
    log.kind = GameKind::kSubstOnline;
  } else {
    return Status::InvalidArgument("unknown or missing game class: \"" +
                                   game_name + "\"");
  }
  Result<int> slots = IntFromJson(v.Find("num_slots"), "num_slots");
  if (!slots.ok()) return slots.status();
  log.num_slots = *slots;
  if (log.num_slots < 1) {
    return Status::InvalidArgument("event log needs at least one slot");
  }
  Result<std::vector<double>> costs = NumbersFromJson(v.Find("costs"), "costs");
  if (!costs.ok()) return costs.status();
  log.costs = std::move(*costs);
  log.events.resize(static_cast<size_t>(log.num_slots));

  const JsonValue* slot_list = v.Find("slots");
  if (slot_list == nullptr || !slot_list->is_array()) {
    return Status::InvalidArgument("missing or non-array field: slots");
  }
  for (const auto& slot_obj : slot_list->AsArray()) {
    if (!slot_obj.is_object()) {
      return Status::InvalidArgument("slot entry must be an object");
    }
    Result<int> t = IntFromJson(slot_obj.Find("slot"), "slot");
    if (!t.ok()) return t.status();
    if (*t < 1 || *t > log.num_slots) {
      return Status::OutOfRange("slot index outside the period");
    }
    const JsonValue* events = slot_obj.Find("events");
    if (events == nullptr || !events->is_array()) {
      return Status::InvalidArgument("missing or non-array field: events");
    }
    for (const auto& ev : events->AsArray()) {
      if (!ev.is_object()) {
        return Status::InvalidArgument("event entry must be an object");
      }
      const JsonValue* kind = ev.Find("event");
      const std::string kind_name =
          (kind != nullptr && kind->is_string()) ? kind->AsString() : "";
      SlotEvent e;
      if (kind_name == "user_arrive") {
        Result<int> user = IntFromJson(ev.Find("user"), "user");
        if (!user.ok()) return user.status();
        Result<int> start = IntFromJson(ev.Find("start"), "start");
        if (!start.ok()) return start.status();
        Result<int> end = IntFromJson(ev.Find("end"), "end");
        if (!end.ok()) return end.status();
        e = SlotEvent::UserArrive(*user, *start, *end);
      } else if (kind_name == "user_depart") {
        Result<int> user = IntFromJson(ev.Find("user"), "user");
        if (!user.ok()) return user.status();
        e = SlotEvent::UserDepart(*user);
      } else if (kind_name == "declare") {
        Result<int> user = IntFromJson(ev.Find("user"), "user");
        if (!user.ok()) return user.status();
        Result<SlotValues> stream = StreamFromJson(ev);
        if (!stream.ok()) return stream.status();
        if (log.kind == GameKind::kSubstOnline) {
          Result<std::vector<OptId>> subs =
              OptIdsFromJson(ev.Find("substitutes"), "substitutes");
          if (!subs.ok()) return subs.status();
          e = SlotEvent::DeclareSubstValues(*user, std::move(*subs),
                                            std::move(*stream));
        } else {
          Result<int> opt = IntFromJson(ev.Find("opt"), "opt");
          if (!opt.ok()) return opt.status();
          e = SlotEvent::DeclareValues(*user, *opt, std::move(*stream));
        }
      } else if (kind_name == "opt_add") {
        Result<int> opt = IntFromJson(ev.Find("opt"), "opt");
        if (!opt.ok()) return opt.status();
        Result<double> cost = NumberFromJson(ev.Find("cost"), "cost");
        if (!cost.ok()) return cost.status();
        e = SlotEvent::OptAdd(*opt, *cost);
      } else if (kind_name == "opt_retire") {
        Result<int> opt = IntFromJson(ev.Find("opt"), "opt");
        if (!opt.ok()) return opt.status();
        e = SlotEvent::OptRetire(*opt);
      } else {
        return Status::InvalidArgument("unknown event kind: \"" + kind_name +
                                       "\"");
      }
      log.events[static_cast<size_t>(*t - 1)].push_back(std::move(e));
    }
  }
  OPTSHARE_RETURN_NOT_OK(log.Validate());
  return log;
}

Result<SubstOnlineGame> SubstOnlineGameFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckType(v, "subst_online"));
  SubstOnlineGame game;
  Result<int> slots = IntFromJson(v.Find("num_slots"), "num_slots");
  if (!slots.ok()) return slots.status();
  game.num_slots = *slots;
  Result<std::vector<double>> costs = NumbersFromJson(v.Find("costs"), "costs");
  if (!costs.ok()) return costs.status();
  game.costs = std::move(*costs);
  const JsonValue* users = v.Find("users");
  if (users == nullptr || !users->is_array()) {
    return Status::InvalidArgument("missing or non-array field: users");
  }
  for (const auto& u : users->AsArray()) {
    SubstOnlineUser user;
    Result<SlotValues> stream = StreamFromJson(u);
    if (!stream.ok()) return stream.status();
    user.stream = std::move(*stream);
    Result<std::vector<OptId>> subs =
        OptIdsFromJson(u.Find("substitutes"), "substitutes");
    if (!subs.ok()) return subs.status();
    user.substitutes = std::move(*subs);
    game.users.push_back(std::move(user));
  }
  OPTSHARE_RETURN_NOT_OK(game.Validate());
  return game;
}

}  // namespace optshare
