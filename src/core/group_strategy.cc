#include "core/group_strategy.h"

#include <cassert>

#include "common/money.h"

namespace optshare {
namespace {

std::vector<double> UtilitiesUnderBids(const CostSharingMethod& method,
                                       const std::vector<double>& values,
                                       const std::vector<double>& bids) {
  const ShapleyResult r = RunMoulin(method, bids);
  std::vector<double> utilities(values.size(), 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (r.implemented && r.serviced[i]) {
      utilities[i] = values[i] - r.payments[i];
    }
  }
  return utilities;
}

}  // namespace

GroupDeviationOutcome ProbeGroupDeviation(
    const CostSharingMethod& method, const std::vector<double>& values,
    const std::vector<UserId>& coalition,
    const std::vector<double>& coalition_bids) {
  assert(coalition.size() == coalition_bids.size());

  const std::vector<double> truthful =
      UtilitiesUnderBids(method, values, values);

  std::vector<double> bids = values;
  for (size_t k = 0; k < coalition.size(); ++k) {
    bids[static_cast<size_t>(coalition[k])] = coalition_bids[k];
  }
  const std::vector<double> deviated =
      UtilitiesUnderBids(method, values, bids);

  GroupDeviationOutcome outcome;
  bool nobody_worse = true;
  bool somebody_better = false;
  for (UserId i : coalition) {
    const double delta = deviated[static_cast<size_t>(i)] -
                         truthful[static_cast<size_t>(i)];
    outcome.utility_delta.push_back(delta);
    if (delta < -kMoneyEpsilon) nobody_worse = false;
    if (delta > kMoneyEpsilon) somebody_better = true;
  }
  outcome.successful_manipulation = nobody_worse && somebody_better;
  return outcome;
}

bool ExistsGroupManipulation(const CostSharingMethod& method,
                             const std::vector<double>& values,
                             int max_coalition_size,
                             const std::vector<double>& grid) {
  const int m = static_cast<int>(values.size());
  assert(m <= 16);
  for (int mask = 1; mask < (1 << m); ++mask) {
    std::vector<UserId> coalition;
    for (int i = 0; i < m; ++i) {
      if (mask & (1 << i)) coalition.push_back(i);
    }
    if (static_cast<int>(coalition.size()) > max_coalition_size) continue;

    // Enumerate grid^|coalition| joint deviations via odometer.
    std::vector<size_t> pick(coalition.size(), 0);
    while (true) {
      std::vector<double> bids;
      bids.reserve(coalition.size());
      for (size_t k = 0; k < coalition.size(); ++k) {
        bids.push_back(grid[pick[k]]);
      }
      if (ProbeGroupDeviation(method, values, coalition, bids)
              .successful_manipulation) {
        return true;
      }
      // Advance the odometer.
      size_t d = 0;
      while (d < pick.size() && ++pick[d] == grid.size()) {
        pick[d] = 0;
        ++d;
      }
      if (d == pick.size()) break;
    }
  }
  return false;
}

}  // namespace optshare
