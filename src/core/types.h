// Fundamental identifiers and value-stream types shared by all mechanisms.
//
// Terminology follows the paper (Table 1): users i, optimizations j, time
// slots t (1-based), outcomes/alternatives a. A bid is a *declared* value;
// mechanisms never see true values, only bids. Accounting (accounting.h)
// re-introduces true values to measure realized utility.
#pragma once

#include <limits>
#include <vector>

#include "common/status.h"

namespace optshare {

/// Index of a user (0-based internally; examples print 1-based like the
/// paper).
using UserId = int;

/// Index of an optimization (index, materialized view, replica, ...).
using OptId = int;

/// 1-based time slot within the pricing period T (paper §5.1).
using TimeSlot = int;

/// Sentinel "no optimization granted".
inline constexpr OptId kNoOpt = -1;

/// Bid value standing for "must be serviced" (used internally by the online
/// mechanisms for already-serviced users; see Mechanism 2 line 5).
inline constexpr double kInfiniteBid = std::numeric_limits<double>::infinity();

/// A per-slot value stream over a user's declared service interval
/// [start, end] (both inclusive). values[k] is the value at slot start + k.
/// Outside the interval the value is 0 (paper: v_ij(t) = 0 for t < s_i or
/// t > e_i).
struct SlotValues {
  TimeSlot start = 1;
  TimeSlot end = 1;
  std::vector<double> values;

  /// Builds a stream; validates interval and length.
  static Result<SlotValues> Make(TimeSlot start, TimeSlot end,
                                 std::vector<double> values);

  /// A stream with the same value in every slot of [start, end].
  static SlotValues Constant(TimeSlot start, TimeSlot end, double value);

  /// A single-slot stream.
  static SlotValues Single(TimeSlot slot, double value);

  /// Value at slot t (0 outside [start, end]).
  double At(TimeSlot t) const;

  /// Total value over the whole interval.
  double Total() const;

  /// Residual value sum_{tau >= t} v(tau) — Mechanism 2 line 7.
  double ResidualFrom(TimeSlot t) const;

  /// Number of slots in the interval.
  int Length() const { return end - start + 1; }

  /// Structural validity: start >= 1, end >= start, values.size() == length,
  /// all values finite and non-negative.
  Status Validate() const;
};

}  // namespace optshare
