// AddOn Mechanism (paper §5, Mechanism 2): online pricing of an additive
// optimization when users join and leave over time slots 1..z.
//
// At each slot the Shapley Value Mechanism runs over *residual* bids
// (the value each present user could still obtain from slot t onward).
// Users serviced once stay serviced — their future bids are forced to
// infinity so the cumulative serviced set CS_j(t) only grows, and the even
// cost-share C_j/|CS_j(t)| only falls. A user pays exactly once, at her
// declared departure slot e_i, the (lowest-so-far) share at that moment.
//
// Properties proven in the paper: truthful in the model-free sense
// (Prop. 1), cost-recovering, and multi-identity bids cannot reduce other
// users' utility (Prop. 2).
#pragma once

#include <vector>

#include "core/game.h"

namespace optshare {

/// Outcome of AddOn for one optimization.
struct AddOnResult {
  /// True iff the optimization was implemented in some slot.
  bool implemented = false;
  /// First slot whose Shapley run yielded a non-empty serviced set
  /// (0 when never implemented).
  TimeSlot implemented_at = 0;
  /// serviced[t-1] = S_j(t): users serviced *and active* at slot t.
  std::vector<std::vector<UserId>> serviced;
  /// cumulative[t-1] = CS_j(t): all users ever serviced up to slot t
  /// (includes users already departed; Mechanism 2 keeps them at bid inf).
  std::vector<std::vector<UserId>> cumulative;
  /// Per-user payment, charged at the user's departure slot.
  std::vector<double> payments;
  /// cost_share[t-1] = C_j / |CS_j(t)| (infinity while CS is empty).
  std::vector<double> cost_share;

  /// True iff user i belongs to CS_j(t).
  bool InCumulative(UserId i, TimeSlot t) const;
  /// Sum of all user payments.
  double TotalPayment() const;
};

/// Runs Mechanism 2 on a validated single-optimization online game.
/// Precondition: game.Validate().ok().
AddOnResult RunAddOn(const AdditiveOnlineGame& game);

/// Runs AddOn independently for every optimization of a multi-optimization
/// additive online game (additivity makes the runs independent).
std::vector<AddOnResult> RunAddOnAll(const MultiAdditiveOnlineGame& game);

}  // namespace optshare
