#include "core/mechanism.h"

#include <algorithm>
#include <cassert>

#include "common/money.h"
#include "core/add_off.h"
#include "core/add_on.h"
#include "core/shapley.h"
#include "core/subst_off.h"
#include "core/subst_on.h"

namespace optshare {

// ---------------------------------------------------------------------------
// Engine primitives
// ---------------------------------------------------------------------------
namespace engine {

EvenSplitOutcome EvenSplitFixedPoint(double cost,
                                     const std::vector<double>& bids,
                                     int num_pinned, int num_zero) {
  assert(cost > 0.0 && "optimization cost must be positive");
  const int num_finite = static_cast<int>(bids.size());
  const int m = num_pinned + num_finite + num_zero;

  EvenSplitOutcome out;
  if (m == 0) return out;  // The dense loop never runs: 0 iterations.

  // Replay the dense loop's shrink sequence. Each round evicts every member
  // below the current even share; shares only grow as the set shrinks, so
  // survivor counts are non-increasing and anyone evicted once stays
  // evicted — the count per round fully determines the dense semantics.
  // Counting rounds are linear over the candidates; if convergence drags
  // past the round budget (an eviction cascade), sort once and finish with
  // binary searches.
  constexpr int kCountingRoundBudget = 24;
  std::vector<double> sorted;  // Built lazily, descending.
  int remaining = m;
  while (true) {
    ++out.iterations;
    const double share = cost / static_cast<double>(remaining);
    int finite_in;
    if (out.iterations > kCountingRoundBudget && sorted.empty() &&
        num_finite > 0) {
      sorted = bids;
      std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    }
    if (!sorted.empty()) {
      const auto first_out = std::partition_point(
          sorted.begin(), sorted.end(),
          [share](double b) { return MoneyGe(b, share); });
      finite_in = static_cast<int>(first_out - sorted.begin());
    } else {
      finite_in = 0;
      for (double b : bids) finite_in += MoneyGe(b, share) ? 1 : 0;
    }
    const bool zeros_in = MoneyGe(0.0, share);
    const int next = num_pinned + finite_in + (zeros_in ? num_zero : 0);
    assert(next <= remaining);
    if (next == 0) return out;  // Everyone evicted: not implemented.
    if (next == remaining) {
      out.implemented = true;
      out.num_serviced = remaining;
      out.share = share;
      out.num_finite_in = finite_in;
      out.zeros_in = zeros_in;
      return out;
    }
    remaining = next;
  }
}

ResidualSuffixArena::ResidualSuffixArena(int num_users) {
  offset_.reserve(static_cast<size_t>(num_users) + 1);
  offset_.push_back(0);
  start_.reserve(static_cast<size_t>(num_users));
  end_.reserve(static_cast<size_t>(num_users));
}

void ResidualSuffixArena::AddUser(TimeSlot start, TimeSlot end,
                                  const std::vector<double>& values) {
  const size_t base = offset_.back();
  offset_.push_back(base + values.size());
  start_.push_back(start);
  end_.push_back(end);
  suffix_.resize(base + values.size());
  double acc = 0.0;
  for (size_t k = values.size(); k-- > 0;) {
    acc = values[k] + acc;
    suffix_[base + k] = acc;
  }
}

AddOnSlotEngine::AddOnSlotEngine(double cost, int num_slots)
    : cost_(cost), num_slots_(num_slots), residuals_(0) {
  assert(cost_ > 0.0 && "optimization cost must be positive");
  assert(num_slots_ >= 1 && "period needs at least one slot");
  out_.slot_share.assign(static_cast<size_t>(num_slots_), kInfiniteBid);
  out_.newly_serviced.resize(static_cast<size_t>(num_slots_));
  // Index z+1 holds registrations that land after the last slot.
  by_start_.resize(static_cast<size_t>(num_slots_) + 2);
  by_end_.resize(static_cast<size_t>(num_slots_) + 2);
}

void AddOnSlotEngine::Reserve(int num_users, size_t total_values) {
  const size_t n = static_cast<size_t>(num_users);
  present_.reserve(n);
  in_cs_.reserve(n);
  joined_.reserve(n);
  start_.reserve(n);
  decl_end_.reserve(n);
  eff_end_.reserve(n);
  stream_idx_.reserve(n);
  out_.payments.reserve(n);
  residuals_.ReserveValues(total_values);
}

Status AddOnSlotEngine::Register(UserId i, TimeSlot start, TimeSlot end,
                                 const std::vector<double>* values) {
  if (i < 0) return Status::InvalidArgument("user id must be non-negative");
  if (start < 1 || end < start || end > num_slots_) {
    return Status::InvalidArgument("user interval outside the period's slots");
  }
  const size_t u = static_cast<size_t>(i);
  if (u >= present_.size()) {
    const size_t n = u + 1;
    present_.resize(n, 0);
    in_cs_.resize(n, 0);
    joined_.resize(n, 0);
    start_.resize(n, 0);
    decl_end_.resize(n, 0);
    eff_end_.resize(n, 0);
    stream_idx_.resize(n, -1);
    out_.payments.resize(n, 0.0);
  }
  const bool fresh = present_[u] == 0;
  if (!fresh) {
    if (values == nullptr) {
      return Status::AlreadyExists("user already registered");
    }
    if (stream_idx_[u] >= 0) {
      return Status::AlreadyExists("user already declared a value stream");
    }
    if (eff_end_[u] < decl_end_[u]) {
      return Status::FailedPrecondition("user departed; cannot declare");
    }
  }
  present_[u] = 1;
  if (fresh) ++registered_count_;
  start_[u] = start;
  decl_end_[u] = end;
  eff_end_[u] = end;
  if (values != nullptr) {
    residuals_.AddUser(start, end, *values);
    stream_idx_[u] = arena_users_++;
  }
  if (!joined_[u]) {
    // Activation bucket: at her declared start, or the upcoming slot when
    // the interval already began (mid-period structure additions).
    const TimeSlot join = start > current_ ? start : current_ + 1;
    by_start_[static_cast<size_t>(join)].push_back(i);
  }
  by_end_[static_cast<size_t>(end)].push_back(i);
  return Status::OK();
}

Status AddOnSlotEngine::Arrive(UserId i, TimeSlot start, TimeSlot end) {
  return Register(i, start, end, nullptr);
}

Status AddOnSlotEngine::Declare(UserId i, const SlotValues& stream) {
  OPTSHARE_RETURN_NOT_OK(stream.Validate());
  return Register(i, stream.start, stream.end, &stream.values);
}

Status AddOnSlotEngine::Depart(UserId i) {
  if (!registered(i)) return Status::NotFound("unknown user id");
  const size_t u = static_cast<size_t>(i);
  const TimeSlot t = current_ + 1;  // Present through the upcoming slot.
  if (start_[u] > t) {
    return Status::InvalidArgument("cannot depart before arrival");
  }
  if (eff_end_[u] <= t) return Status::OK();  // Already ends by then.
  eff_end_[u] = t;
  by_end_[static_cast<size_t>(t)].push_back(i);
  return Status::OK();
}

void AddOnSlotEngine::Retire() {
  if (retired_) return;
  retired_ = true;
  retired_at_ = current_;
  // Serviced members who have not reached their departure slot pay the
  // last priced share now — as if the period ended at the retire point
  // (Mechanism 2's departure rule, departure moved up for everyone).
  for (size_t u = 0; u < present_.size(); ++u) {
    if (present_[u] && in_cs_[u] &&
        eff_end_[u] > current_) {
      out_.payments[u] = last_priced_share_;
    }
  }
}

Status AddOnSlotEngine::StepSlot() {
  if (current_ >= num_slots_) {
    return Status::FailedPrecondition("period exhausted");
  }
  const TimeSlot t = ++current_;
  if (retired_) return Status::OK();  // Frozen: no pricing, share stays inf.

  for (UserId i : by_start_[static_cast<size_t>(t)]) {
    if (!joined_[static_cast<size_t>(i)]) {
      joined_[static_cast<size_t>(i)] = 1;
      alive_.push_back(i);
    }
  }

  cand_bids_.clear();
  cand_ids_.clear();
  size_t write = 0;
  for (UserId i : alive_) {
    const size_t u = static_cast<size_t>(i);
    if (in_cs_[u]) continue;  // Pinned at infinity.
    if (eff_end_[u] < t) continue;  // Departed unserviced: zero bid forever.
    double residual = 0.0;
    if (stream_idx_[u] >= 0 && t >= start_[u]) {
      residual = residuals_.ResidualWithin(stream_idx_[u], t - start_[u]);
      if (eff_end_[u] < decl_end_[u]) {
        // Early departure truncates the declared stream.
        residual -= residuals_.ResidualFrom(stream_idx_[u], eff_end_[u] + 1);
      }
    }
    if (residual > 0.0) {
      cand_bids_.push_back(residual);
      cand_ids_.push_back(i);
    }
    alive_[write++] = i;
  }
  alive_.resize(write);

  // Every registered user not pinned and not a positive candidate —
  // absent, departed, or zero-residual — is a zero bidder, as in the dense
  // residual vector.
  const int num_zero =
      registered_count_ - cs_count_ - static_cast<int>(cand_bids_.size());

  const EvenSplitOutcome fp =
      EvenSplitFixedPoint(cost_, cand_bids_, cs_count_, num_zero);
  if (!fp.implemented) return Status::OK();  // CS empty: no payments.

  if (!out_.implemented) {
    out_.implemented = true;
    out_.implemented_at = t;
  }
  out_.slot_share[static_cast<size_t>(t - 1)] = fp.share;
  last_priced_share_ = fp.share;

  auto& added = out_.newly_serviced[static_cast<size_t>(t - 1)];
  if (fp.zeros_in) {
    // Share fell to <= epsilon: the whole registered universe is serviced.
    for (size_t u = 0; u < present_.size(); ++u) {
      if (present_[u] && !in_cs_[u]) added.push_back(static_cast<UserId>(u));
    }
  } else {
    for (size_t k = 0; k < cand_bids_.size(); ++k) {
      if (MoneyGe(cand_bids_[k], fp.share)) added.push_back(cand_ids_[k]);
    }
    std::sort(added.begin(), added.end());
  }
  for (UserId i : added) {
    in_cs_[static_cast<size_t>(i)] = 1;
    ++cs_count_;
  }

  // Users departing now pay the current share if serviced (Mechanism 2
  // lines 15-19).
  for (UserId i : by_end_[static_cast<size_t>(t)]) {
    const size_t u = static_cast<size_t>(i);
    if (eff_end_[u] == t && in_cs_[u]) {
      out_.payments[u] = fp.share;
    }
  }
  return Status::OK();
}

OnlineAdditiveOutcome RunAddOnEngine(const AdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();

  AddOnSlotEngine eng(game.cost, game.num_slots);
  size_t total_values = 0;
  for (UserId i = 0; i < m; ++i) {
    total_values += game.users[static_cast<size_t>(i)].values.size();
  }
  eng.Reserve(m, total_values);
  for (UserId i = 0; i < m; ++i) {
    const Status st = eng.Declare(i, game.users[static_cast<size_t>(i)]);
    assert(st.ok());
    (void)st;
  }
  for (TimeSlot t = 1; t <= game.num_slots; ++t) {
    const Status st = eng.StepSlot();
    assert(st.ok());
    (void)st;
  }
  return eng.TakeOutcome();
}

}  // namespace engine

// ---------------------------------------------------------------------------
// GameView
// ---------------------------------------------------------------------------

std::string_view GameKindName(GameKind kind) {
  switch (kind) {
    case GameKind::kAdditiveOffline: return "additive_offline";
    case GameKind::kAdditiveOnline: return "additive_online";
    case GameKind::kMultiAdditiveOnline: return "multi_additive_online";
    case GameKind::kSubstOffline: return "subst_offline";
    case GameKind::kSubstOnline: return "subst_online";
  }
  return "unknown";
}

const AdditiveOfflineGame& GameView::additive_offline() const {
  assert(kind_ == GameKind::kAdditiveOffline);
  return *static_cast<const AdditiveOfflineGame*>(ptr_);
}
const AdditiveOnlineGame& GameView::additive_online() const {
  assert(kind_ == GameKind::kAdditiveOnline);
  return *static_cast<const AdditiveOnlineGame*>(ptr_);
}
const MultiAdditiveOnlineGame& GameView::multi_additive_online() const {
  assert(kind_ == GameKind::kMultiAdditiveOnline);
  return *static_cast<const MultiAdditiveOnlineGame*>(ptr_);
}
const SubstOfflineGame& GameView::subst_offline() const {
  assert(kind_ == GameKind::kSubstOffline);
  return *static_cast<const SubstOfflineGame*>(ptr_);
}
const SubstOnlineGame& GameView::subst_online() const {
  assert(kind_ == GameKind::kSubstOnline);
  return *static_cast<const SubstOnlineGame*>(ptr_);
}

int GameView::num_users() const {
  switch (kind_) {
    case GameKind::kAdditiveOffline: return additive_offline().num_users();
    case GameKind::kAdditiveOnline: return additive_online().num_users();
    case GameKind::kMultiAdditiveOnline:
      return multi_additive_online().num_users();
    case GameKind::kSubstOffline: return subst_offline().num_users();
    case GameKind::kSubstOnline: return subst_online().num_users();
  }
  return 0;
}

int GameView::num_opts() const {
  switch (kind_) {
    case GameKind::kAdditiveOffline: return additive_offline().num_opts();
    case GameKind::kAdditiveOnline: return 1;
    case GameKind::kMultiAdditiveOnline:
      return multi_additive_online().num_opts();
    case GameKind::kSubstOffline: return subst_offline().num_opts();
    case GameKind::kSubstOnline: return subst_online().num_opts();
  }
  return 0;
}

int GameView::num_slots() const {
  switch (kind_) {
    case GameKind::kAdditiveOffline:
    case GameKind::kSubstOffline:
      return 0;
    case GameKind::kAdditiveOnline: return additive_online().num_slots;
    case GameKind::kMultiAdditiveOnline:
      return multi_additive_online().num_slots;
    case GameKind::kSubstOnline: return subst_online().num_slots;
  }
  return 0;
}

Status GameView::Validate() const {
  switch (kind_) {
    case GameKind::kAdditiveOffline: return additive_offline().Validate();
    case GameKind::kAdditiveOnline: return additive_online().Validate();
    case GameKind::kMultiAdditiveOnline:
      return multi_additive_online().Validate();
    case GameKind::kSubstOffline: return subst_offline().Validate();
    case GameKind::kSubstOnline: return subst_online().Validate();
  }
  return Status::Internal("unknown game kind");
}

// ---------------------------------------------------------------------------
// MechanismResult
// ---------------------------------------------------------------------------

bool MechanismResult::Implemented(OptId j) const {
  return j >= 0 && j < static_cast<OptId>(implemented_at.size()) &&
         implemented_at[static_cast<size_t>(j)] > 0;
}

std::vector<OptId> MechanismResult::ImplementedOpts() const {
  std::vector<OptId> out;
  for (OptId j = 0; j < static_cast<OptId>(implemented_at.size()); ++j) {
    if (implemented_at[static_cast<size_t>(j)] > 0) out.push_back(j);
  }
  return out;
}

bool MechanismResult::Serviced(UserId i, OptId j) const {
  if (j < 0 || j >= static_cast<OptId>(serviced.size())) return false;
  return serviced[static_cast<size_t>(j)].Contains(i);
}

double MechanismResult::ImplementedCost(
    const std::vector<double>& costs) const {
  double sum = 0.0;
  for (OptId j : ImplementedOpts()) sum += costs[static_cast<size_t>(j)];
  return sum;
}

double MechanismResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

// ---------------------------------------------------------------------------
// Core mechanism adapters
// ---------------------------------------------------------------------------
Status UnsupportedKind(std::string_view mechanism, GameKind kind) {
  return Status::InvalidArgument(std::string("mechanism \"") +
                                 std::string(mechanism) +
                                 "\" does not support " +
                                 std::string(GameKindName(kind)) + " games");
}

namespace {

/// AddOff (§4.2): per-optimization Shapley runs over an offline additive
/// game. Registered as both "addoff" and "shapley".
class AddOffMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "addoff"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kAdditiveOffline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    const AdditiveOfflineGame& g = game.additive_offline();
    const AddOffResult off = RunAddOff(g);

    MechanismResult r;
    r.num_users = g.num_users();
    r.num_opts = g.num_opts();
    r.implemented_at.assign(static_cast<size_t>(g.num_opts()), 0);
    r.cost_share.assign(static_cast<size_t>(g.num_opts()), 0.0);
    r.payments = off.total_payment;
    r.serviced.resize(static_cast<size_t>(g.num_opts()));
    for (OptId j = 0; j < g.num_opts(); ++j) {
      const ShapleyResult& sh = off.per_opt[static_cast<size_t>(j)];
      if (!sh.implemented) continue;
      r.implemented = true;
      r.implemented_at[static_cast<size_t>(j)] = 1;
      r.cost_share[static_cast<size_t>(j)] = sh.cost_share;
      r.serviced[static_cast<size_t>(j)] = Coalition::FromMask(sh.serviced);
    }
    return r;
  }
};

/// AddOn (§5): the online additive mechanism, run natively by the engine.
/// Also handles multi-optimization additive games by independent per-opt
/// runs (additivity makes them independent).
class AddOnMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "addon"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kAdditiveOnline ||
           kind == GameKind::kMultiAdditiveOnline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    if (game.kind() == GameKind::kAdditiveOnline) {
      return RunSingle(game.additive_online());
    }
    const MultiAdditiveOnlineGame& g = game.multi_additive_online();
    MechanismResult r;
    r.num_users = g.num_users();
    r.num_opts = g.num_opts();
    r.num_slots = g.num_slots;
    r.payments.assign(static_cast<size_t>(g.num_users()), 0.0);
    for (OptId j = 0; j < g.num_opts(); ++j) {
      MechanismResult one = RunSingle(g.ProjectOpt(j));
      r.implemented = r.implemented || one.implemented;
      r.implemented_at.push_back(one.implemented_at[0]);
      r.cost_share.push_back(one.cost_share[0]);
      r.serviced.push_back(std::move(one.serviced[0]));
      r.active.push_back(std::move(one.active[0]));
      for (UserId i = 0; i < g.num_users(); ++i) {
        r.payments[static_cast<size_t>(i)] +=
            one.payments[static_cast<size_t>(i)];
      }
    }
    return r;
  }

 private:
  static MechanismResult RunSingle(const AdditiveOnlineGame& g) {
    std::vector<TimeSlot> ends;
    ends.reserve(g.users.size());
    for (const auto& u : g.users) ends.push_back(u.end);
    return ResultFromOnlineAdditive(engine::RunAddOnEngine(g), g.num_users(),
                                    g.num_slots, ends);
  }
};

/// SubstOff (§6.1, Mechanism 3).
class SubstOffMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "substoff"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kSubstOffline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    const SubstOfflineGame& g = game.subst_offline();
    const SubstOffResult off = RunSubstOff(g);

    MechanismResult r;
    r.num_users = g.num_users();
    r.num_opts = g.num_opts();
    r.implemented = !off.implemented.empty();
    r.implemented_at.assign(static_cast<size_t>(g.num_opts()), 0);
    r.cost_share.assign(static_cast<size_t>(g.num_opts()), 0.0);
    for (size_t k = 0; k < off.implemented.size(); ++k) {
      r.implemented_at[static_cast<size_t>(off.implemented[k])] = 1;
      r.cost_share[static_cast<size_t>(off.implemented[k])] =
          off.cost_share[k];
    }
    r.payments = off.payments;
    r.grant = off.grant;
    r.serviced.resize(static_cast<size_t>(g.num_opts()));
    for (UserId i = 0; i < g.num_users(); ++i) {
      const OptId gnt = off.grant[static_cast<size_t>(i)];
      if (gnt != kNoOpt) r.serviced[static_cast<size_t>(gnt)].Insert(i);
    }
    return r;
  }
};

/// SubstOn (§6.2, Mechanism 4).
class SubstOnMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "subston"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kSubstOnline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    const SubstOnlineGame& g = game.subst_online();
    return ResultFromSubstOn(RunSubstOnEngine(g), g.num_users(), g.num_opts(),
                             g.num_slots);
  }
};

}  // namespace

MechanismResult ResultFromOnlineAdditive(engine::OnlineAdditiveOutcome outcome,
                                         int num_users, int num_slots,
                                         const std::vector<TimeSlot>& ends) {
  MechanismResult r;
  r.num_users = num_users;
  r.num_opts = 1;
  r.num_slots = num_slots;
  r.implemented = outcome.implemented;
  r.implemented_at = {outcome.implemented_at};
  r.payments = std::move(outcome.payments);
  r.payments.resize(static_cast<size_t>(num_users), 0.0);
  r.serviced.resize(1);
  r.active.resize(1);
  r.active[0].resize(static_cast<size_t>(num_slots));

  Coalition cs;
  for (TimeSlot t = 1; t <= num_slots; ++t) {
    for (UserId i : outcome.newly_serviced[static_cast<size_t>(t - 1)]) {
      cs.Insert(i);
    }
    if (cs.empty()) continue;
    std::vector<UserId> active_now;
    for (UserId i : cs) {
      if (t <= ends[static_cast<size_t>(i)]) active_now.push_back(i);
    }
    r.active[0][static_cast<size_t>(t - 1)] =
        Coalition::FromSorted(std::move(active_now));
  }
  r.serviced[0] = std::move(cs);
  // Final share: CS only grows, so the last *priced* slot's share is the
  // final C / |CS_j(t)|. Once implemented, every later slot is priced —
  // unless the structure was retired, in which case post-retire slots stay
  // at kInfiniteBid and the last priced share (what pending members were
  // charged) is the one to report.
  double final_share = 0.0;
  if (outcome.implemented) {
    for (TimeSlot t = num_slots; t >= 1; --t) {
      const double share = outcome.slot_share[static_cast<size_t>(t - 1)];
      if (share != kInfiniteBid) {
        final_share = share;
        break;
      }
    }
  }
  r.cost_share = {final_share};
  return r;
}

MechanismResult ResultFromSubstOn(const SubstOnEngineOutcome& eng,
                                  int num_users, int num_opts, int num_slots) {
  const SubstOnResult& on = eng.result;

  MechanismResult r;
  r.num_users = num_users;
  r.num_opts = num_opts;
  r.num_slots = num_slots;
  r.implemented_at = on.implemented_at;
  r.implemented = !on.ImplementedOpts().empty();
  r.cost_share = eng.last_share;
  r.payments = on.payments;
  r.payments.resize(static_cast<size_t>(num_users), 0.0);
  r.grant = on.grant;
  r.grant.resize(static_cast<size_t>(num_users), kNoOpt);
  r.grant_slot = on.grant_slot;
  r.grant_slot.resize(static_cast<size_t>(num_users), 0);
  r.serviced.resize(static_cast<size_t>(num_opts));
  r.active.resize(static_cast<size_t>(num_opts));
  for (auto& per_slot : r.active) {
    per_slot.resize(static_cast<size_t>(num_slots));
  }
  for (UserId i = 0; i < num_users; ++i) {
    const OptId gnt = r.grant[static_cast<size_t>(i)];
    if (gnt != kNoOpt) r.serviced[static_cast<size_t>(gnt)].Insert(i);
  }
  for (TimeSlot t = 1; t <= num_slots; ++t) {
    for (UserId i : on.serviced[static_cast<size_t>(t - 1)]) {
      const OptId gnt = r.grant[static_cast<size_t>(i)];
      r.active[static_cast<size_t>(gnt)][static_cast<size_t>(t - 1)]
          .Insert(i);
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MechanismRegistry& MechanismRegistry::Global() {
  static MechanismRegistry* registry = [] {
    auto* r = new MechanismRegistry();
    (void)r->Register("addoff",
                      [] { return std::make_unique<AddOffMechanism>(); });
    // "shapley" is the paper's name for the same per-optimization run.
    (void)r->Register("shapley",
                      [] { return std::make_unique<AddOffMechanism>(); });
    (void)r->Register("addon",
                      [] { return std::make_unique<AddOnMechanism>(); });
    (void)r->Register("substoff",
                      [] { return std::make_unique<SubstOffMechanism>(); });
    (void)r->Register("subston",
                      [] { return std::make_unique<SubstOnMechanism>(); });
    return r;
  }();
  return *registry;
}

Status MechanismRegistry::Register(const std::string& name,
                                   MechanismFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [entry_name, entry_factory] : entries_) {
    if (entry_name == name) {
      return Status::AlreadyExists("mechanism \"" + name +
                                   "\" is already registered");
    }
  }
  entries_.push_back({name, std::move(factory)});
  return Status::OK();
}

bool MechanismRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [entry_name, factory] : entries_) {
    if (entry_name == name) return true;
  }
  return false;
}

Result<std::unique_ptr<Mechanism>> MechanismRegistry::Create(
    const std::string& name) const {
  // The factory is copied out so user factory code never runs under the
  // registry lock (a factory that touched the registry would deadlock).
  MechanismFactory factory;
  std::string registered;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [entry_name, entry_factory] : entries_) {
      if (entry_name == name) {
        factory = entry_factory;
        break;
      }
    }
    if (!factory) {
      // List what *is* registered, so a typo'd --mechanism flag is
      // self-fixing.
      for (const std::string& entry_name : NamesLocked()) {
        if (!registered.empty()) registered += ", ";
        registered += entry_name;
      }
    }
  }
  if (factory) return factory();
  return Status::NotFound("no mechanism named \"" + name +
                          "\"; registered mechanisms: " +
                          (registered.empty() ? "(none)" : registered));
}

std::vector<std::string> MechanismRegistry::NamesLocked() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [entry_name, factory] : entries_) {
    names.push_back(entry_name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> MechanismRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return NamesLocked();
}

std::string MechanismRegistry::DefaultFor(GameKind kind) {
  switch (kind) {
    case GameKind::kAdditiveOffline: return "addoff";
    case GameKind::kAdditiveOnline:
    case GameKind::kMultiAdditiveOnline:
      return "addon";
    case GameKind::kSubstOffline: return "substoff";
    case GameKind::kSubstOnline: return "subston";
  }
  return "addoff";
}

Result<std::unique_ptr<Mechanism>> ResolveMechanism(const std::string& name,
                                                    GameKind kind) {
  Result<std::unique_ptr<Mechanism>> mech =
      MechanismRegistry::Global().Create(name);
  if (!mech.ok()) return mech.status();
  if (!(*mech)->Supports(kind)) return UnsupportedKind(name, kind);
  return mech;
}

Result<MechanismResult> RunMechanism(const std::string& name,
                                     const GameView& game) {
  Result<std::unique_ptr<Mechanism>> mech =
      ResolveMechanism(name, game.kind());
  if (!mech.ok()) return mech.status();
  return (*mech)->Run(game);
}

}  // namespace optshare
