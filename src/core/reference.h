// Reference (dense-scan) mechanism implementations — the seed's original
// code paths, retained verbatim after the engine refactor (core/mechanism.h)
// for two purposes:
//
//  * Differential testing: tests/core_mechanism_test.cc asserts that every
//    engine-backed entry point (RunShapley, RunAddOn, ...) produces results
//    identical to these on seeded random games.
//  * Benchmarking: bench/mech_speed.cc measures the engine's speedup over
//    these dense scans (BENCH_mechanisms.json).
//
// Do not use these in production paths; they rescan the full user universe
// every eviction round and every time slot.
#pragma once

#include "core/add_off.h"
#include "core/add_on.h"
#include "core/moulin.h"
#include "core/shapley.h"
#include "core/subst_off.h"
#include "core/subst_on.h"

namespace optshare::reference {

/// Mechanism 1 via the dense eviction loop.
ShapleyResult RunShapleyDense(double cost, const std::vector<double>& bids);

/// Moulin mechanism via the dense eviction loop (any sharing method).
ShapleyResult RunMoulinDense(const CostSharingMethod& method,
                             const std::vector<double>& bids);

/// AddOff via one dense Shapley run per optimization.
AddOffResult RunAddOffDense(const AdditiveOfflineGame& game);

/// Mechanism 2 rebuilding the full residual-bid vector every slot.
AddOnResult RunAddOnDense(const AdditiveOnlineGame& game);

/// Mechanism 3 over a dense [user][opt] bid matrix.
SubstOffResult RunSubstOffMatrixDense(const std::vector<double>& costs,
                                      std::vector<std::vector<double>> bids);

/// Mechanism 3 from a SubstOfflineGame.
SubstOffResult RunSubstOffDense(const SubstOfflineGame& game);

/// Mechanism 4 rebuilding the dense matrix every slot.
SubstOnResult RunSubstOnDense(const SubstOnlineGame& game);

}  // namespace optshare::reference
