// The unified mechanism engine.
//
// The paper's four mechanisms (Shapley §4.1, AddOn §5, SubstOff/SubstOn §6)
// and the Moulin generalization share one computational core: find the
// fixed point of the eviction loop "drop every user whose current cost
// share exceeds her bid". The seed implemented that loop five times over
// dense per-user `vector<bool>` masks, rescanning the full user universe
// every round and every time slot. This header replaces those paths with:
//
//  * `engine::EvenSplitFixedPoint` — the even-split (egalitarian) fixed
//    point computed by a prefix scan over bids sorted once, O(n log n)
//    total instead of O(n * rounds). The round count it reports is
//    identical to the dense loop's, and membership, shares and payments
//    are bit-identical (see reference.h for the retained dense originals
//    and tests/core_mechanism_test.cc for the differential suite).
//  * `engine::RunAddOnEngine` — the AddOn slot loop with per-user residual
//    state (suffix-sum arenas, arrival/departure buckets) computed once
//    and reused across slots, touching only present users per slot.
//  * `Mechanism` / `MechanismResult` / `MechanismRegistry` — a polymorphic
//    interface over every mechanism (paper mechanisms and baselines alike)
//    so that callers — the CLI, the cloud service, the experiment harness —
//    select mechanisms by registry name at runtime instead of by
//    compile-time call site, and compare their outcomes uniformly.
//
// The original free functions (RunShapley, RunAddOn, ...) remain the
// stable entry points; they are thin adapters over this engine.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/coalition.h"
#include "core/game.h"

namespace optshare {

// ---------------------------------------------------------------------------
// Engine primitives
// ---------------------------------------------------------------------------
namespace engine {

/// Outcome of the even-split eviction fixed point for one optimization.
struct EvenSplitOutcome {
  /// True iff a non-empty stable coalition covers the cost.
  bool implemented = false;
  /// |S*|: pinned members + affordable finite bids + (zeros when swept in).
  int num_serviced = 0;
  /// Final even share C / |S*| (0 when not implemented). A bid is serviced
  /// iff MoneyGe(bid, share) — callers extract memberships with exactly
  /// this test, the dense loop's final-round rule.
  double share = 0.0;
  /// Rounds the dense eviction loop would have executed — reported for
  /// bit-compatibility with the original mechanism results.
  int iterations = 0;
  /// Finite bids with MoneyGe(bid, share).
  int num_finite_in = 0;
  /// True iff the final share fell to <= kMoneyEpsilon, at which point the
  /// dense loop serviced even zero-bid users; the count then covers all
  /// finite bids and every zero bidder is serviced too.
  bool zeros_in = false;
};

/// Computes the fixed point of Mechanism 1's eviction loop without the
/// dense per-user rescan: the dense loop's shrink sequence depends only on
/// *how many* bids afford each round's share, so each round is a count over
/// the candidate bids — no serviced mask, no rebuild, and only the present
/// candidates are touched. Convergence is typically a handful of rounds;
/// past a fixed round budget the engine sorts the bids once and finishes
/// the replay with binary searches, turning the adversarial
/// one-eviction-per-round cascade from O(n^2) into O(n log n).
///
/// `bids` — finite candidate bids, any order. `num_pinned` — users with
/// infinite bids (the online mechanisms pin already-serviced users); they
/// are always serviced and count toward the denominator. `num_zero` —
/// users bidding exactly 0 (absent, departed, or uninterested users);
/// they are serviced only when the share falls to <= kMoneyEpsilon, exactly
/// as the dense loop's `MoneyGe(0, share)` test behaved. `cost` must be
/// positive.
EvenSplitOutcome EvenSplitFixedPoint(double cost,
                                     const std::vector<double>& bids,
                                     int num_pinned, int num_zero);

/// Raw outcome of the AddOn slot loop (Mechanism 2) over one optimization.
/// Carries the per-slot deltas of the cumulative serviced set instead of
/// materializing CS_j(t) per slot; adapters reconstruct whichever dense
/// view they need.
struct OnlineAdditiveOutcome {
  bool implemented = false;
  TimeSlot implemented_at = 0;
  /// Per-slot even share C / |CS_j(t)| (kInfiniteBid while CS is empty).
  std::vector<double> slot_share;
  /// Per-user payment, charged at the user's declared departure slot.
  std::vector<double> payments;
  /// newly_serviced[t-1]: users entering CS_j(t) at slot t, ascending.
  std::vector<std::vector<UserId>> newly_serviced;
};

/// Runs Mechanism 2 with residual-bid state reused across slots: per-user
/// residual suffix sums are computed once, arrival/departure buckets drive
/// the active set, and each slot's Shapley run is an EvenSplitFixedPoint
/// over the present users only. Precondition: game.Validate().ok().
///
/// Thin batch driver over AddOnSlotEngine: declares every user, then steps
/// every slot.
OnlineAdditiveOutcome RunAddOnEngine(const AdditiveOnlineGame& game);


/// Per-user suffix sums of declared value streams, laid out in one arena
/// and computed once so the online mechanisms (AddOn, SubstOn) can read
/// residual bids across slots without per-slot forward summation.
/// (Last-ulp rounding may differ from a per-slot forward sum; with the
/// absolute kMoneyEpsilon tolerance this cannot flip a serviced/evicted
/// decision except on measure-zero bid profiles.)
class ResidualSuffixArena {
 public:
  explicit ResidualSuffixArena(int num_users);

  /// Pre-reserves the value arena (sum of stream lengths across users) so
  /// AddUser never reallocates; optional, but on large games the realloc
  /// copies are measurable.
  void ReserveValues(size_t total_values) { suffix_.reserve(total_values); }

  /// Appends the next user's stream: `values[k]` is her declared value at
  /// slot start + k, with values.size() == end - start + 1. Users must be
  /// added in id order, one call per id.
  void AddUser(TimeSlot start, TimeSlot end, const std::vector<double>& values);

  /// Sum of user i's declared values from slot t through her departure:
  /// the full stream total before her start, 0 past her end.
  double ResidualFrom(UserId i, TimeSlot t) const {
    const size_t u = static_cast<size_t>(i);
    if (t <= start_[u]) return suffix_[offset_[u]];
    if (t > end_[u]) return 0.0;
    return suffix_[offset_[u] + static_cast<size_t>(t - start_[u])];
  }

  /// Hot-path form for callers that already know slot t lies inside user
  /// i's declared interval and pass k = t - start: one arena read, no
  /// interval re-checks (the per-slot loops have the user's own start/end
  /// in hand and branching on them again measurably slows the AddOn sweep).
  double ResidualWithin(UserId i, TimeSlot k) const {
    return suffix_[offset_[static_cast<size_t>(i)] + static_cast<size_t>(k)];
  }

 private:
  std::vector<size_t> offset_;     // offset_[i]: user i's span start.
  std::vector<double> suffix_;     // suffix_[offset_[i] + k] = sum from k.
  std::vector<TimeSlot> start_;
  std::vector<TimeSlot> end_;
};

/// The incremental (slot-stepping) form of the AddOn engine. The cross-slot
/// state Mechanism 2 needs anyway — residual suffix arenas, the alive
/// candidate list, the cumulative serviced set — lives behind an API that
/// ingests user declarations as they happen and prices one slot per call,
/// so an online service never recomputes a period from scratch.
/// RunAddOnEngine (batch) and the streaming OnlineMechanism surface
/// (core/online_mechanism.h) both drive this class, executing the same
/// per-slot code path.
///
/// Universe semantics: a user counts toward a slot's even-split denominator
/// from the moment she is *registered* (Arrive or Declare), exactly as the
/// batch engine counts the full user vector of the game. Batch drivers
/// register everyone before slot 1 and are bit-identical to the historical
/// results; streaming drivers that register users at their arrival slots
/// shrink the early-slot zero-bidder count, which can only change an
/// outcome when a share falls to <= kMoneyEpsilon (zero bidders are swept
/// in only then).
class AddOnSlotEngine {
 public:
  /// `cost` must be positive, `num_slots` >= 1.
  AddOnSlotEngine(double cost, int num_slots);

  /// Optional pre-sizing for batch drivers (avoids growth reallocations).
  void Reserve(int num_users, size_t total_values);

  /// Registers user `i` as a zero bidder over [start, end] (an arrival
  /// announcement without a value declaration yet).
  Status Arrive(UserId i, TimeSlot start, TimeSlot end);

  /// Declares user `i`'s value stream, registering her if Arrive was not
  /// called first (a prior zero-bid registration is superseded by the
  /// stream's interval). Declared values at slots that already elapsed are
  /// ignored by pricing; the declaration is otherwise binding.
  Status Declare(UserId i, const SlotValues& stream);

  /// Early departure: `i` stays present through the upcoming slot and is
  /// gone afterwards; if serviced, she pays that slot's share (her declared
  /// departure is moved up, Mechanism 2's payment rule unchanged).
  Status Depart(UserId i);

  /// Stops pricing permanently (the structure is retired): serviced users
  /// who have not reached their departure slot pay the last priced share
  /// now, and further slots are no-ops.
  void Retire();

  /// Prices slot next_slot(). Fails once the period is exhausted.
  Status StepSlot();

  /// The next slot StepSlot would price (1-based; num_slots()+1 when done).
  TimeSlot next_slot() const { return current_ + 1; }
  int num_slots() const { return num_slots_; }
  /// Count of registered users (the id space may have holes; holes do not
  /// count toward the denominator).
  int num_registered() const { return registered_count_; }
  /// Size of the id space (max registered id + 1).
  int id_space() const { return static_cast<int>(present_.size()); }
  bool registered(UserId i) const {
    return i >= 0 && i < id_space() && present_[static_cast<size_t>(i)] != 0;
  }
  bool retired() const { return retired_; }
  /// Last slot the structure was (potentially) active: the slot preceding
  /// the Retire call, or the full period when never retired.
  TimeSlot retired_at() const { return retired_ ? retired_at_ : num_slots_; }
  /// Effective end of user i: declared end, or earlier after Depart.
  TimeSlot end_of(UserId i) const {
    return eff_end_[static_cast<size_t>(i)];
  }
  /// Live outcome, filled through the last stepped slot (payments and
  /// newly_serviced are indexed by user id; slot vectors are sized to the
  /// full period).
  const OnlineAdditiveOutcome& outcome() const { return out_; }
  /// Moves the outcome out; the engine is spent afterwards.
  OnlineAdditiveOutcome TakeOutcome() { return std::move(out_); }

 private:
  Status Register(UserId i, TimeSlot start, TimeSlot end,
                  const std::vector<double>* values);

  double cost_;
  int num_slots_;
  TimeSlot current_ = 0;
  bool retired_ = false;
  TimeSlot retired_at_ = 0;
  int registered_count_ = 0;
  int cs_count_ = 0;
  double last_priced_share_ = 0.0;

  ResidualSuffixArena residuals_;
  int arena_users_ = 0;

  // Per-user state, indexed by UserId.
  std::vector<char> present_;
  std::vector<char> in_cs_;
  std::vector<char> joined_;          // already moved into alive_.
  std::vector<TimeSlot> start_;
  std::vector<TimeSlot> decl_end_;    // declared departure.
  std::vector<TimeSlot> eff_end_;     // effective departure (<= declared).
  std::vector<int> stream_idx_;       // arena index; -1 = zero bidder.

  std::vector<std::vector<UserId>> by_start_;
  std::vector<std::vector<UserId>> by_end_;
  std::vector<UserId> alive_;
  std::vector<double> cand_bids_;
  std::vector<UserId> cand_ids_;

  OnlineAdditiveOutcome out_;
};

}  // namespace engine

// ---------------------------------------------------------------------------
// Uniform game handle
// ---------------------------------------------------------------------------

/// The game classes a mechanism can declare support for.
enum class GameKind {
  kAdditiveOffline,
  kAdditiveOnline,
  kMultiAdditiveOnline,
  kSubstOffline,
  kSubstOnline,
};

std::string_view GameKindName(GameKind kind);

/// Non-owning tagged reference to any of the library's game types, so a
/// `Mechanism` can be handed "whatever game the caller has" and dispatch on
/// its kind. The referenced game must outlive the view.
class GameView {
 public:
  /*implicit*/ GameView(const AdditiveOfflineGame& g)
      : kind_(GameKind::kAdditiveOffline), ptr_(&g) {}
  /*implicit*/ GameView(const AdditiveOnlineGame& g)
      : kind_(GameKind::kAdditiveOnline), ptr_(&g) {}
  /*implicit*/ GameView(const MultiAdditiveOnlineGame& g)
      : kind_(GameKind::kMultiAdditiveOnline), ptr_(&g) {}
  /*implicit*/ GameView(const SubstOfflineGame& g)
      : kind_(GameKind::kSubstOffline), ptr_(&g) {}
  /*implicit*/ GameView(const SubstOnlineGame& g)
      : kind_(GameKind::kSubstOnline), ptr_(&g) {}

  GameKind kind() const { return kind_; }

  const AdditiveOfflineGame& additive_offline() const;
  const AdditiveOnlineGame& additive_online() const;
  const MultiAdditiveOnlineGame& multi_additive_online() const;
  const SubstOfflineGame& subst_offline() const;
  const SubstOnlineGame& subst_online() const;

  int num_users() const;
  int num_opts() const;
  /// 0 for offline games.
  int num_slots() const;

  /// Validates the underlying game.
  Status Validate() const;

 private:
  GameKind kind_;
  const void* ptr_;
};

// ---------------------------------------------------------------------------
// Uniform result
// ---------------------------------------------------------------------------

/// The shared outcome shape every mechanism (and baseline) reports, so
/// experiments and the service compare them uniformly. User sets are sparse
/// `Coalition`s; fields that do not apply to a mechanism's game class stay
/// empty and are documented per field.
struct MechanismResult {
  int num_users = 0;
  int num_opts = 0;
  /// 0 for offline mechanisms.
  int num_slots = 0;

  /// True iff any optimization was implemented.
  bool implemented = false;
  /// Per optimization: first slot whose run implemented it (offline
  /// mechanisms report 1; 0 = never implemented).
  std::vector<TimeSlot> implemented_at;
  /// Per optimization: the even share of the last run that serviced it.
  /// For online mechanisms this is the final slot's C / |CS(t)| — the
  /// *smallest* share, since the cumulative set only grows; members who
  /// departed earlier paid larger shares (see payments). 0 when never
  /// implemented or when the mechanism has no share notion (VCG, Regret).
  std::vector<double> cost_share;
  /// Per user: total payment across optimizations.
  std::vector<double> payments;
  /// Per optimization: users ever serviced by it.
  std::vector<Coalition> serviced;
  /// Online mechanisms: active[j][t-1] = users actively serviced by
  /// optimization j at slot t (value accrues at exactly these slots).
  /// Empty for offline mechanisms.
  std::vector<std::vector<Coalition>> active;
  /// Substitutable mechanisms: per-user granted optimization (kNoOpt when
  /// unserviced). Empty for additive mechanisms.
  std::vector<OptId> grant;
  /// Online substitutable mechanisms: per-user grant slot (0 = never).
  std::vector<TimeSlot> grant_slot;

  bool Implemented(OptId j) const;
  std::vector<OptId> ImplementedOpts() const;
  /// Membership via the Coalition's binary search.
  bool Serviced(UserId i, OptId j) const;
  double ImplementedCost(const std::vector<double>& costs) const;
  double TotalPayment() const;
};

/// Builds the uniform MechanismResult from an AddOn engine outcome:
/// reconstructs the per-slot active coalitions (serviced users within their
/// intervals, `ends` giving each user's effective end slot) and the final
/// cost share. Shared by the batch AddOn adapter and the streaming
/// mechanism (core/online_mechanism.h).
MechanismResult ResultFromOnlineAdditive(engine::OnlineAdditiveOutcome outcome,
                                         int num_users, int num_slots,
                                         const std::vector<TimeSlot>& ends);

/// Same for a SubstOn engine outcome (forward-declared in core/subst_on.h).
struct SubstOnEngineOutcome;
MechanismResult ResultFromSubstOn(const SubstOnEngineOutcome& outcome,
                                  int num_users, int num_opts, int num_slots);

// ---------------------------------------------------------------------------
// Mechanism interface and registry
// ---------------------------------------------------------------------------

/// A pricing mechanism: consumes a (validated) game of bids, produces a
/// MechanismResult. Implementations declare which game classes they accept.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Registry name, e.g. "addon".
  virtual std::string_view name() const = 0;

  virtual bool Supports(GameKind kind) const = 0;

  /// Runs the mechanism. Returns InvalidArgument for unsupported game
  /// kinds or games that fail validation.
  virtual Result<MechanismResult> Run(const GameView& game) const = 0;
};

using MechanismFactory = std::function<std::unique_ptr<Mechanism>()>;

/// Name -> factory registry making mechanism choice a runtime parameter.
/// The paper's mechanisms ("addoff"/"shapley", "addon", "substoff",
/// "subston") are registered on first access; the baselines add themselves
/// via RegisterBaselineMechanisms() (baseline/baseline_mechanisms.h).
///
/// Thread safety: every method is safe to call concurrently — the entry
/// list is mutex-guarded, and Create copies the factory out before invoking
/// it so no user code runs under the registry lock. The intended contract
/// is still registration-before-serving: register custom mechanisms during
/// startup, before concurrent pricing traffic resolves names (a name
/// registered mid-flight is simply not found by requests that raced ahead
/// of it; nothing crashes or corrupts).
class MechanismRegistry {
 public:
  static MechanismRegistry& Global();

  /// Registers a factory. AlreadyExists when the name is taken.
  Status Register(const std::string& name, MechanismFactory factory);

  bool Contains(const std::string& name) const;

  /// Instantiates a registered mechanism; NotFound for unknown names.
  Result<std::unique_ptr<Mechanism>> Create(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// The paper's default mechanism name for a game class.
  static std::string DefaultFor(GameKind kind);

 private:
  std::vector<std::string> NamesLocked() const;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, MechanismFactory>> entries_;
};

/// The canonical "mechanism X does not support Y games" error, shared by
/// every Mechanism::Run support check so the message never drifts between
/// entry points.
Status UnsupportedKind(std::string_view mechanism, GameKind kind);

/// Resolves `name` from the global registry and checks that it supports
/// `kind` — the shared resolve-and-check step for every caller that takes
/// a mechanism name (the CLI, the cloud service, the experiment harness).
/// NotFound for unknown names, InvalidArgument for unsupported kinds.
Result<std::unique_ptr<Mechanism>> ResolveMechanism(const std::string& name,
                                                    GameKind kind);

/// Convenience: look up `name`, check support, run.
Result<MechanismResult> RunMechanism(const std::string& name,
                                     const GameView& game);

}  // namespace optshare
