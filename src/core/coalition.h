// Coalition: a sparse user set, stored as a sorted span of user ids.
//
// The mechanisms reason about sets of users constantly — serviced sets S,
// cumulative sets CS_j(t), substitute-interest sets — and the seed code
// represented all of them as dense `std::vector<bool>` masks scanned
// linearly. At "millions of users" scale most of those sets are small
// relative to the user universe, so the engine (core/mechanism.h) and the
// result structs use this sorted-span representation instead: membership is
// a binary search, iteration touches only members, and set algebra is a
// linear merge over members rather than over the universe.
#pragma once

#include <vector>

#include "core/types.h"

namespace optshare {

class Coalition {
 public:
  Coalition() = default;

  /// Wraps an already sorted, duplicate-free id list (asserted in debug).
  static Coalition FromSorted(std::vector<UserId> ids);

  /// Sorts and deduplicates an arbitrary id list.
  static Coalition FromUnsorted(std::vector<UserId> ids);

  /// Members of a dense mask, ascending.
  static Coalition FromMask(const std::vector<bool>& mask);

  /// The full set {0, .., num_users - 1}.
  static Coalition All(int num_users);

  /// Membership by binary search — the sorted-span replacement for the
  /// linear scans the seed's result structs performed.
  bool Contains(UserId id) const;

  int size() const { return static_cast<int>(ids_.size()); }
  bool empty() const { return ids_.empty(); }

  /// Members in increasing order.
  const std::vector<UserId>& ids() const { return ids_; }
  std::vector<UserId>::const_iterator begin() const { return ids_.begin(); }
  std::vector<UserId>::const_iterator end() const { return ids_.end(); }

  /// Inserts a member, keeping the span sorted. Appending ids in increasing
  /// order is O(1) amortized; out-of-order inserts shift the tail.
  void Insert(UserId id);

  /// Dense projection onto a universe of `num_users` users.
  std::vector<bool> ToMask(int num_users) const;

  /// Sorted-merge set union.
  static Coalition Union(const Coalition& a, const Coalition& b);

  bool operator==(const Coalition& other) const { return ids_ == other.ids_; }
  bool operator!=(const Coalition& other) const { return ids_ != other.ids_; }

 private:
  std::vector<UserId> ids_;  // sorted ascending, no duplicates
};

}  // namespace optshare
