// Shapley Value Mechanism (paper §4.1, Mechanism 1) — the building block of
// every mechanism in this library.
//
// Given one optimization with cost C and a bid per user, it finds the
// largest user set S such that splitting C evenly over S charges each
// member no more than her bid, by iteratively dropping users priced out at
// the current even share. Serviced users all pay C/|S|; everyone else pays
// nothing. The mechanism is truthful and cost-recovering (Moulin/Shenker),
// and among such mechanisms minimizes the efficiency loss.
#pragma once

#include <vector>

#include "core/types.h"

namespace optshare {

/// Outcome of one Shapley value run for a single optimization.
struct ShapleyResult {
  /// True iff some non-empty user set could cover the cost.
  bool implemented = false;
  /// serviced[i] — user i is granted access.
  std::vector<bool> serviced;
  /// Even share paid by each serviced user (C / |S|); 0 if not implemented.
  double cost_share = 0.0;
  /// Per-user payment: cost_share for serviced users, 0 otherwise.
  std::vector<double> payments;
  /// Number of even-split refinement rounds executed.
  int iterations = 0;

  /// Number of serviced users.
  int NumServiced() const;
  /// Ids of serviced users in increasing order.
  std::vector<UserId> ServicedUsers() const;
  /// Total collected payment (= cost when implemented, by construction).
  double TotalPayment() const;
};

/// Runs Mechanism 1.
///
/// `bids` may contain kInfiniteBid (used by the online mechanisms to pin
/// already-serviced users into the set); all finite bids must be >= 0.
/// A bid equal to the even share (within kMoneyEpsilon) keeps the user in
/// the set, matching the paper's `p <= b_ij` test.
///
/// Edge cases: with no users, or when every refinement empties the set, the
/// optimization is not implemented. `cost` must be > 0.
ShapleyResult RunShapley(double cost, const std::vector<double>& bids);

}  // namespace optshare
