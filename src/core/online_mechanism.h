// The streaming mechanism surface: slot-incremental pricing sessions.
//
// The paper's headline mechanisms (AddOn §5, SubstOn §6.2) are *online* —
// users arrive, declare values, and are charged slot by slot — yet the
// original integration surface was batch-only: callers materialized a full
// game and ran a Mechanism over it. This header turns the engines'
// cross-slot residual state into a first-class streaming API:
//
//   OnlineMechanism mech = ...;
//   mech.Begin(meta);                  // game class, horizon, known opts
//   mech.OnSlot(1, events);            // arrivals / declarations / ...
//   mech.OnSlot(2, events);            //   ... then price the slot
//   ...
//   MechanismResult r = mech.Finalize();
//
// AddOn and SubstOn implement the interface *natively* (slot work is
// incremental; per-slot outcomes are reported as slots run). Every other
// registered mechanism — the offline paper mechanisms and the baselines —
// participates through a buffering adapter that collects the event stream
// and prices it in one batch at Finalize (collapsing streams to totals for
// offline-only mechanisms). ResolveOnlineMechanism picks the right wrapper
// by registry name, so the service, CLI and experiment harness drive every
// mechanism through one streaming code path.
//
// Equivalence contract: feeding a mechanism the event stream of a batch
// game (EventLogFromGame + ReplayLog) produces results bit-identical to
// running the batch Mechanism on that game, with one caveat for the native
// engines: a slot's zero-bidder denominator counts only users registered
// *so far*, so outcomes can differ from batch when a per-member share falls
// to <= kMoneyEpsilon (zero bidders are swept in only then — measure-zero
// for real pricing inputs). Streams that announce every user before slot 1
// (the PricingSession batch-compat path) are exactly batch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/mechanism.h"
#include "core/subst_on.h"

namespace optshare {

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One tenant- or structure-level event delivered to an OnlineMechanism at
/// a slot boundary. User ids are small dense integers assigned by the
/// caller (the session's roster order); optimization ids are dense and
/// append-only.
struct SlotEvent {
  enum class Kind {
    /// User `user` announces presence over [stream.start, stream.end]
    /// (stream.values unused). She counts toward the pricing denominator
    /// but bids zero until she declares values.
    kUserArrive,
    /// User `user` leaves early: present through the slot this event is
    /// delivered at, gone afterwards (her declared departure moves up).
    kUserDepart,
    /// User `user` declares her value stream. Additive games: `stream` for
    /// optimization `opt`. Substitutable games: `stream` for any one of
    /// `substitutes` (opt unused). Implies arrival; a declaration is
    /// binding once delivered.
    kDeclareValues,
    /// Structure `opt` (the next dense OptId) becomes a candidate at
    /// `cost`; it is priced from this slot on.
    kOptAdd,
    /// Structure `opt` stops being priced (additive only): serviced users
    /// who have not paid yet are charged the last priced share.
    kOptRetire,
  };

  Kind kind = Kind::kUserArrive;
  UserId user = -1;
  OptId opt = kNoOpt;
  double cost = 0.0;
  SlotValues stream;
  std::vector<OptId> substitutes;

  static SlotEvent UserArrive(UserId user, TimeSlot start, TimeSlot end);
  static SlotEvent UserDepart(UserId user);
  static SlotEvent DeclareValues(UserId user, OptId opt, SlotValues stream);
  static SlotEvent DeclareSubstValues(UserId user,
                                      std::vector<OptId> substitutes,
                                      SlotValues stream);
  static SlotEvent OptAdd(OptId opt, double cost);
  static SlotEvent OptRetire(OptId opt);
};

/// Metadata opening a streamed game: its class, horizon, and the costs of
/// optimizations known up front (more may arrive via kOptAdd).
struct OnlineGameMeta {
  GameKind kind = GameKind::kAdditiveOnline;
  int num_slots = 1;
  std::vector<double> costs;
};

/// What one OnSlot call priced. Native mechanisms fill this as slots run;
/// buffering adapters set `deferred` (everything is priced at Finalize).
struct OnlineSlotReport {
  bool deferred = false;
  struct OptSlot {
    OptId opt = kNoOpt;
    /// Even share C_j / |CS_j(t)| of this slot's run.
    double share = 0.0;
    /// Users entering the cumulative serviced set at this slot, ascending.
    std::vector<UserId> newly_serviced;
  };
  /// One entry per optimization whose slot run serviced a non-empty set.
  std::vector<OptSlot> priced;
};

// ---------------------------------------------------------------------------
// Interface
// ---------------------------------------------------------------------------

/// A slot-incremental pricing mechanism. Call order: Begin, then OnSlot for
/// slots 1..num_slots in order, then Finalize. Begin resets any prior
/// stream, so one instance can price many games sequentially.
class OnlineMechanism {
 public:
  virtual ~OnlineMechanism() = default;

  /// Registry name of the underlying mechanism, e.g. "addon".
  virtual std::string_view name() const = 0;

  /// True when per-slot outcomes are reported as slots run; false when the
  /// mechanism buffers the stream and prices at Finalize.
  virtual bool native() const = 0;

  virtual Status Begin(const OnlineGameMeta& meta) = 0;

  /// Ingests `events` (in order), then prices slot `slot`. Slots must be
  /// fed consecutively from 1.
  virtual Result<OnlineSlotReport> OnSlot(
      TimeSlot slot, const std::vector<SlotEvent>& events) = 0;

  /// Completes the period (all slots must have been fed) and returns the
  /// uniform result. User-indexed vectors span the registered id space.
  virtual Result<MechanismResult> Finalize() = 0;
};

/// Resolves `name` against the MechanismRegistry and returns its streaming
/// form: the native engine for "addon" (additive games) and "subston"
/// (substitutable games), a buffering adapter for everything else. The
/// adapter accepts mechanisms that support `kind` directly, and mechanisms
/// that support the offline analog of `kind` (streams are collapsed to
/// per-user totals at Finalize — end-of-period batch pricing). NotFound for
/// unknown names, InvalidArgument when neither form is supported.
Result<std::unique_ptr<OnlineMechanism>> ResolveOnlineMechanism(
    const std::string& name, GameKind kind);

/// True iff ResolveOnlineMechanism(name, kind) yields a native (per-slot)
/// implementation rather than a buffering adapter.
bool NativelyOnline(const std::string& name, GameKind kind);

// ---------------------------------------------------------------------------
// Event logs
// ---------------------------------------------------------------------------

/// A materialized event stream: the replayable form of one period. The
/// workload generators emit these, the CLI `replay` subcommand consumes
/// them, and core/serialization.h round-trips them through JSON.
struct SlotEventLog {
  GameKind kind = GameKind::kAdditiveOnline;
  int num_slots = 1;
  /// Costs of optimizations known before slot 1.
  std::vector<double> costs;
  /// events[t-1]: the batch delivered with OnSlot(t).
  std::vector<std::vector<SlotEvent>> events;

  Status Validate() const;
};

/// The event-stream form of a batch game: every user is announced at her
/// arrival slot (kUserArrive) and declares her non-zero streams there.
SlotEventLog EventLogFromGame(const AdditiveOnlineGame& game);
SlotEventLog EventLogFromGame(const MultiAdditiveOnlineGame& game);
SlotEventLog EventLogFromGame(const SubstOnlineGame& game);

/// Rebuilds the batch game an additive log describes (kAdditiveOnline and
/// kMultiAdditiveOnline logs; users without declares become zero bidders).
/// Early departures truncate the declared streams.
Result<MultiAdditiveOnlineGame> MaterializeAdditiveLog(const SlotEventLog& log);
/// Same for a kSubstOnline log (users without declares are dropped to an
/// all-zero bid on optimization 0, which no mechanism ever grants).
Result<SubstOnlineGame> MaterializeSubstLog(const SlotEventLog& log);

/// Drives `mech` over the log: Begin, OnSlot 1..num_slots, Finalize.
Result<MechanismResult> ReplayLog(const SlotEventLog& log,
                                  OnlineMechanism& mech);
/// Resolve-and-replay by registry name.
Result<MechanismResult> ReplayLog(const SlotEventLog& log,
                                  const std::string& mechanism);

}  // namespace optshare
