#include "core/revisions.h"

#include <cassert>

#include "common/money.h"
#include "core/shapley.h"

namespace optshare {

const SlotValues* RevisionSchedule::EffectiveAt(TimeSlot t) const {
  const SlotValues* effective = nullptr;
  for (const auto& rev : revisions) {
    if (rev.submitted <= t) {
      effective = &rev.stream;
    } else {
      break;
    }
  }
  return effective;
}

TimeSlot RevisionSchedule::FinalEnd() const {
  return revisions.empty() ? 0 : revisions.back().stream.end;
}

Status RevisionSchedule::Validate(int num_slots) const {
  if (revisions.empty()) {
    return Status::InvalidArgument("user has no declarations");
  }
  const BidRevision* prev = nullptr;
  for (const auto& rev : revisions) {
    OPTSHARE_RETURN_NOT_OK(rev.stream.Validate());
    if (rev.stream.end > num_slots) {
      return Status::OutOfRange("declared interval past the game horizon");
    }
    if (rev.submitted < 1 || rev.submitted > num_slots) {
      return Status::OutOfRange("submission slot outside the horizon");
    }
    if (prev == nullptr) {
      // The first declaration happens at the declared arrival (a bid
      // cannot be retroactive: s_i >= submission).
      if (rev.stream.start < rev.submitted) {
        return Status::InvalidArgument(
            "initial declaration is retroactive (start < submission)");
      }
    } else {
      if (rev.submitted <= prev->submitted) {
        return Status::InvalidArgument(
            "revision submissions must be strictly increasing");
      }
      // The arrival is fixed by the first declaration.
      if (rev.stream.start != prev->stream.start) {
        return Status::InvalidArgument("revisions may not change the arrival");
      }
      // e_i may only grow (footnote 4).
      if (rev.stream.end < prev->stream.end) {
        return Status::InvalidArgument(
            "revisions may not shorten the service interval");
      }
      // Values strictly in the past must be untouched, and future values
      // may only rise.
      for (TimeSlot t = rev.stream.start; t <= rev.stream.end; ++t) {
        const double before = prev->stream.At(t);
        const double after = rev.stream.At(t);
        if (t < rev.submitted) {
          if (!MoneyEq(before, after)) {
            return Status::InvalidArgument(
                "revision changes a value in the past");
          }
        } else if (after < before - kMoneyEpsilon) {
          return Status::InvalidArgument(
              "revisions may only raise future values");
        }
      }
    }
    prev = &rev;
  }
  return Status::OK();
}

Status RevisableOnlineGame::Validate() const {
  if (num_slots < 1) {
    return Status::InvalidArgument("game must have at least one slot");
  }
  OPTSHARE_RETURN_NOT_OK(ValidateCosts({cost}));
  for (const auto& u : users) {
    OPTSHARE_RETURN_NOT_OK(u.Validate(num_slots));
  }
  return Status::OK();
}

AddOnResult RunAddOnWithRevisions(const RevisableOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int z = game.num_slots;

  AddOnResult result;
  result.serviced.resize(static_cast<size_t>(z));
  result.cumulative.resize(static_cast<size_t>(z));
  result.payments.assign(static_cast<size_t>(m), 0.0);
  result.cost_share.assign(static_cast<size_t>(z), kInfiniteBid);

  std::vector<bool> in_cs(static_cast<size_t>(m), false);
  std::vector<double> residual(static_cast<size_t>(m));

  for (TimeSlot t = 1; t <= z; ++t) {
    for (UserId i = 0; i < m; ++i) {
      const SlotValues* stream =
          game.users[static_cast<size_t>(i)].EffectiveAt(t);
      if (in_cs[static_cast<size_t>(i)]) {
        residual[static_cast<size_t>(i)] = kInfiniteBid;
      } else if (stream != nullptr && t >= stream->start) {
        residual[static_cast<size_t>(i)] = stream->ResidualFrom(t);
      } else {
        residual[static_cast<size_t>(i)] = 0.0;
      }
    }

    ShapleyResult sh = RunShapley(game.cost, residual);

    auto& cs_t = result.cumulative[static_cast<size_t>(t - 1)];
    auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
    if (sh.implemented) {
      if (!result.implemented) {
        result.implemented = true;
        result.implemented_at = t;
      }
      result.cost_share[static_cast<size_t>(t - 1)] = sh.cost_share;
      for (UserId i = 0; i < m; ++i) {
        if (!sh.serviced[static_cast<size_t>(i)]) continue;
        in_cs[static_cast<size_t>(i)] = true;
        cs_t.push_back(i);
        const SlotValues* stream =
            game.users[static_cast<size_t>(i)].EffectiveAt(t);
        if (stream != nullptr && t <= stream->end) s_t.push_back(i);
      }
    }

    // A user pays at her departure per the declaration in force then; a
    // later revision extending e_i moves the payment slot with it.
    for (UserId i = 0; i < m; ++i) {
      const auto& schedule = game.users[static_cast<size_t>(i)];
      const SlotValues* stream = schedule.EffectiveAt(t);
      if (stream == nullptr || stream->end != t) continue;
      // Only final if no future revision extends her stay.
      bool extended_later = false;
      for (const auto& rev : schedule.revisions) {
        if (rev.submitted > t && rev.stream.end > t) extended_later = true;
      }
      if (extended_later) continue;
      if (sh.implemented && sh.serviced[static_cast<size_t>(i)]) {
        result.payments[static_cast<size_t>(i)] = sh.cost_share;
      }
    }
  }
  return result;
}

}  // namespace optshare
