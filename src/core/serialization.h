// JSON (de)serialization of game descriptions and event logs — the file
// formats consumed by the optshare CLI and usable by downstream tooling.
//
// Additive offline:
//   {"type": "additive_offline", "costs": [..], "bids": [[..], ..]}
// Additive online (single opt):
//   {"type": "additive_online", "num_slots": z, "cost": c,
//    "users": [{"start": s, "end": e, "values": [..]}, ..]}
// Substitutable offline:
//   {"type": "subst_offline", "costs": [..],
//    "users": [{"substitutes": [..], "value": v}, ..]}
// Substitutable online:
//   {"type": "subst_online", "num_slots": z, "costs": [..],
//    "users": [{"start": s, "end": e, "values": [..],
//               "substitutes": [..]}, ..]}
// Event log (streamed period; `game` names the online game class):
//   {"type": "event_log", "game": "additive_online" |
//    "multi_additive_online" | "subst_online", "num_slots": z,
//    "costs": [..], "slots": [{"slot": t, "events": [
//      {"event": "user_arrive", "user": i, "start": s, "end": e},
//      {"event": "user_depart", "user": i},
//      {"event": "declare", "user": i, "opt": j,
//       "start": s, "end": e, "values": [..]},            // additive
//      {"event": "declare", "user": i, "substitutes": [..],
//       "start": s, "end": e, "values": [..]},            // substitutable
//      {"event": "opt_add", "opt": j, "cost": c},
//      {"event": "opt_retire", "opt": j}]}, ..]}
#pragma once

#include "common/json.h"
#include "core/game.h"
#include "core/online_mechanism.h"

namespace optshare {

JsonValue ToJson(const AdditiveOfflineGame& game);
JsonValue ToJson(const AdditiveOnlineGame& game);
JsonValue ToJson(const SubstOfflineGame& game);
JsonValue ToJson(const SubstOnlineGame& game);
JsonValue ToJson(const SlotEventLog& log);

Result<AdditiveOfflineGame> AdditiveOfflineGameFromJson(const JsonValue& v);
Result<AdditiveOnlineGame> AdditiveOnlineGameFromJson(const JsonValue& v);
Result<SubstOfflineGame> SubstOfflineGameFromJson(const JsonValue& v);
Result<SubstOnlineGame> SubstOnlineGameFromJson(const JsonValue& v);
Result<SlotEventLog> EventLogFromJson(const JsonValue& v);

/// The "type" discriminator of a game document ("" when absent).
std::string GameTypeOf(const JsonValue& v);

}  // namespace optshare
