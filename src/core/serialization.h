// JSON (de)serialization of game descriptions — the file format consumed
// by the optshare CLI and usable by downstream tooling.
//
// Additive offline:
//   {"type": "additive_offline", "costs": [..], "bids": [[..], ..]}
// Additive online (single opt):
//   {"type": "additive_online", "num_slots": z, "cost": c,
//    "users": [{"start": s, "end": e, "values": [..]}, ..]}
// Substitutable offline:
//   {"type": "subst_offline", "costs": [..],
//    "users": [{"substitutes": [..], "value": v}, ..]}
// Substitutable online:
//   {"type": "subst_online", "num_slots": z, "costs": [..],
//    "users": [{"start": s, "end": e, "values": [..],
//               "substitutes": [..]}, ..]}
#pragma once

#include "common/json.h"
#include "core/game.h"

namespace optshare {

JsonValue ToJson(const AdditiveOfflineGame& game);
JsonValue ToJson(const AdditiveOnlineGame& game);
JsonValue ToJson(const SubstOfflineGame& game);
JsonValue ToJson(const SubstOnlineGame& game);

Result<AdditiveOfflineGame> AdditiveOfflineGameFromJson(const JsonValue& v);
Result<AdditiveOnlineGame> AdditiveOnlineGameFromJson(const JsonValue& v);
Result<SubstOfflineGame> SubstOfflineGameFromJson(const JsonValue& v);
Result<SubstOnlineGame> SubstOnlineGameFromJson(const JsonValue& v);

/// The "type" discriminator of a game document ("" when absent).
std::string GameTypeOf(const JsonValue& v);

}  // namespace optshare
