// SubstOff Mechanism (paper §6.1, Mechanism 3): offline pricing of
// *substitutable* optimizations. Each user values any one optimization from
// her substitute set J_i at v_i and gains nothing from further ones.
//
// The mechanism proceeds in phases: run the Shapley Value Mechanism for
// every optimization independently, implement the feasible optimization with
// the smallest even cost-share, grant it to its serviced users, remove those
// users (their bids drop to 0) and that optimization, and repeat until no
// optimization is feasible. Truthful when users do not know others' bids,
// and cost-recovering.
//
// Since the engine refactor the phase loop runs over the sparse bid
// representation below (per-user (opt, value) pairs) via
// engine::EvenSplitFixedPoint; the dense-matrix entry point converts and
// delegates. Results are identical to the original dense scans
// (reference::RunSubstOffMatrixDense).
#pragma once

#include <vector>

#include "core/game.h"

namespace optshare {

/// Outcome of SubstOff.
struct SubstOffResult {
  /// Implemented optimizations in phase (selection) order.
  std::vector<OptId> implemented;
  /// Per-user granted optimization (kNoOpt when unserviced).
  std::vector<OptId> grant;
  /// Per-user payment (the cost-share of the granted optimization).
  std::vector<double> payments;
  /// cost_share[k]: even share charged for implemented[k].
  std::vector<double> cost_share;

  /// True iff optimization j was implemented.
  bool Implemented(OptId j) const;
  /// Users granted optimization j, increasing order.
  std::vector<UserId> GrantedUsers(OptId j) const;
  /// Total cost of implemented optimizations.
  double ImplementedCost(const std::vector<double>& costs) const;
  /// Sum of all payments.
  double TotalPayment() const;
};

/// One declared (optimization, value) interest of a user. `value` is either
/// a positive finite bid or kInfiniteBid (pinning the user to the
/// optimization, as SubstOn does for already-granted users). Optimizations
/// absent from a user's list carry an implicit zero bid.
struct SparseSubstBid {
  OptId opt = kNoOpt;
  double value = 0.0;
};

/// A user's sparse bid row. An empty row is an all-zero bidder.
struct SparseSubstUserRow {
  std::vector<SparseSubstBid> bids;
};

/// Runs Mechanism 3 on a validated game. Ties for the minimum cost-share
/// break toward the lowest optimization id (deterministic; the paper permits
/// any choice). Precondition: game.Validate().ok().
SubstOffResult RunSubstOff(const SubstOfflineGame& game);

/// Lower-level entry point used by SubstOn: bids arrive as a dense
/// [user][opt] matrix where a zero bid means "not interested" and
/// kInfiniteBid pins a user to an optimization. Costs must be positive.
SubstOffResult RunSubstOffMatrix(const std::vector<double>& costs,
                                 std::vector<std::vector<double>> bids);

/// Engine-native entry point over sparse rows — what RunSubstOff,
/// RunSubstOffMatrix and the SubstOn slot loop all delegate to. Rows are
/// consumed (granted users' bids are cleared phase by phase, mirroring the
/// dense matrix semantics).
SubstOffResult RunSubstOffSparse(const std::vector<double>& costs,
                                 std::vector<SparseSubstUserRow> rows);

}  // namespace optshare
