// Upward bid revisions (paper §5.1): "users are allowed to revise their
// future bids upwards" — e.g. bid (1,3,[10,10,10]) at t=1, then at t=2
// revise to b(2)=20, b(3)=10; the departure slot e_i may only grow.
//
// A RevisionSchedule is the user's declaration history; the effective bid
// the mechanism sees at slot t is the latest declaration submitted at or
// before t. AddOn runs exactly as Mechanism 2 with residuals taken from
// the effective declaration, and the user pays at her *latest declared*
// departure.
#pragma once

#include <vector>

#include "core/add_on.h"
#include "core/game.h"

namespace optshare {

/// One declaration: the stream the user announces starting at `submitted`.
struct BidRevision {
  TimeSlot submitted = 1;  ///< Slot at which this declaration is made.
  SlotValues stream;       ///< The declared (s_i, e_i, b_i(t)).
};

/// A user's declaration history, ordered by submission slot.
struct RevisionSchedule {
  std::vector<BidRevision> revisions;

  /// The declaration in force at slot t (the latest with submitted <= t);
  /// nullptr before the first submission.
  const SlotValues* EffectiveAt(TimeSlot t) const;

  /// The final declared departure slot (0 when empty).
  TimeSlot FinalEnd() const;

  /// Checks the §5.1 rules: submissions strictly increasing, first
  /// submission at the declared arrival; a revision may not be retroactive
  /// (it can only change values at slots >= its submission), may only
  /// *raise* future values, and may only extend the departure e_i.
  Status Validate(int num_slots) const;
};

/// Online additive game with revisable bids (single optimization).
struct RevisableOnlineGame {
  int num_slots = 1;
  double cost = 0.0;
  std::vector<RevisionSchedule> users;

  int num_users() const { return static_cast<int>(users.size()); }
  Status Validate() const;
};

/// Runs Mechanism 2 over the effective declarations.
/// Precondition: game.Validate().ok().
AddOnResult RunAddOnWithRevisions(const RevisableOnlineGame& game);

}  // namespace optshare
