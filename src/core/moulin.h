// Moulin mechanisms (Moulin & Shenker, 2001) — the family the paper's
// Shapley Value Mechanism belongs to (paper §8: "We build on the Shapley
// Value Mechanism, which is an instance of Moulin Mechanisms").
//
// A Moulin mechanism is parameterized by a *cost-sharing method* xi(S)
// assigning each member of a candidate coalition S a share of the service
// cost. The mechanism starts from the full user set and repeatedly evicts
// users whose current share exceeds their bid, until the set is stable.
// When xi is *cross-monotonic* — a user's share never decreases as the
// coalition shrinks — the mechanism is (group-)strategyproof, and when xi
// is budget-balanced it recovers the cost exactly.
//
// The egalitarian method xi_i(S) = C/|S| recovers RunShapley; the weighted
// method splits C in proportion to exogenous user weights (e.g. tenant
// tiers). Both are cross-monotonic and budget-balanced.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "core/shapley.h"

namespace optshare {

/// A cost-sharing method: shares of the service cost for a coalition.
class CostSharingMethod {
 public:
  virtual ~CostSharingMethod() = default;

  /// Returns one share per user; entries for users outside `members`
  /// (members[i] == false) are ignored by the mechanism. The sum of member
  /// shares must equal the service cost for budget balance. `members` has
  /// one entry per user and at least one member.
  virtual std::vector<double> Shares(const std::vector<bool>& members) const = 0;

  /// Service cost this method splits.
  virtual double cost() const = 0;
};

/// Egalitarian split xi_i(S) = C / |S| — the Shapley value of the uniform
/// public-good cost function, i.e. exactly Mechanism 1's shares.
class EgalitarianSharing final : public CostSharingMethod {
 public:
  explicit EgalitarianSharing(double cost) : cost_(cost) {}
  std::vector<double> Shares(const std::vector<bool>& members) const override;
  double cost() const override { return cost_; }

 private:
  double cost_;
};

/// Weighted proportional split xi_i(S) = C * w_i / sum_{k in S} w_k.
/// Cross-monotonic for positive weights. Models tenant tiers (a "large"
/// tenant shoulders a larger fraction of a shared structure).
class WeightedSharing final : public CostSharingMethod {
 public:
  /// Requires every weight > 0; `Make` validates.
  static Result<WeightedSharing> Make(double cost, std::vector<double> weights);

  std::vector<double> Shares(const std::vector<bool>& members) const override;
  double cost() const override { return cost_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  WeightedSharing(double cost, std::vector<double> weights)
      : cost_(cost), weights_(std::move(weights)) {}

  double cost_;
  std::vector<double> weights_;
};

/// Runs the Moulin mechanism for `method` against `bids` (one per user;
/// kInfiniteBid allowed). Returns the same shape as RunShapley, with
/// per-user (possibly unequal) payments. The number of bids must match the
/// method's expectations (WeightedSharing: weights().size()).
ShapleyResult RunMoulin(const CostSharingMethod& method,
                        const std::vector<double>& bids);

/// Empirical cross-monotonicity check used by tests and by callers
/// supplying custom methods: verifies that removing any single member
/// never lowers a remaining member's share, over all coalitions of the
/// given user count (exponential; keep num_users small).
bool IsCrossMonotonic(const CostSharingMethod& method, int num_users,
                      double tolerance = 1e-9);

}  // namespace optshare
