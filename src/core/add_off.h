// AddOff Mechanism (paper §4.2): offline pricing of *additive* optimizations.
// Because values add across optimizations, each optimization is priced by an
// independent run of the Shapley Value Mechanism; truthfulness and
// cost-recovery are inherited per optimization.
#pragma once

#include <vector>

#include "core/game.h"
#include "core/shapley.h"

namespace optshare {

/// Outcome of AddOff over all optimizations of an offline additive game.
struct AddOffResult {
  /// Per-optimization Shapley outcome, indexed by OptId.
  std::vector<ShapleyResult> per_opt;
  /// Total payment P_i per user across all optimizations.
  std::vector<double> total_payment;

  /// Ids of implemented optimizations in increasing order.
  std::vector<OptId> ImplementedOpts() const;
  /// True iff user i was granted optimization j.
  bool Granted(UserId i, OptId j) const;
  /// Total cost of the implemented optimizations.
  double ImplementedCost(const std::vector<double>& costs) const;
};

/// Runs AddOff on a validated game. Precondition: game.Validate().ok().
AddOffResult RunAddOff(const AdditiveOfflineGame& game);

}  // namespace optshare
