// Game descriptions: who the users are, which optimizations exist, what they
// cost, and what each user *declares* (bids) or *truly derives* (values).
// The same structs serve both roles — mechanisms consume a game of bids,
// accounting consumes a game of true values.
#pragma once

#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace optshare {

/// Offline additive game (§4): m users, n optimizations, independent values.
/// bids[i][j] is user i's declared value for optimization j.
struct AdditiveOfflineGame {
  std::vector<double> costs;               ///< Per-optimization cost C_j > 0.
  std::vector<std::vector<double>> bids;   ///< [user][opt] declared values.

  int num_users() const { return static_cast<int>(bids.size()); }
  int num_opts() const { return static_cast<int>(costs.size()); }

  /// Structural validity: rectangular bid matrix matching costs; positive
  /// finite costs; non-negative finite bids.
  Status Validate() const;
};

/// Online additive game for a *single* optimization (§5). Additive
/// optimizations are priced independently, so the multi-optimization online
/// game is simply one of these per optimization (see MultiAdditiveOnlineGame).
struct AdditiveOnlineGame {
  int num_slots = 1;                 ///< z: slots 1..z.
  double cost = 0.0;                 ///< C_j.
  std::vector<SlotValues> users;     ///< Declared (s_i, e_i, b_i(t)) per user.

  int num_users() const { return static_cast<int>(users.size()); }

  Status Validate() const;
};

/// Online additive game with several independent optimizations. Every user
/// has one (s_i, e_i) interval; her value stream may differ per optimization.
struct MultiAdditiveOnlineGame {
  int num_slots = 1;
  std::vector<double> costs;                       ///< C_j per optimization.
  std::vector<std::vector<SlotValues>> bids;       ///< [user][opt].

  int num_users() const { return static_cast<int>(bids.size()); }
  int num_opts() const { return static_cast<int>(costs.size()); }

  Status Validate() const;

  /// Projects the single-optimization game for optimization j.
  AdditiveOnlineGame ProjectOpt(OptId j) const;
};

/// One user of a substitutable offline game (§6): she values *any one*
/// optimization in `substitutes` at `value`, and extra substitutes add
/// nothing.
struct SubstOfflineUser {
  std::vector<OptId> substitutes;  ///< J_i, non-empty, distinct, in range.
  double value = 0.0;              ///< v_i > 0.
};

/// Offline substitutable game (§6.1).
struct SubstOfflineGame {
  std::vector<double> costs;
  std::vector<SubstOfflineUser> users;

  int num_users() const { return static_cast<int>(users.size()); }
  int num_opts() const { return static_cast<int>(costs.size()); }

  Status Validate() const;
};

/// One user of an online substitutable game (§6.2): bid
/// omega_i = (s_i, e_i, b_i(t), J_i).
struct SubstOnlineUser {
  SlotValues stream;               ///< (s_i, e_i, b_i(t)).
  std::vector<OptId> substitutes;  ///< J_i.
};

/// Online substitutable game (§6.2).
struct SubstOnlineGame {
  int num_slots = 1;
  std::vector<double> costs;
  std::vector<SubstOnlineUser> users;

  int num_users() const { return static_cast<int>(users.size()); }
  int num_opts() const { return static_cast<int>(costs.size()); }

  Status Validate() const;
};

/// Shared validation helpers.
Status ValidateCosts(const std::vector<double>& costs);
Status ValidateSubstituteSet(const std::vector<OptId>& substitutes,
                             int num_opts);

}  // namespace optshare
