#include "core/reference.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/money.h"

namespace optshare::reference {

ShapleyResult RunShapleyDense(double cost, const std::vector<double>& bids) {
  assert(cost > 0.0 && "optimization cost must be positive");
  const size_t m = bids.size();

  ShapleyResult result;
  result.serviced.assign(m, true);
  result.payments.assign(m, 0.0);

  size_t remaining = m;
  bool changed = true;
  double share = 0.0;
  while (remaining > 0 && changed) {
    ++result.iterations;
    share = cost / static_cast<double>(remaining);
    changed = false;
    for (size_t i = 0; i < m; ++i) {
      if (!result.serviced[i]) continue;
      if (!MoneyGe(bids[i], share)) {
        result.serviced[i] = false;
        --remaining;
        changed = true;
      }
    }
  }

  if (remaining == 0) {
    result.serviced.assign(m, false);
    return result;
  }

  result.implemented = true;
  result.cost_share = cost / static_cast<double>(remaining);
  for (size_t i = 0; i < m; ++i) {
    if (result.serviced[i]) result.payments[i] = result.cost_share;
  }
  return result;
}

ShapleyResult RunMoulinDense(const CostSharingMethod& method,
                             const std::vector<double>& bids) {
  const size_t m = bids.size();
  ShapleyResult result;
  result.serviced.assign(m, true);
  result.payments.assign(m, 0.0);

  size_t remaining = m;
  bool changed = true;
  std::vector<double> shares;
  while (remaining > 0 && changed) {
    ++result.iterations;
    shares = method.Shares(result.serviced);
    changed = false;
    for (size_t i = 0; i < m; ++i) {
      if (!result.serviced[i]) continue;
      if (!MoneyGe(bids[i], shares[i])) {
        result.serviced[i] = false;
        --remaining;
        changed = true;
      }
    }
  }

  if (remaining == 0) {
    result.serviced.assign(m, false);
    return result;
  }

  result.implemented = true;
  shares = method.Shares(result.serviced);
  double max_share = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if (result.serviced[i]) {
      result.payments[i] = shares[i];
      max_share = std::max(max_share, shares[i]);
    }
  }
  result.cost_share = max_share;
  return result;
}

AddOffResult RunAddOffDense(const AdditiveOfflineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();

  AddOffResult result;
  result.per_opt.reserve(static_cast<size_t>(n));
  result.total_payment.assign(static_cast<size_t>(m), 0.0);

  std::vector<double> column(static_cast<size_t>(m));
  for (OptId j = 0; j < n; ++j) {
    for (UserId i = 0; i < m; ++i) {
      column[static_cast<size_t>(i)] =
          game.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    ShapleyResult r =
        RunShapleyDense(game.costs[static_cast<size_t>(j)], column);
    for (UserId i = 0; i < m; ++i) {
      result.total_payment[static_cast<size_t>(i)] +=
          r.payments[static_cast<size_t>(i)];
    }
    result.per_opt.push_back(std::move(r));
  }
  return result;
}

AddOnResult RunAddOnDense(const AdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int z = game.num_slots;

  AddOnResult result;
  result.serviced.resize(static_cast<size_t>(z));
  result.cumulative.resize(static_cast<size_t>(z));
  result.payments.assign(static_cast<size_t>(m), 0.0);
  result.cost_share.assign(static_cast<size_t>(z), kInfiniteBid);

  std::vector<bool> in_cs(static_cast<size_t>(m), false);
  std::vector<double> residual(static_cast<size_t>(m));

  for (TimeSlot t = 1; t <= z; ++t) {
    for (UserId i = 0; i < m; ++i) {
      const auto& u = game.users[static_cast<size_t>(i)];
      if (in_cs[static_cast<size_t>(i)]) {
        residual[static_cast<size_t>(i)] = kInfiniteBid;
      } else if (t >= u.start) {
        residual[static_cast<size_t>(i)] = u.ResidualFrom(t);
      } else {
        residual[static_cast<size_t>(i)] = 0.0;
      }
    }

    ShapleyResult sh = RunShapleyDense(game.cost, residual);

    auto& cs_t = result.cumulative[static_cast<size_t>(t - 1)];
    auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
    if (sh.implemented) {
      if (!result.implemented) {
        result.implemented = true;
        result.implemented_at = t;
      }
      result.cost_share[static_cast<size_t>(t - 1)] = sh.cost_share;
      for (UserId i = 0; i < m; ++i) {
        if (!sh.serviced[static_cast<size_t>(i)]) continue;
        in_cs[static_cast<size_t>(i)] = true;
        cs_t.push_back(i);
        if (t <= game.users[static_cast<size_t>(i)].end) s_t.push_back(i);
      }
    }

    for (UserId i = 0; i < m; ++i) {
      if (game.users[static_cast<size_t>(i)].end == t && sh.implemented &&
          sh.serviced[static_cast<size_t>(i)]) {
        result.payments[static_cast<size_t>(i)] = sh.cost_share;
      }
    }
  }
  return result;
}

SubstOffResult RunSubstOffMatrixDense(const std::vector<double>& costs,
                                      std::vector<std::vector<double>> bids) {
  const int m = static_cast<int>(bids.size());
  const int n = static_cast<int>(costs.size());

  SubstOffResult result;
  result.grant.assign(static_cast<size_t>(m), kNoOpt);
  result.payments.assign(static_cast<size_t>(m), 0.0);

  std::vector<bool> opt_done(static_cast<size_t>(n), false);
  std::vector<double> column(static_cast<size_t>(m));

  for (int phase = 0; phase < n; ++phase) {
    OptId best = kNoOpt;
    double best_share = std::numeric_limits<double>::infinity();
    ShapleyResult best_result;

    for (OptId j = 0; j < n; ++j) {
      if (opt_done[static_cast<size_t>(j)]) continue;
      for (UserId i = 0; i < m; ++i) {
        column[static_cast<size_t>(i)] =
            bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
      }
      ShapleyResult sh =
          RunShapleyDense(costs[static_cast<size_t>(j)], column);
      if (!sh.implemented) continue;
      if (sh.cost_share < best_share - kMoneyEpsilon || (best == kNoOpt)) {
        best = j;
        best_share = sh.cost_share;
        best_result = std::move(sh);
      }
    }

    if (best == kNoOpt) break;

    result.implemented.push_back(best);
    result.cost_share.push_back(best_result.cost_share);
    opt_done[static_cast<size_t>(best)] = true;
    for (UserId i = 0; i < m; ++i) {
      if (!best_result.serviced[static_cast<size_t>(i)]) continue;
      result.grant[static_cast<size_t>(i)] = best;
      result.payments[static_cast<size_t>(i)] = best_result.cost_share;
      for (OptId j = 0; j < n; ++j) {
        bids[static_cast<size_t>(i)][static_cast<size_t>(j)] = 0.0;
      }
    }
  }
  return result;
}

SubstOffResult RunSubstOffDense(const SubstOfflineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();

  std::vector<std::vector<double>> bids(
      static_cast<size_t>(m),
      std::vector<double>(static_cast<size_t>(n), 0.0));
  for (UserId i = 0; i < m; ++i) {
    const auto& u = game.users[static_cast<size_t>(i)];
    for (OptId j : u.substitutes) {
      bids[static_cast<size_t>(i)][static_cast<size_t>(j)] = u.value;
    }
  }
  return RunSubstOffMatrixDense(game.costs, std::move(bids));
}

SubstOnResult RunSubstOnDense(const SubstOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();
  const int z = game.num_slots;

  SubstOnResult result;
  result.grant.assign(static_cast<size_t>(m), kNoOpt);
  result.grant_slot.assign(static_cast<size_t>(m), 0);
  result.payments.assign(static_cast<size_t>(m), 0.0);
  result.implemented_at.assign(static_cast<size_t>(n), 0);
  result.serviced.resize(static_cast<size_t>(z));

  std::vector<std::vector<double>> bids(
      static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(n)));

  for (TimeSlot t = 1; t <= z; ++t) {
    for (UserId i = 0; i < m; ++i) {
      auto& row = bids[static_cast<size_t>(i)];
      const auto& u = game.users[static_cast<size_t>(i)];
      const OptId granted = result.grant[static_cast<size_t>(i)];
      if (granted != kNoOpt) {
        for (OptId j = 0; j < n; ++j) {
          row[static_cast<size_t>(j)] = (j == granted) ? kInfiniteBid : 0.0;
        }
      } else if (t >= u.stream.start) {
        const double residual = u.stream.ResidualFrom(t);
        for (OptId j = 0; j < n; ++j) row[static_cast<size_t>(j)] = 0.0;
        for (OptId j : u.substitutes) {
          row[static_cast<size_t>(j)] = residual;
        }
      } else {
        for (OptId j = 0; j < n; ++j) row[static_cast<size_t>(j)] = 0.0;
      }
    }

    SubstOffResult off = RunSubstOffMatrixDense(game.costs, bids);

    for (OptId j : off.implemented) {
      if (result.implemented_at[static_cast<size_t>(j)] == 0) {
        result.implemented_at[static_cast<size_t>(j)] = t;
      }
    }

    auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
    for (UserId i = 0; i < m; ++i) {
      const OptId g = off.grant[static_cast<size_t>(i)];
      if (g == kNoOpt) continue;
      if (result.grant[static_cast<size_t>(i)] == kNoOpt) {
        result.grant[static_cast<size_t>(i)] = g;
        result.grant_slot[static_cast<size_t>(i)] = t;
      }
      if (t <= game.users[static_cast<size_t>(i)].stream.end) {
        s_t.push_back(i);
      }
      if (game.users[static_cast<size_t>(i)].stream.end == t) {
        result.payments[static_cast<size_t>(i)] =
            off.payments[static_cast<size_t>(i)];
      }
    }
  }
  return result;
}

}  // namespace optshare::reference
