#include "core/coalition.h"

#include <algorithm>
#include <cassert>

namespace optshare {

Coalition Coalition::FromSorted(std::vector<UserId> ids) {
  assert(std::is_sorted(ids.begin(), ids.end()));
  assert(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
  Coalition c;
  c.ids_ = std::move(ids);
  return c;
}

Coalition Coalition::FromUnsorted(std::vector<UserId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  Coalition c;
  c.ids_ = std::move(ids);
  return c;
}

Coalition Coalition::FromMask(const std::vector<bool>& mask) {
  Coalition c;
  for (UserId i = 0; i < static_cast<UserId>(mask.size()); ++i) {
    if (mask[static_cast<size_t>(i)]) c.ids_.push_back(i);
  }
  return c;
}

Coalition Coalition::All(int num_users) {
  Coalition c;
  c.ids_.resize(static_cast<size_t>(num_users));
  for (int i = 0; i < num_users; ++i) c.ids_[static_cast<size_t>(i)] = i;
  return c;
}

bool Coalition::Contains(UserId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

void Coalition::Insert(UserId id) {
  if (ids_.empty() || id > ids_.back()) {
    ids_.push_back(id);
    return;
  }
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return;
  ids_.insert(it, id);
}

std::vector<bool> Coalition::ToMask(int num_users) const {
  std::vector<bool> mask(static_cast<size_t>(num_users), false);
  for (UserId i : ids_) {
    assert(i >= 0 && i < num_users);
    mask[static_cast<size_t>(i)] = true;
  }
  return mask;
}

Coalition Coalition::Union(const Coalition& a, const Coalition& b) {
  Coalition c;
  c.ids_.reserve(a.ids_.size() + b.ids_.size());
  std::set_union(a.ids_.begin(), a.ids_.end(), b.ids_.begin(), b.ids_.end(),
                 std::back_inserter(c.ids_));
  return c;
}

}  // namespace optshare
