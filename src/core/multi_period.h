// Multi-period service (paper §5): "at the end of this time-period, the
// optimization's cost is recomputed and all interested users must purchase
// it again." This driver chains AddOn across consecutive periods: each
// period has its own cost (e.g. maintenance-only once built) and its own
// bid set; nothing carries over except what the caller encodes in the
// per-period costs.
#pragma once

#include <vector>

#include "core/accounting.h"
#include "core/add_on.h"
#include "core/game.h"

namespace optshare {

/// One period of a chained service: the game to play in that period.
struct ServicePeriod {
  AdditiveOnlineGame game;
};

/// Per-period outcome plus a running ledger.
struct MultiPeriodResult {
  std::vector<AddOnResult> per_period;
  std::vector<Accounting> ledgers;  ///< Against each period's own values.

  double TotalUtility() const;
  double TotalPayment() const;
  double TotalCost() const;
  /// True iff every period individually recovered its cost.
  bool AllPeriodsRecovered() const;
};

/// Runs AddOn period by period. Each period's game must validate.
/// `rebuild_discount` in [0, 1] scales the cost of any period that follows
/// a period in which the optimization was implemented (modeling
/// maintenance-only re-purchase: the structure already exists). 1.0 keeps
/// the declared costs.
MultiPeriodResult RunMultiPeriod(std::vector<ServicePeriod> periods,
                                 double rebuild_discount = 1.0);

}  // namespace optshare
