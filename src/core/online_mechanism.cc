#include "core/online_mechanism.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <utility>

#include "common/money.h"

namespace optshare {

// ---------------------------------------------------------------------------
// SlotEvent factories
// ---------------------------------------------------------------------------

SlotEvent SlotEvent::UserArrive(UserId user, TimeSlot start, TimeSlot end) {
  SlotEvent e;
  e.kind = Kind::kUserArrive;
  e.user = user;
  e.stream.start = start;
  e.stream.end = end;
  return e;
}

SlotEvent SlotEvent::UserDepart(UserId user) {
  SlotEvent e;
  e.kind = Kind::kUserDepart;
  e.user = user;
  return e;
}

SlotEvent SlotEvent::DeclareValues(UserId user, OptId opt, SlotValues stream) {
  SlotEvent e;
  e.kind = Kind::kDeclareValues;
  e.user = user;
  e.opt = opt;
  e.stream = std::move(stream);
  return e;
}

SlotEvent SlotEvent::DeclareSubstValues(UserId user,
                                        std::vector<OptId> substitutes,
                                        SlotValues stream) {
  SlotEvent e;
  e.kind = Kind::kDeclareValues;
  e.user = user;
  e.substitutes = std::move(substitutes);
  e.stream = std::move(stream);
  return e;
}

SlotEvent SlotEvent::OptAdd(OptId opt, double cost) {
  SlotEvent e;
  e.kind = Kind::kOptAdd;
  e.opt = opt;
  e.cost = cost;
  return e;
}

SlotEvent SlotEvent::OptRetire(OptId opt) {
  SlotEvent e;
  e.kind = Kind::kOptRetire;
  e.opt = opt;
  return e;
}

// ---------------------------------------------------------------------------
// Native implementations
// ---------------------------------------------------------------------------
namespace {

/// Roster shared by the native mechanisms, the buffering adapter and the
/// log scanner: per-user declared intervals, effective (possibly moved-up)
/// departures, and departure flags. Callers must validate ids (>= 0)
/// before Add.
struct Roster {
  std::vector<char> present;
  std::vector<char> departed;
  std::vector<TimeSlot> start;
  std::vector<TimeSlot> eff_end;

  int id_space() const { return static_cast<int>(present.size()); }
  bool Has(UserId i) const {
    return i >= 0 && i < id_space() && present[static_cast<size_t>(i)] != 0;
  }
  bool Departed(UserId i) const {
    return Has(i) && departed[static_cast<size_t>(i)] != 0;
  }
  void Add(UserId i, TimeSlot s, TimeSlot e) {
    assert(i >= 0);
    const size_t u = static_cast<size_t>(i);
    if (u >= present.size()) {
      present.resize(u + 1, 0);
      departed.resize(u + 1, 0);
      start.resize(u + 1, 0);
      eff_end.resize(u + 1, 0);
    }
    present[u] = 1;
    start[u] = s;
    eff_end[u] = e;
  }
  void Depart(UserId i, TimeSlot slot) {
    const size_t u = static_cast<size_t>(i);
    departed[u] = 1;
    eff_end[u] = std::min(eff_end[u], slot);
  }
  void Clear() {
    present.clear();
    departed.clear();
    start.clear();
    eff_end.clear();
  }
};

/// The declared stream truncated to an effective departure slot — the one
/// truncation rule shared by the buffering adapter and the log
/// materializers (early departure keeps the pre-departure values and drops
/// the rest).
SlotValues TruncateStream(const SlotValues& declared, TimeSlot eff) {
  if (eff >= declared.end) return declared;
  SlotValues s = declared;
  s.end = std::max(declared.start, eff);
  s.values.resize(static_cast<size_t>(s.end - s.start + 1));
  if (eff < declared.start) {
    std::fill(s.values.begin(), s.values.end(), 0.0);
  }
  return s;
}

/// The all-zero stream of a user who arrived over [start, eff] but never
/// declared values.
SlotValues ZeroStream(const Roster& roster, UserId i) {
  const size_t u = static_cast<size_t>(i);
  return SlotValues::Constant(roster.start[u],
                              std::max(roster.start[u], roster.eff_end[u]),
                              0.0);
}

Status CheckSlotOrder(TimeSlot slot, TimeSlot expected, int num_slots) {
  if (slot != expected) {
    return Status::FailedPrecondition(
        "slots must be fed consecutively (expected slot " +
        std::to_string(expected) + ", got " + std::to_string(slot) + ")");
  }
  if (slot > num_slots) {
    return Status::FailedPrecondition("period exhausted");
  }
  return Status::OK();
}

/// AddOn (§5), streamed: one AddOnSlotEngine per optimization, each fed the
/// shared arrival/departure events plus its own value declarations.
class AddOnStreamMechanism final : public OnlineMechanism {
 public:
  std::string_view name() const override { return "addon"; }
  bool native() const override { return true; }

  Status Begin(const OnlineGameMeta& meta) override {
    if (meta.kind != GameKind::kAdditiveOnline &&
        meta.kind != GameKind::kMultiAdditiveOnline) {
      return UnsupportedKind(name(), meta.kind);
    }
    if (meta.num_slots < 1) {
      return Status::InvalidArgument("period needs at least one slot");
    }
    OPTSHARE_RETURN_NOT_OK(ValidateCosts(meta.costs));
    if (meta.kind == GameKind::kAdditiveOnline && meta.costs.size() != 1) {
      return Status::InvalidArgument(
          "an additive_online stream prices exactly one optimization");
    }
    kind_ = meta.kind;
    num_slots_ = meta.num_slots;
    current_ = 0;
    engines_.clear();
    retired_.clear();
    roster_.Clear();
    for (double c : meta.costs) {
      engines_.push_back(
          std::make_unique<engine::AddOnSlotEngine>(c, num_slots_));
      retired_.push_back(0);
    }
    begun_ = true;
    finalized_ = false;
    return Status::OK();
  }

  Result<OnlineSlotReport> OnSlot(
      TimeSlot slot, const std::vector<SlotEvent>& events) override {
    if (!begun_) return Status::FailedPrecondition("Begin was not called");
    OPTSHARE_RETURN_NOT_OK(CheckSlotOrder(slot, current_ + 1, num_slots_));

    for (const SlotEvent& e : events) {
      OPTSHARE_RETURN_NOT_OK(Apply(e, slot));
    }

    OnlineSlotReport report;
    for (size_t j = 0; j < engines_.size(); ++j) {
      engine::AddOnSlotEngine& eng = *engines_[j];
      OPTSHARE_RETURN_NOT_OK(eng.StepSlot());
      const engine::OnlineAdditiveOutcome& out = eng.outcome();
      const double share = out.slot_share[static_cast<size_t>(slot - 1)];
      if (share != kInfiniteBid) {
        OnlineSlotReport::OptSlot priced;
        priced.opt = static_cast<OptId>(j);
        priced.share = share;
        priced.newly_serviced =
            out.newly_serviced[static_cast<size_t>(slot - 1)];
        report.priced.push_back(std::move(priced));
      }
    }
    current_ = slot;
    return report;
  }

  Result<MechanismResult> Finalize() override {
    if (!begun_) return Status::FailedPrecondition("Begin was not called");
    if (finalized_) return Status::FailedPrecondition("already finalized");
    if (current_ != num_slots_) {
      return Status::FailedPrecondition(
          "period incomplete: fed " + std::to_string(current_) + " of " +
          std::to_string(num_slots_) + " slots");
    }
    finalized_ = true;
    const int n = roster_.id_space();
    // Per-opt end slots: a user is active until her effective departure —
    // or until the structure was retired, whichever comes first.
    const auto ends_for = [&](size_t j) {
      std::vector<TimeSlot> ends(roster_.eff_end.begin(),
                                 roster_.eff_end.end());
      if (retired_[j]) {
        const TimeSlot cap = engines_[j]->retired_at();
        for (TimeSlot& e : ends) e = std::min(e, cap);
      }
      return ends;
    };

    if (kind_ == GameKind::kAdditiveOnline) {
      return ResultFromOnlineAdditive(engines_[0]->TakeOutcome(), n,
                                      num_slots_, ends_for(0));
    }
    MechanismResult r;
    r.num_users = n;
    r.num_opts = static_cast<int>(engines_.size());
    r.num_slots = num_slots_;
    r.payments.assign(static_cast<size_t>(n), 0.0);
    for (size_t j = 0; j < engines_.size(); ++j) {
      MechanismResult one = ResultFromOnlineAdditive(engines_[j]->TakeOutcome(),
                                                     n, num_slots_, ends_for(j));
      r.implemented = r.implemented || one.implemented;
      r.implemented_at.push_back(one.implemented_at[0]);
      r.cost_share.push_back(one.cost_share[0]);
      r.serviced.push_back(std::move(one.serviced[0]));
      r.active.push_back(std::move(one.active[0]));
      for (UserId i = 0; i < n; ++i) {
        r.payments[static_cast<size_t>(i)] +=
            one.payments[static_cast<size_t>(i)];
      }
    }
    return r;
  }

 private:
  Status Apply(const SlotEvent& e, TimeSlot slot) {
    switch (e.kind) {
      case SlotEvent::Kind::kUserArrive: {
        if (e.user < 0) {
          return Status::InvalidArgument("user id must be non-negative");
        }
        if (roster_.Has(e.user)) {
          return Status::AlreadyExists("user already registered");
        }
        if (e.stream.start < 1 || e.stream.end < e.stream.start ||
            e.stream.end > num_slots_) {
          return Status::InvalidArgument(
              "user interval outside the period's slots");
        }
        for (auto& eng : engines_) {
          OPTSHARE_RETURN_NOT_OK(
              eng->Arrive(e.user, e.stream.start, e.stream.end));
        }
        roster_.Add(e.user, e.stream.start, e.stream.end);
        return Status::OK();
      }
      case SlotEvent::Kind::kDeclareValues: {
        if (e.opt < 0 || e.opt >= static_cast<OptId>(engines_.size())) {
          return Status::OutOfRange("declaration names an unknown "
                                    "optimization");
        }
        const bool fresh = !roster_.Has(e.user);
        OPTSHARE_RETURN_NOT_OK(
            engines_[static_cast<size_t>(e.opt)]->Declare(e.user, e.stream));
        if (fresh) {
          // The declaration doubles as the arrival announcement: register
          // the user as a zero bidder with every other structure.
          for (size_t j = 0; j < engines_.size(); ++j) {
            if (static_cast<OptId>(j) == e.opt) continue;
            OPTSHARE_RETURN_NOT_OK(engines_[j]->Arrive(e.user, e.stream.start,
                                                       e.stream.end));
          }
          roster_.Add(e.user, e.stream.start, e.stream.end);
        }
        return Status::OK();
      }
      case SlotEvent::Kind::kUserDepart: {
        if (!roster_.Has(e.user)) return Status::NotFound("unknown user id");
        const size_t u = static_cast<size_t>(e.user);
        if (roster_.start[u] > slot) {
          return Status::InvalidArgument("cannot depart before arrival");
        }
        for (auto& eng : engines_) {
          OPTSHARE_RETURN_NOT_OK(eng->Depart(e.user));
        }
        roster_.eff_end[u] = std::min(roster_.eff_end[u], slot);
        return Status::OK();
      }
      case SlotEvent::Kind::kOptAdd: {
        if (kind_ == GameKind::kAdditiveOnline) {
          return Status::InvalidArgument(
              "an additive_online stream prices exactly one optimization; "
              "use a multi_additive_online stream to add structures");
        }
        if (e.opt != static_cast<OptId>(engines_.size())) {
          return Status::InvalidArgument(
              "opt_add ids must be dense and in order");
        }
        if (std::isnan(e.cost) || std::isinf(e.cost) || e.cost <= 0.0) {
          return Status::InvalidArgument(
              "optimization costs must be finite and positive");
        }
        auto eng =
            std::make_unique<engine::AddOnSlotEngine>(e.cost, num_slots_);
        // Catch up to the current slot (no pricing happened before the
        // structure existed), then hand it the known universe.
        for (TimeSlot t = 1; t < slot; ++t) {
          OPTSHARE_RETURN_NOT_OK(eng->StepSlot());
        }
        for (UserId i = 0; i < roster_.id_space(); ++i) {
          if (!roster_.Has(i)) continue;
          OPTSHARE_RETURN_NOT_OK(
              eng->Arrive(i, roster_.start[static_cast<size_t>(i)],
                          roster_.eff_end[static_cast<size_t>(i)]));
        }
        engines_.push_back(std::move(eng));
        retired_.push_back(0);
        return Status::OK();
      }
      case SlotEvent::Kind::kOptRetire: {
        if (e.opt < 0 || e.opt >= static_cast<OptId>(engines_.size())) {
          return Status::OutOfRange("retire names an unknown optimization");
        }
        engines_[static_cast<size_t>(e.opt)]->Retire();
        retired_[static_cast<size_t>(e.opt)] = 1;
        return Status::OK();
      }
    }
    return Status::Internal("unknown event kind");
  }

  GameKind kind_ = GameKind::kAdditiveOnline;
  int num_slots_ = 0;
  TimeSlot current_ = 0;
  bool begun_ = false;
  bool finalized_ = false;
  std::vector<std::unique_ptr<engine::AddOnSlotEngine>> engines_;
  std::vector<char> retired_;
  Roster roster_;
};

/// SubstOn (§6.2), streamed over the incremental SubstOnSlotEngine.
class SubstOnStreamMechanism final : public OnlineMechanism {
 public:
  std::string_view name() const override { return "subston"; }
  bool native() const override { return true; }

  Status Begin(const OnlineGameMeta& meta) override {
    if (meta.kind != GameKind::kSubstOnline) {
      return UnsupportedKind(name(), meta.kind);
    }
    if (meta.num_slots < 1) {
      return Status::InvalidArgument("period needs at least one slot");
    }
    OPTSHARE_RETURN_NOT_OK(ValidateCosts(meta.costs));
    num_slots_ = meta.num_slots;
    current_ = 0;
    engine_ =
        std::make_unique<SubstOnSlotEngine>(meta.costs, meta.num_slots);
    begun_ = true;
    finalized_ = false;
    return Status::OK();
  }

  Result<OnlineSlotReport> OnSlot(
      TimeSlot slot, const std::vector<SlotEvent>& events) override {
    if (!begun_) return Status::FailedPrecondition("Begin was not called");
    OPTSHARE_RETURN_NOT_OK(CheckSlotOrder(slot, current_ + 1, num_slots_));

    for (const SlotEvent& e : events) {
      switch (e.kind) {
        case SlotEvent::Kind::kUserArrive:
          OPTSHARE_RETURN_NOT_OK(
              engine_->Arrive(e.user, e.stream.start, e.stream.end));
          break;
        case SlotEvent::Kind::kDeclareValues:
          OPTSHARE_RETURN_NOT_OK(
              engine_->Declare(e.user, e.stream, e.substitutes));
          break;
        case SlotEvent::Kind::kUserDepart:
          OPTSHARE_RETURN_NOT_OK(engine_->Depart(e.user));
          break;
        case SlotEvent::Kind::kOptAdd: {
          if (e.opt != engine_->num_opts()) {
            return Status::InvalidArgument(
                "opt_add ids must be dense and in order");
          }
          Result<OptId> added = engine_->AddOpt(e.cost);
          if (!added.ok()) return added.status();
          break;
        }
        case SlotEvent::Kind::kOptRetire:
          return Status::InvalidArgument(
              "subston does not support retiring optimizations");
      }
    }

    OPTSHARE_RETURN_NOT_OK(engine_->StepSlot());
    current_ = slot;

    OnlineSlotReport report;
    const SubstOffResult& off = engine_->last_off();
    for (size_t k = 0; k < off.implemented.size(); ++k) {
      OnlineSlotReport::OptSlot priced;
      priced.opt = off.implemented[k];
      priced.share = off.cost_share[k];
      for (UserId i : engine_->last_new_grants()) {
        if (engine_->outcome().result.grant[static_cast<size_t>(i)] ==
            priced.opt) {
          priced.newly_serviced.push_back(i);
        }
      }
      report.priced.push_back(std::move(priced));
    }
    return report;
  }

  Result<MechanismResult> Finalize() override {
    if (!begun_) return Status::FailedPrecondition("Begin was not called");
    if (finalized_) return Status::FailedPrecondition("already finalized");
    if (current_ != num_slots_) {
      return Status::FailedPrecondition(
          "period incomplete: fed " + std::to_string(current_) + " of " +
          std::to_string(num_slots_) + " slots");
    }
    finalized_ = true;
    const int n = engine_->id_space();
    const int opts = engine_->num_opts();
    return ResultFromSubstOn(engine_->TakeOutcome(), n, opts, num_slots_);
  }

 private:
  int num_slots_ = 0;
  TimeSlot current_ = 0;
  bool begun_ = false;
  bool finalized_ = false;
  std::unique_ptr<SubstOnSlotEngine> engine_;
};

// ---------------------------------------------------------------------------
// Buffering adapter
// ---------------------------------------------------------------------------

/// Streams events into buffers and prices the whole period at Finalize by
/// materializing the batch game and running the wrapped Mechanism. For
/// mechanisms that only support the *offline* analog of the streamed game
/// class, value streams are collapsed to per-user totals — end-of-period
/// batch pricing (users pay once, with no slot structure in the result).
class BufferingOnlineAdapter final : public OnlineMechanism {
 public:
  BufferingOnlineAdapter(std::unique_ptr<Mechanism> mech, bool collapse)
      : mech_(std::move(mech)), collapse_(collapse) {}

  std::string_view name() const override { return mech_->name(); }
  bool native() const override { return false; }

  Status Begin(const OnlineGameMeta& meta) override {
    if (meta.kind != GameKind::kAdditiveOnline &&
        meta.kind != GameKind::kMultiAdditiveOnline &&
        meta.kind != GameKind::kSubstOnline) {
      return UnsupportedKind(name(), meta.kind);
    }
    if (meta.num_slots < 1) {
      return Status::InvalidArgument("period needs at least one slot");
    }
    OPTSHARE_RETURN_NOT_OK(ValidateCosts(meta.costs));
    if (meta.kind == GameKind::kAdditiveOnline && meta.costs.size() != 1) {
      return Status::InvalidArgument(
          "an additive_online stream prices exactly one optimization");
    }
    meta_ = meta;
    current_ = 0;
    roster_.Clear();
    streams_.clear();
    substitutes_.clear();
    num_opts_ = static_cast<int>(meta.costs.size());
    begun_ = true;
    finalized_ = false;
    return Status::OK();
  }

  Result<OnlineSlotReport> OnSlot(
      TimeSlot slot, const std::vector<SlotEvent>& events) override {
    if (!begun_) return Status::FailedPrecondition("Begin was not called");
    OPTSHARE_RETURN_NOT_OK(CheckSlotOrder(slot, current_ + 1, meta_.num_slots));

    for (const SlotEvent& e : events) {
      switch (e.kind) {
        case SlotEvent::Kind::kUserArrive: {
          if (e.user < 0) {
            return Status::InvalidArgument("user id must be non-negative");
          }
          if (roster_.Has(e.user)) {
            return Status::AlreadyExists("user already registered");
          }
          OPTSHARE_RETURN_NOT_OK(
              CheckInterval(e.stream.start, e.stream.end));
          roster_.Add(e.user, e.stream.start, e.stream.end);
          break;
        }
        case SlotEvent::Kind::kDeclareValues: {
          if (e.user < 0) {
            return Status::InvalidArgument("user id must be non-negative");
          }
          if (roster_.Departed(e.user)) {
            return Status::FailedPrecondition("user departed; cannot declare");
          }
          OPTSHARE_RETURN_NOT_OK(e.stream.Validate());
          OPTSHARE_RETURN_NOT_OK(CheckInterval(e.stream.start, e.stream.end));
          if (meta_.kind == GameKind::kSubstOnline) {
            OPTSHARE_RETURN_NOT_OK(
                ValidateSubstituteSet(e.substitutes, num_opts_));
            if (substitutes_.count(e.user) != 0) {
              return Status::AlreadyExists("user already declared a bid");
            }
            substitutes_[e.user] = e.substitutes;
            streams_[{e.user, 0}] = e.stream;
          } else {
            if (e.opt < 0 || e.opt >= num_opts_) {
              return Status::OutOfRange(
                  "declaration names an unknown optimization");
            }
            if (streams_.count({e.user, e.opt}) != 0) {
              return Status::AlreadyExists(
                  "user already declared a value stream");
            }
            streams_[{e.user, e.opt}] = e.stream;
          }
          if (!roster_.Has(e.user)) {
            roster_.Add(e.user, e.stream.start, e.stream.end);
          }
          break;
        }
        case SlotEvent::Kind::kUserDepart: {
          if (!roster_.Has(e.user)) {
            return Status::NotFound("unknown user id");
          }
          if (roster_.start[static_cast<size_t>(e.user)] > slot) {
            return Status::InvalidArgument("cannot depart before arrival");
          }
          roster_.Depart(e.user, slot);
          break;
        }
        case SlotEvent::Kind::kOptAdd: {
          if (meta_.kind == GameKind::kAdditiveOnline) {
            return Status::InvalidArgument(
                "an additive_online stream prices exactly one optimization; "
                "use a multi_additive_online stream to add structures");
          }
          if (e.opt != num_opts_) {
            return Status::InvalidArgument(
                "opt_add ids must be dense and in order");
          }
          if (std::isnan(e.cost) || std::isinf(e.cost) || e.cost <= 0.0) {
            return Status::InvalidArgument(
                "optimization costs must be finite and positive");
          }
          meta_.costs.push_back(e.cost);
          ++num_opts_;
          break;
        }
        case SlotEvent::Kind::kOptRetire:
          return Status::InvalidArgument(
              "buffered mechanism \"" + std::string(name()) +
              "\" cannot retire optimizations mid-period");
      }
    }
    current_ = slot;
    OnlineSlotReport report;
    report.deferred = true;
    return report;
  }

  Result<MechanismResult> Finalize() override {
    if (!begun_) return Status::FailedPrecondition("Begin was not called");
    if (finalized_) return Status::FailedPrecondition("already finalized");
    if (current_ != meta_.num_slots) {
      return Status::FailedPrecondition(
          "period incomplete: fed " + std::to_string(current_) + " of " +
          std::to_string(meta_.num_slots) + " slots");
    }
    finalized_ = true;
    if (meta_.kind == GameKind::kSubstOnline) {
      return collapse_ ? RunSubstOffline() : RunSubstOnline();
    }
    return collapse_ ? RunAdditiveOffline() : RunAdditiveOnline();
  }

 private:
  Status CheckInterval(TimeSlot start, TimeSlot end) const {
    if (start < 1 || end < start || end > meta_.num_slots) {
      return Status::InvalidArgument(
          "user interval outside the period's slots");
    }
    return Status::OK();
  }

  /// Declared stream truncated to the user's effective departure.
  SlotValues EffectiveStream(UserId i, const SlotValues& declared) const {
    return TruncateStream(declared, roster_.eff_end[static_cast<size_t>(i)]);
  }

  Result<MechanismResult> RunAdditiveOnline() const {
    MultiAdditiveOnlineGame game;
    game.num_slots = meta_.num_slots;
    game.costs = meta_.costs;
    const int n = roster_.id_space();
    for (UserId i = 0; i < n; ++i) {
      std::vector<SlotValues> row;
      row.reserve(static_cast<size_t>(num_opts_));
      for (OptId j = 0; j < num_opts_; ++j) {
        auto it = streams_.find({i, j});
        if (it != streams_.end()) {
          row.push_back(EffectiveStream(i, it->second));
        } else if (roster_.Has(i)) {
          row.push_back(ZeroStream(roster_, i));
        } else {
          row.push_back(SlotValues::Constant(1, 1, 0.0));  // Id-space hole.
        }
      }
      game.bids.push_back(std::move(row));
    }
    if (meta_.kind == GameKind::kAdditiveOnline) {
      AdditiveOnlineGame single = game.ProjectOpt(0);
      single.cost = meta_.costs[0];
      return mech_->Run(GameView(single));
    }
    return mech_->Run(GameView(game));
  }

  Result<MechanismResult> RunAdditiveOffline() const {
    AdditiveOfflineGame game;
    game.costs = meta_.costs;
    const int n = roster_.id_space();
    for (UserId i = 0; i < n; ++i) {
      std::vector<double> row(static_cast<size_t>(num_opts_), 0.0);
      for (OptId j = 0; j < num_opts_; ++j) {
        auto it = streams_.find({i, j});
        if (it != streams_.end()) {
          row[static_cast<size_t>(j)] = EffectiveStream(i, it->second).Total();
        }
      }
      game.bids.push_back(std::move(row));
    }
    return mech_->Run(GameView(game));
  }

  Result<MechanismResult> RunSubstOnline() const {
    SubstOnlineGame game;
    game.num_slots = meta_.num_slots;
    game.costs = meta_.costs;
    const int n = roster_.id_space();
    for (UserId i = 0; i < n; ++i) {
      SubstOnlineUser user;
      auto subs = substitutes_.find(i);
      if (subs != substitutes_.end()) {
        user.substitutes = subs->second;
        user.stream = EffectiveStream(i, streams_.at({i, 0}));
      } else {
        if (num_opts_ < 1) {
          return Status::FailedPrecondition(
              "cannot materialize a user without a bid in a game with no "
              "optimizations");
        }
        // An all-zero bid on optimization 0: never granted, never charged.
        user.substitutes = {0};
        user.stream =
            roster_.Has(i) ? ZeroStream(roster_, i)
                           : SlotValues::Constant(1, 1, 0.0);
      }
      game.users.push_back(std::move(user));
    }
    return mech_->Run(GameView(game));
  }

  Result<MechanismResult> RunSubstOffline() const {
    SubstOfflineGame game;
    game.costs = meta_.costs;
    const int n = roster_.id_space();
    for (UserId i = 0; i < n; ++i) {
      SubstOfflineUser user;
      auto subs = substitutes_.find(i);
      if (subs != substitutes_.end()) {
        user.substitutes = subs->second;
        user.value = EffectiveStream(i, streams_.at({i, 0})).Total();
      } else {
        if (num_opts_ < 1) {
          return Status::FailedPrecondition(
              "cannot materialize a user without a bid in a game with no "
              "optimizations");
        }
        user.substitutes = {0};
        user.value = 0.0;
      }
      game.users.push_back(std::move(user));
    }
    return mech_->Run(GameView(game));
  }

  std::unique_ptr<Mechanism> mech_;
  bool collapse_;
  OnlineGameMeta meta_;
  int num_opts_ = 0;
  TimeSlot current_ = 0;
  bool begun_ = false;
  bool finalized_ = false;
  Roster roster_;
  std::map<std::pair<UserId, OptId>, SlotValues> streams_;
  std::map<UserId, std::vector<OptId>> substitutes_;
};

GameKind OfflineAnalog(GameKind kind) {
  switch (kind) {
    case GameKind::kAdditiveOnline:
    case GameKind::kMultiAdditiveOnline:
      return GameKind::kAdditiveOffline;
    case GameKind::kSubstOnline:
      return GameKind::kSubstOffline;
    default:
      return kind;
  }
}

}  // namespace

Result<std::unique_ptr<OnlineMechanism>> ResolveOnlineMechanism(
    const std::string& name, GameKind kind) {
  const bool additive = kind == GameKind::kAdditiveOnline ||
                        kind == GameKind::kMultiAdditiveOnline;
  if (!additive && kind != GameKind::kSubstOnline) {
    return Status::InvalidArgument(
        "streaming sessions price online game classes; " +
        std::string(GameKindName(kind)) + " is offline");
  }
  if (name == "addon" && additive) {
    return std::unique_ptr<OnlineMechanism>(new AddOnStreamMechanism());
  }
  if (name == "subston" && kind == GameKind::kSubstOnline) {
    return std::unique_ptr<OnlineMechanism>(new SubstOnStreamMechanism());
  }
  Result<std::unique_ptr<Mechanism>> mech =
      MechanismRegistry::Global().Create(name);
  if (!mech.ok()) return mech.status();
  if ((*mech)->Supports(kind)) {
    return std::unique_ptr<OnlineMechanism>(
        new BufferingOnlineAdapter(std::move(*mech), /*collapse=*/false));
  }
  if ((*mech)->Supports(OfflineAnalog(kind))) {
    return std::unique_ptr<OnlineMechanism>(
        new BufferingOnlineAdapter(std::move(*mech), /*collapse=*/true));
  }
  return UnsupportedKind(name, kind);
}

bool NativelyOnline(const std::string& name, GameKind kind) {
  return (name == "addon" && (kind == GameKind::kAdditiveOnline ||
                              kind == GameKind::kMultiAdditiveOnline)) ||
         (name == "subston" && kind == GameKind::kSubstOnline);
}

// ---------------------------------------------------------------------------
// Event logs
// ---------------------------------------------------------------------------

Status SlotEventLog::Validate() const {
  if (num_slots < 1) {
    return Status::InvalidArgument("event log needs at least one slot");
  }
  if (static_cast<int>(events.size()) != num_slots) {
    return Status::InvalidArgument(
        "event log must carry one event list per slot");
  }
  if (kind != GameKind::kAdditiveOnline &&
      kind != GameKind::kMultiAdditiveOnline &&
      kind != GameKind::kSubstOnline) {
    return Status::InvalidArgument("event logs describe online game classes");
  }
  return ValidateCosts(costs);
}

SlotEventLog EventLogFromGame(const AdditiveOnlineGame& game) {
  SlotEventLog log;
  log.kind = GameKind::kAdditiveOnline;
  log.num_slots = game.num_slots;
  log.costs = {game.cost};
  log.events.resize(static_cast<size_t>(game.num_slots));
  for (UserId i = 0; i < game.num_users(); ++i) {
    const SlotValues& stream = game.users[static_cast<size_t>(i)];
    auto& at_start = log.events[static_cast<size_t>(stream.start - 1)];
    if (stream.Total() > 0.0) {
      at_start.push_back(SlotEvent::DeclareValues(i, 0, stream));
    } else {
      at_start.push_back(SlotEvent::UserArrive(i, stream.start, stream.end));
    }
  }
  return log;
}

SlotEventLog EventLogFromGame(const MultiAdditiveOnlineGame& game) {
  SlotEventLog log;
  log.kind = GameKind::kMultiAdditiveOnline;
  log.num_slots = game.num_slots;
  log.costs = game.costs;
  log.events.resize(static_cast<size_t>(game.num_slots));
  for (UserId i = 0; i < game.num_users(); ++i) {
    const auto& row = game.bids[static_cast<size_t>(i)];
    // Every user shares one interval across her streams (BuildAdditiveGame
    // guarantees it); announce her once, then declare the non-zero columns.
    const TimeSlot start = row.empty() ? 1 : row[0].start;
    const TimeSlot end = row.empty() ? 1 : row[0].end;
    auto& at_start = log.events[static_cast<size_t>(start - 1)];
    at_start.push_back(SlotEvent::UserArrive(i, start, end));
    for (OptId j = 0; j < game.num_opts(); ++j) {
      if (row[static_cast<size_t>(j)].Total() > 0.0) {
        at_start.push_back(
            SlotEvent::DeclareValues(i, j, row[static_cast<size_t>(j)]));
      }
    }
  }
  return log;
}

SlotEventLog EventLogFromGame(const SubstOnlineGame& game) {
  SlotEventLog log;
  log.kind = GameKind::kSubstOnline;
  log.num_slots = game.num_slots;
  log.costs = game.costs;
  log.events.resize(static_cast<size_t>(game.num_slots));
  for (UserId i = 0; i < game.num_users(); ++i) {
    const SubstOnlineUser& u = game.users[static_cast<size_t>(i)];
    auto& at_start = log.events[static_cast<size_t>(u.stream.start - 1)];
    if (u.stream.Total() > 0.0) {
      at_start.push_back(
          SlotEvent::DeclareSubstValues(i, u.substitutes, u.stream));
    } else {
      at_start.push_back(
          SlotEvent::UserArrive(i, u.stream.start, u.stream.end));
    }
  }
  return log;
}

namespace {

/// Shared log scan: roster intervals, effective ends, and declared streams.
struct LogScan {
  Roster roster;
  std::vector<double> costs;
  std::map<std::pair<UserId, OptId>, SlotValues> streams;
  std::map<UserId, std::vector<OptId>> substitutes;
};

Result<LogScan> ScanLog(const SlotEventLog& log) {
  OPTSHARE_RETURN_NOT_OK(log.Validate());
  LogScan scan;
  scan.costs = log.costs;
  for (TimeSlot t = 1; t <= log.num_slots; ++t) {
    for (const SlotEvent& e : log.events[static_cast<size_t>(t - 1)]) {
      switch (e.kind) {
        case SlotEvent::Kind::kUserArrive:
          if (e.user < 0) {
            return Status::InvalidArgument("user id must be non-negative");
          }
          if (scan.roster.Has(e.user)) {
            return Status::AlreadyExists("user already registered");
          }
          scan.roster.Add(e.user, e.stream.start, e.stream.end);
          break;
        case SlotEvent::Kind::kDeclareValues: {
          if (e.user < 0) {
            return Status::InvalidArgument("user id must be non-negative");
          }
          if (scan.roster.Departed(e.user)) {
            return Status::FailedPrecondition("user departed; cannot declare");
          }
          OPTSHARE_RETURN_NOT_OK(e.stream.Validate());
          const OptId j =
              log.kind == GameKind::kSubstOnline ? 0 : e.opt;
          if (scan.streams.count({e.user, j}) != 0) {
            return Status::AlreadyExists("duplicate declaration");
          }
          scan.streams[{e.user, j}] = e.stream;
          if (log.kind == GameKind::kSubstOnline) {
            scan.substitutes[e.user] = e.substitutes;
          }
          if (!scan.roster.Has(e.user)) {
            scan.roster.Add(e.user, e.stream.start, e.stream.end);
          }
          break;
        }
        case SlotEvent::Kind::kUserDepart: {
          if (!scan.roster.Has(e.user)) {
            return Status::NotFound("unknown user id");
          }
          scan.roster.Depart(e.user, t);
          break;
        }
        case SlotEvent::Kind::kOptAdd:
          if (e.opt != static_cast<OptId>(scan.costs.size())) {
            return Status::InvalidArgument(
                "opt_add ids must be dense and in order");
          }
          scan.costs.push_back(e.cost);
          break;
        case SlotEvent::Kind::kOptRetire:
          return Status::InvalidArgument(
              "a log with opt_retire events has no batch-game equivalent");
      }
    }
  }
  return scan;
}

}  // namespace

Result<MultiAdditiveOnlineGame> MaterializeAdditiveLog(
    const SlotEventLog& log) {
  if (log.kind == GameKind::kSubstOnline) {
    return Status::InvalidArgument("log describes a substitutable game");
  }
  Result<LogScan> scan_r = ScanLog(log);
  if (!scan_r.ok()) return scan_r.status();
  const LogScan& scan = *scan_r;

  MultiAdditiveOnlineGame game;
  game.num_slots = log.num_slots;
  game.costs = scan.costs;
  const int n = scan.roster.id_space();
  const int opts = static_cast<int>(scan.costs.size());
  for (UserId i = 0; i < n; ++i) {
    std::vector<SlotValues> row;
    row.reserve(static_cast<size_t>(opts));
    for (OptId j = 0; j < opts; ++j) {
      auto it = scan.streams.find({i, j});
      if (it != scan.streams.end()) {
        row.push_back(TruncateStream(
            it->second, scan.roster.eff_end[static_cast<size_t>(i)]));
      } else if (scan.roster.Has(i)) {
        row.push_back(ZeroStream(scan.roster, i));
      } else {
        row.push_back(SlotValues::Constant(1, 1, 0.0));
      }
    }
    game.bids.push_back(std::move(row));
  }
  OPTSHARE_RETURN_NOT_OK(game.Validate());
  return game;
}

Result<SubstOnlineGame> MaterializeSubstLog(const SlotEventLog& log) {
  if (log.kind != GameKind::kSubstOnline) {
    return Status::InvalidArgument("log describes an additive game");
  }
  Result<LogScan> scan_r = ScanLog(log);
  if (!scan_r.ok()) return scan_r.status();
  const LogScan& scan = *scan_r;

  SubstOnlineGame game;
  game.num_slots = log.num_slots;
  game.costs = scan.costs;
  const int n = scan.roster.id_space();
  for (UserId i = 0; i < n; ++i) {
    SubstOnlineUser user;
    auto subs = scan.substitutes.find(i);
    if (subs != scan.substitutes.end()) {
      user.substitutes = subs->second;
      user.stream = TruncateStream(
          scan.streams.at({i, 0}),
          scan.roster.eff_end[static_cast<size_t>(i)]);
    } else {
      if (game.costs.empty()) {
        return Status::FailedPrecondition(
            "cannot materialize a user without a bid in a game with no "
            "optimizations");
      }
      user.substitutes = {0};
      user.stream = scan.roster.Has(i) ? ZeroStream(scan.roster, i)
                                       : SlotValues::Constant(1, 1, 0.0);
    }
    game.users.push_back(std::move(user));
  }
  OPTSHARE_RETURN_NOT_OK(game.Validate());
  return game;
}

Result<MechanismResult> ReplayLog(const SlotEventLog& log,
                                  OnlineMechanism& mech) {
  OPTSHARE_RETURN_NOT_OK(log.Validate());
  OnlineGameMeta meta;
  meta.kind = log.kind;
  meta.num_slots = log.num_slots;
  meta.costs = log.costs;
  OPTSHARE_RETURN_NOT_OK(mech.Begin(meta));
  for (TimeSlot t = 1; t <= log.num_slots; ++t) {
    Result<OnlineSlotReport> report =
        mech.OnSlot(t, log.events[static_cast<size_t>(t - 1)]);
    if (!report.ok()) return report.status();
  }
  return mech.Finalize();
}

Result<MechanismResult> ReplayLog(const SlotEventLog& log,
                                  const std::string& mechanism) {
  Result<std::unique_ptr<OnlineMechanism>> mech =
      ResolveOnlineMechanism(mechanism, log.kind);
  if (!mech.ok()) return mech.status();
  return ReplayLog(log, **mech);
}

}  // namespace optshare
