#include "core/types.h"

#include <cmath>

namespace optshare {

Result<SlotValues> SlotValues::Make(TimeSlot start, TimeSlot end,
                                    std::vector<double> values) {
  SlotValues sv{start, end, std::move(values)};
  Status st = sv.Validate();
  if (!st.ok()) return st;
  return sv;
}

SlotValues SlotValues::Constant(TimeSlot start, TimeSlot end, double value) {
  SlotValues sv;
  sv.start = start;
  sv.end = end;
  sv.values.assign(static_cast<size_t>(end - start + 1), value);
  return sv;
}

SlotValues SlotValues::Single(TimeSlot slot, double value) {
  return Constant(slot, slot, value);
}

double SlotValues::At(TimeSlot t) const {
  if (t < start || t > end) return 0.0;
  return values[static_cast<size_t>(t - start)];
}

double SlotValues::Total() const {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum;
}

double SlotValues::ResidualFrom(TimeSlot t) const {
  double sum = 0.0;
  for (TimeSlot tau = std::max(t, start); tau <= end; ++tau) {
    sum += values[static_cast<size_t>(tau - start)];
  }
  return sum;
}

Status SlotValues::Validate() const {
  if (start < 1) {
    return Status::InvalidArgument("slot interval must start at slot >= 1");
  }
  if (end < start) {
    return Status::InvalidArgument("slot interval end precedes start");
  }
  if (values.size() != static_cast<size_t>(end - start + 1)) {
    return Status::InvalidArgument(
        "value stream length does not match interval length");
  }
  for (double v : values) {
    if (std::isnan(v) || std::isinf(v) || v < 0.0) {
      return Status::InvalidArgument(
          "slot values must be finite and non-negative");
    }
  }
  return Status::OK();
}

}  // namespace optshare
