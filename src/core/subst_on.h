// SubstOn Mechanism (paper §6.2, Mechanism 4): online pricing of
// substitutable optimizations. Runs SubstOff each slot over residual bids.
// The first time a user is granted an optimization j, her bid for j becomes
// infinite and her bids for all other optimizations become zero: she can
// never switch, which Example 8 shows is crucial for truthfulness. Users pay
// the cost-share computed at their departure slot.
//
// Engine-backed: per-user residual suffix sums are precomputed once and the
// per-slot SubstOff runs consume sparse bid rows — only present users carry
// bids, and only for their substitutes — instead of rebuilding a dense
// [user][opt] value matrix every slot. (The per-slot row *vector* is still
// sized to the user universe so SubstOff's grant output stays id-indexed;
// shrinking that to the present users needs an id remap and is left to a
// later scaling PR.) Results are identical to reference::RunSubstOnDense.
#pragma once

#include <vector>

#include "core/game.h"
#include "core/subst_off.h"

namespace optshare {

/// Outcome of SubstOn.
struct SubstOnResult {
  /// Per-user granted optimization (kNoOpt when never serviced).
  std::vector<OptId> grant;
  /// Slot at which each user was first granted (0 when never serviced).
  std::vector<TimeSlot> grant_slot;
  /// Per-user payment, assessed at the user's departure slot e_i.
  std::vector<double> payments;
  /// implemented_at[j]: first slot whose SubstOff run implemented j
  /// (0 when j was never implemented).
  std::vector<TimeSlot> implemented_at;
  /// serviced[t-1] = union over j of S_j(t): users granted and still active.
  std::vector<std::vector<UserId>> serviced;

  /// Ids of implemented optimizations, increasing order.
  std::vector<OptId> ImplementedOpts() const;
  /// Total cost of implemented optimizations.
  double ImplementedCost(const std::vector<double>& costs) const;
  /// Sum of all payments.
  double TotalPayment() const;
};

/// SubstOn outcome plus the extras the Mechanism adapter reports.
struct SubstOnEngineOutcome {
  SubstOnResult result;
  /// last_share[j]: cost share of j at the last slot it was implemented
  /// (0 when never implemented) — the final per-opt share a departing
  /// member would have paid.
  std::vector<double> last_share;
};

/// Runs Mechanism 4 on a validated game. Precondition: game.Validate().ok().
SubstOnResult RunSubstOn(const SubstOnlineGame& game);

/// Engine entry point: RunSubstOn plus per-opt final shares.
SubstOnEngineOutcome RunSubstOnEngine(const SubstOnlineGame& game);

}  // namespace optshare
