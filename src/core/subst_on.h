// SubstOn Mechanism (paper §6.2, Mechanism 4): online pricing of
// substitutable optimizations. Runs SubstOff each slot over residual bids.
// The first time a user is granted an optimization j, her bid for j becomes
// infinite and her bids for all other optimizations become zero: she can
// never switch, which Example 8 shows is crucial for truthfulness. Users pay
// the cost-share computed at their departure slot.
//
// Engine-backed: per-user residual suffix sums are precomputed once and the
// per-slot SubstOff runs consume sparse bid rows — only present users carry
// bids, and only for their substitutes — instead of rebuilding a dense
// [user][opt] value matrix every slot. (The per-slot row *vector* is still
// sized to the user universe so SubstOff's grant output stays id-indexed;
// shrinking that to the present users needs an id remap and is left to a
// later scaling PR.) Results are identical to reference::RunSubstOnDense.
#pragma once

#include <vector>

#include "core/game.h"
#include "core/mechanism.h"
#include "core/subst_off.h"

namespace optshare {

/// Outcome of SubstOn.
struct SubstOnResult {
  /// Per-user granted optimization (kNoOpt when never serviced).
  std::vector<OptId> grant;
  /// Slot at which each user was first granted (0 when never serviced).
  std::vector<TimeSlot> grant_slot;
  /// Per-user payment, assessed at the user's departure slot e_i.
  std::vector<double> payments;
  /// implemented_at[j]: first slot whose SubstOff run implemented j
  /// (0 when j was never implemented).
  std::vector<TimeSlot> implemented_at;
  /// serviced[t-1] = union over j of S_j(t): users granted and still active.
  std::vector<std::vector<UserId>> serviced;

  /// Ids of implemented optimizations, increasing order.
  std::vector<OptId> ImplementedOpts() const;
  /// Total cost of implemented optimizations.
  double ImplementedCost(const std::vector<double>& costs) const;
  /// Sum of all payments.
  double TotalPayment() const;
};

/// SubstOn outcome plus the extras the Mechanism adapter reports.
struct SubstOnEngineOutcome {
  SubstOnResult result;
  /// last_share[j]: cost share of j at the last slot it was implemented
  /// (0 when never implemented) — the final per-opt share a departing
  /// member would have paid.
  std::vector<double> last_share;
};

/// Runs Mechanism 4 on a validated game. Precondition: game.Validate().ok().
SubstOnResult RunSubstOn(const SubstOnlineGame& game);

/// Engine entry point: RunSubstOn plus per-opt final shares. Thin batch
/// driver over SubstOnSlotEngine (declare everyone, step every slot).
SubstOnEngineOutcome RunSubstOnEngine(const SubstOnlineGame& game);

/// The incremental (slot-stepping) form of the SubstOn engine, mirroring
/// engine::AddOnSlotEngine (core/mechanism.h): users declare
/// (stream, substitute set) bids as they arrive, optimizations may be added
/// between slots, and each StepSlot runs one SubstOff phase loop over the
/// present users' residual bids. The batch RunSubstOnEngine registers every
/// user before slot 1 and is bit-identical to the historical results.
class SubstOnSlotEngine {
 public:
  /// `costs` (possibly empty; AddOpt appends more) must be positive.
  SubstOnSlotEngine(std::vector<double> costs, int num_slots);

  /// Optional pre-sizing for batch drivers.
  void Reserve(int num_users, size_t total_values);

  /// Appends a new optimization with the given (positive) cost; it is
  /// priced from the next slot on. Returns its OptId.
  Result<OptId> AddOpt(double cost);

  /// Registers user `i` as present over [start, end] with no bids yet.
  Status Arrive(UserId i, TimeSlot start, TimeSlot end);

  /// Declares user i's bid omega_i = (stream, J_i). Substitutes must refer
  /// to already-added optimizations. Values at elapsed slots are ignored.
  Status Declare(UserId i, const SlotValues& stream,
                 std::vector<OptId> substitutes);

  /// Early departure: present through the upcoming slot, gone afterwards;
  /// a granted user pays that slot's share of her optimization.
  Status Depart(UserId i);

  /// Prices slot next_slot().
  Status StepSlot();

  TimeSlot next_slot() const { return current_ + 1; }
  int num_slots() const { return num_slots_; }
  int num_opts() const { return static_cast<int>(costs_.size()); }
  int id_space() const { return static_cast<int>(present_.size()); }
  bool registered(UserId i) const {
    return i >= 0 && i < id_space() && present_[static_cast<size_t>(i)] != 0;
  }
  TimeSlot end_of(UserId i) const {
    return eff_end_[static_cast<size_t>(i)];
  }
  const std::vector<double>& costs() const { return costs_; }
  /// The SubstOff outcome of the last stepped slot (for slot reports).
  const SubstOffResult& last_off() const { return last_off_; }
  /// Users first granted at the last stepped slot, increasing id order.
  const std::vector<UserId>& last_new_grants() const {
    return last_new_grants_;
  }
  /// Live outcome (vectors indexed by user id through the id space).
  const SubstOnEngineOutcome& outcome() const { return out_; }
  /// Moves the outcome out; the engine is spent afterwards.
  SubstOnEngineOutcome TakeOutcome() { return std::move(out_); }

 private:
  Status Register(UserId i, TimeSlot start, TimeSlot end,
                  const std::vector<double>* values,
                  std::vector<OptId> substitutes);

  std::vector<double> costs_;
  int num_slots_;
  TimeSlot current_ = 0;

  engine::ResidualSuffixArena residuals_;
  int arena_users_ = 0;

  // Per-user state, indexed by UserId.
  std::vector<char> present_;
  std::vector<char> joined_;
  std::vector<TimeSlot> start_;
  std::vector<TimeSlot> decl_end_;
  std::vector<TimeSlot> eff_end_;
  std::vector<int> stream_idx_;  // arena index; -1 = no bid yet.
  std::vector<std::vector<OptId>> substitutes_;

  std::vector<std::vector<UserId>> by_start_;
  std::vector<UserId> alive_;
  std::vector<UserId> granted_;
  std::vector<SparseSubstUserRow> rows_;
  SubstOffResult last_off_;
  std::vector<UserId> last_new_grants_;

  SubstOnEngineOutcome out_;
};

}  // namespace optshare
