#include "core/subst_off.h"

#include <cassert>
#include <limits>

#include "common/money.h"
#include "core/shapley.h"

namespace optshare {

bool SubstOffResult::Implemented(OptId j) const {
  for (OptId k : implemented) {
    if (k == j) return true;
  }
  return false;
}

std::vector<UserId> SubstOffResult::GrantedUsers(OptId j) const {
  std::vector<UserId> out;
  for (UserId i = 0; i < static_cast<UserId>(grant.size()); ++i) {
    if (grant[static_cast<size_t>(i)] == j) out.push_back(i);
  }
  return out;
}

double SubstOffResult::ImplementedCost(
    const std::vector<double>& costs) const {
  double sum = 0.0;
  for (OptId j : implemented) sum += costs[static_cast<size_t>(j)];
  return sum;
}

double SubstOffResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

SubstOffResult RunSubstOffMatrix(const std::vector<double>& costs,
                                 std::vector<std::vector<double>> bids) {
  const int m = static_cast<int>(bids.size());
  const int n = static_cast<int>(costs.size());

  SubstOffResult result;
  result.grant.assign(static_cast<size_t>(m), kNoOpt);
  result.payments.assign(static_cast<size_t>(m), 0.0);

  std::vector<bool> opt_done(static_cast<size_t>(n), false);
  std::vector<double> column(static_cast<size_t>(m));

  // Each phase implements one optimization, so at most n phases run.
  for (int phase = 0; phase < n; ++phase) {
    OptId best = kNoOpt;
    double best_share = std::numeric_limits<double>::infinity();
    ShapleyResult best_result;

    for (OptId j = 0; j < n; ++j) {
      if (opt_done[static_cast<size_t>(j)]) continue;
      for (UserId i = 0; i < m; ++i) {
        column[static_cast<size_t>(i)] =
            bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
      }
      ShapleyResult sh = RunShapley(costs[static_cast<size_t>(j)], column);
      if (!sh.implemented) continue;
      // Strict < breaks ties toward the lowest optimization id.
      if (sh.cost_share < best_share - kMoneyEpsilon ||
          (best == kNoOpt)) {
        best = j;
        best_share = sh.cost_share;
        best_result = std::move(sh);
      }
    }

    if (best == kNoOpt) break;  // No feasible optimization remains.

    result.implemented.push_back(best);
    result.cost_share.push_back(best_result.cost_share);
    opt_done[static_cast<size_t>(best)] = true;
    for (UserId i = 0; i < m; ++i) {
      if (!best_result.serviced[static_cast<size_t>(i)]) continue;
      result.grant[static_cast<size_t>(i)] = best;
      result.payments[static_cast<size_t>(i)] = best_result.cost_share;
      // Granted users stop bidding for every other optimization.
      for (OptId j = 0; j < n; ++j) {
        bids[static_cast<size_t>(i)][static_cast<size_t>(j)] = 0.0;
      }
    }
  }
  return result;
}

SubstOffResult RunSubstOff(const SubstOfflineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();

  std::vector<std::vector<double>> bids(
      static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(n), 0.0));
  for (UserId i = 0; i < m; ++i) {
    const auto& u = game.users[static_cast<size_t>(i)];
    for (OptId j : u.substitutes) {
      bids[static_cast<size_t>(i)][static_cast<size_t>(j)] = u.value;
    }
  }
  return RunSubstOffMatrix(game.costs, std::move(bids));
}

}  // namespace optshare
