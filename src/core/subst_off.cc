#include "core/subst_off.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/money.h"
#include "core/mechanism.h"

namespace optshare {

bool SubstOffResult::Implemented(OptId j) const {
  for (OptId k : implemented) {
    if (k == j) return true;
  }
  return false;
}

std::vector<UserId> SubstOffResult::GrantedUsers(OptId j) const {
  std::vector<UserId> out;
  for (UserId i = 0; i < static_cast<UserId>(grant.size()); ++i) {
    if (grant[static_cast<size_t>(i)] == j) out.push_back(i);
  }
  return out;
}

double SubstOffResult::ImplementedCost(
    const std::vector<double>& costs) const {
  double sum = 0.0;
  for (OptId j : implemented) sum += costs[static_cast<size_t>(j)];
  return sum;
}

double SubstOffResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

SubstOffResult RunSubstOffSparse(const std::vector<double>& costs,
                                 std::vector<SparseSubstUserRow> rows) {
  const int m = static_cast<int>(rows.size());
  const int n = static_cast<int>(costs.size());

  SubstOffResult result;
  result.grant.assign(static_cast<size_t>(m), kNoOpt);
  result.payments.assign(static_cast<size_t>(m), 0.0);

  std::vector<bool> opt_done(static_cast<size_t>(n), false);
  // Per-opt candidates, rebuilt each phase from the surviving rows. Users
  // serviced in an earlier phase have empty rows and so become implicit
  // zero bidders, exactly like the dense matrix after its rows are zeroed.
  std::vector<std::vector<std::pair<double, UserId>>> positive(
      static_cast<size_t>(n));
  std::vector<std::vector<UserId>> pinned(static_cast<size_t>(n));
  std::vector<double> column_bids;

  // Each phase implements one optimization, so at most n phases run.
  for (int phase = 0; phase < n; ++phase) {
    for (auto& v : positive) v.clear();
    for (auto& v : pinned) v.clear();
    for (UserId i = 0; i < m; ++i) {
      for (const SparseSubstBid& b : rows[static_cast<size_t>(i)].bids) {
        if (opt_done[static_cast<size_t>(b.opt)]) continue;
        if (std::isinf(b.value)) {
          pinned[static_cast<size_t>(b.opt)].push_back(i);
        } else if (b.value > 0.0) {
          positive[static_cast<size_t>(b.opt)].push_back({b.value, i});
        }
      }
    }

    OptId best = kNoOpt;
    double best_share = std::numeric_limits<double>::infinity();
    engine::EvenSplitOutcome best_fp;

    for (OptId j = 0; j < n; ++j) {
      if (opt_done[static_cast<size_t>(j)]) continue;
      const auto& pos = positive[static_cast<size_t>(j)];
      column_bids.clear();
      for (const auto& pv : pos) column_bids.push_back(pv.first);
      const int num_pinned =
          static_cast<int>(pinned[static_cast<size_t>(j)].size());
      const int num_zero = m - num_pinned - static_cast<int>(pos.size());
      engine::EvenSplitOutcome fp = engine::EvenSplitFixedPoint(
          costs[static_cast<size_t>(j)], column_bids, num_pinned, num_zero);
      if (!fp.implemented) continue;
      // Strict < breaks ties toward the lowest optimization id.
      if (fp.share < best_share - kMoneyEpsilon || (best == kNoOpt)) {
        best = j;
        best_share = fp.share;
        best_fp = fp;
      }
    }

    if (best == kNoOpt) break;  // No feasible optimization remains.

    result.implemented.push_back(best);
    result.cost_share.push_back(best_fp.share);
    opt_done[static_cast<size_t>(best)] = true;

    // Serviced members, ascending: pinned users, the positive bidders
    // affording the final share, and — when the share fell to <= epsilon —
    // every zero bidder too (at that point all positives afford it, so the
    // set is the whole universe).
    std::vector<UserId> members;
    if (best_fp.zeros_in) {
      members.resize(static_cast<size_t>(m));
      for (UserId i = 0; i < m; ++i) members[static_cast<size_t>(i)] = i;
    } else {
      members = pinned[static_cast<size_t>(best)];
      for (const auto& pv : positive[static_cast<size_t>(best)]) {
        if (MoneyGe(pv.first, best_fp.share)) members.push_back(pv.second);
      }
      std::sort(members.begin(), members.end());
    }
    for (UserId i : members) {
      result.grant[static_cast<size_t>(i)] = best;
      result.payments[static_cast<size_t>(i)] = best_fp.share;
      // Granted users stop bidding for every other optimization.
      rows[static_cast<size_t>(i)].bids.clear();
    }
  }
  return result;
}

SubstOffResult RunSubstOffMatrix(const std::vector<double>& costs,
                                 std::vector<std::vector<double>> bids) {
  std::vector<SparseSubstUserRow> rows(bids.size());
  for (size_t i = 0; i < bids.size(); ++i) {
    for (OptId j = 0; j < static_cast<OptId>(bids[i].size()); ++j) {
      const double v = bids[i][static_cast<size_t>(j)];
      if (v != 0.0) rows[i].bids.push_back({j, v});
    }
  }
  return RunSubstOffSparse(costs, std::move(rows));
}

SubstOffResult RunSubstOff(const SubstOfflineGame& game) {
  assert(game.Validate().ok());
  std::vector<SparseSubstUserRow> rows(
      static_cast<size_t>(game.num_users()));
  for (UserId i = 0; i < game.num_users(); ++i) {
    const auto& u = game.users[static_cast<size_t>(i)];
    for (OptId j : u.substitutes) {
      rows[static_cast<size_t>(i)].bids.push_back({j, u.value});
    }
  }
  return RunSubstOffSparse(game.costs, std::move(rows));
}

}  // namespace optshare
