#include "core/strategy.h"

#include <algorithm>
#include <cassert>

namespace optshare {

double AddOffUtilityUnderBid(const AdditiveOfflineGame& truth, UserId i,
                             const std::vector<double>& deviating_bids) {
  assert(deviating_bids.size() == static_cast<size_t>(truth.num_opts()));
  AdditiveOfflineGame declared = truth;
  declared.bids[static_cast<size_t>(i)] = deviating_bids;
  AddOffResult outcome = RunAddOff(declared);
  // Realized value must come from true values, not the declared ones.
  Accounting acc = AccountAddOff(truth, outcome);
  return acc.UserUtility(i);
}

double AddOnUtilityUnderBid(const AdditiveOnlineGame& truth, UserId i,
                            const SlotValues& deviating_stream) {
  AdditiveOnlineGame declared = truth;
  declared.users[static_cast<size_t>(i)] = deviating_stream;
  AddOnResult outcome = RunAddOn(declared);

  // Access follows the declaration; realized value follows the truth.
  const auto& true_stream = truth.users[static_cast<size_t>(i)];
  double value = 0.0;
  for (TimeSlot t = 1; t <= truth.num_slots; ++t) {
    const auto& s_t = outcome.serviced[static_cast<size_t>(t - 1)];
    if (std::find(s_t.begin(), s_t.end(), i) != s_t.end()) {
      value += true_stream.At(t);
    }
  }
  return value - outcome.payments[static_cast<size_t>(i)];
}

double SubstOffUtilityUnderBid(const SubstOfflineGame& truth, UserId i,
                               const std::vector<OptId>& deviating_substitutes,
                               double deviating_value) {
  SubstOfflineGame declared = truth;
  declared.users[static_cast<size_t>(i)].substitutes = deviating_substitutes;
  declared.users[static_cast<size_t>(i)].value = deviating_value;
  SubstOffResult outcome = RunSubstOff(declared);
  Accounting acc = AccountSubstOff(truth, outcome);
  return acc.UserUtility(i);
}

double SubstOnUtilityUnderBid(const SubstOnlineGame& truth, UserId i,
                              const SubstOnlineUser& deviation) {
  SubstOnlineGame declared = truth;
  declared.users[static_cast<size_t>(i)] = deviation;
  SubstOnResult outcome = RunSubstOn(declared);

  const auto& u_true = truth.users[static_cast<size_t>(i)];
  const OptId g = outcome.grant[static_cast<size_t>(i)];
  double value = 0.0;
  if (g != kNoOpt &&
      std::find(u_true.substitutes.begin(), u_true.substitutes.end(), g) !=
          u_true.substitutes.end()) {
    for (TimeSlot t = 1; t <= truth.num_slots; ++t) {
      const auto& s_t = outcome.serviced[static_cast<size_t>(t - 1)];
      if (std::find(s_t.begin(), s_t.end(), i) != s_t.end()) {
        value += u_true.stream.At(t);
      }
    }
  }
  return value - outcome.payments[static_cast<size_t>(i)];
}

std::vector<double> CandidateDeviationBids(const std::vector<double>& costs,
                                           const std::vector<double>& values,
                                           int max_users) {
  std::vector<double> candidates = {0.0};
  auto add_with_perturbations = [&candidates](double x) {
    if (x < 0.0) return;
    candidates.push_back(x);
    candidates.push_back(x + 1e-6);
    if (x > 1e-6) candidates.push_back(x - 1e-6);
  };
  for (double c : costs) {
    for (int k = 1; k <= max_users; ++k) {
      add_with_perturbations(c / static_cast<double>(k));
    }
  }
  for (double v : values) add_with_perturbations(v);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

}  // namespace optshare
