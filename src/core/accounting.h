// Accounting: measures what an outcome is *worth* by re-introducing true
// values. Mechanisms only ever see bids; utility, cost-recovery and cloud
// balance are judged against the true game here.
//
// Conventions (paper §3 and §7.1):
//   total utility  = realized user value - cost of implemented optimizations
//   user utility   = realized value - payment
//   cloud balance  = payments - cost of implemented optimizations
// A negative cloud balance means the cloud lost money (the mechanisms in
// core/ never allow this; the Regret baseline can).
#pragma once

#include <vector>

#include "core/add_off.h"
#include "core/add_on.h"
#include "core/game.h"
#include "core/mechanism.h"
#include "core/subst_off.h"
#include "core/subst_on.h"

namespace optshare {

/// Value/payment/cost ledger of one mechanism outcome.
struct Accounting {
  std::vector<double> user_value;    ///< Realized true value per user.
  std::vector<double> user_payment;  ///< Payment per user.
  double total_cost = 0.0;           ///< Cost of implemented optimizations.

  double TotalValue() const;
  double TotalPayment() const;
  /// Total social utility: value minus cost (paper Eq. 3 objective).
  double TotalUtility() const { return TotalValue() - total_cost; }
  /// Provider's balance: payments minus cost (negative = cloud loss).
  double CloudBalance() const { return TotalPayment() - total_cost; }
  /// One user's utility U_i = V_i - P_i.
  double UserUtility(UserId i) const {
    return user_value[static_cast<size_t>(i)] -
           user_payment[static_cast<size_t>(i)];
  }
  /// True iff payments cover the implemented cost (within tolerance).
  bool CostRecovered() const;
};

/// Offline additive: realized value of user i is the sum of her true values
/// over optimizations she was granted. `truth` supplies true values; its
/// shape must match the game the mechanism ran on.
Accounting AccountAddOff(const AdditiveOfflineGame& truth,
                         const AddOffResult& outcome);

/// Online additive, single optimization: user i realizes her true value at
/// every slot where the outcome lists her as actively serviced.
Accounting AccountAddOn(const AdditiveOnlineGame& truth,
                        const AddOnResult& outcome);

/// Online additive, several optimizations: sums the per-optimization ledgers.
Accounting AccountAddOnAll(const MultiAdditiveOnlineGame& truth,
                           const std::vector<AddOnResult>& outcomes);

/// Offline substitutable: user i realizes v_i iff she was granted an
/// optimization that belongs to her *true* substitute set.
Accounting AccountSubstOff(const SubstOfflineGame& truth,
                           const SubstOffResult& outcome);

/// Online substitutable: user i realizes her true per-slot value from her
/// grant slot through her active interval, iff the granted optimization is
/// in her true substitute set.
Accounting AccountSubstOn(const SubstOnlineGame& truth,
                          const SubstOnResult& outcome);

/// Uniform accounting over the engine's MechanismResult, for any game kind:
/// offline value accrues from the per-opt serviced coalitions, online value
/// from the per-slot active coalitions, substitutable value only when the
/// grant lies in the user's *true* substitute set. For the paper mechanisms
/// this agrees exactly with the per-mechanism functions above; it also
/// covers the baselines' adapters, so experiments compare every mechanism
/// through one ledger.
Accounting AccountResult(const GameView& truth,
                         const MechanismResult& outcome);

}  // namespace optshare
