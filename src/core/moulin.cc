#include "core/moulin.h"

#include <cassert>
#include <cmath>

#include "common/money.h"

namespace optshare {

std::vector<double> EgalitarianSharing::Shares(
    const std::vector<bool>& members) const {
  int count = 0;
  for (bool m : members) count += m ? 1 : 0;
  assert(count > 0);
  std::vector<double> shares(members.size(), 0.0);
  const double share = cost_ / static_cast<double>(count);
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i]) shares[i] = share;
  }
  return shares;
}

Result<WeightedSharing> WeightedSharing::Make(double cost,
                                              std::vector<double> weights) {
  if (!(cost > 0.0)) {
    return Status::InvalidArgument("service cost must be positive");
  }
  if (weights.empty()) {
    return Status::InvalidArgument("need at least one weight");
  }
  for (double w : weights) {
    if (!(w > 0.0) || std::isinf(w) || std::isnan(w)) {
      return Status::InvalidArgument("weights must be positive and finite");
    }
  }
  return WeightedSharing(cost, std::move(weights));
}

std::vector<double> WeightedSharing::Shares(
    const std::vector<bool>& members) const {
  assert(members.size() == weights_.size());
  double total_weight = 0.0;
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i]) total_weight += weights_[i];
  }
  assert(total_weight > 0.0);
  std::vector<double> shares(members.size(), 0.0);
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i]) shares[i] = cost_ * weights_[i] / total_weight;
  }
  return shares;
}

ShapleyResult RunMoulin(const CostSharingMethod& method,
                        const std::vector<double>& bids) {
  // Egalitarian sharing is exactly Mechanism 1, whose eviction fixed point
  // the engine computes by sorted prefix scan — this is the single shared
  // path for RunShapley and the egalitarian Moulin case (previously two
  // copies of the same dense loop). Arbitrary sharing methods have no
  // sortable eviction order, so they keep the generic dense loop below.
  if (dynamic_cast<const EgalitarianSharing*>(&method) != nullptr &&
      method.cost() > 0.0) {
    return RunShapley(method.cost(), bids);
  }

  const size_t m = bids.size();
  ShapleyResult result;
  result.serviced.assign(m, true);
  result.payments.assign(m, 0.0);

  size_t remaining = m;
  bool changed = true;
  std::vector<double> shares;
  while (remaining > 0 && changed) {
    ++result.iterations;
    shares = method.Shares(result.serviced);
    changed = false;
    for (size_t i = 0; i < m; ++i) {
      if (!result.serviced[i]) continue;
      if (!MoneyGe(bids[i], shares[i])) {
        result.serviced[i] = false;
        --remaining;
        changed = true;
      }
    }
  }

  if (remaining == 0) {
    result.serviced.assign(m, false);
    return result;
  }

  result.implemented = true;
  shares = method.Shares(result.serviced);
  double max_share = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if (result.serviced[i]) {
      result.payments[i] = shares[i];
      max_share = std::max(max_share, shares[i]);
    }
  }
  // For unequal sharing methods cost_share reports the largest member
  // share (for the egalitarian method this is the common share).
  result.cost_share = max_share;
  return result;
}

bool IsCrossMonotonic(const CostSharingMethod& method, int num_users,
                      double tolerance) {
  assert(num_users > 0 && num_users <= 16);
  const int full = 1 << num_users;
  for (int mask = 1; mask < full; ++mask) {
    std::vector<bool> members(static_cast<size_t>(num_users));
    int count = 0;
    for (int i = 0; i < num_users; ++i) {
      members[static_cast<size_t>(i)] = (mask >> i) & 1;
      count += (mask >> i) & 1;
    }
    if (count < 2) continue;
    const std::vector<double> base = method.Shares(members);
    // Remove each member in turn; remaining members' shares must not drop.
    for (int removed = 0; removed < num_users; ++removed) {
      if (!members[static_cast<size_t>(removed)]) continue;
      std::vector<bool> smaller = members;
      smaller[static_cast<size_t>(removed)] = false;
      const std::vector<double> after = method.Shares(smaller);
      for (int i = 0; i < num_users; ++i) {
        if (i == removed || !members[static_cast<size_t>(i)]) continue;
        if (after[static_cast<size_t>(i)] <
            base[static_cast<size_t>(i)] - tolerance) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace optshare
