#include "core/game.h"

#include <cmath>
#include <unordered_set>

namespace optshare {

Status ValidateCosts(const std::vector<double>& costs) {
  for (double c : costs) {
    if (std::isnan(c) || std::isinf(c) || c <= 0.0) {
      return Status::InvalidArgument(
          "optimization costs must be finite and positive");
    }
  }
  return Status::OK();
}

Status ValidateSubstituteSet(const std::vector<OptId>& substitutes,
                             int num_opts) {
  if (substitutes.empty()) {
    return Status::InvalidArgument("substitute set J_i must be non-empty");
  }
  std::unordered_set<OptId> seen;
  for (OptId j : substitutes) {
    if (j < 0 || j >= num_opts) {
      return Status::OutOfRange("substitute optimization id out of range");
    }
    if (!seen.insert(j).second) {
      return Status::InvalidArgument("substitute set contains duplicates");
    }
  }
  return Status::OK();
}

namespace {

Status ValidateBidValue(double b) {
  if (std::isnan(b) || std::isinf(b) || b < 0.0) {
    return Status::InvalidArgument("bids must be finite and non-negative");
  }
  return Status::OK();
}

Status ValidateStreamWithin(const SlotValues& sv, int num_slots) {
  OPTSHARE_RETURN_NOT_OK(sv.Validate());
  if (sv.end > num_slots) {
    return Status::OutOfRange("user interval extends past the game horizon");
  }
  return Status::OK();
}

}  // namespace

Status AdditiveOfflineGame::Validate() const {
  OPTSHARE_RETURN_NOT_OK(ValidateCosts(costs));
  for (const auto& row : bids) {
    if (row.size() != costs.size()) {
      return Status::InvalidArgument(
          "bid matrix must be rectangular with one column per optimization");
    }
    for (double b : row) OPTSHARE_RETURN_NOT_OK(ValidateBidValue(b));
  }
  return Status::OK();
}

Status AdditiveOnlineGame::Validate() const {
  if (num_slots < 1) {
    return Status::InvalidArgument("game must have at least one slot");
  }
  OPTSHARE_RETURN_NOT_OK(ValidateCosts({cost}));
  for (const auto& u : users) {
    OPTSHARE_RETURN_NOT_OK(ValidateStreamWithin(u, num_slots));
  }
  return Status::OK();
}

Status MultiAdditiveOnlineGame::Validate() const {
  if (num_slots < 1) {
    return Status::InvalidArgument("game must have at least one slot");
  }
  OPTSHARE_RETURN_NOT_OK(ValidateCosts(costs));
  for (const auto& row : bids) {
    if (row.size() != costs.size()) {
      return Status::InvalidArgument(
          "bid matrix must be rectangular with one column per optimization");
    }
    for (const auto& sv : row) {
      OPTSHARE_RETURN_NOT_OK(ValidateStreamWithin(sv, num_slots));
    }
  }
  return Status::OK();
}

AdditiveOnlineGame MultiAdditiveOnlineGame::ProjectOpt(OptId j) const {
  AdditiveOnlineGame g;
  g.num_slots = num_slots;
  g.cost = costs[static_cast<size_t>(j)];
  g.users.reserve(bids.size());
  for (const auto& row : bids) g.users.push_back(row[static_cast<size_t>(j)]);
  return g;
}

Status SubstOfflineGame::Validate() const {
  OPTSHARE_RETURN_NOT_OK(ValidateCosts(costs));
  for (const auto& u : users) {
    OPTSHARE_RETURN_NOT_OK(ValidateSubstituteSet(u.substitutes, num_opts()));
    OPTSHARE_RETURN_NOT_OK(ValidateBidValue(u.value));
  }
  return Status::OK();
}

Status SubstOnlineGame::Validate() const {
  if (num_slots < 1) {
    return Status::InvalidArgument("game must have at least one slot");
  }
  OPTSHARE_RETURN_NOT_OK(ValidateCosts(costs));
  for (const auto& u : users) {
    OPTSHARE_RETURN_NOT_OK(ValidateStreamWithin(u.stream, num_slots));
    OPTSHARE_RETURN_NOT_OK(ValidateSubstituteSet(u.substitutes, num_opts()));
  }
  return Status::OK();
}

}  // namespace optshare
