// Arrival processes for simulated users (paper §7.3, §7.5): uniform over
// the horizon, early-clustered (exponential), or late-clustered (reflected
// exponential). Early arrivals model datasets that go stale; late arrivals
// model datasets that become popular.
#pragma once

#include "common/rng.h"
#include "core/types.h"

namespace optshare {

enum class ArrivalProcess {
  kUniform,  ///< s_i ~ U{1..z}.
  kEarly,    ///< s_i = 1 + floor(x), x ~ Exp(mean), clipped to [1, z].
  kLate,     ///< s_i = z - floor(x), x ~ Exp(mean), clipped to [1, z].
};

/// Parameters of the skewed arrival distributions (paper §7.5 uses
/// mean 1.28 for early and 1.2 for late).
struct ArrivalParams {
  double early_mean = 1.28;
  double late_mean = 1.2;
};

/// Samples one arrival slot in [1, num_slots].
TimeSlot SampleArrival(Rng& rng, ArrivalProcess process, int num_slots,
                       const ArrivalParams& params = {});

/// Short name for logs/tables ("uniform", "early", "late").
const char* ArrivalProcessName(ArrivalProcess process);

}  // namespace optshare
