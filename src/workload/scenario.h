// Scenario descriptions and seeded game generators for the simulated
// experiments of §7.3-§7.6. A scenario captures everything except the
// optimization cost, which the experiment harness sweeps along the x axis.
#pragma once

#include "common/rng.h"
#include "common/status.h"
#include "core/game.h"
#include "workload/arrival.h"

namespace optshare {

/// Simulated additive scenario (one optimization; §7.3.1, §7.4, §7.5).
/// Each user draws a total value ~ U[value_lo, value_hi), an arrival slot
/// from the arrival process, and spreads her value evenly over `duration`
/// consecutive slots (clipped at the horizon; §7.4).
struct AdditiveScenario {
  int num_users = 6;
  int num_slots = 12;
  int duration = 1;
  ArrivalProcess arrival = ArrivalProcess::kUniform;
  ArrivalParams arrival_params;
  double value_lo = 0.0;
  double value_hi = 1.0;

  Status Validate() const;
};

/// Draws one additive online game (true values) for the given cost.
AdditiveOnlineGame MakeAdditiveGame(const AdditiveScenario& scenario,
                                    double cost, Rng& rng);

/// Simulated substitutable scenario (§7.3.2, §7.6). Each user draws a value
/// ~ U[value_lo, value_hi), one arrival slot, and `substitutes_per_user`
/// distinct optimizations uniformly at random. Optimization costs are drawn
/// per game from U[0, 2 * mean_cost) — "not all substitutes are equally
/// expensive" — clamped away from zero to keep costs positive.
struct SubstScenario {
  int num_users = 6;
  int num_slots = 12;
  int num_opts = 12;
  int substitutes_per_user = 3;
  int duration = 1;
  ArrivalProcess arrival = ArrivalProcess::kUniform;
  ArrivalParams arrival_params;
  double value_lo = 0.0;
  double value_hi = 1.0;

  /// Selectivity as defined in §7.6: substitutes per user / total opts.
  double Selectivity() const {
    return static_cast<double>(substitutes_per_user) /
           static_cast<double>(num_opts);
  }

  Status Validate() const;
};

/// Draws one substitutable online game (true values) for the given mean
/// optimization cost.
SubstOnlineGame MakeSubstGame(const SubstScenario& scenario, double mean_cost,
                              Rng& rng);

/// Builds the per-slot value stream of one simulated user: total value
/// `value` spread evenly over `duration` slots starting at `start`, clipped
/// to the horizon.
SlotValues SpreadValue(TimeSlot start, int duration, int num_slots,
                       double value);

}  // namespace optshare
