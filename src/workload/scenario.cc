#include "workload/scenario.h"

#include <algorithm>
#include <cassert>

namespace optshare {

Status AdditiveScenario::Validate() const {
  if (num_users < 1) return Status::InvalidArgument("need at least one user");
  if (num_slots < 1) return Status::InvalidArgument("need at least one slot");
  if (duration < 1 || duration > num_slots) {
    return Status::InvalidArgument("duration must be in [1, num_slots]");
  }
  if (!(value_lo >= 0.0) || !(value_hi > value_lo)) {
    return Status::InvalidArgument("value range must satisfy 0 <= lo < hi");
  }
  return Status::OK();
}

Status SubstScenario::Validate() const {
  if (num_users < 1) return Status::InvalidArgument("need at least one user");
  if (num_slots < 1) return Status::InvalidArgument("need at least one slot");
  if (num_opts < 1) {
    return Status::InvalidArgument("need at least one optimization");
  }
  if (substitutes_per_user < 1 || substitutes_per_user > num_opts) {
    return Status::InvalidArgument(
        "substitutes per user must be in [1, num_opts]");
  }
  if (duration < 1 || duration > num_slots) {
    return Status::InvalidArgument("duration must be in [1, num_slots]");
  }
  if (!(value_lo >= 0.0) || !(value_hi > value_lo)) {
    return Status::InvalidArgument("value range must satisfy 0 <= lo < hi");
  }
  return Status::OK();
}

SlotValues SpreadValue(TimeSlot start, int duration, int num_slots,
                       double value) {
  assert(start >= 1 && start <= num_slots);
  const TimeSlot end = std::min<TimeSlot>(start + duration - 1, num_slots);
  const int len = end - start + 1;
  return SlotValues::Constant(start, end,
                              value / static_cast<double>(len));
}

AdditiveOnlineGame MakeAdditiveGame(const AdditiveScenario& scenario,
                                    double cost, Rng& rng) {
  assert(scenario.Validate().ok());
  assert(cost > 0.0);
  AdditiveOnlineGame game;
  game.num_slots = scenario.num_slots;
  game.cost = cost;
  game.users.reserve(static_cast<size_t>(scenario.num_users));
  for (int i = 0; i < scenario.num_users; ++i) {
    TimeSlot s = SampleArrival(rng, scenario.arrival, scenario.num_slots,
                               scenario.arrival_params);
    // Clamp the arrival so the full duration fits the horizon (§7.4's
    // multi-slot bids always span d slots; see DESIGN.md §5).
    s = std::min<TimeSlot>(s, scenario.num_slots - scenario.duration + 1);
    const double value = rng.Uniform(scenario.value_lo, scenario.value_hi);
    game.users.push_back(
        SpreadValue(s, scenario.duration, scenario.num_slots, value));
  }
  return game;
}

SubstOnlineGame MakeSubstGame(const SubstScenario& scenario, double mean_cost,
                              Rng& rng) {
  assert(scenario.Validate().ok());
  assert(mean_cost > 0.0);
  SubstOnlineGame game;
  game.num_slots = scenario.num_slots;
  game.costs.reserve(static_cast<size_t>(scenario.num_opts));
  for (int j = 0; j < scenario.num_opts; ++j) {
    // U[0, 2c) has mean c; clamp away from zero (costs must be positive).
    game.costs.push_back(std::max(rng.Uniform(0.0, 2.0 * mean_cost), 1e-12));
  }
  game.users.reserve(static_cast<size_t>(scenario.num_users));
  for (int i = 0; i < scenario.num_users; ++i) {
    SubstOnlineUser user;
    const TimeSlot s = SampleArrival(rng, scenario.arrival, scenario.num_slots,
                                     scenario.arrival_params);
    const double value = rng.Uniform(scenario.value_lo, scenario.value_hi);
    user.stream = SpreadValue(s, scenario.duration, scenario.num_slots, value);
    std::vector<int> picks = rng.SampleWithoutReplacement(
        scenario.num_opts, scenario.substitutes_per_user);
    std::sort(picks.begin(), picks.end());
    user.substitutes.assign(picks.begin(), picks.end());
    game.users.push_back(std::move(user));
  }
  return game;
}

}  // namespace optshare
