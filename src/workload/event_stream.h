// Event-stream form of the simulated workloads: the arrival processes of
// workload/arrival.h drive *event generators* instead of materialized
// games. A generator draws the same seeded population MakeAdditiveGame /
// MakeSubstGame would draw (identical Rng consumption, so equal seeds give
// equal populations) and emits it as a SlotEventLog — each user announced
// and declared at her arrival slot — ready to feed an OnlineMechanism, the
// CLI `replay` subcommand, or the streaming benchmarks.
#pragma once

#include "core/online_mechanism.h"
#include "workload/scenario.h"

namespace optshare {

/// The event-stream equivalent of MakeAdditiveGame(scenario, cost, rng):
/// one optimization at `cost`, users declaring their value streams at
/// their sampled arrival slots. Materializing the log reproduces the game
/// bit-for-bit.
SlotEventLog MakeAdditiveEventLog(const AdditiveScenario& scenario,
                                  double cost, Rng& rng);

/// The event-stream equivalent of MakeSubstGame(scenario, mean_cost, rng).
SlotEventLog MakeSubstEventLog(const SubstScenario& scenario,
                               double mean_cost, Rng& rng);

}  // namespace optshare
