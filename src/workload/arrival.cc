#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

namespace optshare {

TimeSlot SampleArrival(Rng& rng, ArrivalProcess process, int num_slots,
                       const ArrivalParams& params) {
  switch (process) {
    case ArrivalProcess::kUniform:
      return static_cast<TimeSlot>(rng.UniformInt(1, num_slots));
    case ArrivalProcess::kEarly: {
      const TimeSlot s =
          1 + static_cast<TimeSlot>(std::floor(rng.Exponential(params.early_mean)));
      return std::clamp(s, 1, num_slots);
    }
    case ArrivalProcess::kLate: {
      const TimeSlot s =
          num_slots -
          static_cast<TimeSlot>(std::floor(rng.Exponential(params.late_mean)));
      return std::clamp(s, 1, num_slots);
    }
  }
  return 1;
}

const char* ArrivalProcessName(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniform:
      return "uniform";
    case ArrivalProcess::kEarly:
      return "early";
    case ArrivalProcess::kLate:
      return "late";
  }
  return "?";
}

}  // namespace optshare
