#include "workload/event_stream.h"

namespace optshare {

SlotEventLog MakeAdditiveEventLog(const AdditiveScenario& scenario,
                                  double cost, Rng& rng) {
  return EventLogFromGame(MakeAdditiveGame(scenario, cost, rng));
}

SlotEventLog MakeSubstEventLog(const SubstScenario& scenario,
                               double mean_cost, Rng& rng) {
  return EventLogFromGame(MakeSubstGame(scenario, mean_cost, rng));
}

}  // namespace optshare
