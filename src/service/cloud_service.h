// CloudService: the integration layer a provider would deploy. Ties the
// substrates together across billing periods:
//
//   per period:  observe tenant workloads  ->  advisor proposes candidate
//   optimizations  ->  AddOn prices them over the period's slots  ->
//   structures are built, tenants charged, ledger updated.
//
// Structures built in an earlier period persist; their re-purchase price in
// later periods is maintenance-only (a configurable fraction of the build
// cost), implementing §5's "cost is recomputed and all interested users
// must purchase it again".
//
// This is the embedded single-tenant adapter. A provider serving many
// tenancies concurrently fronts these periods with MarketplaceServer
// (service/marketplace_server.h), which keeps one catalog + built-set +
// session sequence per tenancy and exposes them over the wire protocol.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/accounting.h"
#include "simdb/advisor.h"
#include "simdb/scenarios.h"

namespace optshare::service {

/// Per-tenancy admission control (protocol v3): a token bucket drained by
/// the tenancy's mutating ops. The default (rate 0) is unlimited, so
/// pre-v3 configs and journals behave exactly as before.
struct AdmissionConfig {
  /// Sustained mutating-op budget, in ops/sec. <= 0 = unlimited.
  double mutating_ops_per_sec = 0.0;
  /// Bucket capacity (instantaneous burst). <= 0 = same as the rate.
  double burst = 0.0;

  bool unlimited() const { return mutating_ops_per_sec <= 0.0; }
  bool operator==(const AdmissionConfig& other) const {
    return mutating_ops_per_sec == other.mutating_ops_per_sec &&
           burst == other.burst;
  }
};

/// Configuration of the service.
struct ServiceConfig {
  int slots_per_period = 12;
  /// Fraction of the full cost charged for keeping an already-built
  /// structure alive another period.
  double maintenance_fraction = 0.25;
  /// Registry name of the pricing mechanism driving each period ("addon" —
  /// the paper's choice and the natively streaming one — or any other
  /// registered mechanism: online baselines run buffered, offline
  /// mechanisms price the period's totals at close). Resolved via
  /// ResolveOnlineMechanism (core/online_mechanism.h).
  std::string mechanism = "addon";
  simdb::AdvisorOptions advisor;
  simdb::PricingParams pricing;
  /// Admission quota for this tenancy (serialized in the wire config only
  /// when non-default, so pre-v3 documents stay byte-identical).
  AdmissionConfig admission;

  /// Structural validity: slots_per_period > 0, maintenance_fraction in
  /// [0, 1], non-empty mechanism name. Checked by the CloudService and
  /// PricingSession constructors.
  Status Validate() const;
};

/// What happened to one optimization in one period.
struct StructureOutcome {
  /// One tenant the structure actually serviced: roster id plus the first
  /// slot she was serviced in (service runs through her effective end).
  /// The strategy harness (strategy/harness.h) rebuilds each tenant's
  /// *realized* value from these windows — declared ledger values are
  /// useless against a misreporting tenant.
  struct ServicedEntry {
    UserId tenant = 0;
    TimeSlot from_slot = 0;
  };

  std::string name;          ///< DisplayName of the structure.
  double cost = 0.0;         ///< Price charged this period (build or maint.).
  bool active = false;       ///< Funded and available this period.
  bool carried_over = false; ///< Was already built in an earlier period.
  int num_candidates = 0;    ///< Advisor beneficiaries: users with positive
                             ///< declared savings (subscribers is a subset).
  int num_subscribers = 0;   ///< Users serviced.
  std::vector<ServicedEntry> serviced;  ///< Sorted by tenant id.
};

/// One period's report.
struct PeriodReport {
  int period = 0;
  std::vector<StructureOutcome> structures;
  Accounting ledger;

  int ActiveStructures() const;
};

/// The running service. Since the streaming redesign this is a thin
/// batch-compatibility adapter: each RunPeriod opens a PricingSession
/// (service/pricing_session.h), submits the full tenant vector, advances
/// every slot, and folds the closed report into the cross-period state.
/// Results are bit-identical to the historical batch implementation.
/// Callers that want mid-period tenant arrivals drive PricingSession
/// directly.
class CloudService {
 public:
  /// The catalog describes the shared datasets; tenants may change between
  /// periods (see RunPeriod). An invalid `config` (ServiceConfig::Validate)
  /// is reported by the first RunPeriod.
  CloudService(simdb::Catalog catalog, ServiceConfig config = {});

  /// Executes one billing period for the given tenant set: advisor,
  /// pricing mechanism, ledger. Tenant intervals are interpreted within
  /// the period's slots.
  Result<PeriodReport> RunPeriod(const std::vector<simdb::SimUser>& tenants);

  /// The catalog the service serves (PricingSession borrows it).
  const simdb::Catalog& catalog() const { return catalog_; }

  /// Structures currently built (carried across periods).
  const std::vector<std::string>& built_structures() const {
    return built_names_;
  }
  /// Cumulative provider balance across all periods. Never negative under
  /// the default cost-recovering mechanism ("addon"); baselines like
  /// "regret" can drive it below zero.
  double cumulative_balance() const { return cumulative_balance_; }
  /// Cumulative total (social) utility.
  double cumulative_utility() const { return cumulative_utility_; }
  int periods_run() const { return periods_run_; }

 private:
  simdb::Catalog catalog_;
  ServiceConfig config_;
  Status config_status_;
  std::vector<std::string> built_names_;
  double cumulative_balance_ = 0.0;
  double cumulative_utility_ = 0.0;
  int periods_run_ = 0;
};

}  // namespace optshare::service
