// StateStore: the durability contract behind MarketplaceServer. Tenancy
// lifecycle and every state-mutating wire request flow through two
// primitives:
//
//   Append(tenancy, record)      — journal one wire request line (WAL: the
//                                  server appends before executing)
//   Checkpoint(tenancy, snap)    — atomically replace the tenancy's
//                                  snapshot and truncate its journal
//
// so a tenancy's persistent state is always `snapshot + journal tail`, and
// recovery is a differential replay: load the snapshot (catalog, config,
// built-set, period counters, cumulative ledger), then re-execute the
// journaled requests through the exact dispatch path that produced them
// (protocol round-trips are bit-identical, so the replayed state is too).
//
// Two backends:
//  - MemoryStateStore: keeps snapshot + journal in memory. The default —
//    observable server behavior is exactly the pre-durability one, but a
//    second server sharing the store instance can still Recover() from it
//    (the in-process recovery tests run on this).
//  - FileStateStore: one directory per tenancy under a data dir,
//
//      <data-dir>/<encoded-tenancy>/snapshot.json      (atomic replace)
//      <data-dir>/<encoded-tenancy>/journal-<E>.jsonl  (append-only)
//
//    where <E> is the journal epoch named by the snapshot: a checkpoint
//    first publishes the new snapshot naming epoch E+1 (write-temp, fsync,
//    rename, fsync dir), then deletes the epoch-E journal. A crash between
//    the two steps leaves both the old journal and the new snapshot on
//    disk, and the epoch makes the stale journal unambiguous — recovery
//    reads only the journal the snapshot names, so a re-applied period can
//    never double-count. fsync policy: journals are fsync'd at Checkpoint
//    and Sync (i.e. on close_period and shutdown), not on every Append.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "service/cloud_service.h"
#include "simdb/schema.h"

namespace optshare::service {

/// Everything MarketplaceServer checkpoints per tenancy: the period-boundary
/// state that, together with the journal tail, reconstructs the tenancy.
struct TenancySnapshot {
  std::string name;
  std::vector<simdb::TableDef> tables;  ///< The catalog, materialized.
  ServiceConfig config;
  std::vector<std::string> built;       ///< Carried structures.
  int periods_run = 0;
  double cumulative_balance = 0.0;
  double cumulative_utility = 0.0;
};

/// Round-trips bit-identically (common/json number formatting), like every
/// other wire schema; recovery depends on it.
JsonValue ToJson(const TenancySnapshot& snapshot);
Result<TenancySnapshot> TenancySnapshotFromJson(const JsonValue& v);

/// One tenancy's persistent state as loaded from a store.
struct PersistedTenancy {
  std::string name;
  /// Latest checkpoint; absent for a journal-only tenancy (never closed a
  /// period or was snapshotted).
  std::optional<JsonValue> snapshot;
  /// Journal tail: the wire request lines appended since the snapshot, in
  /// append order.
  std::vector<std::string> journal;
  /// True when the journal ended in a torn (partially written) record that
  /// was dropped.
  bool torn_tail = false;
};

/// Cumulative operation counters, surfaced through server_info.
struct StateStoreStats {
  uint64_t appends = 0;
  uint64_t checkpoints = 0;
  uint64_t syncs = 0;
};

class StateStore {
 public:
  virtual ~StateStore() = default;

  /// Backend tag: "memory" or "file".
  virtual std::string_view kind() const = 0;

  /// Appends one journal record for `tenancy`. Called on the tenancy's
  /// shard; implementations must tolerate concurrent calls for distinct
  /// tenancies.
  virtual Status Append(const std::string& tenancy,
                        const std::string& record) = 0;

  /// Atomically replaces `tenancy`'s snapshot with `snapshot` and truncates
  /// its journal. Durable on return for the file backend.
  virtual Status Checkpoint(const std::string& tenancy,
                            const JsonValue& snapshot) = 0;

  /// Flushes `tenancy`'s journal to durable media without checkpointing
  /// (the shutdown path for tenancies with an open period).
  virtual Status Sync(const std::string& tenancy) = 0;

  /// Erases every trace of `tenancy`. Destructive by design — an
  /// operator/administrative primitive, deliberately NOT called by the
  /// server's failed-open rollback (the store may hold history this
  /// process never loaded). Ok when nothing was stored.
  virtual Status Remove(const std::string& tenancy) = 0;

  /// Loads every persisted tenancy (sorted by name): latest snapshot plus
  /// journal tail.
  virtual Result<std::vector<PersistedTenancy>> Load() = 0;

  /// Loads one tenancy, or nullopt when nothing is stored for it. The
  /// default implementation scans Load(); backends may override with a
  /// targeted read.
  virtual Result<std::optional<PersistedTenancy>> LoadTenancy(
      const std::string& tenancy);

  /// The store that replication-sourced writes (repl_append /
  /// repl_checkpoint / repl_sync) must target. A plain store returns
  /// itself; the cluster's ReplicatedStateStore decorator returns its
  /// wrapped base so replica-applied records are never re-streamed —
  /// without this, a two-node cluster would bounce every record A→B→A
  /// forever.
  virtual StateStore* ReplicationBase() { return this; }

  /// Replication health for server_info, when this store replicates
  /// (nullopt for plain stores).
  virtual std::optional<JsonValue> ReplicationInfo() const {
    return std::nullopt;
  }

  /// Operation counters since construction.
  virtual StateStoreStats stats() const = 0;
};

/// The default in-memory backend: same observable server behavior as no
/// persistence, but Load() works within the process.
class MemoryStateStore : public StateStore {
 public:
  std::string_view kind() const override { return "memory"; }
  Status Append(const std::string& tenancy,
                const std::string& record) override;
  Status Checkpoint(const std::string& tenancy,
                    const JsonValue& snapshot) override;
  Status Sync(const std::string& tenancy) override;
  Status Remove(const std::string& tenancy) override;
  Result<std::vector<PersistedTenancy>> Load() override;
  StateStoreStats stats() const override;

 private:
  struct Entry {
    std::optional<JsonValue> snapshot;
    std::vector<std::string> journal;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  StateStoreStats stats_;
};

/// The durable backend (see the file-layout comment at the top).
class FileStateStore : public StateStore {
 public:
  /// Creates the data dir if needed; fails if it cannot be created.
  static Result<std::unique_ptr<FileStateStore>> Open(std::string data_dir);

  ~FileStateStore() override;

  std::string_view kind() const override { return "file"; }
  const std::string& data_dir() const { return dir_; }

  Status Append(const std::string& tenancy,
                const std::string& record) override;
  Status Checkpoint(const std::string& tenancy,
                    const JsonValue& snapshot) override;
  Status Sync(const std::string& tenancy) override;
  Status Remove(const std::string& tenancy) override;
  Result<std::vector<PersistedTenancy>> Load() override;
  StateStoreStats stats() const override;

 private:
  /// Open-file state for one tenancy. The journal fd stays open across
  /// appends; `epoch` names the journal file the current snapshot points
  /// past (journal-<epoch>.jsonl holds post-snapshot records).
  struct Tenant {
    std::mutex mu;        ///< Serializes file ops for this tenancy.
    int64_t epoch = 0;
    int journal_fd = -1;  ///< Lazily opened append fd; -1 = closed.
  };

  explicit FileStateStore(std::string data_dir);

  std::string TenancyDir(const std::string& tenancy) const;
  /// Finds or creates the per-tenancy entry, discovering the on-disk epoch
  /// on first touch. Returned pointer is stable (map of unique_ptrs).
  Result<Tenant*> Ensure(const std::string& tenancy);

  std::string dir_;
  mutable std::mutex mu_;  ///< Guards tenants_ (the map, not its values).
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  // Atomic so counting never nests under a per-tenancy file lock.
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace optshare::service
