// PricingSession: the slot-incremental form of the provider's billing
// period. Where the legacy batch API (CloudService::RunPeriod) demanded the
// full tenant vector up front, a session ingests tenant events as they
// happen and prices slot by slot:
//
//   auto session = PricingSession::Open(&catalog, config);
//   session->Submit(tenants);      // any time before a tenant's first slot
//   session->AdvanceSlot();        // advisor integrates new tenants, then
//   ...                            //   every structure prices one slot
//   session->Submit(late_tenant);  // mid-period arrival (start > elapsed)
//   session->AdvanceSlot();
//   ...
//   PeriodReport report = session->Close();   // ledger + outcomes
//
// The advisor runs lazily at the first AdvanceSlot after submissions: new
// structure candidates begin pricing at the current slot, and tenants who
// arrive after a structure was proposed are admitted into its game with
// their residual value streams. Per-structure pricing is driven through the
// streaming mechanism surface (core/online_mechanism.h) — natively
// slot-incremental for "addon", buffered for the baselines — and the
// ledger accrues as slots run for native mechanisms.
//
// Batch compatibility: submitting every tenant before the first
// AdvanceSlot reproduces CloudService::RunPeriod bit-identically (payments,
// ledger, built-structure set) under the default "addon" mechanism; see
// tests/service_session_test.cc.
//
// A session is single-threaded by design: one billing period for one
// caller. The multi-tenant front end is service/marketplace_server.h,
// which runs one session per tenancy period on a sharded worker pool and
// drives it through the wire protocol; this class stays the embedded
// single-tenant surface underneath it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/online_mechanism.h"
#include "service/cloud_service.h"
#include "simdb/advisor.h"

namespace optshare::service {

/// One streaming billing period.
class PricingSession {
 public:
  /// Opens a period. `catalog` must outlive the session. `built` lists
  /// structure names carried over from earlier periods (maintenance-only
  /// pricing); `period` is the report's period number. Validates `config`
  /// and resolves its mechanism (baselines included).
  static Result<PricingSession> Open(const simdb::Catalog* catalog,
                                     ServiceConfig config,
                                     std::vector<std::string> built = {},
                                     int period = 1);

  PricingSession(PricingSession&&) = default;
  PricingSession& operator=(PricingSession&&) = default;

  /// Registers a tenant. Her interval must lie within the period and start
  /// after the slots already advanced (no retroactive arrivals). Returns
  /// her roster id.
  Result<UserId> Submit(const simdb::SimUser& tenant);
  /// Registers a batch of tenants (stops at the first rejection).
  Status Submit(const std::vector<simdb::SimUser>& tenants);

  /// Early departure: the tenant stays through the upcoming slot and is
  /// gone afterwards (structures she subscribed to charge her then).
  Status Depart(UserId tenant);

  /// Advances one slot: integrates pending submissions through the advisor,
  /// then prices the slot in every structure's game.
  Status AdvanceSlot();

  /// Closes the period after all slots have been advanced; returns the
  /// period report (per-structure outcomes + ledger over the roster).
  Result<PeriodReport> Close();

  int slots_advanced() const { return current_; }
  int slots_per_period() const { return config_.slots_per_period; }
  int num_tenants() const { return static_cast<int>(roster_.size()); }
  bool closed() const { return closed_; }
  int num_structures() const { return static_cast<int>(states_.size()); }

  /// Valid after Close: names of structures built/renewed this period.
  const std::vector<std::string>& built_structures() const {
    return built_after_;
  }

 private:
  /// One structure candidate being priced over the period.
  struct ProposalState {
    simdb::OptimizationSpec spec;
    std::string name;
    double price = 0.0;          ///< Charged cost (build or maintenance).
    bool carried_over = false;
    int num_candidates = 0;      ///< Tenants with positive declared savings.
    std::unique_ptr<OnlineMechanism> mech;
    bool native = false;
    std::vector<SlotEvent> pending;   ///< Events for the next OnSlot.
    // Declared per-tenant truth (roster-indexed): per-slot rate over
    // [vstart, vend]; rate 0 = no value declared.
    std::vector<double> rate;
    std::vector<TimeSlot> vstart;
    std::vector<TimeSlot> vend;
    // Incremental ledger (native mechanisms; buffered ones catch up at
    // Close from the final result).
    std::vector<double> value_acc;
    std::vector<UserId> serviced;
    /// Roster-indexed first slot each tenant was serviced in (0 = never);
    /// surfaces as StructureOutcome::serviced at Close.
    std::vector<TimeSlot> first_served;
  };

  PricingSession(const simdb::Catalog* catalog, ServiceConfig config,
                 std::vector<std::string> built, int period);

  /// Runs the advisor over the roster and folds new tenants/structures in.
  Status IntegratePending();
  /// Declares tenant `i` into `state` with the given period savings.
  void DeclareTenant(ProposalState& state, UserId i, double savings);
  /// Per-slot ledger accrual from a native slot report.
  void AccrueSlot(ProposalState& state, TimeSlot slot,
                  const OnlineSlotReport& report);
  /// Close-time ledger accrual for buffered mechanisms.
  void AccrueFromResult(ProposalState& state, const MechanismResult& result);

  const simdb::Catalog* catalog_;
  ServiceConfig config_;
  std::vector<std::string> built_before_;
  int period_;
  simdb::CostModel model_;
  simdb::PricingModel pricing_;

  std::vector<simdb::SimUser> roster_;
  std::vector<TimeSlot> eff_end_;      ///< Roster-indexed effective ends.
  size_t integrated_ = 0;              ///< Roster prefix seen by the advisor.
  std::vector<ProposalState> states_;
  TimeSlot current_ = 0;
  bool closed_ = false;
  /// First mid-period failure. A failed AdvanceSlot can leave structures
  /// unevenly advanced, so the session turns into a sticky error instead
  /// of pretending a retry could resynchronize the period.
  Status broken_;
  std::vector<std::string> built_after_;
};

}  // namespace optshare::service
