#include "service/state_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/fs.h"
#include "common/logging.h"
#include "service/protocol.h"

namespace optshare::service {
namespace {

constexpr char kSnapshotFile[] = "snapshot.json";

std::string JournalFile(int64_t epoch) {
  return "journal-" + std::to_string(epoch) + ".jsonl";
}

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " " + path + ": " + std::strerror(errno));
}

/// A snapshot file, unwrapped: the journal epoch it names and the inner
/// state document. Shared by Ensure (epoch discovery) and Load.
struct SnapshotFile {
  int64_t epoch = 0;
  JsonValue state;
};

Result<SnapshotFile> ReadSnapshotFile(const std::string& path) {
  Result<std::string> contents = fs::ReadFile(path);
  if (!contents.ok()) return contents.status();
  Result<JsonValue> doc = JsonValue::Parse(*contents);
  if (!doc.ok()) {
    return Status::Internal("corrupt snapshot " + path + ": " +
                            doc.status().message());
  }
  Result<int64_t> epoch = JsonIntField(*doc, "journal_epoch", "snapshot");
  if (!epoch.ok()) return epoch.status();
  const JsonValue* state = doc->Find("state");
  if (state == nullptr) {
    return Status::Internal("corrupt snapshot " + path +
                            ": missing \"state\"");
  }
  SnapshotFile snapshot;
  snapshot.epoch = *epoch;
  snapshot.state = *state;
  return snapshot;
}

/// Splits journal file contents into complete records. A final segment
/// without its trailing newline is a torn append (crash mid-write) and is
/// dropped, reported through `torn`.
std::vector<std::string> SplitJournal(const std::string& contents,
                                      bool* torn) {
  std::vector<std::string> records;
  size_t start = 0;
  while (start < contents.size()) {
    const size_t newline = contents.find('\n', start);
    if (newline == std::string::npos) {
      *torn = true;
      break;
    }
    if (newline > start) {
      records.push_back(contents.substr(start, newline - start));
    }
    start = newline + 1;
  }
  return records;
}

}  // namespace

Result<std::optional<PersistedTenancy>> StateStore::LoadTenancy(
    const std::string& tenancy) {
  Result<std::vector<PersistedTenancy>> all = Load();
  if (!all.ok()) return all.status();
  for (PersistedTenancy& persisted : *all) {
    if (persisted.name == tenancy) {
      return std::optional<PersistedTenancy>(std::move(persisted));
    }
  }
  return std::optional<PersistedTenancy>(std::nullopt);
}

// -- Snapshot schema --------------------------------------------------------

JsonValue ToJson(const TenancySnapshot& snapshot) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue::Str(snapshot.name));
  JsonValue tables = JsonValue::MakeArray();
  for (const simdb::TableDef& table : snapshot.tables) {
    tables.Append(protocol::ToJson(table));
  }
  obj.Set("tables", std::move(tables));
  obj.Set("config", protocol::ToJson(snapshot.config));
  JsonValue built = JsonValue::MakeArray();
  for (const std::string& name : snapshot.built) {
    built.Append(JsonValue::Str(name));
  }
  obj.Set("built", std::move(built));
  obj.Set("periods_run", JsonValue::Number(snapshot.periods_run));
  obj.Set("cumulative_balance", JsonValue::Number(snapshot.cumulative_balance));
  obj.Set("cumulative_utility", JsonValue::Number(snapshot.cumulative_utility));
  return obj;
}

Result<TenancySnapshot> TenancySnapshotFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("snapshot must be an object");
  }
  for (const auto& [key, value] : v.AsObject()) {
    (void)value;
    if (key != "name" && key != "tables" && key != "config" &&
        key != "built" && key != "periods_run" &&
        key != "cumulative_balance" && key != "cumulative_utility") {
      return Status::InvalidArgument("snapshot: unknown field \"" + key +
                                     "\"");
    }
  }
  TenancySnapshot snapshot;
  Result<std::string> name = JsonStringField(v, "name", "snapshot");
  if (!name.ok()) return name.status();
  snapshot.name = std::move(*name);
  const JsonValue* tables = v.Find("tables");
  if (tables == nullptr || !tables->is_array()) {
    return Status::InvalidArgument(
        "snapshot: field \"tables\" must be an array");
  }
  for (const JsonValue& table_v : tables->AsArray()) {
    Result<simdb::TableDef> table = protocol::TableDefFromJson(table_v);
    if (!table.ok()) return table.status();
    snapshot.tables.push_back(std::move(*table));
  }
  const JsonValue* config = v.Find("config");
  if (config == nullptr) {
    return Status::InvalidArgument("snapshot: missing \"config\"");
  }
  Result<ServiceConfig> parsed_config =
      protocol::ServiceConfigFromJson(*config);
  if (!parsed_config.ok()) return parsed_config.status();
  snapshot.config = std::move(*parsed_config);
  const JsonValue* built = v.Find("built");
  if (built == nullptr || !built->is_array()) {
    return Status::InvalidArgument(
        "snapshot: field \"built\" must be an array");
  }
  for (const JsonValue& name_v : built->AsArray()) {
    if (!name_v.is_string()) {
      return Status::InvalidArgument(
          "snapshot: \"built\" entries must be strings");
    }
    snapshot.built.push_back(name_v.AsString());
  }
  Result<int64_t> periods = JsonIntField(v, "periods_run", "snapshot");
  if (!periods.ok()) return periods.status();
  snapshot.periods_run = static_cast<int>(*periods);
  Result<double> balance =
      JsonNumberField(v, "cumulative_balance", "snapshot");
  if (!balance.ok()) return balance.status();
  snapshot.cumulative_balance = *balance;
  Result<double> utility =
      JsonNumberField(v, "cumulative_utility", "snapshot");
  if (!utility.ok()) return utility.status();
  snapshot.cumulative_utility = *utility;
  return snapshot;
}

// -- MemoryStateStore -------------------------------------------------------

Status MemoryStateStore::Append(const std::string& tenancy,
                                const std::string& record) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[tenancy].journal.push_back(record);
  ++stats_.appends;
  return Status::OK();
}

Status MemoryStateStore::Checkpoint(const std::string& tenancy,
                                    const JsonValue& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[tenancy];
  entry.snapshot = snapshot;
  entry.journal.clear();
  ++stats_.checkpoints;
  return Status::OK();
}

Status MemoryStateStore::Sync(const std::string& tenancy) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)tenancy;
  ++stats_.syncs;
  return Status::OK();
}

Status MemoryStateStore::Remove(const std::string& tenancy) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(tenancy);
  return Status::OK();
}

Result<std::vector<PersistedTenancy>> MemoryStateStore::Load() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PersistedTenancy> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    PersistedTenancy persisted;
    persisted.name = name;
    persisted.snapshot = entry.snapshot;
    persisted.journal = entry.journal;
    out.push_back(std::move(persisted));
  }
  return out;  // std::map iterates sorted by name.
}

StateStoreStats MemoryStateStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// -- FileStateStore ---------------------------------------------------------

FileStateStore::FileStateStore(std::string data_dir)
    : dir_(std::move(data_dir)) {}

Result<std::unique_ptr<FileStateStore>> FileStateStore::Open(
    std::string data_dir) {
  OPTSHARE_RETURN_NOT_OK(fs::EnsureDir(data_dir));
  return std::unique_ptr<FileStateStore>(
      new FileStateStore(std::move(data_dir)));
}

FileStateStore::~FileStateStore() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, tenant] : tenants_) {
    std::lock_guard<std::mutex> tenant_lock(tenant->mu);
    if (tenant->journal_fd >= 0) {
      ::close(tenant->journal_fd);
      tenant->journal_fd = -1;
    }
  }
}

std::string FileStateStore::TenancyDir(const std::string& tenancy) const {
  return dir_ + "/" + fs::EncodePathComponent(tenancy);
}

Result<FileStateStore::Tenant*> FileStateStore::Ensure(
    const std::string& tenancy) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenancy);
    if (it != tenants_.end()) return it->second.get();
  }
  // First touch: discover the on-disk epoch outside the map lock (file IO),
  // then race-insert.
  const std::string dir = TenancyDir(tenancy);
  OPTSHARE_RETURN_NOT_OK(fs::EnsureDir(dir));
  int64_t epoch = 0;
  const std::string snapshot_path = dir + "/" + kSnapshotFile;
  if (fs::PathExists(snapshot_path)) {
    Result<SnapshotFile> snapshot = ReadSnapshotFile(snapshot_path);
    if (!snapshot.ok()) return snapshot.status();
    epoch = snapshot->epoch;
  }
  // Repair a torn tail (crash mid-append) BEFORE the first new append:
  // recovery drops the newline-less partial record, so leaving it in place
  // would glue it onto the next record and corrupt everything after it on
  // the following recovery.
  const std::string journal_path = dir + "/" + JournalFile(epoch);
  if (fs::PathExists(journal_path)) {
    Result<std::string> contents = fs::ReadFile(journal_path);
    if (!contents.ok()) return contents.status();
    if (!contents->empty() && contents->back() != '\n') {
      const size_t last_newline = contents->find_last_of('\n');
      const off_t keep = last_newline == std::string::npos
                             ? 0
                             : static_cast<off_t>(last_newline) + 1;
      if (::truncate(journal_path.c_str(), keep) != 0) {
        return ErrnoStatus("truncate", journal_path);
      }
    }
  }
  auto fresh = std::make_unique<Tenant>();
  fresh->epoch = epoch;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.emplace(tenancy, std::move(fresh));
  (void)inserted;
  return it->second.get();
}

Status FileStateStore::Append(const std::string& tenancy,
                              const std::string& record) {
  Result<Tenant*> tenant = Ensure(tenancy);
  if (!tenant.ok()) return tenant.status();
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if ((*tenant)->journal_fd < 0) {
    const std::string path =
        TenancyDir(tenancy) + "/" + JournalFile((*tenant)->epoch);
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    (*tenant)->journal_fd = fd;
  }
  std::string line = record;
  line.push_back('\n');
  OPTSHARE_RETURN_NOT_OK(
      fs::WriteAllFd((*tenant)->journal_fd, line, TenancyDir(tenancy)));
  appends_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileStateStore::Checkpoint(const std::string& tenancy,
                                  const JsonValue& snapshot) {
  Result<Tenant*> tenant = Ensure(tenancy);
  if (!tenant.ok()) return tenant.status();
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  const std::string dir = TenancyDir(tenancy);
  // Publish the new snapshot first: it names the next journal epoch, so a
  // crash before the old journal is deleted leaves an unambiguous state
  // (the stale epoch is simply never read back).
  JsonValue wrapper = JsonValue::MakeObject();
  wrapper.Set("journal_epoch",
              JsonValue::Number(static_cast<double>((*tenant)->epoch + 1)));
  wrapper.Set("state", snapshot);
  bool published = false;
  Status wrote = fs::WriteFileAtomic(dir + "/" + kSnapshotFile,
                                     wrapper.Dump(), /*sync=*/true,
                                     &published);
  if (!wrote.ok() && !published) {
    // Nothing visible changed: the old snapshot + full journal still
    // replay to the current state, so the caller may keep serving.
    return wrote;
  }
  if (!wrote.ok()) {
    // The rename took effect but its directory fsync failed: readers see
    // the new snapshot, so the bookkeeping below must proceed as if the
    // checkpoint succeeded — only its durability against an OS crash is
    // degraded (equivalent to crashing just before the checkpoint).
    OPTSHARE_LOG(Warning) << "checkpoint of \"" << tenancy
                          << "\" published but not fsync-durable: "
                          << wrote.ToString();
  }
  if ((*tenant)->journal_fd >= 0) {
    ::close((*tenant)->journal_fd);
    (*tenant)->journal_fd = -1;
  }
  // The snapshot is published and names epoch+1, so the in-memory epoch
  // MUST advance with it no matter what: appends that kept writing the
  // old epoch would never be read back. A failed delete merely leaves a
  // stale journal behind — the documented, harmless crash state that
  // recovery already ignores.
  const std::string stale = dir + "/" + JournalFile((*tenant)->epoch);
  ++(*tenant)->epoch;
  Status removed = fs::RemoveFile(stale);
  if (!removed.ok()) {
    OPTSHARE_LOG(Warning) << "checkpoint of \"" << tenancy
                          << "\": stale journal not deleted (ignored on "
                          << "recovery): " << removed.ToString();
  }
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileStateStore::Sync(const std::string& tenancy) {
  Result<Tenant*> tenant = Ensure(tenancy);
  if (!tenant.ok()) return tenant.status();
  std::lock_guard<std::mutex> lock((*tenant)->mu);
  if ((*tenant)->journal_fd >= 0 && ::fsync((*tenant)->journal_fd) != 0) {
    return ErrnoStatus("fsync", TenancyDir(tenancy));
  }
  // The journal file's creation must be durable too.
  OPTSHARE_RETURN_NOT_OK(fs::SyncDir(TenancyDir(tenancy)));
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileStateStore::Remove(const std::string& tenancy) {
  // Take the entry out of the map first; per-tenancy calls are serialized
  // by the server (one shard), so nobody else holds its mutex. Destroying
  // it inside a lock on its own mutex would free locked memory.
  std::unique_ptr<Tenant> removed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenancy);
    if (it != tenants_.end()) {
      removed = std::move(it->second);
      tenants_.erase(it);
    }
  }
  if (removed != nullptr && removed->journal_fd >= 0) {
    ::close(removed->journal_fd);
    removed->journal_fd = -1;
  }
  return fs::RemoveAll(TenancyDir(tenancy));
}

Result<std::vector<PersistedTenancy>> FileStateStore::Load() {
  Result<std::vector<std::string>> entries = fs::ListDir(dir_);
  if (!entries.ok()) return entries.status();
  std::vector<PersistedTenancy> out;
  for (const std::string& entry : *entries) {
    const std::string dir = dir_ + "/" + entry;
    Result<std::string> name = fs::DecodePathComponent(entry);
    if (!name.ok()) {
      return Status::Internal("unrecognized entry \"" + entry +
                              "\" in state dir " + dir_);
    }
    PersistedTenancy persisted;
    persisted.name = std::move(*name);
    int64_t epoch = 0;
    const std::string snapshot_path = dir + "/" + kSnapshotFile;
    if (fs::PathExists(snapshot_path)) {
      Result<SnapshotFile> snapshot = ReadSnapshotFile(snapshot_path);
      if (!snapshot.ok()) return snapshot.status();
      epoch = snapshot->epoch;
      persisted.snapshot = std::move(snapshot->state);
    }
    const std::string journal_path = dir + "/" + JournalFile(epoch);
    if (fs::PathExists(journal_path)) {
      Result<std::string> contents = fs::ReadFile(journal_path);
      if (!contents.ok()) return contents.status();
      persisted.journal = SplitJournal(*contents, &persisted.torn_tail);
    }
    if (persisted.snapshot || !persisted.journal.empty()) {
      out.push_back(std::move(persisted));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PersistedTenancy& a, const PersistedTenancy& b) {
              return a.name < b.name;
            });
  return out;
}

StateStoreStats FileStateStore::stats() const {
  StateStoreStats stats;
  stats.appends = appends_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  stats.syncs = syncs_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace optshare::service
