#include "service/marketplace_server.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>
#include <utility>

#include "analytics/columnar.h"
#include "baseline/baseline_mechanisms.h"
#include "common/logging.h"
#include "core/mechanism.h"
#include "simdb/advisor.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::ErrorResponse;
using protocol::OkResponse;
using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

/// Builds a catalog from a wire CatalogSpec: a canned scenario by name
/// (its tenants are discarded — the wire submits tenants explicitly) or
/// inline table definitions.
Result<simdb::Catalog> BuildCatalog(const protocol::CatalogSpec& spec) {
  if (!spec.scenario.empty()) {
    Result<simdb::Scenario> scenario =
        spec.scenario == "clickstream"
            ? simdb::ClickstreamScenario(spec.scenario_tenants,
                                         spec.scenario_slots)
        : spec.scenario == "retail"
            ? simdb::RetailScenario(spec.scenario_tenants, spec.scenario_slots)
        : spec.scenario == "telemetry"
            ? simdb::TelemetryScenario(spec.scenario_tenants,
                                       spec.scenario_slots)
            : Result<simdb::Scenario>(Status::NotFound(
                  "unknown scenario \"" + spec.scenario +
                  "\" (clickstream, retail, telemetry)"));
    if (!scenario.ok()) return scenario.status();
    return std::move(scenario->catalog);
  }
  simdb::Catalog catalog;
  for (const simdb::TableDef& table : spec.tables) {
    OPTSHARE_RETURN_NOT_OK(catalog.AddTable(table));
  }
  return catalog;
}

/// True for the ops that mutate tenancy state and therefore must be
/// journaled before execution.
bool OpMutatesTenancy(RequestOp op) {
  switch (op) {
    case RequestOp::kOpenPeriod:
    case RequestOp::kSubmit:
    case RequestOp::kDepart:
    case RequestOp::kAdvanceSlot:
    case RequestOp::kClosePeriod:
      return true;
    default:
      return false;
  }
}

/// True when a batch member is safe to cover with one atomic group journal
/// record: plain session mutations (WAL-then-execute, no checkpoint or
/// journal truncation) and side-effect-free reads (harmless to re-execute
/// during replay). open/close_period, restore, snapshot, repl_*, evict and
/// export stay on the per-member WAL path — they truncate journals, touch
/// the store out of band, or (export) write files a replay must not redo.
bool BatchMemberAtomicWalSafe(RequestOp op) {
  switch (op) {
    case RequestOp::kSubmit:
    case RequestOp::kDepart:
    case RequestOp::kAdvanceSlot:
    case RequestOp::kReport:
    case RequestOp::kQueryPrice:
    case RequestOp::kListMechanisms:
    case RequestOp::kServerInfo:
      return true;
    default:
      return false;
  }
}

}  // namespace

JsonValue ToJson(const RecoveryStats& stats) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("tenancies_recovered", JsonValue::Number(stats.tenancies_recovered));
  obj.Set("tenancies_skipped", JsonValue::Number(stats.tenancies_skipped));
  obj.Set("snapshots_loaded", JsonValue::Number(stats.snapshots_loaded));
  obj.Set("journal_records_replayed",
          JsonValue::Number(stats.journal_records_replayed));
  obj.Set("journal_records_failed",
          JsonValue::Number(stats.journal_records_failed));
  obj.Set("journal_torn", JsonValue::Number(stats.journal_torn));
  return obj;
}

MarketplaceServer::MarketplaceServer(ServerOptions options)
    : store_(options.store ? std::move(options.store)
                           : std::make_shared<MemoryStateStore>()),
      max_request_bytes_(options.max_request_bytes),
      export_dir_(std::move(options.export_dir)),
      enable_read_path_(options.enable_read_path),
      admission_(options.admission),
      max_batch_request_bytes_(options.max_batch_request_bytes),
      pool_(options.num_workers) {
  // Resolve every registry-touching race up front: baselines register once,
  // before the first concurrent Create on a shard.
  RegisterBaselineMechanisms();
}

MarketplaceServer::~MarketplaceServer() { Drain(); }

size_t MarketplaceServer::ShardOf(const std::string& tenancy) const {
  return std::hash<std::string>{}(tenancy);
}

MarketplaceServer::Tenancy* MarketplaceServer::FindTenancy(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenancies_.find(name);
  return it == tenancies_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MarketplaceServer::TenancyNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(tenancies_.size());
    for (const auto& [name, tenancy] : tenancies_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

TenancySnapshot MarketplaceServer::BoundaryOf(const Tenancy& tenancy) const {
  TenancySnapshot snapshot;
  snapshot.name = tenancy.name;
  snapshot.tables = tenancy.catalog.tables();
  snapshot.config = tenancy.config;
  snapshot.built = tenancy.built;
  snapshot.periods_run = tenancy.periods_run;
  snapshot.cumulative_balance = tenancy.cumulative_balance;
  snapshot.cumulative_utility = tenancy.cumulative_utility;
  return snapshot;
}

JsonValue MarketplaceServer::SnapshotOf(const Tenancy& tenancy) const {
  return ToJson(BoundaryOf(tenancy));
}

analytics::ReadDelta MarketplaceServer::DeltaOf(const Tenancy& tenancy) const {
  analytics::ReadDelta delta;
  if (tenancy.session.has_value()) {
    delta.period_open = true;
    delta.current_slot = tenancy.session->slots_advanced();
    delta.num_tenants = tenancy.session->num_tenants();
  }
  return delta;
}

Status MarketplaceServer::CreateTenancy(const std::string& name,
                                        simdb::Catalog catalog,
                                        ServiceConfig config) {
  if (name.empty()) {
    return Status::InvalidArgument("tenancy name must be non-empty");
  }
  OPTSHARE_RETURN_NOT_OK(config.Validate());
  // Run on the tenancy's shard so creation serializes with wire traffic
  // already queued under the same name.
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> done = promise->get_future();
  pool_.Post(ShardOf(name), [this, name, catalog = std::move(catalog),
                             config = std::move(config), promise]() mutable {
    try {
      if (FindTenancy(name) != nullptr) {
        promise->set_value(
            Status::AlreadyExists("tenancy \"" + name + "\" already exists"));
        return;
      }
      auto tenancy = std::make_unique<Tenancy>();
      tenancy->name = name;
      tenancy->catalog = std::move(catalog);
      tenancy->config = std::move(config);
      Tenancy* created = tenancy.get();
      {
        std::lock_guard<std::mutex> lock(mu_);
        tenancies_.emplace(name, std::move(tenancy));
      }
      // Persist the creation so an embedded tenancy (no wire bootstrap
      // record to replay) survives a restart.
      Status persisted = store_->Checkpoint(name, SnapshotOf(*created));
      if (!persisted.ok()) {
        OPTSHARE_LOG(Warning) << "tenancy \"" << name
                              << "\" creation not persisted: "
                              << persisted.ToString();
      }
      read_registry_.PublishView(name, BoundaryOf(*created), nullptr);
      promise->set_value(Status::OK());
    } catch (const std::exception& e) {
      promise->set_value(Status::Internal(e.what()));
    }
  });
  return done.get();
}

std::future<Response> MarketplaceServer::Dispatch(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> response = promise->get_future();
  DispatchCallback(std::move(request), [promise](Response resolved) {
    promise->set_value(std::move(resolved));
  });
  return response;
}

void MarketplaceServer::DispatchCallback(
    Request request, std::function<void(Response)> done,
    const std::string* raw_line) {
  // v3 batch frames fan out per tenancy group; everything else takes the
  // single-request path below.
  if (request.op == RequestOp::kBatch) {
    DispatchBatch(std::move(request), std::move(done), raw_line);
    return;
  }
  // The HTAP read path: answer snapshot-servable ops right here, on the
  // caller's thread, from the published ReadView — a read never queues
  // behind the tenancy's write FIFO, so read latency is independent of
  // write-queue depth. `done` firing synchronously is within contract
  // (Dispatch's promise and both transports handle inline completion).
  // Ordering note: a client that AWAITS its write ack reads its own write
  // (deltas publish before the ack); a pipelined, unacknowledged write may
  // not be visible to an immediately following read.
  if (enable_read_path_) {
    const auto read_start = std::chrono::steady_clock::now();
    Response served;
    if (TryServeRead(request, &served)) {
      op_latency_[static_cast<size_t>(request.op)].Record(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - read_start)
                  .count()));
      served.version = request.version;
      done(std::move(served));
      return;
    }
  }
  // Admission (protocol v3): mutating ops draw from the tenancy's token
  // bucket before they queue — a quota breach answers here, typed, with a
  // retry hint, instead of occupying the shared shard pool. Reads are
  // never throttled, and neither is journal replay (it calls Execute
  // directly).
  if (OpMutatesTenancy(request.op)) {
    const TokenBucket::Decision decision = admission_.Admit(request.tenancy,
                                                            /*cost=*/1.0);
    if (!decision.admitted) {
      Response rejected = ErrorResponse(
          request.id,
          Status::ResourceExhausted("tenancy \"" + request.tenancy +
                                    "\" is over its mutating-op quota"));
      rejected.retry_after_ms = decision.retry_after_ms;
      rejected.version = request.version;
      done(std::move(rejected));
      return;
    }
  }
  // list_mechanisms and the global v2 ops shard on the empty name: cheap,
  // and ordering against tenancy traffic is irrelevant for them.
  // The shard key must be taken before the Post call: its arguments are
  // indeterminately sequenced, and the lambda's init-capture moves
  // `request` out from under an inline ShardOf(request.tenancy).
  const size_t shard = ShardOf(request.tenancy);
  pool_.Post(shard, [this, request = std::move(request),
                     done = std::move(done)]() mutable {
               // One request's failure must stay one request's failure: an
               // exception out of Execute (e.g. bad_alloc on a huge
               // payload) becomes this response's Internal error instead
               // of tearing down the worker. `done` runs outside the catch
               // so it can never fire twice.
               Response response;
               try {
                 response = Execute(request, /*persist=*/true);
               } catch (const std::exception& e) {
                 response =
                     ErrorResponse(request.id, Status::Internal(e.what()));
                 response.version = request.version;
               } catch (...) {
                 response = ErrorResponse(
                     request.id,
                     Status::Internal("unexpected exception while serving"));
                 response.version = request.version;
               }
               done(std::move(response));
             });
}

void MarketplaceServer::DispatchBatch(Request request,
                                      std::function<void(Response)> done,
                                      const std::string* raw_line) {
  op_counts_[static_cast<size_t>(RequestOp::kBatch)].fetch_add(
      1, std::memory_order_relaxed);
  // Group members by tenancy, preserving submission order inside each
  // group. One group = one pool task on the tenancy's shard. (Parse-time
  // validation already rejected nested batches, shutdown members, and
  // empty batches.)
  struct Group {
    std::vector<size_t> members;  // Indices into request.requests.
    double mutating_cost = 0.0;
    /// Every member qualifies for the one-record atomic WAL scheme.
    bool atomic_wal = true;
    /// The group's single journal record (empty = nothing to journal, or
    /// atomic_wal is false and members journal individually in Execute).
    std::string wal_record;
  };
  std::vector<std::string> order;
  std::unordered_map<std::string, Group> groups;
  for (size_t i = 0; i < request.requests.size(); ++i) {
    const Request& member = request.requests[i];
    auto [it, inserted] = groups.try_emplace(member.tenancy);
    if (inserted) order.push_back(member.tenancy);
    it->second.members.push_back(i);
    if (OpMutatesTenancy(member.op)) it->second.mutating_cost += 1.0;
    it->second.atomic_wal =
        it->second.atomic_wal && BatchMemberAtomicWalSafe(member.op);
  }
  // Atomic WAL records (see DispatchBatch's declaration): one record per
  // qualifying mutating group, appended on the shard before any member
  // executes. A single-tenancy batch journals the raw frame verbatim —
  // zero re-serialization on the hot path; a multi-tenancy batch rebuilds
  // one sub-batch record per group. Replay parses the record as a batch
  // request and re-executes the members in order (Execute's kBatch case).
  for (auto& [tenancy, group] : groups) {
    if (!group.atomic_wal || group.mutating_cost <= 0.0) continue;
    if (raw_line != nullptr && order.size() == 1) {
      group.wal_record = *raw_line;
    } else {
      JsonValue members = JsonValue::MakeArray();
      members.Reserve(group.members.size());
      for (size_t index : group.members) {
        members.Append(protocol::ToJson(request.requests[index]));
      }
      JsonValue record = JsonValue::MakeObject();
      record.Set("v", JsonValue::Number(protocol::kProtocolVersion));
      record.Set("op", JsonValue::Str("batch"));
      record.Set("requests", std::move(members));
      group.wal_record = record.Dump();
    }
  }

  // Shared assembly state: each group fills its members' slots (disjoint
  // indices, so only `remaining` needs the mutex for publication), and the
  // last group to finish emits the ordered response batch.
  struct BatchState {
    std::mutex mu;
    /// Wire path (`raw_line` != nullptr): each member's serialized
    /// response document, spliced into the batch's raw_payload at the end
    /// — no per-member JsonValue trees. Typed path: member trees.
    std::vector<std::string> docs_raw;
    std::vector<JsonValue> docs;
    bool wire = false;
    size_t remaining = 0;
    std::string id;
    int version = protocol::kProtocolVersion;
    std::function<void(Response)> done;
  };
  auto state = std::make_shared<BatchState>();
  state->wire = raw_line != nullptr;
  if (state->wire) {
    state->docs_raw.resize(request.requests.size());
  } else {
    state->docs.resize(request.requests.size());
  }
  state->remaining = order.size();
  state->id = request.id;
  state->version = request.version;
  state->done = std::move(done);
  auto shared = std::make_shared<Request>(std::move(request));

  for (const std::string& tenancy : order) {
    Group& group = groups[tenancy];
    // One admission draw covers the whole group: either every mutating
    // member is paid for, or the whole group answers the breach — a batch
    // never lands half its mutations in the journal because of a quota.
    const TokenBucket::Decision decision =
        admission_.Admit(tenancy, group.mutating_cost);
    const size_t shard = ShardOf(tenancy);
    pool_.Post(shard, [this, state, shared, group = std::move(group),
                       decision]() mutable {
      // The atomic group record lands before any member executes, on the
      // tenancy's own shard — ordered against every other record of this
      // tenancy. If the append fails, no member runs: a batch never lands
      // half its mutations in the journal.
      Status journaled = Status::OK();
      bool member_persist = !group.atomic_wal;
      if (decision.admitted && group.atomic_wal && !group.wal_record.empty()) {
        const std::string& name = shared->requests[group.members.front()].tenancy;
        if (FindTenancy(name) == nullptr) {
          // Unknown tenancy: skip the group record (the members will fail
          // their own lookups without journaling anything, same as the
          // single-request path — no stray journal for a name that never
          // existed).
          member_persist = true;
        } else {
          journaled = store_->Append(name, group.wal_record);
          if (journaled.ok()) {
            Tenancy* tenancy = FindTenancy(name);
            ++tenancy->unsynced_appends;
            unsynced_total_.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      for (size_t index : group.members) {
        const Request& member = shared->requests[index];
        Response response;
        if (!decision.admitted) {
          response = ErrorResponse(
              member.id,
              Status::ResourceExhausted("tenancy \"" + member.tenancy +
                                        "\" is over its mutating-op quota"));
          response.retry_after_ms = decision.retry_after_ms;
          response.version = member.version;
        } else if (!journaled.ok()) {
          response = ErrorResponse(member.id, journaled);
          response.version = member.version;
        } else {
          // Same containment contract as the single-request path: one
          // member's exception is that member's Internal error.
          try {
            response = Execute(member, /*persist=*/member_persist,
                               /*count_metrics=*/true);
          } catch (const std::exception& e) {
            response = ErrorResponse(member.id, Status::Internal(e.what()));
            response.version = member.version;
          } catch (...) {
            response = ErrorResponse(
                member.id,
                Status::Internal("unexpected exception while serving"));
            response.version = member.version;
          }
        }
        if (state->wire) {
          // AppendResponseLine mirrors ToJson(response).Dump()
          // byte-for-byte, so the spliced member document is identical to
          // the tree the typed path would have built.
          protocol::AppendResponseLine(response, &state->docs_raw[index]);
        } else {
          state->docs[index] = protocol::ToJson(response);
        }
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        last = --state->remaining == 0;
      }
      if (!last) return;
      Response batch;
      batch.id = state->id;
      batch.version = state->version;
      if (state->wire) {
        size_t bytes = 16;
        for (const std::string& doc : state->docs_raw) bytes += doc.size() + 1;
        std::string& raw = batch.raw_payload;
        raw.reserve(bytes);
        raw.append("{\"responses\":[");
        for (size_t i = 0; i < state->docs_raw.size(); ++i) {
          if (i > 0) raw.push_back(',');
          raw.append(state->docs_raw[i]);
        }
        raw.append("]}");
      } else {
        JsonValue responses = JsonValue::MakeArray();
        responses.Reserve(state->docs.size());
        for (JsonValue& doc : state->docs) responses.Append(std::move(doc));
        JsonValue payload = JsonValue::MakeObject();
        payload.Set("responses", std::move(responses));
        batch.payload = std::move(payload);
      }
      state->done(std::move(batch));
    });
  }
}

Response MarketplaceServer::Handle(Request request) {
  return Dispatch(std::move(request)).get();
}

std::string MarketplaceServer::HandleLine(const std::string& line) {
  // Parse under the batch line cap (the larger budget), but keep every
  // non-batch line answering under the plain cap — byte-identical to the
  // pre-batch server for all old inputs, including over-cap garbage. The
  // re-parse below fails at the size check before touching the bytes.
  Result<Request> request =
      protocol::ParseRequestLine(line, max_batch_request_bytes());
  if (max_request_bytes_ > 0 && line.size() > max_request_bytes_ &&
      !(request.ok() && request->op == RequestOp::kBatch)) {
    request = protocol::ParseRequestLine(line, max_request_bytes_);
  }
  if (!request.ok()) {
    // The client's version is unknowable from an unparseable line; answer
    // with the oldest version so every client generation can read it.
    Response error = ErrorResponse("", request.status());
    error.version = protocol::kMinProtocolVersion;
    return protocol::FormatResponseLine(error);
  }
  if (request->op == RequestOp::kBatch) {
    // Hand the raw frame along so a single-tenancy batch journals it
    // verbatim instead of re-serializing every member.
    auto promise = std::make_shared<std::promise<Response>>();
    std::future<Response> response = promise->get_future();
    DispatchCallback(
        std::move(*request),
        [promise](Response resolved) { promise->set_value(std::move(resolved)); },
        &line);
    return protocol::FormatResponseLine(response.get());
  }
  return protocol::FormatResponseLine(Handle(std::move(*request)));
}

void MarketplaceServer::Drain() { pool_.Drain(); }

Result<RecoveryStats> MarketplaceServer::Recover() {
  return RecoverImpl(std::nullopt);
}

Result<RecoveryStats> MarketplaceServer::RecoverMatching(
    std::function<bool(const std::string&)> want) {
  return RecoverImpl(std::nullopt, want);
}

Result<RecoveryStats> MarketplaceServer::RecoverImpl(
    std::optional<size_t> current_worker,
    const std::function<bool(const std::string&)>& want) {
  Result<std::vector<PersistedTenancy>> loaded = store_->Load();
  if (!loaded.ok()) return loaded.status();

  std::vector<RecoverOutcome> outcomes;
  std::vector<std::future<RecoverOutcome>> posted;
  for (PersistedTenancy& persisted : *loaded) {
    if (want && !want(persisted.name)) continue;
    const size_t worker = pool_.ShardOf(ShardOf(persisted.name));
    if (current_worker.has_value() && worker == *current_worker) {
      // We occupy this tenancy's shard right now, so we ARE its
      // serializer: recover it inline (posting + waiting would deadlock
      // behind ourselves).
      try {
        outcomes.push_back(RecoverTenancy(persisted));
      } catch (const std::exception& e) {
        outcomes.push_back({Status::Internal(e.what()), {}});
      } catch (...) {
        outcomes.push_back(
            {Status::Internal("unexpected exception during recovery"), {}});
      }
      continue;
    }
    auto promise = std::make_shared<std::promise<RecoverOutcome>>();
    posted.push_back(promise->get_future());
    // The shard key must be hoisted before the Post call: its arguments
    // are indeterminately sequenced, and the lambda's init-capture moves
    // `persisted` out from under an inline ShardOf(persisted.name) —
    // which would land the task on ShardOf("") (possibly this very
    // worker, i.e. a self-deadlock for the wire restore op).
    const size_t shard = ShardOf(persisted.name);
    pool_.Post(shard,
               [this, persisted = std::move(persisted), promise]() mutable {
                 // The promise must resolve on EVERY path — an unset
                 // promise would turn future.get() below into a
                 // broken_promise exception out of a Result-returning API.
                 try {
                   promise->set_value(RecoverTenancy(persisted));
                 } catch (const std::exception& e) {
                   promise->set_value(
                       RecoverOutcome{Status::Internal(e.what()), {}});
                 } catch (...) {
                   promise->set_value(RecoverOutcome{
                       Status::Internal("unexpected exception during "
                                        "recovery"),
                       {}});
                 }
               });
  }
  for (std::future<RecoverOutcome>& future : posted) {
    outcomes.push_back(future.get());
  }

  RecoveryStats total;
  Status first_error;
  for (const RecoverOutcome& outcome : outcomes) {
    if (!outcome.status.ok() && first_error.ok()) {
      first_error = outcome.status;
    }
    total.tenancies_recovered += outcome.stats.tenancies_recovered;
    total.tenancies_skipped += outcome.stats.tenancies_skipped;
    total.snapshots_loaded += outcome.stats.snapshots_loaded;
    total.journal_records_replayed += outcome.stats.journal_records_replayed;
    total.journal_records_failed += outcome.stats.journal_records_failed;
    total.journal_torn += outcome.stats.journal_torn;
  }
  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    last_recovery_ = total;
    ++recoveries_run_;
  }
  if (!first_error.ok()) return first_error;
  return total;
}

MarketplaceServer::RecoverOutcome MarketplaceServer::RecoverTenancy(
    const PersistedTenancy& persisted) {
  RecoveryStats stats;
  if (FindTenancy(persisted.name) != nullptr) {
    stats.tenancies_skipped = 1;
    return {Status::OK(), stats};
  }
  if (persisted.snapshot.has_value()) {
    Result<TenancySnapshot> snapshot =
        TenancySnapshotFromJson(*persisted.snapshot);
    if (!snapshot.ok()) {
      return {Status::Internal("tenancy \"" + persisted.name +
                               "\": corrupt snapshot: " +
                               snapshot.status().message()),
              stats};
    }
    auto tenancy = std::make_unique<Tenancy>();
    tenancy->name = persisted.name;
    for (simdb::TableDef& table : snapshot->tables) {
      Status added = tenancy->catalog.AddTable(std::move(table));
      if (!added.ok()) {
        return {Status::Internal("tenancy \"" + persisted.name +
                                 "\": snapshot catalog rejected: " +
                                 added.message()),
                stats};
      }
    }
    tenancy->config = std::move(snapshot->config);
    tenancy->built = std::move(snapshot->built);
    tenancy->periods_run = snapshot->periods_run;
    tenancy->cumulative_balance = snapshot->cumulative_balance;
    tenancy->cumulative_utility = snapshot->cumulative_utility;
    Tenancy* loaded = tenancy.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tenancies_.emplace(persisted.name, std::move(tenancy));
    }
    stats.snapshots_loaded = 1;
    // Reads come back online at the recovered boundary; the journal replay
    // below re-publishes views/deltas through the regular execute path.
    // (The retained report history starts empty — pre-crash periods are
    // summarized by the snapshot.)
    read_registry_.PublishView(persisted.name, BoundaryOf(*loaded), nullptr);
  }
  // Replay the journal tail through the exact dispatch path that produced
  // it; persist=false keeps the on-disk journal untouched (it still
  // represents these very records, so snapshot + journal stays the truth).
  for (const std::string& line : persisted.journal) {
    Result<Request> request = protocol::ParseRequestLine(line);
    if (!request.ok()) {
      // An unparseable record can only be a torn tail; everything after it
      // was never acknowledged, so stop here.
      ++stats.journal_torn;
      break;
    }
    const Response response = Execute(*request, /*persist=*/false);
    ++stats.journal_records_replayed;
    if (!response.ok()) ++stats.journal_records_failed;
  }
  if (persisted.torn_tail) ++stats.journal_torn;
  if (FindTenancy(persisted.name) != nullptr) {
    stats.tenancies_recovered = 1;
  }
  return {Status::OK(), stats};
}

Status MarketplaceServer::Shutdown() {
  shutdown_requested_.store(true);
  pool_.Drain();
  if (shut_down_.exchange(true)) return Status::OK();
  // Post-drain and with dispatching stopped (the caller's contract),
  // nothing touches tenancy state concurrently.
  std::vector<Tenancy*> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    all.reserve(tenancies_.size());
    for (const auto& [name, tenancy] : tenancies_) {
      all.push_back(tenancy.get());
    }
  }
  Status first_error;
  for (Tenancy* tenancy : all) {
    // Period-boundary tenancies checkpoint (snapshot + truncated journal);
    // a tenancy with an open period keeps its journal — fsync'd — so the
    // period replays on the next Recover instead of being forfeited.
    const Status persisted =
        tenancy->session.has_value()
            ? store_->Sync(tenancy->name)
            : store_->Checkpoint(tenancy->name, SnapshotOf(*tenancy));
    if (persisted.ok()) {
      unsynced_total_.fetch_sub(tenancy->unsynced_appends,
                                std::memory_order_relaxed);
      tenancy->unsynced_appends = 0;
    }
    if (!persisted.ok()) {
      OPTSHARE_LOG(Warning) << "shutdown: tenancy \"" << tenancy->name
                            << "\" not fully persisted: "
                            << persisted.ToString();
      if (first_error.ok()) first_error = persisted;
    }
  }
  return first_error;
}

Response MarketplaceServer::Execute(const Request& request, bool persist) {
  // Journal replay (persist=false) re-executes past requests; only live
  // traffic counts toward the per-op request counters and latency
  // histograms. Atomic-batch members are live but already journaled, so
  // DispatchBatch calls the three-arg form with the flags split.
  return Execute(request, persist, /*count_metrics=*/persist);
}

Response MarketplaceServer::Execute(const Request& request, bool persist,
                                    bool count_metrics) {
  const auto start = std::chrono::steady_clock::now();
  if (count_metrics) {
    op_counts_[static_cast<size_t>(request.op)].fetch_add(
        1, std::memory_order_relaxed);
  }
  Response response;
  switch (request.op) {
    case RequestOp::kListMechanisms:
      response = ListMechanisms(request);
      break;
    case RequestOp::kServerInfo:
      response = ExecuteServerInfo(request);
      break;
    case RequestOp::kRestore:
      response = ExecuteRestore(request);
      break;
    case RequestOp::kReplAppend:
      response = ExecuteReplAppend(request);
      break;
    case RequestOp::kReplCheckpoint:
      response = ExecuteReplCheckpoint(request);
      break;
    case RequestOp::kReplSync:
      response = ExecuteReplSync(request);
      break;
    case RequestOp::kTenancyState:
      response = ExecuteTenancyState(request);
      break;
    case RequestOp::kEvict:
      response = ExecuteEvict(request, persist);
      break;
    case RequestOp::kClusterUpdate:
      response = ExecuteClusterUpdate(request);
      break;
    case RequestOp::kQueryPrice:
      response = ExecuteQueryPrice(request);
      break;
    case RequestOp::kExport:
      response = ExecuteExport(request);
      break;
    case RequestOp::kShutdown: {
      shutdown_requested_.store(true);
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("draining", JsonValue::Bool(true));
      response = OkResponse(request.id, std::move(payload));
      break;
    }
    case RequestOp::kOpenPeriod:
      response = ExecuteOpenPeriod(request, persist);
      break;
    case RequestOp::kBatch: {
      // Only journal replay reaches here — live batch frames fan out in
      // DispatchBatch before Execute. Replaying one atomic group record
      // re-executes its members in order, all-or-nothing per tenancy.
      JsonValue docs = JsonValue::MakeArray();
      docs.Reserve(request.requests.size());
      for (const Request& member : request.requests) {
        docs.Append(protocol::ToJson(Execute(member, persist, count_metrics)));
      }
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("responses", std::move(docs));
      response = OkResponse(request.id, std::move(payload));
      break;
    }
    default:
      response = ExecuteTenancyOp(request, persist);
      break;
  }
  // Responses speak the client's protocol version, never a newer one.
  response.version = request.version;
  if (count_metrics) {
    op_latency_[static_cast<size_t>(request.op)].Record(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
  }
  return response;
}

Response MarketplaceServer::ListMechanisms(const Request& request) {
  JsonValue names = JsonValue::MakeArray();
  for (const std::string& name : MechanismRegistry::Global().Names()) {
    names.Append(JsonValue::Str(name));
  }
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("mechanisms", std::move(names));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteServerInfo(const Request& request) {
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("store", JsonValue::Str(std::string(store_->kind())));
  payload.Set("workers", JsonValue::Number(pool_.num_threads()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    payload.Set("tenancies",
                JsonValue::Number(static_cast<double>(tenancies_.size())));
  }
  JsonValue protocol_info = JsonValue::MakeObject();
  protocol_info.Set("min", JsonValue::Number(protocol::kMinProtocolVersion));
  protocol_info.Set("max", JsonValue::Number(protocol::kProtocolVersion));
  payload.Set("protocol", std::move(protocol_info));
  const StateStoreStats store_stats = store_->stats();
  JsonValue store_info = JsonValue::MakeObject();
  store_info.Set("appends",
                 JsonValue::Number(static_cast<double>(store_stats.appends)));
  store_info.Set(
      "checkpoints",
      JsonValue::Number(static_cast<double>(store_stats.checkpoints)));
  store_info.Set("syncs",
                 JsonValue::Number(static_cast<double>(store_stats.syncs)));
  payload.Set("store_stats", std::move(store_info));
  JsonValue ops = JsonValue::MakeObject();
  for (protocol::RequestOp op : protocol::kAllRequestOps) {
    const uint64_t count =
        op_counts_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
    if (count > 0) {
      ops.Set(std::string(protocol::RequestOpName(op)),
              JsonValue::Number(static_cast<double>(count)));
    }
  }
  payload.Set("ops", std::move(ops));
  if (std::optional<JsonValue> replication = store_->ReplicationInfo()) {
    payload.Set("replication", std::move(*replication));
  }
  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    payload.Set("recoveries_run", JsonValue::Number(recoveries_run_));
    payload.Set("recovery", ToJson(last_recovery_));
  }
  JsonValue read_path = read_registry_.InfoJson();
  read_path.Set("enabled", JsonValue::Bool(enable_read_path_));
  read_path.Set("reads_served",
                JsonValue::Number(static_cast<double>(
                    reads_served_.load(std::memory_order_relaxed))));
  read_path.Set("fallbacks",
                JsonValue::Number(static_cast<double>(
                    read_fallbacks_.load(std::memory_order_relaxed))));
  read_path.Set("export_rows_written",
                JsonValue::Number(static_cast<double>(
                    export_rows_written_.load(std::memory_order_relaxed))));
  payload.Set("read_path", std::move(read_path));
  // The scrapeable metrics surface (protocol v3): per-op latency
  // histograms, live shard queue depths, journal fsync lag, admission
  // counters. `optshare_cli metrics` pretty-prints exactly this section.
  JsonValue metrics = JsonValue::MakeObject();
  JsonValue latency = JsonValue::MakeObject();
  for (protocol::RequestOp op : protocol::kAllRequestOps) {
    const LatencyHistogram& histogram = op_latency_[static_cast<size_t>(op)];
    if (histogram.count() > 0) {
      latency.Set(std::string(protocol::RequestOpName(op)),
                  histogram.ToJson());
    }
  }
  metrics.Set("latency_us", std::move(latency));
  JsonValue depths = JsonValue::MakeArray();
  for (size_t depth : pool_.QueueDepths()) {
    depths.Append(JsonValue::Number(static_cast<double>(depth)));
  }
  metrics.Set("shard_queue_depths", std::move(depths));
  JsonValue journal = JsonValue::MakeObject();
  journal.Set("fsync_lag",
              JsonValue::Number(static_cast<double>(
                  unsynced_total_.load(std::memory_order_relaxed))));
  metrics.Set("journal", std::move(journal));
  metrics.Set("admission", admission_.InfoJson());
  payload.Set("metrics", std::move(metrics));
  {
    // Held across the call so SetTransportInfoProvider(nullptr) cannot pull
    // the provider's state out from under an in-flight server_info.
    std::lock_guard<std::mutex> lock(transport_mu_);
    if (transport_info_) payload.Set("transport", transport_info_());
  }
  return OkResponse(request.id, std::move(payload));
}

void MarketplaceServer::SetTransportInfoProvider(
    std::function<JsonValue()> provider) {
  std::lock_guard<std::mutex> lock(transport_mu_);
  transport_info_ = std::move(provider);
}

void MarketplaceServer::SetClusterUpdateHandler(
    std::function<Result<JsonValue>(const JsonValue&)> handler) {
  std::lock_guard<std::mutex> lock(cluster_mu_);
  cluster_update_ = std::move(handler);
}

Response MarketplaceServer::ExecuteRestore(const Request& request) {
  // This runs on the worker the empty-name shard maps to; tenancies
  // hashing there are recovered inline (see RecoverImpl). A tenancy
  // filter (the cluster failover path) restricts the pass to that name,
  // so a router never resurrects tenancies this node merely replicates.
  std::function<bool(const std::string&)> want;
  if (!request.tenancy.empty()) {
    const std::string only = request.tenancy;
    want = [only](const std::string& name) { return name == only; };
  }
  // DispatchCallback sharded this request on ShardOf(request.tenancy)
  // ("" for a full restore), so that is the worker we occupy right now.
  Result<RecoveryStats> stats =
      RecoverImpl(pool_.ShardOf(ShardOf(request.tenancy)), want);
  if (!stats.ok()) return ErrorResponse(request.id, stats.status());
  return OkResponse(request.id, ToJson(*stats));
}

// -- Cluster ops ------------------------------------------------------------
//
// The repl_* ops are the replication target's write surface: they apply
// StateStore primitives with the exact wire bytes the source's store saw,
// so a replica's `snapshot + journal` is byte-identical to the source's
// and failover recovery IS single-node recovery. They write through
// ReplicationBase() — on a replicating node that is the wrapped base
// store, which keeps replica-applied records from being re-streamed
// (A→B→A forever in a two-node ring).

Response MarketplaceServer::ExecuteReplAppend(const Request& request) {
  Status appended =
      store_->ReplicationBase()->Append(request.tenancy, request.record);
  if (!appended.ok()) return ErrorResponse(request.id, appended);
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("appended", JsonValue::Bool(true));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteReplCheckpoint(const Request& request) {
  if (!request.snapshot.has_value()) {
    return ErrorResponse(request.id, Status::InvalidArgument(
                                         "repl_checkpoint needs a snapshot"));
  }
  Status checkpointed =
      store_->ReplicationBase()->Checkpoint(request.tenancy,
                                            *request.snapshot);
  if (!checkpointed.ok()) return ErrorResponse(request.id, checkpointed);
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("checkpointed", JsonValue::Bool(true));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteReplSync(const Request& request) {
  Status synced = store_->ReplicationBase()->Sync(request.tenancy);
  if (!synced.ok()) return ErrorResponse(request.id, synced);
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("synced", JsonValue::Bool(true));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteTenancyState(const Request& request) {
  Result<std::optional<PersistedTenancy>> loaded =
      store_->LoadTenancy(request.tenancy);
  if (!loaded.ok()) return ErrorResponse(request.id, loaded.status());
  if (!loaded->has_value()) {
    return ErrorResponse(request.id,
                         Status::NotFound("no persisted state for tenancy \"" +
                                          request.tenancy + "\""));
  }
  const PersistedTenancy& persisted = **loaded;
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("tenancy", JsonValue::Str(persisted.name));
  if (persisted.snapshot.has_value()) {
    payload.Set("snapshot", *persisted.snapshot);
  }
  JsonValue journal = JsonValue::MakeArray();
  journal.Reserve(persisted.journal.size());
  for (const std::string& line : persisted.journal) {
    journal.Append(JsonValue::Str(line));
  }
  payload.Set("journal", std::move(journal));
  payload.Set("torn_tail", JsonValue::Bool(persisted.torn_tail));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteEvict(const Request& request,
                                         bool persist) {
  Tenancy* tenancy = FindTenancy(request.tenancy);
  if (tenancy == nullptr) {
    // Idempotent: re-running a rebalance whose source already dropped the
    // tenancy must not fail the whole hand-off.
    JsonValue payload = JsonValue::MakeObject();
    payload.Set("evicted", JsonValue::Bool(false));
    return OkResponse(request.id, std::move(payload));
  }
  if (tenancy->session.has_value()) {
    return ErrorResponse(
        request.id,
        Status::FailedPrecondition(
            "tenancy \"" + request.tenancy +
            "\" has an open period; evict works at period boundaries"));
  }
  if (persist) {
    Status checkpointed =
        store_->Checkpoint(tenancy->name, SnapshotOf(*tenancy));
    if (!checkpointed.ok()) return ErrorResponse(request.id, checkpointed);
  }
  const int periods_run = tenancy->periods_run;
  // The live struct (and its share of the fsync-lag gauge) goes away with
  // the erase below.
  unsynced_total_.fetch_sub(tenancy->unsynced_appends,
                            std::memory_order_relaxed);
  {
    // Safe on this shard for the same reason the failed-open rollback is:
    // this worker is the only toucher of the name, and erasing one entry
    // leaves other tenancies' pointers stable. The persisted state stays —
    // evict drops the LIVE tenancy only; the store still holds the
    // checkpoint the rebalance target will import.
    std::lock_guard<std::mutex> lock(mu_);
    tenancies_.erase(request.tenancy);
  }
  // Drop the read state too: a rebalance target owns the reads from here
  // on, and a stale local view must not outlive the hand-off.
  read_registry_.Drop(request.tenancy);
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("evicted", JsonValue::Bool(true));
  payload.Set("periods_run", JsonValue::Number(periods_run));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteClusterUpdate(const Request& request) {
  if (!request.placement.has_value()) {
    return ErrorResponse(request.id, Status::InvalidArgument(
                                         "cluster_update needs a placement"));
  }
  std::lock_guard<std::mutex> lock(cluster_mu_);
  if (!cluster_update_) {
    return ErrorResponse(
        request.id,
        Status::FailedPrecondition(
            "this server is not a cluster node (no placement handler)"));
  }
  Result<JsonValue> payload = cluster_update_(*request.placement);
  if (!payload.ok()) return ErrorResponse(request.id, payload.status());
  return OkResponse(request.id, std::move(*payload));
}

// -- The HTAP read path ------------------------------------------------------
//
// TryServeRead answers snapshot-servable ops from the published ReadView
// atoms on the CALLER's thread — no shard hop, no queueing behind writes.
// Everything here must therefore be thread-safe against the shard workers:
// it only ever touches the registry's immutable snapshots, atomics, and
// mutex-guarded sections, never a live Tenancy.

bool MarketplaceServer::TryServeRead(const Request& request, Response* out) {
  switch (request.op) {
    case RequestOp::kServerInfo:
    case RequestOp::kExport:
      op_counts_[static_cast<size_t>(request.op)].fetch_add(
          1, std::memory_order_relaxed);
      *out = request.op == RequestOp::kServerInfo ? ExecuteServerInfo(request)
                                                  : ExecuteExport(request);
      reads_served_.fetch_add(1, std::memory_order_relaxed);
      return true;
    case RequestOp::kReport:
    case RequestOp::kQueryPrice: {
      if (request.tenancy.empty()) return false;  // Shard path owns the error.
      const std::shared_ptr<const analytics::ReadState> state =
          read_registry_.Read(request.tenancy);
      if (state == nullptr || state->view == nullptr) {
        // No published view — in practice an unknown tenancy. The write
        // path owns the answer (and its exact error wording).
        read_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      op_counts_[static_cast<size_t>(request.op)].fetch_add(
          1, std::memory_order_relaxed);
      if (request.op == RequestOp::kQueryPrice) {
        *out = ExecuteQueryPrice(request);
      } else if (request.period > 0) {
        Result<JsonValue> payload =
            analytics::HistoricalReportPayload(*state, request.period);
        *out = payload.ok() ? OkResponse(request.id, std::move(*payload))
                            : ErrorResponse(request.id, payload.status());
      } else {
        *out = OkResponse(request.id, analytics::ReportPayload(*state));
      }
      reads_served_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    default:
      return false;
  }
}

Response MarketplaceServer::ExecuteQueryPrice(const Request& request) {
  if (request.tenancy.empty()) {
    return ErrorResponse(
        request.id, Status::InvalidArgument("request needs a tenancy name"));
  }
  const std::shared_ptr<const analytics::ReadState> state =
      read_registry_.Read(request.tenancy);
  if (state == nullptr || state->view == nullptr) {
    return ErrorResponse(request.id,
                         Status::NotFound("unknown tenancy \"" +
                                          request.tenancy + "\""));
  }
  // What-if pricing against the period-boundary snapshot: deterministic,
  // read-only, and identical no matter which thread (or path) runs it.
  const TenancySnapshot& boundary = state->view->boundary;
  simdb::Catalog catalog;
  for (const simdb::TableDef& table : boundary.tables) {
    Status added = catalog.AddTable(table);
    if (!added.ok()) {
      return ErrorResponse(
          request.id,
          Status::Internal("tenancy \"" + request.tenancy +
                           "\": snapshot catalog rejected: " +
                           added.message()));
    }
  }
  const simdb::CostModel model(&catalog);
  const simdb::PricingModel pricing(boundary.config.pricing);
  Result<std::vector<simdb::Proposal>> proposals = simdb::ProposeOptimizations(
      catalog, model, pricing, request.tenants, boundary.config.advisor);
  if (!proposals.ok()) return ErrorResponse(request.id, proposals.status());

  JsonValue quotes = JsonValue::MakeArray();
  quotes.Reserve(proposals->size());
  double total_cost = 0.0, total_savings = 0.0;
  for (const simdb::Proposal& proposal : *proposals) {
    const std::string name = proposal.spec.DisplayName();
    JsonValue quote = JsonValue::MakeObject();
    quote.Set("name", JsonValue::Str(name));
    quote.Set("cost", JsonValue::Number(proposal.cost));
    quote.Set("total_savings", JsonValue::Number(proposal.total_savings));
    quote.Set("benefit_ratio", JsonValue::Number(proposal.BenefitRatio()));
    quote.Set("already_built",
              JsonValue::Bool(std::find(boundary.built.begin(),
                                        boundary.built.end(),
                                        name) != boundary.built.end()));
    quotes.Append(std::move(quote));
    total_cost += proposal.cost;
    total_savings += proposal.total_savings;
  }
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("tenancy", JsonValue::Str(boundary.name));
  payload.Set("based_on_period", JsonValue::Number(boundary.periods_run));
  payload.Set("num_tenants",
              JsonValue::Number(static_cast<double>(request.tenants.size())));
  payload.Set("proposals", std::move(quotes));
  payload.Set("total_cost", JsonValue::Number(total_cost));
  payload.Set("total_savings", JsonValue::Number(total_savings));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteExport(const Request& request) {
  if (export_dir_.empty()) {
    return ErrorResponse(
        request.id,
        Status::FailedPrecondition(
            "this server has no export directory (start with --export-dir)"));
  }
  std::vector<std::string> names;
  if (!request.tenancy.empty()) {
    names.push_back(request.tenancy);
  } else {
    names = read_registry_.TenancyNames();
  }
  // One export pass at a time over the directory; reads inside the pass
  // are still lock-free snapshots.
  std::lock_guard<std::mutex> lock(export_mu_);
  analytics::ColumnarWriter writer(export_dir_);
  int exported = 0;
  for (const std::string& name : names) {
    const std::shared_ptr<const analytics::ReadState> state =
        read_registry_.Read(name);
    if (state == nullptr || state->view == nullptr) {
      if (!request.tenancy.empty()) {
        return ErrorResponse(
            request.id, Status::NotFound("unknown tenancy \"" + name + "\""));
      }
      continue;  // Raced an evict; the tenancy is gone either way.
    }
    analytics::TenancyExport item;
    item.boundary = state->view->boundary;
    item.reports = *state->view->history;
    writer.Add(item);
    ++exported;
  }
  Result<analytics::ColumnarExportStats> stats = writer.Finish();
  if (!stats.ok()) return ErrorResponse(request.id, stats.status());
  export_rows_written_.fetch_add(stats->rows(), std::memory_order_relaxed);
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("export_dir", JsonValue::Str(export_dir_));
  payload.Set("tenancies", JsonValue::Number(exported));
  payload.Set("ledger_rows",
              JsonValue::Number(static_cast<double>(stats->ledger_rows)));
  payload.Set("report_rows",
              JsonValue::Number(static_cast<double>(stats->report_rows)));
  payload.Set("period_rows",
              JsonValue::Number(static_cast<double>(stats->period_rows)));
  payload.Set("rows", JsonValue::Number(static_cast<double>(stats->rows())));
  payload.Set("files_written", JsonValue::Number(stats->files_written));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteOpenPeriod(const Request& request,
                                              bool persist) {
  if (request.tenancy.empty()) {
    return ErrorResponse(request.id, Status::InvalidArgument(
                                         "open_period needs a tenancy name"));
  }
  Tenancy* tenancy = FindTenancy(request.tenancy);
  const bool creating = tenancy == nullptr;
  if (creating) {
    if (!request.catalog) {
      return ErrorResponse(
          request.id,
          Status::NotFound("unknown tenancy \"" + request.tenancy +
                           "\"; the first open_period must carry a catalog "
                           "spec"));
    }
    Result<simdb::Catalog> catalog = BuildCatalog(*request.catalog);
    if (!catalog.ok()) return ErrorResponse(request.id, catalog.status());
    // WAL: the creating open is journaled before the tenancy exists, so a
    // crash right after the append replays to the same creation.
    if (persist) {
      Status journaled = store_->Append(request.tenancy,
                                        protocol::ToJson(request).Dump());
      if (!journaled.ok()) return ErrorResponse(request.id, journaled);
    }
    auto fresh = std::make_unique<Tenancy>();
    fresh->name = request.tenancy;
    fresh->catalog = std::move(*catalog);
    // The creating append above is this tenancy's first unsynced record.
    if (persist) {
      fresh->unsynced_appends = 1;
      unsynced_total_.fetch_add(1, std::memory_order_relaxed);
    }
    tenancy = fresh.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tenancies_.emplace(request.tenancy, std::move(fresh));
    }
    OPTSHARE_LOG(Info) << "tenancy \"" << request.tenancy << "\" created on "
                       << "shard " << pool_.ShardOf(ShardOf(request.tenancy));
  } else if (request.catalog) {
    return ErrorResponse(
        request.id,
        Status::InvalidArgument("tenancy \"" + request.tenancy +
                                "\" already exists; a catalog spec is only "
                                "accepted on the creating open_period"));
  }

  if (tenancy->session) {
    return ErrorResponse(request.id, Status::FailedPrecondition(
                                         "tenancy \"" + request.tenancy +
                                         "\" already has an open period"));
  }
  if (!creating && persist) {
    Status journaled =
        store_->Append(request.tenancy, protocol::ToJson(request).Dump());
    if (!journaled.ok()) return ErrorResponse(request.id, journaled);
    ++tenancy->unsynced_appends;
    unsynced_total_.fetch_add(1, std::memory_order_relaxed);
  }
  const ServiceConfig config =
      request.config ? *request.config : tenancy->config;
  Result<PricingSession> session = PricingSession::Open(
      &tenancy->catalog, config, tenancy->built, tenancy->periods_run + 1);
  if (!session.ok()) {
    if (creating) {
      // A creating open that fails leaves no tenancy behind: roll the
      // insertion back (safe — this shard is the only toucher of the name,
      // and erasing one entry leaves other tenancies' pointers stable).
      // The journal record stays: replaying it reproduces this exact
      // rollback (or a harmless already-exists error if a snapshot
      // restores the tenancy first). Deliberately NOT store_->Remove():
      // the store may hold a previous incarnation of the name that this
      // process never loaded (e.g. Recover was skipped or failed), and a
      // failed open must not destroy that history.
      unsynced_total_.fetch_sub(tenancy->unsynced_appends,
                                std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      tenancies_.erase(request.tenancy);
    }
    return ErrorResponse(request.id, session.status());
  }
  tenancy->config = config;  // The accepted config becomes sticky.
  // Admission follows the sticky config — and because open_period is
  // journaled, this very call re-runs on replay, so a recovered tenancy
  // keeps its quota. A default admission config reverts the tenancy to
  // the server-wide quota.
  admission_.SetTenancyLimit(request.tenancy, config.admission);
  tenancy->session.emplace(std::move(*session));
  // A creating open is this tenancy's first period boundary (period 0);
  // every open also publishes the fresh delta so mid-period reads see the
  // period as open before the ack fires.
  if (creating) {
    read_registry_.PublishView(request.tenancy, BoundaryOf(*tenancy), nullptr);
  }
  read_registry_.PublishDelta(request.tenancy, DeltaOf(*tenancy));

  JsonValue payload = JsonValue::MakeObject();
  payload.Set("period", JsonValue::Number(tenancy->periods_run + 1));
  payload.Set("slots_per_period",
              JsonValue::Number(tenancy->config.slots_per_period));
  payload.Set("mechanism", JsonValue::Str(tenancy->config.mechanism));
  JsonValue carried = JsonValue::MakeArray();
  for (const std::string& name : tenancy->built) {
    carried.Append(JsonValue::Str(name));
  }
  payload.Set("carried_structures", std::move(carried));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteSnapshot(const Request& request,
                                            Tenancy& tenancy, bool persist) {
  if (tenancy.session.has_value()) {
    return ErrorResponse(
        request.id,
        Status::FailedPrecondition(
            "tenancy \"" + request.tenancy +
            "\" has an open period; snapshot works at period boundaries "
            "(the open period is already journaled)"));
  }
  if (persist) {
    Status checkpointed =
        store_->Checkpoint(tenancy.name, SnapshotOf(tenancy));
    if (!checkpointed.ok()) return ErrorResponse(request.id, checkpointed);
    unsynced_total_.fetch_sub(tenancy.unsynced_appends,
                              std::memory_order_relaxed);
    tenancy.unsynced_appends = 0;
  }
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("checkpointed", JsonValue::Bool(true));
  payload.Set("store", JsonValue::Str(std::string(store_->kind())));
  payload.Set("periods_run", JsonValue::Number(tenancy.periods_run));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteTenancyOp(const Request& request,
                                             bool persist) {
  if (request.tenancy.empty()) {
    return ErrorResponse(
        request.id, Status::InvalidArgument("request needs a tenancy name"));
  }
  Tenancy* tenancy = FindTenancy(request.tenancy);
  if (tenancy == nullptr) {
    return ErrorResponse(request.id,
                         Status::NotFound("unknown tenancy \"" +
                                          request.tenancy + "\""));
  }

  if (request.op == RequestOp::kSnapshot) {
    return ExecuteSnapshot(request, *tenancy, persist);
  }

  if (request.op == RequestOp::kReport) {
    if (request.period > 0) {
      // Historical reports live in the analytics history on BOTH paths, so
      // read-path-on and read-path-off servers answer identically.
      const std::shared_ptr<const analytics::ReadState> state =
          read_registry_.Read(request.tenancy);
      if (state == nullptr || state->view == nullptr) {
        return ErrorResponse(
            request.id,
            Status::NotFound(
                "no report retained for period " +
                std::to_string(request.period) + " of tenancy \"" +
                request.tenancy +
                "\" (reports are retained in-memory since the tenancy was "
                "rebuilt)"));
      }
      Result<JsonValue> payload =
          analytics::HistoricalReportPayload(*state, request.period);
      if (!payload.ok()) return ErrorResponse(request.id, payload.status());
      return OkResponse(request.id, std::move(*payload));
    }
    JsonValue payload = JsonValue::MakeObject();
    payload.Set("tenancy", JsonValue::Str(tenancy->name));
    payload.Set("periods_run", JsonValue::Number(tenancy->periods_run));
    payload.Set("period_open", JsonValue::Bool(tenancy->session.has_value()));
    payload.Set("current_slot",
                JsonValue::Number(
                    tenancy->session ? tenancy->session->slots_advanced() : 0));
    payload.Set("num_tenants",
                JsonValue::Number(
                    tenancy->session ? tenancy->session->num_tenants() : 0));
    JsonValue built = JsonValue::MakeArray();
    for (const std::string& name : tenancy->built) {
      built.Append(JsonValue::Str(name));
    }
    payload.Set("built_structures", std::move(built));
    payload.Set("cumulative_balance",
                JsonValue::Number(tenancy->cumulative_balance));
    payload.Set("cumulative_utility",
                JsonValue::Number(tenancy->cumulative_utility));
    return OkResponse(request.id, std::move(payload));
  }

  // Every remaining op drives the open period.
  if (!tenancy->session) {
    return ErrorResponse(request.id, Status::FailedPrecondition(
                                         "tenancy \"" + request.tenancy +
                                         "\" has no open period"));
  }
  // WAL: the record lands in the journal before the op touches the
  // session, because submit and advance_slot mutate even when they fail
  // partway — replaying the identical request reproduces the identical
  // partial effect. If the journal write fails, the op does not run.
  if (persist && OpMutatesTenancy(request.op)) {
    Status journaled =
        store_->Append(request.tenancy, protocol::ToJson(request).Dump());
    if (!journaled.ok()) return ErrorResponse(request.id, journaled);
    ++tenancy->unsynced_appends;
    unsynced_total_.fetch_add(1, std::memory_order_relaxed);
  }
  PricingSession& session = *tenancy->session;
  // Branches assign `response` and break (instead of returning) so the
  // delta publish below runs after EVERY session-touching op — including
  // partial failures: a rejected batch submit still admitted its earlier
  // tenants, and the read path must see them.
  Response response;
  switch (request.op) {
    case RequestOp::kSubmit: {
      JsonValue ids = JsonValue::MakeArray();
      ids.Reserve(request.tenants.size());
      Status first_error;
      for (const simdb::SimUser& tenant : request.tenants) {
        Result<UserId> id = session.Submit(tenant);
        // Stop at the first rejection, like PricingSession's batch Submit;
        // tenants admitted before it stay admitted.
        if (!id.ok()) {
          first_error = id.status();
          break;
        }
        ids.Append(JsonValue::Number(*id));
      }
      if (!first_error.ok()) {
        response = ErrorResponse(request.id, first_error);
        break;
      }
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("tenant_ids", std::move(ids));
      response = OkResponse(request.id, std::move(payload));
      break;
    }
    case RequestOp::kDepart: {
      Status st = session.Depart(request.tenant);
      response = st.ok() ? OkResponse(request.id, JsonValue::MakeObject())
                         : ErrorResponse(request.id, st);
      break;
    }
    case RequestOp::kAdvanceSlot: {
      Status first_error;
      for (int i = 0; i < request.slots; ++i) {
        Status st = session.AdvanceSlot();
        if (!st.ok()) {
          first_error = st;
          break;
        }
      }
      if (!first_error.ok()) {
        response = ErrorResponse(request.id, first_error);
        break;
      }
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("slot", JsonValue::Number(session.slots_advanced()));
      payload.Set("slots_advanced", JsonValue::Number(request.slots));
      response = OkResponse(request.id, std::move(payload));
      break;
    }
    case RequestOp::kClosePeriod: {
      Result<PeriodReport> report = session.Close();
      if (!report.ok()) {
        response = ErrorResponse(request.id, report.status());
        break;
      }
      ++tenancy->periods_run;
      tenancy->built = session.built_structures();
      tenancy->cumulative_balance += report->ledger.CloudBalance();
      tenancy->cumulative_utility += report->ledger.TotalUtility();
      tenancy->session.reset();
      if (persist) {
        // The period boundary is the durability point: snapshot the new
        // state and truncate the journal, fsync'd. A failed checkpoint is
        // survivable — the journal still holds the whole period, so
        // recovery replays it instead.
        Status checkpointed =
            store_->Checkpoint(tenancy->name, SnapshotOf(*tenancy));
        if (!checkpointed.ok()) {
          OPTSHARE_LOG(Warning)
              << "tenancy \"" << tenancy->name
              << "\": close_period checkpoint failed (journal retained): "
              << checkpointed.ToString();
        } else {
          unsynced_total_.fetch_sub(tenancy->unsynced_appends,
                                    std::memory_order_relaxed);
          tenancy->unsynced_appends = 0;
        }
      }
      // The read path's period boundary: a fresh view with this report
      // appended to the retained history, published before the close ack.
      read_registry_.PublishView(tenancy->name, BoundaryOf(*tenancy),
                                 &*report);
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("report", protocol::ToJson(*report));
      response = OkResponse(request.id, std::move(payload));
      break;
    }
    default:
      response =
          ErrorResponse(request.id, Status::Internal("unhandled request op"));
      break;
  }
  // Read-your-writes: the delta lands in the registry before `done` fires,
  // so a client that awaited this op's ack observes its effect on the read
  // path. (After close_period the session is gone and PublishView above
  // already reset the delta.)
  if (tenancy->session.has_value()) {
    read_registry_.PublishDelta(tenancy->name, DeltaOf(*tenancy));
  }
  return response;
}

}  // namespace optshare::service
