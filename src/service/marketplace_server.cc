#include "service/marketplace_server.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "baseline/baseline_mechanisms.h"
#include "common/logging.h"
#include "core/mechanism.h"
#include "simdb/scenarios.h"

namespace optshare::service {
namespace {

using protocol::ErrorResponse;
using protocol::OkResponse;
using protocol::Request;
using protocol::RequestOp;
using protocol::Response;

/// Builds a catalog from a wire CatalogSpec: a canned scenario by name
/// (its tenants are discarded — the wire submits tenants explicitly) or
/// inline table definitions.
Result<simdb::Catalog> BuildCatalog(const protocol::CatalogSpec& spec) {
  if (!spec.scenario.empty()) {
    Result<simdb::Scenario> scenario =
        spec.scenario == "clickstream"
            ? simdb::ClickstreamScenario(spec.scenario_tenants,
                                         spec.scenario_slots)
        : spec.scenario == "retail"
            ? simdb::RetailScenario(spec.scenario_tenants, spec.scenario_slots)
        : spec.scenario == "telemetry"
            ? simdb::TelemetryScenario(spec.scenario_tenants,
                                       spec.scenario_slots)
            : Result<simdb::Scenario>(Status::NotFound(
                  "unknown scenario \"" + spec.scenario +
                  "\" (clickstream, retail, telemetry)"));
    if (!scenario.ok()) return scenario.status();
    return std::move(scenario->catalog);
  }
  simdb::Catalog catalog;
  for (const simdb::TableDef& table : spec.tables) {
    OPTSHARE_RETURN_NOT_OK(catalog.AddTable(table));
  }
  return catalog;
}

}  // namespace

MarketplaceServer::MarketplaceServer(ServerOptions options)
    : pool_(options.num_workers) {
  // Resolve every registry-touching race up front: baselines register once,
  // before the first concurrent Create on a shard.
  RegisterBaselineMechanisms();
}

MarketplaceServer::~MarketplaceServer() { Drain(); }

size_t MarketplaceServer::ShardOf(const std::string& tenancy) const {
  return std::hash<std::string>{}(tenancy);
}

MarketplaceServer::Tenancy* MarketplaceServer::FindTenancy(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenancies_.find(name);
  return it == tenancies_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MarketplaceServer::TenancyNames() const {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(tenancies_.size());
    for (const auto& [name, tenancy] : tenancies_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status MarketplaceServer::CreateTenancy(const std::string& name,
                                        simdb::Catalog catalog,
                                        ServiceConfig config) {
  if (name.empty()) {
    return Status::InvalidArgument("tenancy name must be non-empty");
  }
  OPTSHARE_RETURN_NOT_OK(config.Validate());
  // Run on the tenancy's shard so creation serializes with wire traffic
  // already queued under the same name.
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> done = promise->get_future();
  pool_.Post(ShardOf(name), [this, name, catalog = std::move(catalog),
                             config = std::move(config), promise]() mutable {
    try {
      if (FindTenancy(name) != nullptr) {
        promise->set_value(
            Status::AlreadyExists("tenancy \"" + name + "\" already exists"));
        return;
      }
      auto tenancy = std::make_unique<Tenancy>();
      tenancy->name = name;
      tenancy->catalog = std::move(catalog);
      tenancy->config = std::move(config);
      {
        std::lock_guard<std::mutex> lock(mu_);
        tenancies_.emplace(name, std::move(tenancy));
      }
      promise->set_value(Status::OK());
    } catch (const std::exception& e) {
      promise->set_value(Status::Internal(e.what()));
    }
  });
  return done.get();
}

std::future<Response> MarketplaceServer::Dispatch(Request request) {
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> response = promise->get_future();
  // list_mechanisms shards on the empty name: cheap, and ordering against
  // tenancy traffic is irrelevant for a read-only registry listing.
  // The shard key must be taken before the Post call: its arguments are
  // indeterminately sequenced, and the lambda's init-capture moves
  // `request` out from under an inline ShardOf(request.tenancy).
  const size_t shard = ShardOf(request.tenancy);
  pool_.Post(shard, [this, request = std::move(request), promise]() mutable {
               // One request's failure must stay one request's failure: an
               // exception out of Execute (e.g. bad_alloc on a huge
               // payload) becomes this response's Internal error instead
               // of tearing down the worker.
               try {
                 promise->set_value(Execute(request));
               } catch (const std::exception& e) {
                 promise->set_value(ErrorResponse(
                     request.id, Status::Internal(e.what())));
               } catch (...) {
                 promise->set_value(ErrorResponse(
                     request.id,
                     Status::Internal("unexpected exception while serving")));
               }
             });
  return response;
}

Response MarketplaceServer::Handle(Request request) {
  return Dispatch(std::move(request)).get();
}

std::string MarketplaceServer::HandleLine(const std::string& line) {
  Result<Request> request = protocol::ParseRequestLine(line);
  if (!request.ok()) {
    return protocol::FormatResponseLine(ErrorResponse("", request.status()));
  }
  return protocol::FormatResponseLine(Handle(std::move(*request)));
}

void MarketplaceServer::Drain() { pool_.Drain(); }

Response MarketplaceServer::Execute(const Request& request) {
  switch (request.op) {
    case RequestOp::kListMechanisms:
      return ListMechanisms(request);
    case RequestOp::kOpenPeriod:
      return ExecuteOpenPeriod(request);
    default:
      return ExecuteTenancyOp(request);
  }
}

Response MarketplaceServer::ListMechanisms(const Request& request) {
  JsonValue names = JsonValue::MakeArray();
  for (const std::string& name : MechanismRegistry::Global().Names()) {
    names.Append(JsonValue::Str(name));
  }
  JsonValue payload = JsonValue::MakeObject();
  payload.Set("mechanisms", std::move(names));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteOpenPeriod(const Request& request) {
  if (request.tenancy.empty()) {
    return ErrorResponse(request.id, Status::InvalidArgument(
                                         "open_period needs a tenancy name"));
  }
  Tenancy* tenancy = FindTenancy(request.tenancy);
  const bool creating = tenancy == nullptr;
  if (creating) {
    if (!request.catalog) {
      return ErrorResponse(
          request.id,
          Status::NotFound("unknown tenancy \"" + request.tenancy +
                           "\"; the first open_period must carry a catalog "
                           "spec"));
    }
    Result<simdb::Catalog> catalog = BuildCatalog(*request.catalog);
    if (!catalog.ok()) return ErrorResponse(request.id, catalog.status());
    auto fresh = std::make_unique<Tenancy>();
    fresh->name = request.tenancy;
    fresh->catalog = std::move(*catalog);
    tenancy = fresh.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tenancies_.emplace(request.tenancy, std::move(fresh));
    }
    OPTSHARE_LOG(Info) << "tenancy \"" << request.tenancy << "\" created on "
                       << "shard " << pool_.ShardOf(ShardOf(request.tenancy));
  } else if (request.catalog) {
    return ErrorResponse(
        request.id,
        Status::InvalidArgument("tenancy \"" + request.tenancy +
                                "\" already exists; a catalog spec is only "
                                "accepted on the creating open_period"));
  }

  if (tenancy->session) {
    return ErrorResponse(request.id, Status::FailedPrecondition(
                                         "tenancy \"" + request.tenancy +
                                         "\" already has an open period"));
  }
  const ServiceConfig config =
      request.config ? *request.config : tenancy->config;
  Result<PricingSession> session = PricingSession::Open(
      &tenancy->catalog, config, tenancy->built, tenancy->periods_run + 1);
  if (!session.ok()) {
    if (creating) {
      // A creating open that fails leaves no tenancy behind: roll the
      // insertion back (safe — this shard is the only toucher of the name,
      // and erasing one entry leaves other tenancies' pointers stable).
      std::lock_guard<std::mutex> lock(mu_);
      tenancies_.erase(request.tenancy);
    }
    return ErrorResponse(request.id, session.status());
  }
  tenancy->config = config;  // The accepted config becomes sticky.
  tenancy->session.emplace(std::move(*session));

  JsonValue payload = JsonValue::MakeObject();
  payload.Set("period", JsonValue::Number(tenancy->periods_run + 1));
  payload.Set("slots_per_period",
              JsonValue::Number(tenancy->config.slots_per_period));
  payload.Set("mechanism", JsonValue::Str(tenancy->config.mechanism));
  JsonValue carried = JsonValue::MakeArray();
  for (const std::string& name : tenancy->built) {
    carried.Append(JsonValue::Str(name));
  }
  payload.Set("carried_structures", std::move(carried));
  return OkResponse(request.id, std::move(payload));
}

Response MarketplaceServer::ExecuteTenancyOp(const Request& request) {
  if (request.tenancy.empty()) {
    return ErrorResponse(
        request.id, Status::InvalidArgument("request needs a tenancy name"));
  }
  Tenancy* tenancy = FindTenancy(request.tenancy);
  if (tenancy == nullptr) {
    return ErrorResponse(request.id,
                         Status::NotFound("unknown tenancy \"" +
                                          request.tenancy + "\""));
  }

  if (request.op == RequestOp::kReport) {
    JsonValue payload = JsonValue::MakeObject();
    payload.Set("tenancy", JsonValue::Str(tenancy->name));
    payload.Set("periods_run", JsonValue::Number(tenancy->periods_run));
    payload.Set("period_open", JsonValue::Bool(tenancy->session.has_value()));
    payload.Set("current_slot",
                JsonValue::Number(
                    tenancy->session ? tenancy->session->slots_advanced() : 0));
    payload.Set("num_tenants",
                JsonValue::Number(
                    tenancy->session ? tenancy->session->num_tenants() : 0));
    JsonValue built = JsonValue::MakeArray();
    for (const std::string& name : tenancy->built) {
      built.Append(JsonValue::Str(name));
    }
    payload.Set("built_structures", std::move(built));
    payload.Set("cumulative_balance",
                JsonValue::Number(tenancy->cumulative_balance));
    payload.Set("cumulative_utility",
                JsonValue::Number(tenancy->cumulative_utility));
    return OkResponse(request.id, std::move(payload));
  }

  // Every remaining op drives the open period.
  if (!tenancy->session) {
    return ErrorResponse(request.id, Status::FailedPrecondition(
                                         "tenancy \"" + request.tenancy +
                                         "\" has no open period"));
  }
  PricingSession& session = *tenancy->session;
  switch (request.op) {
    case RequestOp::kSubmit: {
      JsonValue ids = JsonValue::MakeArray();
      for (const simdb::SimUser& tenant : request.tenants) {
        Result<UserId> id = session.Submit(tenant);
        // Stop at the first rejection, like PricingSession's batch Submit;
        // tenants admitted before it stay admitted.
        if (!id.ok()) return ErrorResponse(request.id, id.status());
        ids.Append(JsonValue::Number(*id));
      }
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("tenant_ids", std::move(ids));
      return OkResponse(request.id, std::move(payload));
    }
    case RequestOp::kDepart: {
      Status st = session.Depart(request.tenant);
      if (!st.ok()) return ErrorResponse(request.id, st);
      return OkResponse(request.id, JsonValue::MakeObject());
    }
    case RequestOp::kAdvanceSlot: {
      for (int i = 0; i < request.slots; ++i) {
        Status st = session.AdvanceSlot();
        if (!st.ok()) return ErrorResponse(request.id, st);
      }
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("slot", JsonValue::Number(session.slots_advanced()));
      payload.Set("slots_advanced", JsonValue::Number(request.slots));
      return OkResponse(request.id, std::move(payload));
    }
    case RequestOp::kClosePeriod: {
      Result<PeriodReport> report = session.Close();
      if (!report.ok()) return ErrorResponse(request.id, report.status());
      ++tenancy->periods_run;
      tenancy->built = session.built_structures();
      tenancy->cumulative_balance += report->ledger.CloudBalance();
      tenancy->cumulative_utility += report->ledger.TotalUtility();
      tenancy->session.reset();
      JsonValue payload = JsonValue::MakeObject();
      payload.Set("report", protocol::ToJson(*report));
      return OkResponse(request.id, std::move(payload));
    }
    default:
      return ErrorResponse(request.id,
                           Status::Internal("unhandled request op"));
  }
}

}  // namespace optshare::service
