// The allocation-free serving hot path: a single-pass wire scanner that
// parses one protocol request line by walking it as std::string_view spans
// and filling the typed Request directly — no JsonValue tree, no
// std::map<std::string, JsonValue> per object, no per-field temporaries.
//
// Contract (what keeps this safe to put in front of the tree parser):
//
//   TryFastParseRequestLine returns true ONLY when the scanner is certain
//   the tree parser (protocol::ParseRequestLineTree) would accept the line
//   AND produce the identical Request. On ANY doubt — malformed JSON, a
//   field the scanner does not model (catalog/config), an escaped object
//   key, a duplicate key, a type mismatch, an unknown op, a version or
//   field-set violation — it returns false and the caller falls back to
//   the tree parser, which re-derives the exact accept/reject decision and
//   error message. The fast path therefore can never accept what the tree
//   path rejects, never reject what it accepts, and never alter a parsed
//   value; tests/service_wire_fast_test.cc and the fuzz battery pin this
//   differentially over the full protocol surface.
//
// Ops scanned natively: submit, depart, advance_slot, close_period,
// report, list_mechanisms, snapshot, restore, shutdown, server_info — the
// high-volume request set — plus v3 batch frames whose members are all
// themselves natively scannable (a batch carrying an open_period member
// falls back whole-line, as does anything the tree parser would reject —
// nested batches, shutdown members, empty member arrays). open_period
// (once per billing period, and the only op with nested
// CatalogSpec/ServiceConfig payloads) deliberately falls back to the tree
// parser.
//
// Steady-state cost: zero heap allocations for the fixed-size ops (the
// Request's strings stay in SSO for typical tenancy/id names), and
// O(tenants) vector growth only — no per-field tree nodes — for submit.
#pragma once

#include <string_view>

#include "service/protocol.h"

namespace optshare::service::protocol {

/// Single-pass scan of one request line into *out. True on success (the
/// tree parser would have produced an identical Request); false means the
/// caller must fall back to ParseRequestLineTree — for malformed lines AND
/// for valid lines the scanner does not model. *out is clobbered either
/// way.
bool TryFastParseRequestLine(std::string_view line, Request* out);

}  // namespace optshare::service::protocol
