#include "service/cloud_service.h"

#include <cmath>

#include "service/pricing_session.h"

namespace optshare::service {

Status ServiceConfig::Validate() const {
  if (slots_per_period < 1) {
    return Status::InvalidArgument("slots_per_period must be positive");
  }
  if (std::isnan(maintenance_fraction) || maintenance_fraction < 0.0 ||
      maintenance_fraction > 1.0) {
    return Status::InvalidArgument("maintenance_fraction must lie in [0, 1]");
  }
  if (mechanism.empty()) {
    return Status::InvalidArgument("mechanism name must be non-empty");
  }
  return Status::OK();
}

int PeriodReport::ActiveStructures() const {
  int n = 0;
  for (const auto& s : structures) n += s.active ? 1 : 0;
  return n;
}

CloudService::CloudService(simdb::Catalog catalog, ServiceConfig config)
    : catalog_(std::move(catalog)),
      config_(std::move(config)),
      config_status_(config_.Validate()) {}

Result<PeriodReport> CloudService::RunPeriod(
    const std::vector<simdb::SimUser>& tenants) {
  OPTSHARE_RETURN_NOT_OK(config_status_);
  if (tenants.empty()) {
    return Status::InvalidArgument("a period needs at least one tenant");
  }
  // Batch adapter: one session per period, every tenant submitted before
  // the first slot — the configuration under which the streaming path is
  // bit-identical to the historical batch implementation.
  Result<PricingSession> session = PricingSession::Open(
      &catalog_, config_, built_names_, periods_run_ + 1);
  if (!session.ok()) return session.status();
  OPTSHARE_RETURN_NOT_OK(session->Submit(tenants));
  for (int slot = 0; slot < config_.slots_per_period; ++slot) {
    OPTSHARE_RETURN_NOT_OK(session->AdvanceSlot());
  }
  Result<PeriodReport> report = session->Close();
  if (!report.ok()) return report.status();

  ++periods_run_;
  built_names_ = session->built_structures();
  cumulative_balance_ += report->ledger.CloudBalance();
  cumulative_utility_ += report->ledger.TotalUtility();
  return report;
}

}  // namespace optshare::service
