#include "service/cloud_service.h"

#include <algorithm>

#include "baseline/baseline_mechanisms.h"
#include "core/mechanism.h"

namespace optshare::service {

int PeriodReport::ActiveStructures() const {
  int n = 0;
  for (const auto& s : structures) n += s.active ? 1 : 0;
  return n;
}

CloudService::CloudService(simdb::Catalog catalog, ServiceConfig config)
    : catalog_(std::move(catalog)), config_(config) {}

Result<PeriodReport> CloudService::RunPeriod(
    const std::vector<simdb::SimUser>& tenants) {
  if (tenants.empty()) {
    return Status::InvalidArgument("a period needs at least one tenant");
  }
  // Mechanism choice is a runtime parameter: resolve the configured name
  // against the registry (paper mechanisms + baselines).
  RegisterBaselineMechanisms();
  Result<std::unique_ptr<Mechanism>> mechanism_r =
      ResolveMechanism(config_.mechanism, GameKind::kAdditiveOnline);
  if (!mechanism_r.ok()) return mechanism_r.status();
  const Mechanism& mechanism = **mechanism_r;
  for (const auto& t : tenants) {
    if (t.start < 1 || t.end < t.start || t.end > config_.slots_per_period) {
      return Status::InvalidArgument(
          "tenant interval outside the period's slots");
    }
  }

  simdb::CostModel model(&catalog_);
  simdb::PricingModel pricing(config_.pricing);
  Result<std::vector<simdb::Proposal>> proposals_r = simdb::ProposeOptimizations(
      catalog_, model, pricing, tenants, config_.advisor);
  if (!proposals_r.ok()) return proposals_r.status();
  const std::vector<simdb::Proposal>& proposals = *proposals_r;

  PeriodReport report;
  report.period = ++periods_run_;

  // One AddOn game per proposal (additive structures are priced
  // independently); carried-over structures cost maintenance only.
  std::vector<std::string> next_built;
  Accounting ledger;
  ledger.user_value.assign(tenants.size(), 0.0);
  ledger.user_payment.assign(tenants.size(), 0.0);

  for (const auto& proposal : proposals) {
    StructureOutcome outcome;
    outcome.name = proposal.spec.DisplayName();
    outcome.num_candidates = proposal.beneficiaries.size();
    outcome.carried_over =
        std::find(built_names_.begin(), built_names_.end(), outcome.name) !=
        built_names_.end();
    outcome.cost = outcome.carried_over
                       ? std::max(proposal.cost * config_.maintenance_fraction,
                                  1e-12)
                       : proposal.cost;

    AdditiveOnlineGame game;
    game.num_slots = config_.slots_per_period;
    game.cost = outcome.cost;
    for (size_t i = 0; i < tenants.size(); ++i) {
      const double per_slot =
          proposal.user_savings[i] /
          static_cast<double>(tenants[i].end - tenants[i].start + 1);
      game.users.push_back(
          SlotValues::Constant(tenants[i].start, tenants[i].end, per_slot));
    }
    Status st = game.Validate();
    if (!st.ok()) return st;

    Result<MechanismResult> result_r = mechanism.Run(GameView(game));
    if (!result_r.ok()) return result_r.status();
    const MechanismResult& result = *result_r;
    const Accounting acc = AccountResult(GameView(game), result);
    outcome.active = result.implemented;
    if (result.implemented) {
      int subscribers = 0;
      for (double p : result.payments) subscribers += p > 0.0 ? 1 : 0;
      outcome.num_subscribers = subscribers;
      next_built.push_back(outcome.name);
      ledger.total_cost += acc.total_cost;
      for (size_t i = 0; i < tenants.size(); ++i) {
        ledger.user_value[i] += acc.user_value[i];
        ledger.user_payment[i] += acc.user_payment[i];
      }
    } else if (outcome.carried_over) {
      // Nobody renewed: the structure is dropped.
    }
    report.structures.push_back(std::move(outcome));
  }

  built_names_ = std::move(next_built);
  cumulative_balance_ += ledger.CloudBalance();
  cumulative_utility_ += ledger.TotalUtility();
  report.ledger = std::move(ledger);
  return report;
}

}  // namespace optshare::service
