// NetClient: a small blocking client for the marketplace's TCP transport.
// One connection, synchronous round trips:
//
//   Result<NetClient> client = NetClient::Connect("127.0.0.1", port);
//   protocol::Request req;
//   req.op = protocol::RequestOp::kListMechanisms;
//   Result<protocol::Response> resp = client->Call(req);
//
// Responses arrive in request order (the server's per-connection
// contract), so pipelining is also supported: SendLine() N times, then
// ReadLine() N times. The raw-byte surface (SendRaw / ReadLine) exists for
// the fuzz suite, which must be able to send torn, merged and corrupted
// frames; Call() is what tools and benches use.
#pragma once

#include <cstdint>
#include <string>

#include "common/net.h"
#include "service/protocol.h"

namespace optshare::service {

class NetClient {
 public:
  /// Connection policy for callers that cannot afford the OS default
  /// connect timeout (minutes against a dead-but-routable node). Zero
  /// timeout means the blocking OS default; `retries` is the number of
  /// *re*-attempts after the first failure, each preceded by a sleep that
  /// starts at `backoff_ms` and doubles.
  struct ConnectOptions {
    int timeout_ms = 0;
    int retries = 0;
    int backoff_ms = 50;
  };

  /// Blocking connect; "" host means loopback.
  static Result<NetClient> Connect(const std::string& host, uint16_t port);
  /// Connect with timeout + bounded retry-with-backoff (the cluster
  /// router's policy; a down node fails fast instead of hanging).
  static Result<NetClient> Connect(const std::string& host, uint16_t port,
                                   const ConnectOptions& options);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  /// Sends one request line (newline appended).
  Status SendLine(const std::string& line);
  /// Sends raw bytes exactly as given — no framing. Fuzz-suite surface.
  Status SendRaw(const std::string& bytes);
  /// Blocks until one complete response line arrives (terminator
  /// stripped). FailedPrecondition once the server closes the connection.
  Result<std::string> ReadLine();

  /// One raw round trip: SendLine + ReadLine.
  Result<std::string> Call(const std::string& request_line);
  /// One typed round trip: serialize, send, read, parse. The returned
  /// Response's own status carries protocol-level errors; the Result is
  /// only an error for transport or malformed-response failures.
  Result<protocol::Response> Call(const protocol::Request& request);

  /// Half-close: no more sends, but queued responses remain readable —
  /// how a batch client says "stream done, drain my responses".
  Status FinishSending();
  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }

 private:
  explicit NetClient(net::Socket socket) : socket_(std::move(socket)) {}

  net::Socket socket_;
  net::LineBuffer lines_;  ///< Buffered bytes beyond the last read line.
};

}  // namespace optshare::service
