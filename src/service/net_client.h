// NetClient: a small blocking client for the marketplace's TCP transport.
// One connection, synchronous round trips:
//
//   Result<NetClient> client = NetClient::Connect("127.0.0.1", port);
//   protocol::Request req;
//   req.op = protocol::RequestOp::kListMechanisms;
//   Result<protocol::Response> resp = client->Call(req);
//
// Responses arrive in request order (the server's per-connection
// contract), so pipelining is also supported: SendLine() N times, then
// ReadLine() N times. The raw-byte surface (SendRaw / ReadLine) exists for
// the fuzz suite, which must be able to send torn, merged and corrupted
// frames; Call() is what tools and benches use.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "common/net.h"
#include "service/protocol.h"

namespace optshare::service {

class NetClient {
 public:
  /// Connection policy for callers that cannot afford the OS default
  /// connect timeout (minutes against a dead-but-routable node). Zero
  /// timeout means the blocking OS default; `retries` is the number of
  /// *re*-attempts after the first failure, each preceded by a sleep that
  /// starts at `backoff_ms`, doubles per attempt, and is capped at
  /// `max_backoff_ms` — plus up to 25% deterministic jitter so a fleet of
  /// reconnectors spreads out instead of stampeding in lockstep.
  struct ConnectOptions {
    int timeout_ms = 0;
    int retries = 0;
    int backoff_ms = 50;
    /// Ceiling on the doubled portion of one backoff sleep (the pre-cap
    /// schedule grew unbounded: attempt 20 slept half a day). <= 0 means
    /// "no cap beyond backoff_ms itself".
    int max_backoff_ms = 2000;
    /// Seed for the jitter hash. Deterministic per (seed, attempt), so
    /// tests can pin the exact schedule; distinct callers pass distinct
    /// seeds to desynchronize.
    uint64_t jitter_seed = 0;
  };

  /// The sleep before re-attempt `attempt` (1-based):
  /// min(backoff_ms * 2^(attempt-1), max_backoff_ms) plus up to 25%
  /// seeded jitter. Pure, so the schedule is unit-testable.
  static int BackoffMs(const ConnectOptions& options, int attempt);

  /// Blocking connect; "" host means loopback.
  static Result<NetClient> Connect(const std::string& host, uint16_t port);
  /// Connect with timeout + bounded retry-with-backoff (the cluster
  /// router's policy; a down node fails fast instead of hanging).
  static Result<NetClient> Connect(const std::string& host, uint16_t port,
                                   const ConnectOptions& options);

  NetClient(NetClient&&) = default;
  NetClient& operator=(NetClient&&) = default;

  /// Sends one request line (newline appended).
  Status SendLine(const std::string& line);
  /// Sends raw bytes exactly as given — no framing. Fuzz-suite surface.
  Status SendRaw(const std::string& bytes);
  /// Blocks until one complete response line arrives (terminator
  /// stripped). FailedPrecondition once the server closes the connection.
  Result<std::string> ReadLine();

  /// One raw round trip: SendLine + ReadLine.
  Result<std::string> Call(const std::string& request_line);
  /// One typed round trip: serialize, send, read, parse. The returned
  /// Response's own status carries protocol-level errors; the Result is
  /// only an error for transport or malformed-response failures.
  Result<protocol::Response> Call(const protocol::Request& request);

  /// Half-close: no more sends, but queued responses remain readable —
  /// how a batch client says "stream done, drain my responses".
  Status FinishSending();
  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }

 private:
  explicit NetClient(net::Socket socket) : socket_(std::move(socket)) {}

  net::Socket socket_;
  net::LineBuffer lines_;  ///< Buffered bytes beyond the last read line.
};

/// AsyncNetClient (protocol v3): a genuinely asynchronous, multiplexed
/// wrapper around a connected NetClient. Submissions return immediately;
/// a dedicated reader thread matches response lines to submissions in
/// order (the server's per-connection contract) and fires each completion
/// callback exactly once. The in-flight window is bounded: a Submit that
/// would exceed it answers a typed ResourceExhausted *locally* — that is
/// the client-side backpressure signal, distinct from server admission
/// rejections, which arrive as normal responses.
///
///   AsyncNetClient async(std::move(client), {.max_inflight = 32});
///   async.Submit(req, [](Result<protocol::Response> r) { ... });
///   async.Drain();  // every callback has fired
///
/// A transport failure (EOF, read error, torn write) is sticky: every
/// pending callback fails with it, and later Submits return it. Callbacks
/// run on the reader thread (or the submitting thread for write
/// failures); they must not block, and must not call Submit/Drain on this
/// client (self-deadlock).
class AsyncNetClient {
 public:
  struct Options {
    /// Submissions awaiting a response before Submit pushes back.
    size_t max_inflight = 32;
  };

  using Callback = std::function<void(Result<protocol::Response>)>;

  /// Adopts a connected client and starts the reader thread.
  explicit AsyncNetClient(NetClient client) : AsyncNetClient(
                                                  std::move(client),
                                                  Options()) {}
  AsyncNetClient(NetClient client, Options options);
  /// Fails all still-pending callbacks (FailedPrecondition), then joins
  /// the reader. Call Drain() first for a graceful finish.
  ~AsyncNetClient();

  AsyncNetClient(const AsyncNetClient&) = delete;
  AsyncNetClient& operator=(const AsyncNetClient&) = delete;

  /// Serializes and sends `request`; `done` fires exactly once, later,
  /// with the parsed response (or the transport failure). Returns
  /// ResourceExhausted without sending when the window is full, and the
  /// sticky transport error once the connection failed.
  Status Submit(const protocol::Request& request, Callback done);

  /// Future form of Submit. A Submit rejection (full window, dead
  /// connection) resolves the future immediately with that status.
  std::future<Result<protocol::Response>> Call(
      const protocol::Request& request);

  /// Blocks until every accepted submission has completed. Returns the
  /// sticky transport error, if any (pending callbacks have then already
  /// failed with it).
  Status Drain();

  /// Submissions whose callbacks have not yet fired.
  size_t inflight() const;

 private:
  void ReaderLoop();
  /// Fails every queued callback with `status` and marks the failure
  /// sticky. Callbacks run outside the lock.
  void FailAllPending(Status status);

  Options options_;
  mutable std::mutex mu_;  ///< Guards client_ writes, pending_, failed_.
  std::condition_variable drained_cv_;
  NetClient client_;
  std::deque<Callback> pending_;  ///< FIFO: response order == send order.
  Status failed_;                 ///< Sticky first transport failure.
  bool stopping_ = false;
  std::thread reader_;  ///< Last member: joined before the rest dies.
};

}  // namespace optshare::service
