// The one request-dispatch path every transport shares. The stdin serve
// loop (tools/optshare_cli.cc) and the TCP NetServer (service/net_server.h)
// both hand raw request lines to a RequestDispatcher and release response
// lines through an OrderedLineWriter — so the request-line cap, the
// parse-error version echo, the oversize wording, and the shutdown
// detection are one implementation, and a recorded stream replayed over
// either transport produces byte-identical response lines
// (tests/service_net_test.cc pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "service/marketplace_server.h"

namespace optshare::service {

/// Parses raw wire lines against a MarketplaceServer's cap and dispatches
/// them onto its worker pool. Stateless apart from the server reference;
/// one instance can serve many connections.
class RequestDispatcher {
 public:
  explicit RequestDispatcher(MarketplaceServer* server) : server_(server) {}

  /// Parses and dispatches one request line. `done(response_line)` fires
  /// exactly once with the serialized response (no trailing newline):
  /// inline, on the caller's thread, for lines that never reach a worker
  /// (parse errors, over-cap lines); on the tenancy's worker otherwise.
  /// The view is only valid for the duration of the call — it points into
  /// a per-thread scratch buffer that is reused for the next response on
  /// that worker, so `done` must write or copy the bytes before returning.
  /// Returns true when the line was an accepted `shutdown` request — the
  /// transport should stop reading once it has queued this response.
  /// `done` may outlive the transport; capture shared state by shared_ptr.
  bool Submit(const std::string& line,
              std::function<void(std::string_view)> done);

  /// The response line for a request the transport's own bounded reader
  /// already discarded as over-cap (it never saw the full line, so it
  /// cannot call Submit). Identical bytes to what Submit answers for an
  /// over-cap line it measures itself.
  std::string OversizedLineResponse() const;

  MarketplaceServer* server() const { return server_; }

 private:
  MarketplaceServer* server_;
};

/// Releases response lines to `sink` in Reserve() order, regardless of the
/// order completions arrive in across worker shards. Thread-safe; `sink`
/// runs under the internal mutex, so it is serialized and must not call
/// back into the writer.
class OrderedLineWriter {
 public:
  explicit OrderedLineWriter(std::function<void(std::string_view)> sink)
      : sink_(std::move(sink)) {}

  /// Claims the next slot in output order. Call in request-arrival order.
  uint64_t Reserve();

  /// Delivers slot `slot`'s response; flushes the contiguous ready prefix.
  /// An in-order arrival (the common case: per-tenancy FIFO sharding keeps
  /// one connection's responses mostly ordered already) passes `line`
  /// straight through to `sink` without copying; only out-of-order
  /// completions are buffered. The view need only stay valid for the
  /// duration of the call, and `sink`'s views likewise die at return.
  void Complete(uint64_t slot, std::string_view line);

  /// True when every reserved slot has been completed and flushed.
  bool Idle() const;

 private:
  mutable std::mutex mu_;
  std::function<void(std::string_view)> sink_;
  uint64_t next_reserve_ = 0;  ///< Guarded by mu_.
  uint64_t next_flush_ = 0;    ///< Guarded by mu_.
  std::map<uint64_t, std::string> ready_;  ///< Completed, awaiting order.
};

}  // namespace optshare::service
