#include "service/protocol.h"

#include <cmath>
#include <initializer_list>
#include <limits>
#include <utility>

#include "service/fast_wire.h"

namespace optshare::service::protocol {
namespace {

// -- Strict-parse helpers ---------------------------------------------------

Status CheckObject(const JsonValue& v, const char* ctx) {
  if (!v.is_object()) {
    return Status::InvalidArgument(std::string(ctx) + " must be an object");
  }
  return Status::OK();
}

/// Unknown-field rejection: the strictness that keeps schema drift loud.
Status CheckFields(const JsonValue& v,
                   std::initializer_list<const char*> allowed,
                   const char* ctx) {
  for (const auto& [key, value] : v.AsObject()) {
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(std::string(ctx) + ": unknown field \"" +
                                     key + "\"");
    }
  }
  return Status::OK();
}

// Thin protocol-flavored wrappers over the shared typed accessors
// (common/json.h); GetInt narrows to the protocol's int fields.

Result<double> GetNumber(const JsonValue& v, const char* key,
                         const char* ctx) {
  return JsonNumberField(v, key, ctx);
}

Result<int> GetInt(const JsonValue& v, const char* key, const char* ctx) {
  Result<int64_t> number = JsonIntField(v, key, ctx);
  if (!number.ok()) return number.status();
  if (*number < std::numeric_limits<int>::min() ||
      *number > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument(std::string(ctx) + ": field \"" + key +
                                   "\" must be an integer");
  }
  return static_cast<int>(*number);
}

Result<std::string> GetString(const JsonValue& v, const char* key,
                              const char* ctx) {
  return JsonStringField(v, key, ctx);
}

Result<bool> GetBool(const JsonValue& v, const char* key, const char* ctx) {
  return JsonBoolField(v, key, ctx);
}

/// Parses the "v" field and accepts any version this build still speaks
/// ([kMinProtocolVersion, kProtocolVersion]); the accepted value is
/// returned so callers can echo it.
Result<int> CheckVersion(const JsonValue& v, const char* ctx) {
  const JsonValue* field = v.Find("v");
  if (field == nullptr || !field->is_number()) {
    return Status::InvalidArgument(std::string(ctx) +
                                   ": missing protocol version field \"v\"");
  }
  const double number = field->AsNumber();
  if (number != std::floor(number) || number < kMinProtocolVersion ||
      number > kProtocolVersion) {
    return Status::InvalidArgument(
        std::string(ctx) + ": unsupported protocol version (this build "
        "speaks versions " + std::to_string(kMinProtocolVersion) + " through " +
        std::to_string(kProtocolVersion) + ")");
  }
  return static_cast<int>(number);
}

std::string_view ColumnTypeName(simdb::ColumnType type) {
  switch (type) {
    case simdb::ColumnType::kInt64:
      return "int64";
    case simdb::ColumnType::kDouble:
      return "double";
    case simdb::ColumnType::kString:
      return "string";
  }
  return "int64";
}

std::optional<simdb::ColumnType> ColumnTypeFromName(std::string_view name) {
  if (name == "int64") return simdb::ColumnType::kInt64;
  if (name == "double") return simdb::ColumnType::kDouble;
  if (name == "string") return simdb::ColumnType::kString;
  return std::nullopt;
}

}  // namespace

// -- Op tags ----------------------------------------------------------------

std::string_view RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kOpenPeriod:
      return "open_period";
    case RequestOp::kSubmit:
      return "submit";
    case RequestOp::kDepart:
      return "depart";
    case RequestOp::kAdvanceSlot:
      return "advance_slot";
    case RequestOp::kClosePeriod:
      return "close_period";
    case RequestOp::kReport:
      return "report";
    case RequestOp::kListMechanisms:
      return "list_mechanisms";
    case RequestOp::kSnapshot:
      return "snapshot";
    case RequestOp::kRestore:
      return "restore";
    case RequestOp::kShutdown:
      return "shutdown";
    case RequestOp::kServerInfo:
      return "server_info";
    case RequestOp::kReplAppend:
      return "repl_append";
    case RequestOp::kReplCheckpoint:
      return "repl_checkpoint";
    case RequestOp::kReplSync:
      return "repl_sync";
    case RequestOp::kTenancyState:
      return "tenancy_state";
    case RequestOp::kEvict:
      return "evict";
    case RequestOp::kClusterUpdate:
      return "cluster_update";
    case RequestOp::kQueryPrice:
      return "query_price";
    case RequestOp::kExport:
      return "export";
    case RequestOp::kBatch:
      return "batch";
  }
  return "list_mechanisms";
}

std::optional<RequestOp> RequestOpFromName(std::string_view name) {
  for (RequestOp op : kAllRequestOps) {
    if (RequestOpName(op) == name) return op;
  }
  return std::nullopt;
}

int RequestOpMinVersion(RequestOp op) {
  switch (op) {
    case RequestOp::kSnapshot:
    case RequestOp::kRestore:
    case RequestOp::kShutdown:
    case RequestOp::kServerInfo:
    case RequestOp::kReplAppend:
    case RequestOp::kReplCheckpoint:
    case RequestOp::kReplSync:
    case RequestOp::kTenancyState:
    case RequestOp::kEvict:
    case RequestOp::kClusterUpdate:
    case RequestOp::kQueryPrice:
    case RequestOp::kExport:
      return 2;
    case RequestOp::kBatch:
      return 3;
    default:
      return 1;
  }
}

bool OpTakesTenancy(RequestOp op) {
  switch (op) {
    case RequestOp::kListMechanisms:
    case RequestOp::kRestore:
    case RequestOp::kShutdown:
    case RequestOp::kServerInfo:
    case RequestOp::kClusterUpdate:
    case RequestOp::kExport:  // Optional tenancy, like restore.
    case RequestOp::kBatch:   // Members carry their own tenancies.
      return false;
    default:
      return true;
  }
}

// -- Leaf serializers -------------------------------------------------------

JsonValue ToJson(const simdb::SimUser& tenant) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("start", JsonValue::Number(tenant.start));
  obj.Set("end", JsonValue::Number(tenant.end));
  obj.Set("executions_per_slot",
          JsonValue::Number(tenant.executions_per_slot));
  JsonValue workload = JsonValue::MakeArray();
  workload.Reserve(tenant.workload.entries.size());
  for (const simdb::Workload::Entry& entry : tenant.workload.entries) {
    JsonValue query = JsonValue::MakeObject();
    query.Set("table", JsonValue::Str(entry.query.table));
    query.Set("aggregate", JsonValue::Bool(entry.query.aggregate));
    JsonValue predicates = JsonValue::MakeArray();
    predicates.Reserve(entry.query.predicates.size());
    for (const simdb::Predicate& pred : entry.query.predicates) {
      JsonValue p = JsonValue::MakeObject();
      p.Set("column", JsonValue::Str(pred.column));
      p.Set("selectivity", JsonValue::Number(pred.selectivity));
      predicates.Append(std::move(p));
    }
    query.Set("predicates", std::move(predicates));
    JsonValue e = JsonValue::MakeObject();
    e.Set("frequency", JsonValue::Number(entry.frequency));
    e.Set("query", std::move(query));
    workload.Append(std::move(e));
  }
  obj.Set("workload", std::move(workload));
  return obj;
}

Result<simdb::SimUser> SimUserFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "tenant"));
  OPTSHARE_RETURN_NOT_OK(CheckFields(
      v, {"start", "end", "executions_per_slot", "workload"}, "tenant"));
  simdb::SimUser tenant;
  Result<int> start = GetInt(v, "start", "tenant");
  if (!start.ok()) return start.status();
  tenant.start = *start;
  Result<int> end = GetInt(v, "end", "tenant");
  if (!end.ok()) return end.status();
  tenant.end = *end;
  Result<double> executions =
      GetNumber(v, "executions_per_slot", "tenant");
  if (!executions.ok()) return executions.status();
  tenant.executions_per_slot = *executions;

  const JsonValue* workload = v.Find("workload");
  if (workload == nullptr || !workload->is_array()) {
    return Status::InvalidArgument("tenant: field \"workload\" must be an array");
  }
  for (const JsonValue& entry_v : workload->AsArray()) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(entry_v, "workload entry"));
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(entry_v, {"frequency", "query"}, "workload entry"));
    simdb::Workload::Entry entry;
    Result<double> frequency = GetNumber(entry_v, "frequency", "workload entry");
    if (!frequency.ok()) return frequency.status();
    entry.frequency = *frequency;
    const JsonValue* query_v = entry_v.Find("query");
    if (query_v == nullptr) {
      return Status::InvalidArgument("workload entry: missing \"query\"");
    }
    OPTSHARE_RETURN_NOT_OK(CheckObject(*query_v, "query"));
    OPTSHARE_RETURN_NOT_OK(
        CheckFields(*query_v, {"table", "aggregate", "predicates"}, "query"));
    Result<std::string> table = GetString(*query_v, "table", "query");
    if (!table.ok()) return table.status();
    entry.query.table = std::move(*table);
    Result<bool> aggregate = GetBool(*query_v, "aggregate", "query");
    if (!aggregate.ok()) return aggregate.status();
    entry.query.aggregate = *aggregate;
    const JsonValue* predicates = query_v->Find("predicates");
    if (predicates == nullptr || !predicates->is_array()) {
      return Status::InvalidArgument(
          "query: field \"predicates\" must be an array");
    }
    for (const JsonValue& pred_v : predicates->AsArray()) {
      OPTSHARE_RETURN_NOT_OK(CheckObject(pred_v, "predicate"));
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(pred_v, {"column", "selectivity"}, "predicate"));
      simdb::Predicate pred;
      Result<std::string> column = GetString(pred_v, "column", "predicate");
      if (!column.ok()) return column.status();
      pred.column = std::move(*column);
      Result<double> selectivity =
          GetNumber(pred_v, "selectivity", "predicate");
      if (!selectivity.ok()) return selectivity.status();
      pred.selectivity = *selectivity;
      entry.query.predicates.push_back(std::move(pred));
    }
    tenant.workload.entries.push_back(std::move(entry));
  }
  return tenant;
}

JsonValue ToJson(const simdb::TableDef& table) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("name", JsonValue::Str(table.name));
  obj.Set("row_count",
          JsonValue::Number(static_cast<double>(table.row_count)));
  JsonValue columns = JsonValue::MakeArray();
  for (const simdb::Column& column : table.columns) {
    JsonValue c = JsonValue::MakeObject();
    c.Set("name", JsonValue::Str(column.name));
    c.Set("type", JsonValue::Str(std::string(ColumnTypeName(column.type))));
    c.Set("distinct_values",
          JsonValue::Number(static_cast<double>(column.distinct_values)));
    columns.Append(std::move(c));
  }
  obj.Set("columns", std::move(columns));
  return obj;
}

Result<simdb::TableDef> TableDefFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "table"));
  OPTSHARE_RETURN_NOT_OK(
      CheckFields(v, {"name", "row_count", "columns"}, "table"));
  simdb::TableDef table;
  Result<std::string> name = GetString(v, "name", "table");
  if (!name.ok()) return name.status();
  table.name = std::move(*name);
  Result<double> rows = GetNumber(v, "row_count", "table");
  if (!rows.ok()) return rows.status();
  if (*rows < 0.0 || *rows != std::floor(*rows)) {
    return Status::InvalidArgument(
        "table: \"row_count\" must be a non-negative integer");
  }
  table.row_count = static_cast<uint64_t>(*rows);
  const JsonValue* columns = v.Find("columns");
  if (columns == nullptr || !columns->is_array()) {
    return Status::InvalidArgument("table: field \"columns\" must be an array");
  }
  for (const JsonValue& column_v : columns->AsArray()) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(column_v, "column"));
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        column_v, {"name", "type", "distinct_values"}, "column"));
    simdb::Column column;
    Result<std::string> column_name = GetString(column_v, "name", "column");
    if (!column_name.ok()) return column_name.status();
    column.name = std::move(*column_name);
    Result<std::string> type = GetString(column_v, "type", "column");
    if (!type.ok()) return type.status();
    std::optional<simdb::ColumnType> parsed = ColumnTypeFromName(*type);
    if (!parsed) {
      return Status::InvalidArgument("column: unknown type \"" + *type +
                                     "\" (int64, double, string)");
    }
    column.type = *parsed;
    Result<double> distinct = GetNumber(column_v, "distinct_values", "column");
    if (!distinct.ok()) return distinct.status();
    if (*distinct < 1.0 || *distinct != std::floor(*distinct)) {
      return Status::InvalidArgument(
          "column: \"distinct_values\" must be a positive integer");
    }
    column.distinct_values = static_cast<uint64_t>(*distinct);
    table.columns.push_back(std::move(column));
  }
  return table;
}

JsonValue ToJson(const ServiceConfig& config) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("slots_per_period", JsonValue::Number(config.slots_per_period));
  obj.Set("maintenance_fraction",
          JsonValue::Number(config.maintenance_fraction));
  obj.Set("mechanism", JsonValue::Str(config.mechanism));
  JsonValue advisor = JsonValue::MakeObject();
  advisor.Set("min_benefit_ratio",
              JsonValue::Number(config.advisor.min_benefit_ratio));
  advisor.Set("propose_replicas",
              JsonValue::Bool(config.advisor.propose_replicas));
  advisor.Set("max_proposals", JsonValue::Number(config.advisor.max_proposals));
  obj.Set("advisor", std::move(advisor));
  JsonValue pricing = JsonValue::MakeObject();
  pricing.Set("instance_per_hour",
              JsonValue::Number(config.pricing.instance_per_hour));
  pricing.Set("storage_per_gb_month",
              JsonValue::Number(config.pricing.storage_per_gb_month));
  obj.Set("pricing", std::move(pricing));
  // Emitted only when non-default so pre-v3 config documents (journals,
  // snapshots, the differential corpora) stay byte-identical.
  if (!(config.admission == AdmissionConfig{})) {
    JsonValue admission = JsonValue::MakeObject();
    admission.Set("mutating_ops_per_sec",
                  JsonValue::Number(config.admission.mutating_ops_per_sec));
    if (config.admission.burst != 0.0) {
      admission.Set("burst", JsonValue::Number(config.admission.burst));
    }
    obj.Set("admission", std::move(admission));
  }
  return obj;
}

Result<ServiceConfig> ServiceConfigFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "config"));
  OPTSHARE_RETURN_NOT_OK(CheckFields(
      v,
      {"slots_per_period", "maintenance_fraction", "mechanism", "advisor",
       "pricing", "admission"},
      "config"));
  ServiceConfig config;  // Every field is optional: defaults apply.
  if (v.Find("slots_per_period") != nullptr) {
    Result<int> slots = GetInt(v, "slots_per_period", "config");
    if (!slots.ok()) return slots.status();
    config.slots_per_period = *slots;
  }
  if (v.Find("maintenance_fraction") != nullptr) {
    Result<double> fraction = GetNumber(v, "maintenance_fraction", "config");
    if (!fraction.ok()) return fraction.status();
    config.maintenance_fraction = *fraction;
  }
  if (v.Find("mechanism") != nullptr) {
    Result<std::string> mechanism = GetString(v, "mechanism", "config");
    if (!mechanism.ok()) return mechanism.status();
    config.mechanism = std::move(*mechanism);
  }
  if (const JsonValue* advisor = v.Find("advisor")) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(*advisor, "config.advisor"));
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        *advisor, {"min_benefit_ratio", "propose_replicas", "max_proposals"},
        "config.advisor"));
    if (advisor->Find("min_benefit_ratio") != nullptr) {
      Result<double> ratio =
          GetNumber(*advisor, "min_benefit_ratio", "config.advisor");
      if (!ratio.ok()) return ratio.status();
      config.advisor.min_benefit_ratio = *ratio;
    }
    if (advisor->Find("propose_replicas") != nullptr) {
      Result<bool> replicas =
          GetBool(*advisor, "propose_replicas", "config.advisor");
      if (!replicas.ok()) return replicas.status();
      config.advisor.propose_replicas = *replicas;
    }
    if (advisor->Find("max_proposals") != nullptr) {
      Result<int> cap = GetInt(*advisor, "max_proposals", "config.advisor");
      if (!cap.ok()) return cap.status();
      config.advisor.max_proposals = *cap;
    }
  }
  if (const JsonValue* pricing = v.Find("pricing")) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(*pricing, "config.pricing"));
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        *pricing, {"instance_per_hour", "storage_per_gb_month"},
        "config.pricing"));
    if (pricing->Find("instance_per_hour") != nullptr) {
      Result<double> rate =
          GetNumber(*pricing, "instance_per_hour", "config.pricing");
      if (!rate.ok()) return rate.status();
      config.pricing.instance_per_hour = *rate;
    }
    if (pricing->Find("storage_per_gb_month") != nullptr) {
      Result<double> rate =
          GetNumber(*pricing, "storage_per_gb_month", "config.pricing");
      if (!rate.ok()) return rate.status();
      config.pricing.storage_per_gb_month = *rate;
    }
  }
  if (const JsonValue* admission = v.Find("admission")) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(*admission, "config.admission"));
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        *admission, {"mutating_ops_per_sec", "burst"}, "config.admission"));
    if (admission->Find("mutating_ops_per_sec") != nullptr) {
      Result<double> rate =
          GetNumber(*admission, "mutating_ops_per_sec", "config.admission");
      if (!rate.ok()) return rate.status();
      if (*rate < 0.0) {
        return Status::InvalidArgument(
            "config.admission: \"mutating_ops_per_sec\" must be >= 0");
      }
      config.admission.mutating_ops_per_sec = *rate;
    }
    if (admission->Find("burst") != nullptr) {
      Result<double> burst = GetNumber(*admission, "burst", "config.admission");
      if (!burst.ok()) return burst.status();
      if (*burst < 0.0) {
        return Status::InvalidArgument(
            "config.admission: \"burst\" must be >= 0");
      }
      config.admission.burst = *burst;
    }
  }
  return config;
}

JsonValue ToJson(const CatalogSpec& spec) {
  JsonValue obj = JsonValue::MakeObject();
  if (!spec.scenario.empty()) {
    obj.Set("scenario", JsonValue::Str(spec.scenario));
    obj.Set("tenants", JsonValue::Number(spec.scenario_tenants));
    obj.Set("slots", JsonValue::Number(spec.scenario_slots));
  } else {
    JsonValue tables = JsonValue::MakeArray();
    for (const simdb::TableDef& table : spec.tables) {
      tables.Append(ToJson(table));
    }
    obj.Set("tables", std::move(tables));
  }
  return obj;
}

Result<CatalogSpec> CatalogSpecFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "catalog"));
  OPTSHARE_RETURN_NOT_OK(
      CheckFields(v, {"scenario", "tenants", "slots", "tables"}, "catalog"));
  CatalogSpec spec;
  const bool has_scenario = v.Find("scenario") != nullptr;
  const bool has_tables = v.Find("tables") != nullptr;
  if (has_scenario == has_tables) {
    return Status::InvalidArgument(
        "catalog: exactly one of \"scenario\" and \"tables\" must be given");
  }
  if (has_scenario) {
    Result<std::string> scenario = GetString(v, "scenario", "catalog");
    if (!scenario.ok()) return scenario.status();
    spec.scenario = std::move(*scenario);
    if (v.Find("tenants") != nullptr) {
      Result<int> tenants = GetInt(v, "tenants", "catalog");
      if (!tenants.ok()) return tenants.status();
      spec.scenario_tenants = *tenants;
    }
    if (v.Find("slots") != nullptr) {
      Result<int> slots = GetInt(v, "slots", "catalog");
      if (!slots.ok()) return slots.status();
      spec.scenario_slots = *slots;
    }
  } else {
    if (v.Find("tenants") != nullptr || v.Find("slots") != nullptr) {
      return Status::InvalidArgument(
          "catalog: \"tenants\"/\"slots\" only apply to scenario catalogs");
    }
    const JsonValue* tables = v.Find("tables");
    if (!tables->is_array()) {
      return Status::InvalidArgument(
          "catalog: field \"tables\" must be an array");
    }
    for (const JsonValue& table_v : tables->AsArray()) {
      Result<simdb::TableDef> table = TableDefFromJson(table_v);
      if (!table.ok()) return table.status();
      spec.tables.push_back(std::move(*table));
    }
  }
  return spec;
}

JsonValue ToJson(const PeriodReport& report) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("period", JsonValue::Number(report.period));
  JsonValue structures = JsonValue::MakeArray();
  structures.Reserve(report.structures.size());
  for (const StructureOutcome& outcome : report.structures) {
    JsonValue s = JsonValue::MakeObject();
    s.Set("name", JsonValue::Str(outcome.name));
    s.Set("cost", JsonValue::Number(outcome.cost));
    s.Set("active", JsonValue::Bool(outcome.active));
    s.Set("carried_over", JsonValue::Bool(outcome.carried_over));
    s.Set("num_candidates", JsonValue::Number(outcome.num_candidates));
    s.Set("num_subscribers", JsonValue::Number(outcome.num_subscribers));
    JsonValue serviced = JsonValue::MakeArray();
    serviced.Reserve(outcome.serviced.size());
    for (const StructureOutcome::ServicedEntry& entry : outcome.serviced) {
      JsonValue e = JsonValue::MakeObject();
      e.Set("tenant", JsonValue::Number(entry.tenant));
      e.Set("from_slot", JsonValue::Number(entry.from_slot));
      serviced.Append(std::move(e));
    }
    s.Set("serviced", std::move(serviced));
    structures.Append(std::move(s));
  }
  obj.Set("structures", std::move(structures));
  JsonValue ledger = JsonValue::MakeObject();
  ledger.Set("total_cost", JsonValue::Number(report.ledger.total_cost));
  JsonValue values = JsonValue::MakeArray();
  values.Reserve(report.ledger.user_value.size());
  for (double value : report.ledger.user_value) {
    values.Append(JsonValue::Number(value));
  }
  ledger.Set("user_value", std::move(values));
  JsonValue payments = JsonValue::MakeArray();
  payments.Reserve(report.ledger.user_payment.size());
  for (double payment : report.ledger.user_payment) {
    payments.Append(JsonValue::Number(payment));
  }
  ledger.Set("user_payment", std::move(payments));
  obj.Set("ledger", std::move(ledger));
  return obj;
}

Result<PeriodReport> PeriodReportFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "report"));
  OPTSHARE_RETURN_NOT_OK(
      CheckFields(v, {"period", "structures", "ledger"}, "report"));
  PeriodReport report;
  Result<int> period = GetInt(v, "period", "report");
  if (!period.ok()) return period.status();
  report.period = *period;
  const JsonValue* structures = v.Find("structures");
  if (structures == nullptr || !structures->is_array()) {
    return Status::InvalidArgument(
        "report: field \"structures\" must be an array");
  }
  for (const JsonValue& s : structures->AsArray()) {
    OPTSHARE_RETURN_NOT_OK(CheckObject(s, "structure"));
    OPTSHARE_RETURN_NOT_OK(CheckFields(
        s,
        {"name", "cost", "active", "carried_over", "num_candidates",
         "num_subscribers", "serviced"},
        "structure"));
    StructureOutcome outcome;
    Result<std::string> name = GetString(s, "name", "structure");
    if (!name.ok()) return name.status();
    outcome.name = std::move(*name);
    Result<double> cost = GetNumber(s, "cost", "structure");
    if (!cost.ok()) return cost.status();
    outcome.cost = *cost;
    Result<bool> active = GetBool(s, "active", "structure");
    if (!active.ok()) return active.status();
    outcome.active = *active;
    Result<bool> carried = GetBool(s, "carried_over", "structure");
    if (!carried.ok()) return carried.status();
    outcome.carried_over = *carried;
    Result<int> candidates = GetInt(s, "num_candidates", "structure");
    if (!candidates.ok()) return candidates.status();
    outcome.num_candidates = *candidates;
    Result<int> subscribers = GetInt(s, "num_subscribers", "structure");
    if (!subscribers.ok()) return subscribers.status();
    outcome.num_subscribers = *subscribers;
    // Absent in pre-strategy-lab reports (journals/snapshots recorded
    // before the field existed): parse leniently.
    const JsonValue* serviced = s.Find("serviced");
    if (serviced != nullptr) {
      if (!serviced->is_array()) {
        return Status::InvalidArgument(
            "structure: field \"serviced\" must be an array");
      }
      for (const JsonValue& entry_v : serviced->AsArray()) {
        OPTSHARE_RETURN_NOT_OK(CheckObject(entry_v, "serviced entry"));
        OPTSHARE_RETURN_NOT_OK(CheckFields(
            entry_v, {"tenant", "from_slot"}, "serviced entry"));
        StructureOutcome::ServicedEntry entry;
        Result<int> tenant = GetInt(entry_v, "tenant", "serviced entry");
        if (!tenant.ok()) return tenant.status();
        entry.tenant = *tenant;
        Result<int> from = GetInt(entry_v, "from_slot", "serviced entry");
        if (!from.ok()) return from.status();
        entry.from_slot = *from;
        outcome.serviced.push_back(entry);
      }
    }
    report.structures.push_back(std::move(outcome));
  }
  const JsonValue* ledger = v.Find("ledger");
  if (ledger == nullptr) {
    return Status::InvalidArgument("report: missing \"ledger\"");
  }
  OPTSHARE_RETURN_NOT_OK(CheckObject(*ledger, "ledger"));
  OPTSHARE_RETURN_NOT_OK(CheckFields(
      *ledger, {"total_cost", "user_value", "user_payment"}, "ledger"));
  Result<double> total_cost = GetNumber(*ledger, "total_cost", "ledger");
  if (!total_cost.ok()) return total_cost.status();
  report.ledger.total_cost = *total_cost;
  for (const char* key : {"user_value", "user_payment"}) {
    const JsonValue* array = ledger->Find(key);
    if (array == nullptr || !array->is_array()) {
      return Status::InvalidArgument(std::string("ledger: field \"") + key +
                                     "\" must be an array");
    }
    std::vector<double>& out = std::string(key) == "user_value"
                                   ? report.ledger.user_value
                                   : report.ledger.user_payment;
    for (const JsonValue& number : array->AsArray()) {
      if (!number.is_number()) {
        return Status::InvalidArgument(std::string("ledger: \"") + key +
                                       "\" entries must be numbers");
      }
      out.push_back(number.AsNumber());
    }
  }
  if (report.ledger.user_value.size() != report.ledger.user_payment.size()) {
    return Status::InvalidArgument(
        "ledger: user_value and user_payment must align");
  }
  return report;
}

// -- Requests ---------------------------------------------------------------

JsonValue ToJson(const Request& request) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::Number(request.version));
  obj.Set("op", JsonValue::Str(std::string(RequestOpName(request.op))));
  if (!request.id.empty()) obj.Set("id", JsonValue::Str(request.id));
  if (OpTakesTenancy(request.op)) {
    obj.Set("tenancy", JsonValue::Str(request.tenancy));
  }
  switch (request.op) {
    case RequestOp::kOpenPeriod:
      if (request.catalog) obj.Set("catalog", ToJson(*request.catalog));
      if (request.config) obj.Set("config", ToJson(*request.config));
      break;
    case RequestOp::kSubmit:
    case RequestOp::kQueryPrice: {
      JsonValue tenants = JsonValue::MakeArray();
      tenants.Reserve(request.tenants.size());
      for (const simdb::SimUser& tenant : request.tenants) {
        tenants.Append(ToJson(tenant));
      }
      obj.Set("tenants", std::move(tenants));
      break;
    }
    case RequestOp::kDepart:
      obj.Set("tenant", JsonValue::Number(request.tenant));
      break;
    case RequestOp::kAdvanceSlot:
      obj.Set("slots", JsonValue::Number(request.slots));
      break;
    case RequestOp::kReplAppend:
      obj.Set("record", JsonValue::Str(request.record));
      break;
    case RequestOp::kReplCheckpoint:
      if (request.snapshot) obj.Set("snapshot", *request.snapshot);
      break;
    case RequestOp::kClusterUpdate:
      if (request.placement) obj.Set("placement", *request.placement);
      break;
    case RequestOp::kBatch: {
      JsonValue members = JsonValue::MakeArray();
      members.Reserve(request.requests.size());
      for (const Request& member : request.requests) {
        members.Append(ToJson(member));
      }
      obj.Set("requests", std::move(members));
      break;
    }
    case RequestOp::kRestore:
    case RequestOp::kExport:
      // The tenancy filter is optional on restore/export (OpTakesTenancy is
      // false, so the generic path above skipped it).
      if (!request.tenancy.empty()) {
        obj.Set("tenancy", JsonValue::Str(request.tenancy));
      }
      break;
    case RequestOp::kReport:
      // 0 = the live report; the field is elided so v1 documents stay
      // byte-identical to what they always were.
      if (request.period > 0) {
        obj.Set("period", JsonValue::Number(request.period));
      }
      break;
    case RequestOp::kClosePeriod:
    case RequestOp::kListMechanisms:
    case RequestOp::kSnapshot:
    case RequestOp::kShutdown:
    case RequestOp::kServerInfo:
    case RequestOp::kReplSync:
    case RequestOp::kTenancyState:
    case RequestOp::kEvict:
      break;
  }
  return obj;
}

Result<Request> RequestFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "request"));
  Result<int> version = CheckVersion(v, "request");
  if (!version.ok()) return version.status();
  Result<std::string> op_name = GetString(v, "op", "request");
  if (!op_name.ok()) return op_name.status();
  std::optional<RequestOp> op = RequestOpFromName(*op_name);
  if (!op) {
    return Status::InvalidArgument("request: unknown op \"" + *op_name +
                                   "\"");
  }
  if (*version < RequestOpMinVersion(*op)) {
    return Status::InvalidArgument(
        "request: op \"" + *op_name + "\" requires protocol version " +
        std::to_string(RequestOpMinVersion(*op)));
  }
  Request request;
  request.op = *op;
  request.version = *version;
  if (v.Find("id") != nullptr) {
    Result<std::string> id = GetString(v, "id", "request");
    if (!id.ok()) return id.status();
    request.id = std::move(*id);
  }
  if (OpTakesTenancy(request.op)) {
    Result<std::string> tenancy = GetString(v, "tenancy", "request");
    if (!tenancy.ok()) return tenancy.status();
    if (tenancy->empty()) {
      return Status::InvalidArgument("request: \"tenancy\" must be non-empty");
    }
    request.tenancy = std::move(*tenancy);
  }
  switch (request.op) {
    case RequestOp::kOpenPeriod: {
      OPTSHARE_RETURN_NOT_OK(CheckFields(
          v, {"v", "op", "id", "tenancy", "catalog", "config"},
          "open_period"));
      if (const JsonValue* catalog = v.Find("catalog")) {
        Result<CatalogSpec> spec = CatalogSpecFromJson(*catalog);
        if (!spec.ok()) return spec.status();
        request.catalog = std::move(*spec);
      }
      if (const JsonValue* config = v.Find("config")) {
        Result<ServiceConfig> parsed = ServiceConfigFromJson(*config);
        if (!parsed.ok()) return parsed.status();
        request.config = std::move(*parsed);
      }
      break;
    }
    case RequestOp::kSubmit:
    case RequestOp::kQueryPrice: {
      const char* ctx =
          request.op == RequestOp::kSubmit ? "submit" : "query_price";
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(v, {"v", "op", "id", "tenancy", "tenants"}, ctx));
      const JsonValue* tenants = v.Find("tenants");
      if (tenants == nullptr || !tenants->is_array()) {
        return Status::InvalidArgument(std::string(ctx) +
                                       ": field \"tenants\" must be an array");
      }
      for (const JsonValue& tenant_v : tenants->AsArray()) {
        Result<simdb::SimUser> tenant = SimUserFromJson(tenant_v);
        if (!tenant.ok()) return tenant.status();
        request.tenants.push_back(std::move(*tenant));
      }
      break;
    }
    case RequestOp::kDepart: {
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(v, {"v", "op", "id", "tenancy", "tenant"}, "depart"));
      Result<int> tenant = GetInt(v, "tenant", "depart");
      if (!tenant.ok()) return tenant.status();
      request.tenant = *tenant;
      break;
    }
    case RequestOp::kAdvanceSlot: {
      OPTSHARE_RETURN_NOT_OK(CheckFields(
          v, {"v", "op", "id", "tenancy", "slots"}, "advance_slot"));
      if (v.Find("slots") != nullptr) {
        Result<int> slots = GetInt(v, "slots", "advance_slot");
        if (!slots.ok()) return slots.status();
        if (*slots < 1) {
          return Status::InvalidArgument(
              "advance_slot: \"slots\" must be >= 1");
        }
        request.slots = *slots;
      }
      break;
    }
    case RequestOp::kReplAppend: {
      OPTSHARE_RETURN_NOT_OK(CheckFields(
          v, {"v", "op", "id", "tenancy", "record"}, "repl_append"));
      Result<std::string> record = GetString(v, "record", "repl_append");
      if (!record.ok()) return record.status();
      request.record = std::move(*record);
      break;
    }
    case RequestOp::kReplCheckpoint: {
      OPTSHARE_RETURN_NOT_OK(CheckFields(
          v, {"v", "op", "id", "tenancy", "snapshot"}, "repl_checkpoint"));
      const JsonValue* snapshot = v.Find("snapshot");
      if (snapshot == nullptr || !snapshot->is_object()) {
        return Status::InvalidArgument(
            "repl_checkpoint: field \"snapshot\" must be an object");
      }
      request.snapshot = *snapshot;
      break;
    }
    case RequestOp::kClusterUpdate: {
      OPTSHARE_RETURN_NOT_OK(CheckFields(
          v, {"v", "op", "id", "placement"}, "cluster_update"));
      const JsonValue* placement = v.Find("placement");
      if (placement == nullptr || !placement->is_object()) {
        return Status::InvalidArgument(
            "cluster_update: field \"placement\" must be an object");
      }
      request.placement = *placement;
      break;
    }
    case RequestOp::kRestore:
    case RequestOp::kExport: {
      const char* ctx =
          request.op == RequestOp::kRestore ? "restore" : "export";
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(v, {"v", "op", "id", "tenancy"}, ctx));
      if (v.Find("tenancy") != nullptr) {
        Result<std::string> tenancy = GetString(v, "tenancy", ctx);
        if (!tenancy.ok()) return tenancy.status();
        if (tenancy->empty()) {
          return Status::InvalidArgument(
              std::string(ctx) + ": \"tenancy\" must be non-empty when present");
        }
        request.tenancy = std::move(*tenancy);
      }
      break;
    }
    case RequestOp::kReport:
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(v, {"v", "op", "id", "tenancy", "period"}, "report"));
      if (v.Find("period") != nullptr) {
        Result<int> period = GetInt(v, "period", "report");
        if (!period.ok()) return period.status();
        if (*period < 1) {
          return Status::InvalidArgument("report: \"period\" must be >= 1");
        }
        request.period = *period;
      }
      break;
    case RequestOp::kClosePeriod:
    case RequestOp::kSnapshot:
    case RequestOp::kReplSync:
    case RequestOp::kTenancyState:
    case RequestOp::kEvict:
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(v, {"v", "op", "id", "tenancy"}, "request"));
      break;
    case RequestOp::kBatch: {
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(v, {"v", "op", "id", "requests"}, "batch"));
      const JsonValue* members = v.Find("requests");
      if (members == nullptr || !members->is_array()) {
        return Status::InvalidArgument(
            "batch: field \"requests\" must be an array");
      }
      if (members->AsArray().empty()) {
        return Status::InvalidArgument(
            "batch: \"requests\" must be non-empty");
      }
      request.requests.reserve(members->AsArray().size());
      for (const JsonValue& member_v : members->AsArray()) {
        Result<Request> member = RequestFromJson(member_v);
        if (!member.ok()) return member.status();
        if (member->op == RequestOp::kBatch) {
          return Status::InvalidArgument(
              "batch: members may not themselves be batches");
        }
        if (member->op == RequestOp::kShutdown) {
          return Status::InvalidArgument(
              "batch: members may not be shutdowns");
        }
        request.requests.push_back(std::move(*member));
      }
      break;
    }
    case RequestOp::kListMechanisms:
    case RequestOp::kShutdown:
    case RequestOp::kServerInfo:
      OPTSHARE_RETURN_NOT_OK(
          CheckFields(v, {"v", "op", "id"}, "request"));
      break;
  }
  return request;
}

// -- Responses --------------------------------------------------------------

JsonValue ToJson(const Response& response) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::Number(response.version));
  if (!response.id.empty()) obj.Set("id", JsonValue::Str(response.id));
  obj.Set("ok", JsonValue::Bool(response.status.ok()));
  if (response.status.ok()) {
    if (!response.raw_payload.empty()) {
      // The pre-serialized form is authoritative; rebuild the tree a typed
      // consumer expects. Producers guarantee it parses (it was serialized
      // from Responses), but fall back to the tree payload defensively.
      Result<JsonValue> parsed = JsonValue::Parse(response.raw_payload);
      obj.Set("result", parsed.ok() ? std::move(*parsed) : response.payload);
    } else {
      obj.Set("result", response.payload);
    }
  } else {
    JsonValue error = JsonValue::MakeObject();
    error.Set("code", JsonValue::Str(std::string(
                          StatusCodeName(response.status.code()))));
    error.Set("message", JsonValue::Str(response.status.message()));
    if (response.retry_after_ms > 0) {
      error.Set("retry_after_ms", JsonValue::Number(response.retry_after_ms));
    }
    obj.Set("error", std::move(error));
  }
  return obj;
}

Result<Response> ResponseFromJson(const JsonValue& v) {
  OPTSHARE_RETURN_NOT_OK(CheckObject(v, "response"));
  Result<int> version = CheckVersion(v, "response");
  if (!version.ok()) return version.status();
  OPTSHARE_RETURN_NOT_OK(
      CheckFields(v, {"v", "id", "ok", "result", "error"}, "response"));
  Response response;
  response.version = *version;
  if (v.Find("id") != nullptr) {
    Result<std::string> id = GetString(v, "id", "response");
    if (!id.ok()) return id.status();
    response.id = std::move(*id);
  }
  Result<bool> ok = GetBool(v, "ok", "response");
  if (!ok.ok()) return ok.status();
  if (*ok) {
    if (v.Find("error") != nullptr) {
      return Status::InvalidArgument("response: ok response carries an error");
    }
    const JsonValue* payload = v.Find("result");
    if (payload == nullptr) {
      return Status::InvalidArgument("response: missing \"result\"");
    }
    response.payload = *payload;
    return response;
  }
  if (v.Find("result") != nullptr) {
    return Status::InvalidArgument("response: error response carries a result");
  }
  const JsonValue* error = v.Find("error");
  if (error == nullptr) {
    return Status::InvalidArgument("response: missing \"error\"");
  }
  OPTSHARE_RETURN_NOT_OK(CheckObject(*error, "error"));
  OPTSHARE_RETURN_NOT_OK(
      CheckFields(*error, {"code", "message", "retry_after_ms"}, "error"));
  Result<std::string> code_name = GetString(*error, "code", "error");
  if (!code_name.ok()) return code_name.status();
  Result<std::string> message = GetString(*error, "message", "error");
  if (!message.ok()) return message.status();
  std::optional<StatusCode> code = StatusCodeFromName(*code_name);
  if (!code || *code == StatusCode::kOk) {
    return Status::InvalidArgument("error: unknown status code \"" +
                                   *code_name + "\"");
  }
  if (error->Find("retry_after_ms") != nullptr) {
    Result<int> retry = GetInt(*error, "retry_after_ms", "error");
    if (!retry.ok()) return retry.status();
    if (*retry < 1) {
      return Status::InvalidArgument(
          "error: \"retry_after_ms\" must be >= 1");
    }
    response.retry_after_ms = *retry;
  }
  response.status = MakeStatus(*code, std::move(*message));
  return response;
}

Result<Request> ParseRequestLineTree(const std::string& line,
                                     size_t max_bytes) {
  if (max_bytes > 0 && line.size() > max_bytes) {
    return Status::ResourceExhausted(
        "request line of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(max_bytes) + "-byte cap");
  }
  Result<JsonValue> doc = JsonValue::Parse(line);
  if (!doc.ok()) return doc.status();
  return RequestFromJson(*doc);
}

Result<Request> ParseRequestLine(const std::string& line, size_t max_bytes) {
  if (max_bytes > 0 && line.size() > max_bytes) {
    return Status::ResourceExhausted(
        "request line of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(max_bytes) + "-byte cap");
  }
  Request fast;
  if (TryFastParseRequestLine(line, &fast)) return fast;
  // The scanner only accepts documents it is certain the tree parser
  // accepts identically; everything else — including every malformed
  // line — re-parses here so rejection semantics cannot drift.
  return ParseRequestLineTree(line);
}

std::string FormatResponseLine(const Response& response) {
  std::string out;
  AppendResponseLine(response, &out);
  return out;
}

void AppendResponseLine(const Response& response, std::string* out) {
  // Mirrors ToJson(response).Dump() byte-for-byte: JsonValue objects
  // serialize with sorted keys, so the envelope order is
  // error < id < ok < result < v (and within error,
  // code < message < retry_after_ms).
  out->push_back('{');
  if (!response.status.ok()) {
    out->append("\"error\":{\"code\":");
    JsonEscapeTo(StatusCodeName(response.status.code()), out);
    out->append(",\"message\":");
    JsonEscapeTo(response.status.message(), out);
    if (response.retry_after_ms > 0) {
      out->append(",\"retry_after_ms\":");
      out->append(std::to_string(response.retry_after_ms));
    }
    out->append("},");
  }
  if (!response.id.empty()) {
    out->append("\"id\":");
    JsonEscapeTo(response.id, out);
    out->push_back(',');
  }
  out->append(response.status.ok() ? "\"ok\":true" : "\"ok\":false");
  if (response.status.ok()) {
    out->append(",\"result\":");
    if (!response.raw_payload.empty()) {
      out->append(response.raw_payload);
    } else {
      response.payload.DumpTo(out);
    }
  }
  out->append(",\"v\":");
  out->append(std::to_string(response.version));
  out->push_back('}');
}

Response ErrorResponse(std::string id, Status status) {
  Response response;
  response.id = std::move(id);
  response.status = std::move(status);
  return response;
}

Response OkResponse(std::string id, JsonValue payload) {
  Response response;
  response.id = std::move(id);
  response.payload = std::move(payload);
  return response;
}

}  // namespace optshare::service::protocol
