#include "service/admission.h"

#include <algorithm>
#include <cmath>

namespace optshare::service {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec), burst_(burst) {
  if (rate_ > 0.0 && burst_ <= 0.0) burst_ = rate_;
  // A bucket that cannot hold one whole request would reject everything;
  // clamp so a configured-but-tiny burst still admits single requests.
  if (rate_ > 0.0) burst_ = std::max(burst_, 1.0);
}

TokenBucket::Decision TokenBucket::AcquireAt(
    double cost, std::chrono::steady_clock::time_point now) {
  Decision decision;
  if (rate_ <= 0.0 || cost <= 0.0) return decision;
  if (!primed_) {
    tokens_ = burst_;
    primed_ = true;
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    if (elapsed > 0.0) {
      tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    }
  }
  last_ = now;
  if (tokens_ >= cost) {
    tokens_ -= cost;
    return decision;
  }
  decision.admitted = false;
  const double wait_s = (cost - tokens_) / rate_;
  decision.retry_after_ms =
      std::max(1, static_cast<int>(std::ceil(wait_s * 1000.0)));
  return decision;
}

void AdmissionController::SetTenancyLimit(const std::string& tenancy,
                                          const AdmissionConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (config == AdmissionConfig{}) {
    // A default config is "no override": the tenancy reverts to the server
    // default. Keep a default-derived bucket's state if one exists.
    if (overrides_.erase(tenancy) > 0) buckets_.erase(tenancy);
    return;
  }
  auto it = overrides_.find(tenancy);
  if (it != overrides_.end() && it->second == config) return;  // No reset.
  overrides_[tenancy] = config;
  buckets_[tenancy] =
      TokenBucket(config.mutating_ops_per_sec, config.burst);
}

TokenBucket::Decision AdmissionController::Admit(const std::string& tenancy,
                                                 double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  TokenBucket::Decision decision;
  if (cost <= 0.0) return decision;
  auto it = buckets_.find(tenancy);
  if (it == buckets_.end()) {
    if (default_.unlimited()) {
      // The common case: no quota anywhere. Count it admitted without
      // growing the bucket map per tenancy.
      ++stats_.admitted;
      return decision;
    }
    it = buckets_
             .emplace(tenancy, TokenBucket(default_.mutating_ops_per_sec,
                                           default_.burst))
             .first;
  }
  decision = it->second.Acquire(cost);
  if (decision.admitted) {
    ++stats_.admitted;
  } else {
    ++stats_.rejected;
  }
  return decision;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

JsonValue AdmissionController::InfoJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("default_mutating_ops_per_sec",
          JsonValue::Number(default_.mutating_ops_per_sec));
  obj.Set("tenancy_overrides",
          JsonValue::Number(static_cast<double>(overrides_.size())));
  obj.Set("admitted", JsonValue::Number(static_cast<double>(stats_.admitted)));
  obj.Set("rejected", JsonValue::Number(static_cast<double>(stats_.rejected)));
  return obj;
}

}  // namespace optshare::service
