// MarketplaceServer: the multi-tenant front end of the pricing service.
// Where PricingSession is one billing period for one caller,
// MarketplaceServer owns many named tenancies — each a catalog plus a
// sequence of PricingSession periods with carried-over structures — and
// drives them through the versioned wire protocol (service/protocol.h):
//
//   MarketplaceServer server({.num_workers = 8});
//   server.CreateTenancy("acme", std::move(catalog));       // or open_period
//   auto future = server.Dispatch(open_period_request);      //   with a
//   protocol::Response r = future.get();                     //   CatalogSpec
//
// Execution is sharded: tenancy names hash onto a worker pool
// (common/thread_pool.h), so requests for one tenancy execute strictly in
// dispatch order on one worker — the per-tenancy state (catalog, open
// session, built-structure set) needs no locks — while distinct tenancies
// price concurrently. Shared read paths are shareable by construction: the
// MechanismRegistry is mutex-guarded, simdb::Catalog is only read once a
// tenancy is created, and each PricingSession lives entirely on its shard.
//
// Replaying a recorded request stream through Dispatch/HandleLine yields
// PeriodReports bit-identical to driving a PricingSession directly with the
// same tenants (tests/service_server_test.cc); PricingSession and
// CloudService::RunPeriod remain the embedded single-tenant adapters.
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "service/pricing_session.h"
#include "service/protocol.h"

namespace optshare::service {

struct ServerOptions {
  /// Worker threads requests shard onto (clamped to >= 1). Tenancies whose
  /// names hash to the same shard share a worker; 8 matches the bench
  /// sweep's top end.
  int num_workers = 4;
};

class MarketplaceServer {
 public:
  explicit MarketplaceServer(ServerOptions options = {});
  /// Drains in-flight requests before shutting the pool down.
  ~MarketplaceServer();

  MarketplaceServer(const MarketplaceServer&) = delete;
  MarketplaceServer& operator=(const MarketplaceServer&) = delete;

  /// Creates a tenancy around an existing catalog (the embedding-caller
  /// path; wire callers bootstrap via open_period's CatalogSpec). `config`
  /// becomes the tenancy's default period configuration. AlreadyExists for
  /// duplicate names. Runs on the tenancy's shard, so it serializes with
  /// any wire traffic already queued for the name.
  Status CreateTenancy(const std::string& name, simdb::Catalog catalog,
                       ServiceConfig config = {});

  /// Enqueues `request` on its tenancy's shard and returns the response
  /// future. Requests for one tenancy execute in Dispatch order; requests
  /// for different tenancies run concurrently across workers.
  std::future<protocol::Response> Dispatch(protocol::Request request);

  /// Synchronous convenience: Dispatch + wait.
  protocol::Response Handle(protocol::Request request);

  /// The wire loop's unit of work: parse one request line, execute it,
  /// serialize the response line (parse errors become error responses, so
  /// the caller always gets exactly one line back).
  std::string HandleLine(const std::string& line);

  /// Blocks until every request dispatched before the call has finished.
  void Drain();

  int num_workers() const { return pool_.num_threads(); }
  /// Names of existing tenancies, sorted.
  std::vector<std::string> TenancyNames() const;

 private:
  /// Per-tenancy state. Owned by the map; only ever touched on the
  /// tenancy's shard after creation (the map mutex guards the map shape,
  /// not the tenancy contents).
  struct Tenancy {
    std::string name;
    simdb::Catalog catalog;
    ServiceConfig config;
    std::vector<std::string> built;
    int periods_run = 0;
    double cumulative_balance = 0.0;
    double cumulative_utility = 0.0;
    std::optional<PricingSession> session;  ///< Open period, if any.
  };

  size_t ShardOf(const std::string& tenancy) const;
  /// Executes `request` on the current (shard) thread.
  protocol::Response Execute(const protocol::Request& request);
  protocol::Response ExecuteOpenPeriod(const protocol::Request& request);
  protocol::Response ExecuteTenancyOp(const protocol::Request& request);
  static protocol::Response ListMechanisms(const protocol::Request& request);

  /// Map lookup (nullptr when absent). The returned pointer is stable: the
  /// map stores unique_ptrs, and a tenancy is only ever erased by its own
  /// shard (rolling back a failed creating open_period).
  Tenancy* FindTenancy(const std::string& name);

  mutable std::mutex mu_;  ///< Guards tenancies_ (the map, not its values).
  std::unordered_map<std::string, std::unique_ptr<Tenancy>> tenancies_;
  ThreadPool pool_;  ///< Last member: destroyed first, so workers stop
                     ///< before the state they touch goes away.
};

}  // namespace optshare::service
