// MarketplaceServer: the multi-tenant front end of the pricing service.
// Where PricingSession is one billing period for one caller,
// MarketplaceServer owns many named tenancies — each a catalog plus a
// sequence of PricingSession periods with carried-over structures — and
// drives them through the versioned wire protocol (service/protocol.h):
//
//   MarketplaceServer server({.num_workers = 8});
//   server.CreateTenancy("acme", std::move(catalog));       // or open_period
//   auto future = server.Dispatch(open_period_request);      //   with a
//   protocol::Response r = future.get();                     //   CatalogSpec
//
// Execution is sharded: tenancy names hash onto a worker pool
// (common/thread_pool.h), so requests for one tenancy execute strictly in
// dispatch order on one worker — the per-tenancy state (catalog, open
// session, built-structure set) needs no locks — while distinct tenancies
// price concurrently. Shared read paths are shareable by construction: the
// MechanismRegistry is mutex-guarded, simdb::Catalog is only read once a
// tenancy is created, and each PricingSession lives entirely on its shard.
//
// Durability (service/state_store.h): every state-mutating request is
// journaled to the server's StateStore before it executes (WAL), and each
// close_period checkpoints the tenancy's period-boundary state and
// truncates the journal. Recover() inverts that: it loads each persisted
// tenancy's snapshot and replays its journal tail through the same
// bit-identical dispatch path, restoring catalogs, carried built-sets,
// period counters and cumulative ledgers — including a period that was
// open when the process died. The default MemoryStateStore keeps the
// pre-durability behavior; FileStateStore persists across processes.
//
// Replaying a recorded request stream through Dispatch/HandleLine yields
// PeriodReports bit-identical to driving a PricingSession directly with the
// same tenants (tests/service_server_test.cc); PricingSession and
// CloudService::RunPeriod remain the embedded single-tenant adapters.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytics/read_view.h"
#include "common/thread_pool.h"
#include "service/admission.h"
#include "service/metrics.h"
#include "service/pricing_session.h"
#include "service/protocol.h"
#include "service/state_store.h"

namespace optshare::service {

struct ServerOptions {
  /// Worker threads requests shard onto (clamped to >= 1). Tenancies whose
  /// names hash to the same shard share a worker; 8 matches the bench
  /// sweep's top end.
  int num_workers = 4;
  /// Cap on one request line through HandleLine; longer lines are rejected
  /// with ResourceExhausted before parsing. 0 disables the cap.
  size_t max_request_bytes = protocol::kDefaultMaxRequestBytes;
  /// Cap on one v3 batch frame line. Batch frames carry many requests, so
  /// they get their own (larger) budget instead of being silently cut off
  /// at max_request_bytes; the effective cap is the larger of the two (see
  /// max_batch_request_bytes()). 0 inherits max_request_bytes semantics.
  size_t max_batch_request_bytes = protocol::kDefaultMaxBatchRequestBytes;
  /// Server-wide default admission quota per tenancy (mutating ops only).
  /// The default (unlimited) changes nothing; a tenancy's open_period
  /// config can override it either way.
  AdmissionConfig admission;
  /// Durability backend. Null = a fresh MemoryStateStore (no cross-process
  /// persistence, exactly the historical behavior).
  std::shared_ptr<StateStore> store;
  /// Directory the `export` op writes the columnar analytics dump into
  /// (src/analytics/columnar.h). Empty = export answers FailedPrecondition.
  /// The server never takes a path off the wire; this is the only target.
  std::string export_dir;
  /// Serve report / query_price / server_info / export inline from the
  /// published ReadView (src/analytics/read_view.h) on the caller's thread
  /// instead of queueing behind the tenancy's FIFO shard. Views and deltas
  /// are published either way — the flag only gates the inline serving, so
  /// a read-path-off server still answers query_price and historical
  /// reports identically (the differential tests rely on that).
  bool enable_read_path = true;
};

/// What one Recover() (or wire `restore`) pass did.
struct RecoveryStats {
  int tenancies_recovered = 0;   ///< Tenancies present after the pass.
  int tenancies_skipped = 0;     ///< Already live in this server.
  int snapshots_loaded = 0;
  int journal_records_replayed = 0;
  /// Replayed records whose responses were errors: the replay reproduced a
  /// request that also failed live, so this is not by itself a problem.
  int journal_records_failed = 0;
  /// Torn journal tails dropped (crash mid-append).
  int journal_torn = 0;
};

/// The stats object as served by the wire `restore` and `server_info` ops
/// (and printed by `optshare_cli recover`).
JsonValue ToJson(const RecoveryStats& stats);

class MarketplaceServer {
 public:
  explicit MarketplaceServer(ServerOptions options = {});
  /// Drains in-flight requests before shutting the pool down. Does NOT
  /// checkpoint (a destructor-only exit models a crash); call Shutdown()
  /// for a graceful, durable exit.
  ~MarketplaceServer();

  MarketplaceServer(const MarketplaceServer&) = delete;
  MarketplaceServer& operator=(const MarketplaceServer&) = delete;

  /// Creates a tenancy around an existing catalog (the embedding-caller
  /// path; wire callers bootstrap via open_period's CatalogSpec). `config`
  /// becomes the tenancy's default period configuration. AlreadyExists for
  /// duplicate names. Runs on the tenancy's shard, so it serializes with
  /// any wire traffic already queued for the name. The new tenancy is
  /// checkpointed to the state store immediately.
  Status CreateTenancy(const std::string& name, simdb::Catalog catalog,
                       ServiceConfig config = {});

  /// Enqueues `request` on its tenancy's shard and returns the response
  /// future. Requests for one tenancy execute in Dispatch order; requests
  /// for different tenancies run concurrently across workers.
  std::future<protocol::Response> Dispatch(protocol::Request request);

  /// Callback form of Dispatch for transports that deliver responses as
  /// they resolve (the stdin serve loop and the TCP NetServer): `done`
  /// fires exactly once, on the tenancy's worker thread, and must not
  /// throw. It may outlive the transport that submitted it — capture
  /// shared state by shared_ptr.
  /// `raw_line`, when non-null, is the exact wire line `request` was
  /// parsed from; batch dispatch reuses it as the journal record for a
  /// single-tenancy batch instead of re-serializing every member. It is
  /// only read during the DispatchCallback call itself — the caller's
  /// buffer may be reused as soon as the call returns.
  void DispatchCallback(protocol::Request request,
                        std::function<void(protocol::Response)> done,
                        const std::string* raw_line = nullptr);

  /// Synchronous convenience: Dispatch + wait.
  protocol::Response Handle(protocol::Request request);

  /// The wire loop's unit of work: parse one request line, execute it,
  /// serialize the response line (parse errors become error responses, so
  /// the caller always gets exactly one line back). Lines longer than
  /// ServerOptions::max_request_bytes answer ResourceExhausted unparsed.
  std::string HandleLine(const std::string& line);

  /// Blocks until every request dispatched before the call has finished.
  void Drain();

  /// Loads every tenancy persisted in the state store that is not already
  /// live: snapshot first, then the journal tail replayed through the
  /// regular dispatch path on the tenancy's own shard (so recovery is safe
  /// even while other tenancies serve traffic). Startup callers run it
  /// before accepting requests; the wire `restore` op runs the same pass.
  Result<RecoveryStats> Recover();

  /// Recover(), restricted to persisted tenancies `want` accepts. A
  /// cluster node booting with a placement map recovers only the
  /// tenancies it owns, even when its store also holds replica state.
  Result<RecoveryStats> RecoverMatching(
      std::function<bool(const std::string&)> want);

  /// Graceful exit: drains the worker pool, then makes every tenancy
  /// durable — period-boundary tenancies are checkpointed, tenancies with
  /// an open period get their journal fsync'd (the open period replays on
  /// the next Recover). Callers must stop dispatching first. Idempotent.
  Status Shutdown();

  /// Set once a wire `shutdown` request was accepted (or Shutdown ran);
  /// the serve loop polls this to exit its read loop.
  bool shutdown_requested() const { return shutdown_requested_.load(); }

  int num_workers() const { return pool_.num_threads(); }
  /// The request-line cap transports must enforce while framing (the same
  /// value HandleLine applies when parsing).
  size_t max_request_bytes() const { return max_request_bytes_; }
  /// The line cap transports must actually frame at: large enough for a
  /// legal v3 batch frame. Non-batch lines over max_request_bytes() still
  /// answer the plain-cap ResourceExhausted after framing. 0 = uncapped
  /// (mirrors max_request_bytes() == 0).
  size_t max_batch_request_bytes() const {
    if (max_request_bytes_ == 0) return 0;
    return std::max(max_request_bytes_, max_batch_request_bytes_);
  }
  const StateStore& store() const { return *store_; }

  /// Installs (or, with nullptr, removes) the transport-counters provider
  /// the wire `server_info` op folds into its payload as "transport" — the
  /// TCP front end registers its live connection/byte/request counters
  /// here. The provider runs on a worker thread; uninstalling blocks until
  /// any in-flight call returns, so the provider may reference state the
  /// caller is about to destroy.
  void SetTransportInfoProvider(std::function<JsonValue()> provider);

  /// Installs (or, with nullptr, removes) the handler for the wire
  /// `cluster_update` op — a cluster node registers its placement-map
  /// installer here. The handler receives the request's "placement"
  /// document and returns the response payload (or an error). Without a
  /// handler the op answers FailedPrecondition. Same locking contract as
  /// SetTransportInfoProvider.
  void SetClusterUpdateHandler(
      std::function<Result<JsonValue>(const JsonValue&)> handler);

  /// Names of existing tenancies, sorted.
  std::vector<std::string> TenancyNames() const;

 private:
  /// Per-tenancy state. Owned by the map; only ever touched on the
  /// tenancy's shard after creation (the map mutex guards the map shape,
  /// not the tenancy contents).
  struct Tenancy {
    std::string name;
    simdb::Catalog catalog;
    ServiceConfig config;
    std::vector<std::string> built;
    int periods_run = 0;
    double cumulative_balance = 0.0;
    double cumulative_utility = 0.0;
    std::optional<PricingSession> session;  ///< Open period, if any.
    /// Journal appends since this tenancy's last checkpoint/sync — the
    /// per-tenancy share of the server-wide fsync-lag gauge. Shard-local.
    uint64_t unsynced_appends = 0;
  };

  size_t ShardOf(const std::string& tenancy) const;
  /// Executes a v3 batch frame: members are grouped by tenancy (preserving
  /// submission order), each group runs as ONE task on its tenancy's shard,
  /// and `done` fires once with the ordered response batch after the last
  /// group completes. A group whose members are all plain session traffic
  /// journals as ONE record — the raw frame for a single-tenancy batch, a
  /// rebuilt sub-batch otherwise — appended before any member executes, so
  /// the group replays atomically per tenancy: after a crash either every
  /// member re-executes in order or none does, never a torn prefix. Groups
  /// carrying checkpoint-triggering members (open/close_period et al) keep
  /// the per-member WAL path, whose appends interleave correctly with
  /// journal truncation.
  void DispatchBatch(protocol::Request request,
                     std::function<void(protocol::Response)> done,
                     const std::string* raw_line);
  /// Executes `request` on the current (shard) thread. `persist` is false
  /// during journal replay: replayed requests must neither re-append to
  /// the journal they came from nor checkpoint mid-replay. The two-arg
  /// form counts the request toward op metrics iff it persists; the
  /// three-arg form decouples them for batch members whose group already
  /// journaled atomically (persist=false, count_metrics=true).
  protocol::Response Execute(const protocol::Request& request, bool persist);
  protocol::Response Execute(const protocol::Request& request, bool persist,
                             bool count_metrics);
  protocol::Response ExecuteOpenPeriod(const protocol::Request& request,
                                       bool persist);
  protocol::Response ExecuteTenancyOp(const protocol::Request& request,
                                      bool persist);
  protocol::Response ExecuteSnapshot(const protocol::Request& request,
                                     Tenancy& tenancy, bool persist);
  protocol::Response ExecuteRestore(const protocol::Request& request);
  protocol::Response ExecuteServerInfo(const protocol::Request& request);
  // The cluster ops (replication target + rebalance source surfaces).
  protocol::Response ExecuteReplAppend(const protocol::Request& request);
  protocol::Response ExecuteReplCheckpoint(const protocol::Request& request);
  protocol::Response ExecuteReplSync(const protocol::Request& request);
  protocol::Response ExecuteTenancyState(const protocol::Request& request);
  protocol::Response ExecuteEvict(const protocol::Request& request,
                                  bool persist);
  protocol::Response ExecuteClusterUpdate(const protocol::Request& request);
  static protocol::Response ListMechanisms(const protocol::Request& request);
  // The analytics ops. Both work exclusively off the published ReadView
  // atoms (never the live Tenancy), so they are safe on any thread — the
  // inline read path and the shard path call the very same functions.
  protocol::Response ExecuteQueryPrice(const protocol::Request& request);
  protocol::Response ExecuteExport(const protocol::Request& request);

  /// Answers a read op inline from the read path (no shard hop) when a
  /// published view allows it; false = caller must take the write path.
  bool TryServeRead(const protocol::Request& request,
                    protocol::Response* out);

  /// The tenancy's period-boundary state (what checkpoints and ReadViews
  /// are both built from).
  TenancySnapshot BoundaryOf(const Tenancy& tenancy) const;
  /// The tenancy's period-boundary state as a snapshot document.
  JsonValue SnapshotOf(const Tenancy& tenancy) const;
  /// The open session's observable scalars (all-zero when no period open).
  analytics::ReadDelta DeltaOf(const Tenancy& tenancy) const;

  struct RecoverOutcome {
    Status status;
    RecoveryStats stats;
  };
  /// Rebuilds one persisted tenancy on the current thread (must be its
  /// shard, or a quiescent server).
  RecoverOutcome RecoverTenancy(const PersistedTenancy& persisted);
  /// Shared by Recover() and the wire restore op. `current_worker` names
  /// the pool worker the caller occupies (so its own shard's tenancies are
  /// recovered inline instead of deadlocking on a self-wait); nullopt when
  /// called from outside the pool. A non-null `want` restricts the pass to
  /// the persisted tenancies it accepts.
  Result<RecoveryStats> RecoverImpl(
      std::optional<size_t> current_worker,
      const std::function<bool(const std::string&)>& want = nullptr);

  /// Map lookup (nullptr when absent). The returned pointer is stable: the
  /// map stores unique_ptrs, and a tenancy is only ever erased by its own
  /// shard (rolling back a failed creating open_period).
  Tenancy* FindTenancy(const std::string& name);

  mutable std::mutex mu_;  ///< Guards tenancies_ (the map, not its values).
  std::unordered_map<std::string, std::unique_ptr<Tenancy>> tenancies_;
  std::shared_ptr<StateStore> store_;
  size_t max_request_bytes_ = protocol::kDefaultMaxRequestBytes;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> shut_down_{false};
  mutable std::mutex recovery_mu_;  ///< Guards the two fields below.
  RecoveryStats last_recovery_;
  int recoveries_run_ = 0;
  mutable std::mutex transport_mu_;  ///< Guards transport_info_; held across
                                     ///< the provider call (see setter).
  std::function<JsonValue()> transport_info_;
  mutable std::mutex cluster_mu_;  ///< Guards cluster_update_; same contract.
  std::function<Result<JsonValue>(const JsonValue&)> cluster_update_;
  /// The read path's data plane. Publishes happen on each tenancy's shard
  /// worker (the single writer); reads happen anywhere.
  analytics::ReadRegistry read_registry_;
  std::string export_dir_;
  bool enable_read_path_ = true;
  std::atomic<uint64_t> reads_served_{0};    ///< Inline, shard-bypassing.
  std::atomic<uint64_t> read_fallbacks_{0};  ///< Read ops sent to the shard.
  std::atomic<uint64_t> export_rows_written_{0};
  std::mutex export_mu_;  ///< Serializes export passes over export_dir_.
  /// Live (persist=true) executions per op, indexed by RequestOp value;
  /// served by server_info as "ops" so cluster health is observable.
  std::atomic<uint64_t> op_counts_[protocol::kNumRequestOps] = {};
  /// Live execution latency per op (shard-side and inline reads alike),
  /// served by server_info as "metrics". Recording is relaxed-atomic.
  LatencyHistogram op_latency_[protocol::kNumRequestOps];
  /// Journal appends not yet covered by a checkpoint/sync, summed over
  /// tenancies — the "fsync lag" gauge in server_info's metrics section.
  std::atomic<uint64_t> unsynced_total_{0};
  /// Per-tenancy mutating-op quotas (protocol v3 admission control).
  /// Consulted by DispatchCallback/DispatchBatch only — replay calls
  /// Execute directly, so recovery is never throttled.
  AdmissionController admission_;
  size_t max_batch_request_bytes_ = protocol::kDefaultMaxBatchRequestBytes;
  ThreadPool pool_;  ///< Last member: destroyed first, so workers stop
                     ///< before the state they touch goes away.
};

}  // namespace optshare::service
