#include "service/pricing_session.h"

#include <algorithm>
#include <utility>

#include "baseline/baseline_mechanisms.h"

namespace optshare::service {

PricingSession::PricingSession(const simdb::Catalog* catalog,
                               ServiceConfig config,
                               std::vector<std::string> built, int period)
    : catalog_(catalog),
      config_(std::move(config)),
      built_before_(std::move(built)),
      period_(period),
      model_(catalog),
      pricing_(config_.pricing) {}

Result<PricingSession> PricingSession::Open(const simdb::Catalog* catalog,
                                            ServiceConfig config,
                                            std::vector<std::string> built,
                                            int period) {
  OPTSHARE_RETURN_NOT_OK(config.Validate());
  if (catalog == nullptr) {
    return Status::InvalidArgument("session needs a catalog");
  }
  // Mechanism choice is a runtime parameter: resolve the configured name
  // now so a bad name fails at Open, not mid-period.
  RegisterBaselineMechanisms();
  Result<std::unique_ptr<OnlineMechanism>> probe =
      ResolveOnlineMechanism(config.mechanism, GameKind::kAdditiveOnline);
  if (!probe.ok()) return probe.status();
  return PricingSession(catalog, std::move(config), std::move(built), period);
}

Result<UserId> PricingSession::Submit(const simdb::SimUser& tenant) {
  if (closed_) return Status::FailedPrecondition("session is closed");
  if (!broken_.ok()) return broken_;
  if (tenant.start < 1 || tenant.end < tenant.start ||
      tenant.end > config_.slots_per_period) {
    return Status::InvalidArgument("tenant interval outside the period's slots");
  }
  if (tenant.start <= current_) {
    return Status::InvalidArgument(
        "tenant arrives in an elapsed slot (slot " +
        std::to_string(tenant.start) + ", already advanced through " +
        std::to_string(current_) + ")");
  }
  roster_.push_back(tenant);
  eff_end_.push_back(tenant.end);
  return static_cast<UserId>(roster_.size()) - 1;
}

Status PricingSession::Submit(const std::vector<simdb::SimUser>& tenants) {
  for (const auto& tenant : tenants) {
    Result<UserId> id = Submit(tenant);
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

Status PricingSession::Depart(UserId tenant) {
  if (closed_) return Status::FailedPrecondition("session is closed");
  OPTSHARE_RETURN_NOT_OK(broken_);
  if (tenant < 0 || tenant >= num_tenants()) {
    return Status::NotFound("unknown tenant id");
  }
  const size_t u = static_cast<size_t>(tenant);
  const TimeSlot t = current_ + 1;  // Present through the upcoming slot.
  if (roster_[u].start > t) {
    return Status::InvalidArgument("cannot depart before arrival");
  }
  if (eff_end_[u] <= t) return Status::OK();
  eff_end_[u] = t;
  // Tenants the advisor has not integrated yet have no arrival events in
  // any structure's queue; their (truncated) intervals reach the engines
  // through DeclareTenant at integration instead.
  if (u < integrated_) {
    for (ProposalState& state : states_) {
      state.pending.push_back(SlotEvent::UserDepart(tenant));
    }
  }
  return Status::OK();
}

void PricingSession::DeclareTenant(ProposalState& state, UserId i,
                                   double savings) {
  const size_t u = static_cast<size_t>(i);
  if (u >= state.rate.size()) {
    const size_t n = roster_.size();
    state.rate.resize(n, 0.0);
    state.vstart.resize(n, 0);
    state.vend.resize(n, 0);
    state.value_acc.resize(n, 0.0);
    state.first_served.resize(n, 0);
  }
  const simdb::SimUser& tenant = roster_[u];
  const TimeSlot arrive_end = std::min(tenant.end, eff_end_[u]);
  state.pending.push_back(
      SlotEvent::UserArrive(i, tenant.start, arrive_end));
  if (savings > 0.0) {
    ++state.num_candidates;
    // The tenant's per-slot rate over her declared interval — the same
    // division the batch game construction used — clipped to the slots
    // that remain when the structure appeared after she arrived.
    const double per_slot =
        savings / static_cast<double>(tenant.end - tenant.start + 1);
    const TimeSlot declare_from = std::max(tenant.start, current_ + 1);
    state.rate[u] = per_slot;
    state.vstart[u] = declare_from;
    state.vend[u] = tenant.end;
    const TimeSlot declare_to = std::min(tenant.end, eff_end_[u]);
    if (declare_from <= declare_to) {
      state.pending.push_back(SlotEvent::DeclareValues(
          i, 0, SlotValues::Constant(declare_from, declare_to, per_slot)));
    }
  }
}

Status PricingSession::IntegratePending() {
  if (integrated_ == roster_.size()) return Status::OK();

  Result<std::vector<simdb::Proposal>> proposals_r =
      simdb::ProposeOptimizations(*catalog_, model_, pricing_, roster_,
                                  config_.advisor);
  if (!proposals_r.ok()) return proposals_r.status();

  std::vector<char> matched(states_.size(), 0);
  for (const simdb::Proposal& fresh : *proposals_r) {
    const std::string name = fresh.spec.DisplayName();
    size_t idx = states_.size();
    for (size_t s = 0; s < states_.size(); ++s) {
      if (states_[s].name == name) {
        idx = s;
        break;
      }
    }
    if (idx < states_.size()) {
      // Known structure: admit only the tenants the advisor had not seen.
      matched[idx] = 1;
      for (size_t i = integrated_; i < roster_.size(); ++i) {
        DeclareTenant(states_[idx], static_cast<UserId>(i),
                      fresh.user_savings[i]);
      }
      continue;
    }
    // New structure candidate: open its game at the current slot.
    ProposalState state;
    state.spec = fresh.spec;
    state.name = name;
    state.carried_over =
        std::find(built_before_.begin(), built_before_.end(), name) !=
        built_before_.end();
    state.price = state.carried_over
                      ? std::max(fresh.cost * config_.maintenance_fraction,
                                 1e-12)
                      : fresh.cost;
    Result<std::unique_ptr<OnlineMechanism>> mech =
        ResolveOnlineMechanism(config_.mechanism, GameKind::kAdditiveOnline);
    if (!mech.ok()) return mech.status();
    state.mech = std::move(*mech);
    state.native = state.mech->native();
    OnlineGameMeta meta;
    meta.kind = GameKind::kAdditiveOnline;
    meta.num_slots = config_.slots_per_period;
    meta.costs = {state.price};
    OPTSHARE_RETURN_NOT_OK(state.mech->Begin(meta));
    // Catch up on the slots that elapsed before the structure existed.
    for (TimeSlot t = 1; t <= current_; ++t) {
      Result<OnlineSlotReport> report = state.mech->OnSlot(t, {});
      if (!report.ok()) return report.status();
    }
    for (size_t i = 0; i < roster_.size(); ++i) {
      DeclareTenant(state, static_cast<UserId>(i), fresh.user_savings[i]);
    }
    states_.push_back(std::move(state));
  }

  // Structures the fresh run no longer proposes (their benefit ratio fell
  // with the new roster mix) are still being priced: score the new tenants
  // against their specs directly.
  if (std::find(matched.begin(), matched.end(), 0) != matched.end()) {
    const std::vector<simdb::SimUser> newcomers(
        roster_.begin() + static_cast<std::ptrdiff_t>(integrated_),
        roster_.end());
    for (size_t s = 0; s < matched.size(); ++s) {
      if (matched[s]) continue;
      Result<std::vector<double>> savings = simdb::ProposalUserSavings(
          *catalog_, model_, pricing_, states_[s].spec, newcomers);
      if (!savings.ok()) return savings.status();
      for (size_t k = 0; k < newcomers.size(); ++k) {
        DeclareTenant(states_[s], static_cast<UserId>(integrated_ + k),
                      (*savings)[k]);
      }
    }
  }

  integrated_ = roster_.size();
  return Status::OK();
}

void PricingSession::AccrueSlot(ProposalState& state, TimeSlot slot,
                                const OnlineSlotReport& report) {
  for (const auto& priced : report.priced) {
    for (UserId i : priced.newly_serviced) {
      state.serviced.push_back(i);
      const size_t u = static_cast<size_t>(i);
      if (u < state.first_served.size() && state.first_served[u] == 0) {
        state.first_served[u] = slot;
      }
    }
  }
  size_t write = 0;
  for (UserId i : state.serviced) {
    const size_t u = static_cast<size_t>(i);
    if (slot > std::min(state.vend[u], eff_end_[u])) continue;  // Done.
    if (slot >= state.vstart[u] && state.rate[u] != 0.0) {
      state.value_acc[u] += state.rate[u];
    }
    state.serviced[write++] = i;
  }
  state.serviced.resize(write);
}

void PricingSession::AccrueFromResult(ProposalState& state,
                                      const MechanismResult& result) {
  if (result.serviced.empty()) return;
  const auto value_slots = [&](UserId i) {
    const size_t u = static_cast<size_t>(i);
    return std::min(state.vend[u], eff_end_[u]);
  };
  if (result.num_slots == 0) {
    // Offline-collapsed mechanism: a serviced user realizes her whole
    // (effective) declared stream, summed in slot order.
    for (UserId i : result.serviced[0]) {
      const size_t u = static_cast<size_t>(i);
      if (u < state.first_served.size() && state.first_served[u] == 0) {
        state.first_served[u] =
            state.rate[u] != 0.0 ? state.vstart[u] : roster_[u].start;
      }
      if (state.rate[u] == 0.0) continue;
      for (TimeSlot t = state.vstart[u]; t <= value_slots(i); ++t) {
        state.value_acc[u] += state.rate[u];
      }
    }
    return;
  }
  const auto& per_slot = result.active[0];
  for (TimeSlot t = 1; t <= static_cast<TimeSlot>(per_slot.size()); ++t) {
    for (UserId i : per_slot[static_cast<size_t>(t - 1)]) {
      const size_t u = static_cast<size_t>(i);
      if (u < state.first_served.size() && state.first_served[u] == 0) {
        state.first_served[u] = t;
      }
      if (u >= state.rate.size() || state.rate[u] == 0.0) continue;
      if (t >= state.vstart[u] && t <= value_slots(i)) {
        state.value_acc[u] += state.rate[u];
      }
    }
  }
}

Status PricingSession::AdvanceSlot() {
  if (closed_) return Status::FailedPrecondition("session is closed");
  OPTSHARE_RETURN_NOT_OK(broken_);
  if (current_ >= config_.slots_per_period) {
    return Status::FailedPrecondition("period exhausted");
  }
  Status st = IntegratePending();
  if (!st.ok()) {
    broken_ = st;
    return st;
  }
  const TimeSlot slot = current_ + 1;
  for (ProposalState& state : states_) {
    Result<OnlineSlotReport> report = state.mech->OnSlot(slot, state.pending);
    if (!report.ok()) {
      // Earlier structures already stepped this slot: the period cannot be
      // resynchronized, so fail every later call with the root cause.
      broken_ = report.status();
      return broken_;
    }
    state.pending.clear();
    if (!report->deferred) AccrueSlot(state, slot, *report);
  }
  current_ = slot;
  return Status::OK();
}

Result<PeriodReport> PricingSession::Close() {
  if (closed_) return Status::FailedPrecondition("session is closed");
  if (!broken_.ok()) return broken_;
  if (current_ != config_.slots_per_period) {
    return Status::FailedPrecondition(
        "period incomplete: advanced " + std::to_string(current_) + " of " +
        std::to_string(config_.slots_per_period) + " slots");
  }
  closed_ = true;

  PeriodReport report;
  report.period = period_;
  Accounting ledger;
  ledger.user_value.assign(roster_.size(), 0.0);
  ledger.user_payment.assign(roster_.size(), 0.0);

  for (ProposalState& state : states_) {
    Result<MechanismResult> result = state.mech->Finalize();
    if (!result.ok()) return result.status();
    if (!state.native) AccrueFromResult(state, *result);

    StructureOutcome outcome;
    outcome.name = state.name;
    outcome.cost = state.price;
    outcome.carried_over = state.carried_over;
    outcome.num_candidates = state.num_candidates;
    outcome.active = result->implemented;
    for (size_t u = 0; u < state.first_served.size(); ++u) {
      if (state.first_served[u] != 0) {
        outcome.serviced.push_back(
            {static_cast<UserId>(u), state.first_served[u]});
      }
    }
    if (result->implemented) {
      int subscribers = 0;
      for (double p : result->payments) subscribers += p > 0.0 ? 1 : 0;
      outcome.num_subscribers = subscribers;
      built_after_.push_back(state.name);
      ledger.total_cost += state.price;
      for (size_t i = 0; i < roster_.size(); ++i) {
        if (i < state.value_acc.size()) {
          ledger.user_value[i] += state.value_acc[i];
        }
        if (i < result->payments.size()) {
          ledger.user_payment[i] += result->payments[i];
        }
      }
    }
    report.structures.push_back(std::move(outcome));
  }
  report.ledger = std::move(ledger);
  return report;
}

}  // namespace optshare::service
