// NetServer: the TCP front end of the marketplace. Wraps a
// MarketplaceServer and serves its newline-delimited wire protocol
// (service/protocol.h) to N concurrent connections from one poll()-based
// event loop thread:
//
//   MarketplaceServer server(options);
//   NetServer net(&server, {.host = "127.0.0.1", .port = 0});
//   ASSERT_TRUE(net.Start().ok());          // port() is now bound
//   ... clients connect with NetClient ...
//   net.Wait();                              // returns after a wire
//   server.Shutdown();                       //   `shutdown` op drains
//
// Guarantees, per connection:
//   - Responses return in request order (an OrderedLineWriter reorders
//     completions arriving from different tenancy shards), exactly the
//     stdin serve loop's contract — both transports share one
//     RequestDispatcher path, so their bytes cannot diverge.
//   - Framing survives hostile input: connections frame under the
//     server's max_batch_request_bytes (so a legal v3 batch frame is
//     never truncated mid-stream); anything longer answers a typed
//     ResourceExhausted and the rest of the oversize line is discarded
//     in-stream (common/net.h LineBuffer). Non-batch lines over the plain
//     max_request_bytes cap answer the same typed rejection from the
//     dispatcher.
//   - Backpressure is bounded and local: a reader that stops draining
//     queues at most max_write_buffer_bytes of responses, then gets a
//     final ResourceExhausted line and a close — it never blocks the
//     event loop or other connections (the loop only ever does
//     non-blocking writes).
//   - Disconnects are connection-scoped: requests already dispatched keep
//     executing on their shards (tenancy state stays consistent), and
//     their responses are dropped when they resolve.
//
// A wire `shutdown` request drains: the listener closes, every connection
// stops reading, queued responses flush, then the loop exits and Wait()
// returns — the caller runs MarketplaceServer::Shutdown() for the PR 4
// checkpoint path. Destroying a NetServer without a shutdown op models a
// crash (sockets drop mid-stream; a FileStateStore-backed server recovers
// from its journal).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/net.h"
#include "service/dispatch.h"
#include "service/marketplace_server.h"

namespace optshare::service {

struct NetServerOptions {
  /// Interface to bind ("" = all interfaces).
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read it back with port().
  uint16_t port = 0;
  /// Connections accepted beyond this answer a ResourceExhausted line
  /// (best-effort) and close immediately.
  int max_connections = 256;
  /// Per-connection response backlog cap: once a slow reader's unflushed
  /// bytes exceed this, the connection gets a final ResourceExhausted
  /// line and closes.
  size_t max_write_buffer_bytes = 8u << 20;
  /// Kernel send-buffer size for accepted sockets (0 = OS default). Tests
  /// shrink it to trip the write-buffer cap deterministically.
  int sndbuf_bytes = 0;
  /// Per-connection request-rate cap (lines/sec, token bucket with a
  /// one-second burst). 0 = off. A breaching line answers a typed
  /// ResourceExhausted with a retry_after_ms hint instead of being
  /// dispatched — transport-level admission, complementing the per-tenancy
  /// quotas in ServerOptions::admission.
  double max_connection_requests_per_sec = 0.0;
};

/// Live transport counters, also served through the wire `server_info` op
/// as the "transport" payload while the NetServer runs.
struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t connections_refused = 0;  ///< Over max_connections.
  uint64_t connections_dropped_backpressure = 0;
  uint64_t requests = 0;            ///< Complete lines handed to dispatch.
  uint64_t responses = 0;           ///< Response lines queued for writing.
  uint64_t oversize_lines = 0;      ///< Lines rejected by the byte cap.
  uint64_t rate_limited_lines = 0;  ///< Lines rejected by the per-connection
                                    ///< request-rate cap.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

JsonValue ToJson(const NetServerStats& stats);

class NetServer {
 public:
  /// `server` must outlive the NetServer (and its Stop()/Wait()).
  explicit NetServer(MarketplaceServer* server, NetServerOptions options = {});
  /// Stops the event loop (abrupt close, no checkpoint) if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, registers the transport counters with the wrapped
  /// server's server_info, and starts the event loop thread. After an OK
  /// return, port() is the bound port and clients may connect.
  Status Start();

  /// The bound port (valid after Start); 0 before.
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Blocks until the event loop exits — i.e. until a wire `shutdown`
  /// request drains all connections, or Stop() is called.
  void Wait();

  /// Abrupt stop: closes the listener and every connection without
  /// draining queued responses, then joins the loop. In-flight requests
  /// still complete on their shards; their responses are dropped.
  /// Idempotent.
  void Stop();

  /// Snapshot of the live counters.
  NetServerStats stats() const;

 private:
  struct Shared;      // State shared with dispatch callbacks (see .cc).
  struct Connection;  // Per-connection state owned by the event loop.

  void Loop();

  MarketplaceServer* server_;
  NetServerOptions options_;
  RequestDispatcher dispatcher_;
  net::Socket listener_;
  uint16_t port_ = 0;
  std::shared_ptr<Shared> shared_;  ///< Outlives the loop: callbacks hold it.
  std::thread loop_;
  std::mutex join_mu_;  ///< Serializes Wait()/Stop() joining the loop.
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace optshare::service
