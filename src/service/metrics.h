// Serving-path metrics for the scrapeable `server_info` surface (protocol
// v3): lock-free per-op latency histograms with fixed log-spaced buckets.
// Recording is two relaxed atomic increments, cheap enough for the
// allocation-free hot path; readers snapshot whenever server_info asks.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/json.h"

namespace optshare::service {

/// A latency histogram over microseconds with power-of-two bucket bounds:
/// le_us = 1, 2, 4, ..., 2^(kNumBuckets-2), +inf. Thread-safe; counters
/// are relaxed (per-op totals, not a synchronization point).
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 18;  ///< Last bucket is +inf (>128ms).

  void Record(uint64_t micros) {
    counts_[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
    total_us_.fetch_add(micros, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const auto& bucket : counts_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// {"count": N, "total_us": T, "le_us": [1,2,...,131072, -1],
  ///  "counts": [...]} — le_us -1 marks the +inf overflow bucket.
  JsonValue ToJson() const {
    JsonValue obj = JsonValue::MakeObject();
    JsonValue bounds = JsonValue::MakeArray();
    JsonValue counts = JsonValue::MakeArray();
    bounds.Reserve(kNumBuckets);
    counts.Reserve(kNumBuckets);
    uint64_t total = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      bounds.Append(JsonValue::Number(
          i + 1 < kNumBuckets ? static_cast<double>(uint64_t{1} << i) : -1.0));
      const uint64_t n = counts_[i].load(std::memory_order_relaxed);
      total += n;
      counts.Append(JsonValue::Number(static_cast<double>(n)));
    }
    obj.Set("count", JsonValue::Number(static_cast<double>(total)));
    obj.Set("total_us",
            JsonValue::Number(static_cast<double>(
                total_us_.load(std::memory_order_relaxed))));
    obj.Set("le_us", std::move(bounds));
    obj.Set("counts", std::move(counts));
    return obj;
  }

 private:
  static int BucketOf(uint64_t micros) {
    for (int i = 0; i + 1 < kNumBuckets; ++i) {
      if (micros <= (uint64_t{1} << i)) return i;
    }
    return kNumBuckets - 1;
  }

  std::atomic<uint64_t> counts_[kNumBuckets] = {};
  std::atomic<uint64_t> total_us_{0};
};

}  // namespace optshare::service
