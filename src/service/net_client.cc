#include "service/net_client.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace optshare::service {

Result<NetClient> NetClient::Connect(const std::string& host,
                                     uint16_t port) {
  Result<net::Socket> socket = net::ConnectTcp(host, port);
  if (!socket.ok()) return socket.status();
  return NetClient(std::move(*socket));
}

int NetClient::BackoffMs(const ConnectOptions& options, int attempt) {
  const long long base = options.backoff_ms > 0 ? options.backoff_ms : 1;
  const long long cap =
      options.max_backoff_ms > 0 ? std::max<long long>(options.max_backoff_ms,
                                                       base)
                                 : base;
  long long ms = base;
  for (int i = 1; i < attempt && ms < cap; ++i) ms *= 2;
  if (ms > cap) ms = cap;
  // Deterministic jitter (splitmix64 over seed + attempt): up to 25% on
  // top of the capped schedule, so callers retrying in lockstep spread
  // out without any shared randomness.
  uint64_t x =
      options.jitter_seed + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(
                                                        attempt + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  const uint64_t jitter_span = static_cast<uint64_t>(ms / 4) + 1;
  return static_cast<int>(ms + static_cast<long long>(x % jitter_span));
}

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port,
                                     const ConnectOptions& options) {
  Status last = Status::Internal("connect never attempted");
  for (int attempt = 0; attempt <= options.retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(options, attempt)));
    }
    Result<net::Socket> socket =
        net::ConnectTcp(host, port, options.timeout_ms);
    if (socket.ok()) return NetClient(std::move(*socket));
    last = socket.status();
  }
  return last;
}

Status NetClient::SendRaw(const std::string& bytes) {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    Result<net::IoChunk> wrote = net::WriteChunk(
        socket_.fd(), bytes.data() + sent, bytes.size() - sent);
    if (!wrote.ok()) return wrote.status();
    if (wrote->eof) {
      return Status::FailedPrecondition("connection closed by server");
    }
    // The socket is blocking, so would_block cannot happen; treat a zero
    // write defensively as progress-free and retry.
    sent += wrote->bytes;
  }
  return Status::OK();
}

Status NetClient::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Result<std::string> NetClient::ReadLine() {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  std::string line;
  for (;;) {
    const net::LineBuffer::Next next = lines_.NextLine(&line);
    if (next == net::LineBuffer::Next::kLine) return line;
    // kTooLong cannot happen: the client buffer is uncapped.
    char buf[64 * 1024];
    Result<net::IoChunk> got = net::ReadChunk(socket_.fd(), buf, sizeof(buf));
    if (!got.ok()) return got.status();
    if (got->eof) {
      return Status::FailedPrecondition("connection closed by server");
    }
    lines_.Append(buf, got->bytes);
  }
}

Result<std::string> NetClient::Call(const std::string& request_line) {
  OPTSHARE_RETURN_NOT_OK(SendLine(request_line));
  return ReadLine();
}

Result<protocol::Response> NetClient::Call(
    const protocol::Request& request) {
  Result<std::string> line = Call(protocol::ToJson(request).Dump());
  if (!line.ok()) return line.status();
  Result<JsonValue> doc = JsonValue::Parse(*line);
  if (!doc.ok()) {
    return Status::Internal("malformed response line: " +
                            doc.status().message());
  }
  return protocol::ResponseFromJson(*doc);
}

Status NetClient::FinishSending() {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  if (::shutdown(socket_.fd(), SHUT_WR) != 0) {
    return Status::Internal("shutdown(SHUT_WR) failed");
  }
  return Status::OK();
}

// -- AsyncNetClient ----------------------------------------------------------

AsyncNetClient::AsyncNetClient(NetClient client, Options options)
    : options_(options), client_(std::move(client)) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  reader_ = std::thread([this] { ReaderLoop(); });
}

AsyncNetClient::~AsyncNetClient() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Wake the reader out of its blocking read: a full shutdown turns the
    // pending recv into EOF. (Send-side is done too — no more Submits.)
    if (client_.connected()) ::shutdown(client_.fd(), SHUT_RDWR);
  }
  if (reader_.joinable()) reader_.join();
  // The reader failed every still-pending callback on its way out, so no
  // completion is ever dropped silently.
}

Status AsyncNetClient::Submit(const protocol::Request& request,
                              Callback done) {
  const std::string line = protocol::ToJson(request).Dump() + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  if (!failed_.ok()) return failed_;
  if (stopping_) return Status::FailedPrecondition("client shutting down");
  if (pending_.size() >= options_.max_inflight) {
    // Local, typed backpressure: nothing was sent; the caller drains some
    // completions and resubmits.
    return Status::ResourceExhausted(
        "in-flight window full (max_inflight=" +
        std::to_string(options_.max_inflight) + ")");
  }
  // The callback queues before the bytes go out so the reader can never
  // see a response with no callback to match. A torn write desyncs the
  // framing for good, so it fails the connection, this callback included.
  pending_.push_back(std::move(done));
  Status sent = client_.SendRaw(line);
  if (!sent.ok()) {
    pending_.pop_back();  // Never sent; fail it via the return instead.
    failed_ = sent;
    if (client_.connected()) ::shutdown(client_.fd(), SHUT_RDWR);
    return sent;
  }
  return Status::OK();
}

std::future<Result<protocol::Response>> AsyncNetClient::Call(
    const protocol::Request& request) {
  auto promise =
      std::make_shared<std::promise<Result<protocol::Response>>>();
  std::future<Result<protocol::Response>> future = promise->get_future();
  Status submitted =
      Submit(request, [promise](Result<protocol::Response> response) {
        promise->set_value(std::move(response));
      });
  if (!submitted.ok()) promise->set_value(submitted);
  return future;
}

Status AsyncNetClient::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return pending_.empty(); });
  return failed_;
}

size_t AsyncNetClient::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void AsyncNetClient::FailAllPending(Status status) {
  std::deque<Callback> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_.ok()) failed_ = status;
    orphaned.swap(pending_);
  }
  for (Callback& callback : orphaned) {
    callback(Result<protocol::Response>(status));
  }
  drained_cv_.notify_all();
}

void AsyncNetClient::ReaderLoop() {
  for (;;) {
    // Blocking read outside the lock: SendRaw (send side) and ReadLine
    // (receive side + private LineBuffer) touch disjoint state.
    Result<std::string> line = client_.ReadLine();
    if (!line.ok()) {
      const bool deliberate = [&] {
        std::lock_guard<std::mutex> lock(mu_);
        return stopping_;
      }();
      FailAllPending(deliberate
                         ? Status::FailedPrecondition(
                               "client shut down with requests in flight")
                         : line.status());
      return;
    }
    Callback done;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.empty()) {
        // A response with no matching submission: the stream is
        // desynchronized beyond repair.
        failed_ = Status::Internal("unsolicited response line");
        if (client_.connected()) ::shutdown(client_.fd(), SHUT_RDWR);
        drained_cv_.notify_all();
        return;
      }
      done = std::move(pending_.front());
      pending_.pop_front();
    }
    Result<JsonValue> doc = JsonValue::Parse(*line);
    if (!doc.ok()) {
      done(Result<protocol::Response>(
          Status::Internal("malformed response line: " +
                           doc.status().message())));
    } else {
      done(protocol::ResponseFromJson(*doc));
    }
    drained_cv_.notify_all();
  }
}

}  // namespace optshare::service
