#include "service/net_client.h"

#include <sys/socket.h>

#include <chrono>
#include <thread>
#include <utility>

namespace optshare::service {

Result<NetClient> NetClient::Connect(const std::string& host,
                                     uint16_t port) {
  Result<net::Socket> socket = net::ConnectTcp(host, port);
  if (!socket.ok()) return socket.status();
  return NetClient(std::move(*socket));
}

Result<NetClient> NetClient::Connect(const std::string& host, uint16_t port,
                                     const ConnectOptions& options) {
  int backoff_ms = options.backoff_ms > 0 ? options.backoff_ms : 1;
  Status last = Status::Internal("connect never attempted");
  for (int attempt = 0; attempt <= options.retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    Result<net::Socket> socket =
        net::ConnectTcp(host, port, options.timeout_ms);
    if (socket.ok()) return NetClient(std::move(*socket));
    last = socket.status();
  }
  return last;
}

Status NetClient::SendRaw(const std::string& bytes) {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    Result<net::IoChunk> wrote = net::WriteChunk(
        socket_.fd(), bytes.data() + sent, bytes.size() - sent);
    if (!wrote.ok()) return wrote.status();
    if (wrote->eof) {
      return Status::FailedPrecondition("connection closed by server");
    }
    // The socket is blocking, so would_block cannot happen; treat a zero
    // write defensively as progress-free and retry.
    sent += wrote->bytes;
  }
  return Status::OK();
}

Status NetClient::SendLine(const std::string& line) {
  return SendRaw(line + "\n");
}

Result<std::string> NetClient::ReadLine() {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  std::string line;
  for (;;) {
    const net::LineBuffer::Next next = lines_.NextLine(&line);
    if (next == net::LineBuffer::Next::kLine) return line;
    // kTooLong cannot happen: the client buffer is uncapped.
    char buf[64 * 1024];
    Result<net::IoChunk> got = net::ReadChunk(socket_.fd(), buf, sizeof(buf));
    if (!got.ok()) return got.status();
    if (got->eof) {
      return Status::FailedPrecondition("connection closed by server");
    }
    lines_.Append(buf, got->bytes);
  }
}

Result<std::string> NetClient::Call(const std::string& request_line) {
  OPTSHARE_RETURN_NOT_OK(SendLine(request_line));
  return ReadLine();
}

Result<protocol::Response> NetClient::Call(
    const protocol::Request& request) {
  Result<std::string> line = Call(protocol::ToJson(request).Dump());
  if (!line.ok()) return line.status();
  Result<JsonValue> doc = JsonValue::Parse(*line);
  if (!doc.ok()) {
    return Status::Internal("malformed response line: " +
                            doc.status().message());
  }
  return protocol::ResponseFromJson(*doc);
}

Status NetClient::FinishSending() {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  if (::shutdown(socket_.fd(), SHUT_WR) != 0) {
    return Status::Internal("shutdown(SHUT_WR) failed");
  }
  return Status::OK();
}

}  // namespace optshare::service
