#include "service/net_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace optshare::service {
namespace {

/// Requests in flight per connection before the loop stops reading from it
/// (natural TCP backpressure toward a firehose client); mirrors the stdin
/// loop's bounded in-flight window.
constexpr int kMaxPendingPerConnection = 512;

/// Bytes read per recv() call in the event loop.
constexpr size_t kReadChunkBytes = 64 * 1024;

/// How long a graceful drain waits for clients to read their final
/// responses before force-closing them (a client that never drains its
/// shutdown response must not wedge Wait()).
constexpr auto kDrainGrace = std::chrono::seconds(5);

std::string ErrorLine(Status status) {
  protocol::Response error = protocol::ErrorResponse("", std::move(status));
  error.version = protocol::kMinProtocolVersion;
  return protocol::FormatResponseLine(error);
}

}  // namespace

JsonValue ToJson(const NetServerStats& stats) {
  JsonValue obj = JsonValue::MakeObject();
  const auto num = [](uint64_t v) {
    return JsonValue::Number(static_cast<double>(v));
  };
  obj.Set("connections_accepted", num(stats.connections_accepted));
  obj.Set("connections_open", num(stats.connections_open));
  obj.Set("connections_refused", num(stats.connections_refused));
  obj.Set("connections_dropped_backpressure",
          num(stats.connections_dropped_backpressure));
  obj.Set("requests", num(stats.requests));
  obj.Set("responses", num(stats.responses));
  obj.Set("oversize_lines", num(stats.oversize_lines));
  obj.Set("rate_limited_lines", num(stats.rate_limited_lines));
  obj.Set("bytes_read", num(stats.bytes_read));
  obj.Set("bytes_written", num(stats.bytes_written));
  return obj;
}

/// State dispatch callbacks touch after the loop (or the NetServer) may be
/// gone: the wake pipe and the counters. Held by shared_ptr from every
/// callback, every Connection, and the NetServer itself.
struct NetServer::Shared {
  ~Shared() {
    CloseWake();
    if (wake_read >= 0) ::close(wake_read);
  }

  /// Wakes the poll loop (response ready, connection state changed).
  /// Callable from any thread, harmlessly a no-op once the pipe closed.
  void Notify() {
    std::lock_guard<std::mutex> lock(wake_mu);
    if (wake_write < 0) return;
    const char byte = 1;
    // EAGAIN means the pipe already holds a wakeup; that is all we need.
    [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
  }

  void CloseWake() {
    std::lock_guard<std::mutex> lock(wake_mu);
    if (wake_write >= 0) {
      ::close(wake_write);
      wake_write = -1;
    }
  }

  std::mutex wake_mu;
  int wake_write = -1;  ///< Guarded by wake_mu.
  int wake_read = -1;   ///< Loop-owned; closed by the destructor.

  std::atomic<bool> stop{false};      ///< Stop(): abrupt exit.
  std::atomic<bool> draining{false};  ///< Wire shutdown accepted.

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_open{0};
  std::atomic<uint64_t> connections_refused{0};
  std::atomic<uint64_t> connections_dropped_backpressure{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> responses{0};
  std::atomic<uint64_t> oversize_lines{0};
  std::atomic<uint64_t> rate_limited_lines{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  NetServerStats Snapshot() const {
    NetServerStats stats;
    stats.connections_accepted = connections_accepted.load();
    stats.connections_open = connections_open.load();
    stats.connections_refused = connections_refused.load();
    stats.connections_dropped_backpressure =
        connections_dropped_backpressure.load();
    stats.requests = requests.load();
    stats.responses = responses.load();
    stats.oversize_lines = oversize_lines.load();
    stats.rate_limited_lines = rate_limited_lines.load();
    stats.bytes_read = bytes_read.load();
    stats.bytes_written = bytes_written.load();
    return stats;
  }
};

/// Per-connection state. The event loop owns the socket, the read-side
/// LineBuffer and the lifecycle flags below; dispatch callbacks reach the
/// connection only through writer -> QueueResponse, which takes mu.
struct NetServer::Connection {
  Connection(net::Socket sock, std::shared_ptr<Shared> shared_state,
             size_t line_cap, size_t write_cap_bytes,
             std::string backpressure_response, double requests_per_sec)
      : socket(std::move(sock)),
        lines(line_cap),
        shared(std::move(shared_state)),
        write_cap(write_cap_bytes),
        backpressure_line(std::move(backpressure_response)),
        rate(requests_per_sec, /*burst=*/requests_per_sec),
        writer([this](std::string_view line) { QueueResponse(line); }) {}

  /// OrderedLineWriter sink: runs on whichever thread completed the
  /// response (a worker, or the loop for inline parse errors). Appends the
  /// view straight into the write buffer — the only copy a response makes
  /// between the worker's scratch and the socket. The cap turns a slow
  /// reader into a final ResourceExhausted line plus close_after_flush.
  void QueueResponse(std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    shared->responses.fetch_add(1, std::memory_order_relaxed);
    if (dead || overflowed) return;  // Responses to a condemned reader drop.
    out.append(line);
    out.push_back('\n');
    if (write_cap > 0 && out.size() - out_offset > write_cap) {
      overflowed = true;
      stop_reading = true;
      close_after_flush = true;
      condemned_at = std::chrono::steady_clock::now();
      shared->connections_dropped_backpressure.fetch_add(
          1, std::memory_order_relaxed);
      out += backpressure_line;
      out.push_back('\n');
    }
  }

  /// Bytes queued but not yet accepted by the kernel. Requires mu held.
  size_t UnflushedLocked() const { return out.size() - out_offset; }

  net::Socket socket;
  net::LineBuffer lines;
  std::shared_ptr<Shared> shared;
  const size_t write_cap;
  const std::string backpressure_line;

  std::mutex mu;  ///< Guards out, out_offset and the flags below.
  std::string out;
  /// Flushed prefix of `out`: writes advance this instead of erasing from
  /// the front (which would memmove the whole backlog per partial write);
  /// the string is cleared once fully drained.
  size_t out_offset = 0;
  bool stop_reading = false;
  bool overflowed = false;
  bool close_after_flush = false;
  bool dead = false;  ///< Socket closed; late responses are dropped.
  /// When backpressure condemned this connection; after a grace period a
  /// peer that never drains is force-closed, buffer and all.
  std::chrono::steady_clock::time_point condemned_at{};

  bool eof_seen = false;  ///< Loop-only: peer half-closed; drain then close.
  TokenBucket rate;             ///< Loop-only: per-connection request rate.
  std::string line_scratch;     ///< Loop-only: reused request-line buffer.
  std::atomic<int> pending{0};  ///< Dispatched, response not yet queued.
  OrderedLineWriter writer;     ///< Last member: sink touches the above.
};

NetServer::NetServer(MarketplaceServer* server, NetServerOptions options)
    : server_(server),
      options_(std::move(options)),
      dispatcher_(server),
      shared_(std::make_shared<Shared>()) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("NetServer already started");
  }
  Result<net::Socket> listener =
      net::ListenTcp(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  Result<uint16_t> port = net::BoundPort(*listener);
  if (!port.ok()) return port.status();
  listener_ = std::move(*listener);
  port_ = *port;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal(std::string("pipe: ") + std::strerror(errno));
  }
  shared_->wake_read = pipe_fds[0];
  shared_->wake_write = pipe_fds[1];
  OPTSHARE_RETURN_NOT_OK(net::SetNonBlocking(pipe_fds[0]));
  OPTSHARE_RETURN_NOT_OK(net::SetNonBlocking(pipe_fds[1]));

  // The wire server_info op now reports this transport's live counters.
  std::shared_ptr<Shared> shared = shared_;
  server_->SetTransportInfoProvider(
      [shared] { return ToJson(shared->Snapshot()); });

  loop_ = std::thread([this] { Loop(); });
  OPTSHARE_LOG(Info) << "net: listening on "
                     << (options_.host.empty() ? "*" : options_.host) << ":"
                     << port_;
  return Status::OK();
}

void NetServer::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (loop_.joinable()) loop_.join();
}

void NetServer::Stop() {
  if (!started_.load()) return;
  if (!stopped_.exchange(true)) {
    shared_->stop.store(true);
    shared_->Notify();
  }
  Wait();
  // Unregister before the NetServer (whose counters the provider serves)
  // can be destroyed; blocks out any in-flight server_info.
  server_->SetTransportInfoProvider(nullptr);
  shared_->CloseWake();
}

NetServerStats NetServer::stats() const { return shared_->Snapshot(); }

void NetServer::Loop() {
  const std::string oversize_line = dispatcher_.OversizedLineResponse();
  const std::string refusal_line = ErrorLine(Status::ResourceExhausted(
      "connection limit reached (max_connections=" +
      std::to_string(options_.max_connections) + ")"));
  const std::string backpressure_line = ErrorLine(Status::ResourceExhausted(
      "write buffer exceeded " +
      std::to_string(options_.max_write_buffer_bytes) +
      " bytes: reader too slow; closing"));

  std::vector<std::shared_ptr<Connection>> conns;
  bool accepting = true;
  bool drain_logged = false;
  std::chrono::steady_clock::time_point drain_start{};
  std::vector<pollfd> fds;
  // Parallel to fds: index into conns, or -1 for wake/listener entries.
  std::vector<int> fd_conn;

  const auto close_connection = [&](size_t index) {
    const std::shared_ptr<Connection>& conn = conns[index];
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->dead = true;
      conn->socket.Close();
    }
    shared_->connections_open.fetch_sub(1, std::memory_order_relaxed);
    conns.erase(conns.begin() + static_cast<long>(index));
  };

  // Flushes as much of conn->out as the kernel accepts. Returns false when
  // the peer is gone (caller closes).
  const auto flush_writes = [&](Connection& conn) {
    std::lock_guard<std::mutex> lock(conn.mu);
    while (conn.UnflushedLocked() > 0) {
      Result<net::IoChunk> wrote =
          net::WriteChunk(conn.socket.fd(), conn.out.data() + conn.out_offset,
                          conn.UnflushedLocked());
      if (!wrote.ok() || wrote->eof) return false;
      if (wrote->would_block) break;
      shared_->bytes_written.fetch_add(wrote->bytes,
                                       std::memory_order_relaxed);
      conn.out_offset += wrote->bytes;
    }
    if (conn.UnflushedLocked() == 0 && !conn.out.empty()) {
      conn.out.clear();
      conn.out_offset = 0;
    }
    return true;
  };

  // Reads everything available and dispatches complete lines. Returns
  // false on a hard error (caller closes).
  const auto read_and_dispatch = [&](const std::shared_ptr<Connection>&
                                         conn) {
    char buf[kReadChunkBytes];
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->stop_reading) return true;
      }
      Result<net::IoChunk> got =
          net::ReadChunk(conn->socket.fd(), buf, sizeof(buf));
      if (!got.ok()) return false;
      if (got->eof) {
        conn->eof_seen = true;
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->stop_reading = true;
        return true;
      }
      if (got->would_block) return true;
      shared_->bytes_read.fetch_add(got->bytes, std::memory_order_relaxed);
      conn->lines.Append(buf, got->bytes);
      // The connection's line scratch persists across reads, so NextLine's
      // assign reuses its capacity instead of growing a fresh string.
      std::string& line = conn->line_scratch;
      for (;;) {
        const net::LineBuffer::Next next = conn->lines.NextLine(&line);
        if (next == net::LineBuffer::Next::kNeedMore) break;
        if (next == net::LineBuffer::Next::kTooLong) {
          shared_->oversize_lines.fetch_add(1, std::memory_order_relaxed);
          conn->writer.Complete(conn->writer.Reserve(), oversize_line);
          continue;
        }
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        // Per-connection admission (loop thread, so the bucket needs no
        // lock): a breaching line is answered, typed and with a retry
        // hint, without ever reaching the dispatcher.
        if (!conn->rate.unlimited()) {
          const TokenBucket::Decision decision = conn->rate.Acquire(1.0);
          if (!decision.admitted) {
            shared_->rate_limited_lines.fetch_add(1,
                                                  std::memory_order_relaxed);
            protocol::Response error = protocol::ErrorResponse(
                "", Status::ResourceExhausted(
                        "connection is over its request-rate cap "
                        "(max_connection_requests_per_sec)"));
            error.version = protocol::kMinProtocolVersion;
            error.retry_after_ms = decision.retry_after_ms;
            conn->writer.Complete(conn->writer.Reserve(),
                                  protocol::FormatResponseLine(error));
            continue;
          }
        }
        shared_->requests.fetch_add(1, std::memory_order_relaxed);
        conn->pending.fetch_add(1, std::memory_order_acq_rel);
        const uint64_t slot = conn->writer.Reserve();
        const bool is_shutdown = dispatcher_.Submit(
            line, [conn, slot](std::string_view response) {
              conn->writer.Complete(slot, response);
              conn->pending.fetch_sub(1, std::memory_order_acq_rel);
              conn->shared->Notify();
            });
        if (is_shutdown) {
          // Mirror the stdin loop: once a shutdown is queued, whatever the
          // connection already buffered is intentionally unread.
          shared_->draining.store(true);
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->stop_reading = true;
          return true;
        }
      }
      if (conn->pending.load(std::memory_order_acquire) >=
          kMaxPendingPerConnection) {
        return true;  // Let the backlog drain before reading more.
      }
    }
  };

  for (;;) {
    if (shared_->stop.load()) break;
    const bool draining =
        shared_->draining.load() || server_->shutdown_requested();
    if (draining) {
      if (accepting) {
        accepting = false;
        listener_.Close();
      }
      if (!drain_logged) {
        drain_logged = true;
        drain_start = std::chrono::steady_clock::now();
        OPTSHARE_LOG(Info) << "net: shutdown accepted; draining "
                           << conns.size() << " connections";
      }
      for (const std::shared_ptr<Connection>& conn : conns) {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->stop_reading = true;
      }
    }

    // Close every connection that has finished its lifecycle: peer gone,
    // condemned by backpressure with its buffer flushed, or fully drained
    // during shutdown.
    for (size_t i = conns.size(); i-- > 0;) {
      const std::shared_ptr<Connection>& conn = conns[i];
      bool close_now = false;
      {
        // pending == 0 means every submitted callback has already run its
        // writer.Complete (the decrement follows it), so the writer is
        // flushed into `out` by construction — no writer-mutex probe here
        // (that would invert the Complete -> QueueResponse lock order).
        std::lock_guard<std::mutex> lock(conn->mu);
        const bool idle =
            conn->pending.load(std::memory_order_acquire) == 0 &&
            conn->UnflushedLocked() == 0;
        close_now = idle && (conn->eof_seen || conn->close_after_flush ||
                             (draining && conn->stop_reading));
        // A condemned peer that never drains its final error would hold
        // the connection (and its bounded buffer) forever; after the
        // grace period it is dropped, unflushed bytes and all.
        if (!close_now && conn->overflowed &&
            std::chrono::steady_clock::now() - conn->condemned_at >
                kDrainGrace) {
          close_now = true;
        }
      }
      if (close_now) close_connection(i);
    }
    if (draining) {
      if (conns.empty()) break;
      if (std::chrono::steady_clock::now() - drain_start > kDrainGrace) {
        OPTSHARE_LOG(Warning)
            << "net: drain grace expired; dropping " << conns.size()
            << " connections with unread responses";
        while (!conns.empty()) close_connection(conns.size() - 1);
        break;
      }
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({shared_->wake_read, POLLIN, 0});
    fd_conn.push_back(-1);
    const bool room =
        static_cast<int>(conns.size()) < options_.max_connections;
    if (accepting && listener_.valid()) {
      // Stay registered even at the connection cap so surplus connects can
      // be refused promptly instead of rotting in the backlog.
      fds.push_back({listener_.fd(), POLLIN, 0});
      fd_conn.push_back(-2);
    }
    for (size_t i = 0; i < conns.size(); ++i) {
      const std::shared_ptr<Connection>& conn = conns[i];
      short events = 0;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->stop_reading &&
            conn->pending.load(std::memory_order_acquire) <
                kMaxPendingPerConnection) {
          events |= POLLIN;
        }
        if (conn->UnflushedLocked() > 0) events |= POLLOUT;
      }
      fds.push_back({conn->socket.fd(), events, 0});
      fd_conn.push_back(static_cast<int>(i));
    }

    const int rc = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      OPTSHARE_LOG(Error) << "net: poll failed: " << std::strerror(errno);
      break;
    }

    // Drain wake bytes (their only job was ending the poll call).
    if (fds[0].revents & POLLIN) {
      char sink[256];
      while (::read(shared_->wake_read, sink, sizeof(sink)) > 0) {
      }
    }

    // Snapshot which connection indices got events before any close call
    // reshuffles `conns`: resolve revents to connection pointers first.
    std::vector<std::pair<std::shared_ptr<Connection>, short>> events;
    bool listener_ready = false;
    for (size_t f = 1; f < fds.size(); ++f) {
      if (fds[f].revents == 0) continue;
      if (fd_conn[f] == -2) {
        listener_ready = true;
      } else if (fd_conn[f] >= 0) {
        events.emplace_back(conns[static_cast<size_t>(fd_conn[f])],
                            fds[f].revents);
      }
    }

    if (listener_ready) {
      for (;;) {
        Result<net::Socket> accepted = net::AcceptNonBlocking(listener_);
        if (!accepted.ok()) {
          OPTSHARE_LOG(Error)
              << "net: accept failed: " << accepted.status().ToString();
          break;
        }
        if (!accepted->valid()) break;
        if (!room || static_cast<int>(conns.size()) >=
                         options_.max_connections) {
          shared_->connections_refused.fetch_add(1,
                                                 std::memory_order_relaxed);
          const std::string refusal = refusal_line + "\n";
          (void)net::WriteChunk(accepted->fd(), refusal.data(),
                                refusal.size());
          continue;  // Socket closes as `accepted` goes out of scope.
        }
        if (options_.sndbuf_bytes > 0) {
          ::setsockopt(accepted->fd(), SOL_SOCKET, SO_SNDBUF,
                       &options_.sndbuf_bytes, sizeof(options_.sndbuf_bytes));
        }
        shared_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
        shared_->connections_open.fetch_add(1, std::memory_order_relaxed);
        conns.push_back(std::make_shared<Connection>(
            std::move(*accepted), shared_,
            server_->max_batch_request_bytes(),
            options_.max_write_buffer_bytes, backpressure_line,
            options_.max_connection_requests_per_sec));
      }
    }

    for (const auto& [conn, revents] : events) {
      bool healthy = true;
      if (revents & (POLLIN | POLLHUP)) {
        healthy = read_and_dispatch(conn);
      }
      if (healthy && (revents & POLLOUT)) healthy = flush_writes(*conn);
      if (!healthy || (revents & (POLLERR | POLLNVAL))) {
        // Find it again — closes above may have moved indices.
        for (size_t i = 0; i < conns.size(); ++i) {
          if (conns[i] == conn) {
            close_connection(i);
            break;
          }
        }
      }
    }

    // Responses queued by workers while we polled: flush eagerly so a
    // round-trip client is answered this iteration, not next.
    for (size_t i = conns.size(); i-- > 0;) {
      bool healthy = true;
      {
        std::lock_guard<std::mutex> lock(conns[i]->mu);
        if (conns[i]->UnflushedLocked() == 0) continue;
      }
      healthy = flush_writes(*conns[i]);
      if (!healthy) close_connection(i);
    }
  }

  listener_.Close();
  for (const std::shared_ptr<Connection>& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->dead = true;
    conn->socket.Close();
  }
  shared_->connections_open.store(0, std::memory_order_relaxed);
  conns.clear();
}

}  // namespace optshare::service
