#include "service/fast_wire.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstddef>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

#include "simdb/pricing.h"
#include "simdb/query.h"

namespace optshare::service::protocol {
namespace {

// One-pass scanner over a request line. Every method returns false on the
// first sign of anything it is not certain about; the caller then falls
// back to the tree parser, which owns the accept/reject decision and every
// error message. Lexical rules (whitespace set, number charset,
// escape decoding) deliberately replicate common/json.cc's Parser so a
// fast-accepted line yields the exact Request the tree would have built.
class FastScanner {
 public:
  explicit FastScanner(std::string_view text) : text_(text) {}

  bool Scan(Request* out) {
    // ParseRequestLine hands us a fresh Request, but honor the "clobbered
    // either way" contract for any caller that reuses one.
    out->id.clear();
    out->tenancy.clear();
    out->catalog.reset();
    out->config.reset();
    out->tenants.clear();
    out->tenant = -1;
    out->slots = 1;
    out->period = 0;
    out->record.clear();
    out->snapshot.reset();
    out->placement.reset();
    out->requests.clear();

    SkipWs();
    if (!ScanRequestObject(out, /*member=*/false)) return false;
    SkipWs();
    return pos_ == text_.size();  // trailing garbage otherwise
  }

 private:
  /// One request document, top-level or as a batch member. Members refuse
  /// the ops the tree parser rejects inside a batch (nested batch,
  /// shutdown) by bailing, so the tree re-derives the exact error.
  bool ScanRequestObject(Request* out, bool member) {
    if (!Consume('{')) return false;
    bool seen_v = false, seen_op = false, seen_id = false,
         seen_tenancy = false, seen_tenants = false, seen_tenant = false,
         seen_slots = false, seen_period = false, seen_requests = false;
    int version = 0;
    RequestOp op = RequestOp::kListMechanisms;
    SkipWs();
    if (!Consume('}')) {
      while (true) {
        SkipWs();
        std::string_view key;
        if (!ScanKey(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        SkipWs();
        if (key == "v") {
          // CheckVersion: a number, integral, within the spoken range.
          double d = 0.0;
          if (seen_v || !ScanNumber(&d)) return false;
          if (d != std::floor(d) || d < kMinProtocolVersion ||
              d > kProtocolVersion) {
            return false;
          }
          version = static_cast<int>(d);
          seen_v = true;
        } else if (key == "op") {
          if (seen_op || !ScanStringInto(&op_name_)) return false;
          std::optional<RequestOp> parsed = RequestOpFromName(op_name_);
          if (!parsed) return false;
          // open_period carries the nested CatalogSpec/ServiceConfig
          // payloads this scanner does not model; likewise the cluster
          // ops with required payloads (record / snapshot / placement)
          // and restore/export, whose tenancy field is optional rather
          // than forbidden. Inside a batch, the tree parser additionally
          // rejects nested batches and shutdowns — bail so it owns those
          // errors.
          if (*parsed == RequestOp::kOpenPeriod ||
              *parsed == RequestOp::kReplAppend ||
              *parsed == RequestOp::kReplCheckpoint ||
              *parsed == RequestOp::kClusterUpdate ||
              *parsed == RequestOp::kRestore ||
              *parsed == RequestOp::kExport) {
            return false;
          }
          if (member && (*parsed == RequestOp::kBatch ||
                         *parsed == RequestOp::kShutdown)) {
            return false;
          }
          op = *parsed;
          seen_op = true;
        } else if (key == "id") {
          if (seen_id || !ScanStringInto(&out->id)) return false;
          seen_id = true;
        } else if (key == "tenancy") {
          if (seen_tenancy || !ScanStringInto(&out->tenancy)) return false;
          seen_tenancy = true;
        } else if (key == "tenants") {
          if (seen_tenants || !ScanTenants(&out->tenants)) return false;
          seen_tenants = true;
        } else if (key == "tenant") {
          int tenant = 0;
          if (seen_tenant || !ScanInt(&tenant)) return false;
          out->tenant = tenant;
          seen_tenant = true;
        } else if (key == "slots") {
          int slots = 0;
          if (seen_slots || !ScanInt(&slots)) return false;
          if (slots < 1) return false;  // advance_slot rejects; others too.
          out->slots = slots;
          seen_slots = true;
        } else if (key == "period") {
          int period = 0;
          if (seen_period || !ScanInt(&period)) return false;
          if (period < 1) return false;  // report rejects; others too.
          out->period = period;
          seen_period = true;
        } else if (key == "requests" && !member) {
          // A batch's member array: each element is a full request
          // document; a non-batch op with this field bails below.
          if (seen_requests || !ScanMembers(&out->requests)) return false;
          seen_requests = true;
        } else {
          // Unknown to the scanner: catalog/config (valid for open_period
          // only) or a field the tree parser rejects. Either way, its call.
          return false;
        }
        SkipWs();
        if (Consume('}')) break;
        if (!Consume(',')) return false;
      }
    }

    // The tree parser's post-parse validation, as accept-only conditions.
    if (!seen_v || !seen_op) return false;
    if (version < RequestOpMinVersion(op)) return false;
    if (OpTakesTenancy(op)) {
      if (!seen_tenancy || out->tenancy.empty()) return false;
    } else if (seen_tenancy) {
      return false;
    }
    switch (op) {
      case RequestOp::kSubmit:
      case RequestOp::kQueryPrice:
        if (!seen_tenants || seen_tenant || seen_slots || seen_period) {
          return false;
        }
        break;
      case RequestOp::kDepart:
        if (!seen_tenant || seen_tenants || seen_slots || seen_period) {
          return false;
        }
        break;
      case RequestOp::kAdvanceSlot:
        if (seen_tenants || seen_tenant || seen_period) return false;
        break;
      case RequestOp::kReport:
        // "period" is optional here and nowhere else.
        if (seen_tenants || seen_tenant || seen_slots) return false;
        break;
      case RequestOp::kBatch:
        if (!seen_requests || seen_tenants || seen_tenant || seen_slots ||
            seen_period) {
          return false;
        }
        break;
      default:
        if (seen_tenants || seen_tenant || seen_slots || seen_period) {
          return false;
        }
        break;
    }
    if (seen_requests && op != RequestOp::kBatch) return false;
    out->op = op;
    out->version = version;
    return true;
  }

  /// The batch "requests" array. Empty arrays bail (the tree parser
  /// rejects them with its own message).
  bool ScanMembers(std::vector<Request>* out) {
    out->clear();
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return false;  // tree rejects an empty batch
    while (true) {
      SkipWs();
      Request request;
      if (!ScanRequestObject(&request, /*member=*/true)) return false;
      out->push_back(std::move(request));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  /// An object key as its raw span. Escaped keys bail to the tree parser
  /// (decoding could alias a known field name; not worth modeling).
  bool ScanKey(std::string_view* key) {
    if (!Consume('"')) return false;
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"' && text_[pos_] != '\\') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] == '\\') return false;
    *key = text_.substr(start, pos_ - start);
    ++pos_;
    return true;
  }

  /// A string value. The escape-free common case assigns the raw span;
  /// otherwise decodes exactly as Parser::ParseRawString (any escape the
  /// tree rejects bails here too).
  bool ScanStringInto(std::string* out) {
    if (!Consume('"')) return false;
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"' && text_[pos_] != '\\') {
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    out->assign(text_.data() + start, pos_ - start);
    if (text_[pos_] == '"') {
      ++pos_;
      return true;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // UTF-8 encode (BMP only), mirroring the tree parser.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  /// Same charset scan + full-match from_chars as Parser::ParseNumber.
  bool ScanNumber(double* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (ec != std::errc() || ptr != text_.data() + pos_) return false;
    *out = d;
    return true;
  }

  /// A number that GetInt accepts: integral and within int range.
  bool ScanInt(int* out) {
    double d = 0.0;
    if (!ScanNumber(&d)) return false;
    if (d != std::floor(d) || d < -2147483648.0 || d > 2147483647.0) {
      return false;
    }
    *out = static_cast<int>(d);
    return true;
  }

  bool ScanBool(bool* out) {
    if (ConsumeLiteral("true")) {
      *out = true;
      return true;
    }
    if (ConsumeLiteral("false")) {
      *out = false;
      return true;
    }
    return false;
  }

  // -- The submit payload, mirroring SimUserFromJson's strictness ----------

  bool ScanTenants(std::vector<simdb::SimUser>* out) {
    out->clear();
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      simdb::SimUser tenant;
      if (!ScanSimUser(&tenant)) return false;
      out->push_back(std::move(tenant));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ScanSimUser(simdb::SimUser* out) {
    if (!Consume('{')) return false;
    bool seen_start = false, seen_end = false, seen_exec = false,
         seen_workload = false;
    SkipWs();
    if (!Consume('}')) {
      while (true) {
        SkipWs();
        std::string_view key;
        if (!ScanKey(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        SkipWs();
        if (key == "start") {
          int slot = 0;
          if (seen_start || !ScanInt(&slot)) return false;
          out->start = slot;
          seen_start = true;
        } else if (key == "end") {
          int slot = 0;
          if (seen_end || !ScanInt(&slot)) return false;
          out->end = slot;
          seen_end = true;
        } else if (key == "executions_per_slot") {
          if (seen_exec || !ScanNumber(&out->executions_per_slot)) {
            return false;
          }
          seen_exec = true;
        } else if (key == "workload") {
          if (seen_workload || !ScanWorkload(&out->workload)) return false;
          seen_workload = true;
        } else {
          return false;
        }
        SkipWs();
        if (Consume('}')) break;
        if (!Consume(',')) return false;
      }
    }
    return seen_start && seen_end && seen_exec && seen_workload;
  }

  bool ScanWorkload(simdb::Workload* out) {
    out->entries.clear();
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      simdb::Workload::Entry entry;
      if (!ScanWorkloadEntry(&entry)) return false;
      out->entries.push_back(std::move(entry));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ScanWorkloadEntry(simdb::Workload::Entry* out) {
    if (!Consume('{')) return false;
    bool seen_frequency = false, seen_query = false;
    SkipWs();
    if (!Consume('}')) {
      while (true) {
        SkipWs();
        std::string_view key;
        if (!ScanKey(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        SkipWs();
        if (key == "frequency") {
          if (seen_frequency || !ScanNumber(&out->frequency)) return false;
          seen_frequency = true;
        } else if (key == "query") {
          if (seen_query || !ScanQuery(&out->query)) return false;
          seen_query = true;
        } else {
          return false;
        }
        SkipWs();
        if (Consume('}')) break;
        if (!Consume(',')) return false;
      }
    }
    return seen_frequency && seen_query;
  }

  bool ScanQuery(simdb::Query* out) {
    if (!Consume('{')) return false;
    bool seen_table = false, seen_aggregate = false, seen_predicates = false;
    SkipWs();
    if (!Consume('}')) {
      while (true) {
        SkipWs();
        std::string_view key;
        if (!ScanKey(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        SkipWs();
        if (key == "table") {
          if (seen_table || !ScanStringInto(&out->table)) return false;
          seen_table = true;
        } else if (key == "aggregate") {
          if (seen_aggregate || !ScanBool(&out->aggregate)) return false;
          seen_aggregate = true;
        } else if (key == "predicates") {
          if (seen_predicates || !ScanPredicates(&out->predicates)) {
            return false;
          }
          seen_predicates = true;
        } else {
          return false;
        }
        SkipWs();
        if (Consume('}')) break;
        if (!Consume(',')) return false;
      }
    }
    return seen_table && seen_aggregate && seen_predicates;
  }

  bool ScanPredicates(std::vector<simdb::Predicate>* out) {
    out->clear();
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      simdb::Predicate predicate;
      if (!ScanPredicate(&predicate)) return false;
      out->push_back(std::move(predicate));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ScanPredicate(simdb::Predicate* out) {
    if (!Consume('{')) return false;
    bool seen_column = false, seen_selectivity = false;
    SkipWs();
    if (!Consume('}')) {
      while (true) {
        SkipWs();
        std::string_view key;
        if (!ScanKey(&key)) return false;
        SkipWs();
        if (!Consume(':')) return false;
        SkipWs();
        if (key == "column") {
          if (seen_column || !ScanStringInto(&out->column)) return false;
          seen_column = true;
        } else if (key == "selectivity") {
          if (seen_selectivity || !ScanNumber(&out->selectivity)) {
            return false;
          }
          seen_selectivity = true;
        } else {
          return false;
        }
        SkipWs();
        if (Consume('}')) break;
        if (!Consume(',')) return false;
      }
    }
    return seen_column && seen_selectivity;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string op_name_;  // SSO: every op tag fits inline.
};

}  // namespace

bool TryFastParseRequestLine(std::string_view line, Request* out) {
  return FastScanner(line).Scan(out);
}

}  // namespace optshare::service::protocol
