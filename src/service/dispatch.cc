#include "service/dispatch.h"

#include <utility>

namespace optshare::service {

bool RequestDispatcher::Submit(const std::string& line,
                               std::function<void(std::string)> done) {
  Result<protocol::Request> request =
      protocol::ParseRequestLine(line, server_->max_request_bytes());
  if (!request.ok()) {
    // The client's version is unknowable from an unparseable line; answer
    // with the oldest version so every client generation can read it —
    // exactly HandleLine's behavior.
    protocol::Response error = protocol::ErrorResponse("", request.status());
    error.version = protocol::kMinProtocolVersion;
    done(protocol::FormatResponseLine(error));
    return false;
  }
  const bool is_shutdown = request->op == protocol::RequestOp::kShutdown;
  server_->DispatchCallback(
      std::move(*request),
      [done = std::move(done)](protocol::Response response) {
        done(protocol::FormatResponseLine(response));
      });
  return is_shutdown;
}

std::string RequestDispatcher::OversizedLineResponse() const {
  protocol::Response error = protocol::ErrorResponse(
      "", Status::ResourceExhausted(
              "request line exceeds the " +
              std::to_string(server_->max_request_bytes()) +
              "-byte cap (--max-request-bytes)"));
  error.version = protocol::kMinProtocolVersion;
  return protocol::FormatResponseLine(error);
}

uint64_t OrderedLineWriter::Reserve() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_reserve_++;
}

void OrderedLineWriter::Complete(uint64_t slot, std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_.emplace(slot, std::move(line));
  // Flush the contiguous prefix; anything beyond a still-missing slot
  // waits buffered so responses leave in request order.
  for (auto it = ready_.begin();
       it != ready_.end() && it->first == next_flush_;) {
    sink_(std::move(it->second));
    it = ready_.erase(it);
    ++next_flush_;
  }
}

bool OrderedLineWriter::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_flush_ == next_reserve_ && ready_.empty();
}

}  // namespace optshare::service
