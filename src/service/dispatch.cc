#include "service/dispatch.h"

#include <utility>

namespace optshare::service {
namespace {

/// One reused serialization buffer per thread — per worker shard on the
/// dispatch path, per transport thread for inline errors. Responses are
/// appended here and handed to `done` as a view, so steady-state serving
/// allocates nothing per response (the buffer's capacity converges on the
/// largest response that shard has produced).
std::string* ResponseScratch() {
  thread_local std::string scratch;
  scratch.clear();
  return &scratch;
}

}  // namespace

bool RequestDispatcher::Submit(const std::string& line,
                               std::function<void(std::string_view)> done) {
  // Transports frame under the batch line cap (the larger budget) so a
  // legal v3 batch frame is never torn mid-stream; anything that big and
  // NOT a batch still answers the plain-cap rejection — the same bytes the
  // bounded readers answered before batch framing existed.
  Result<protocol::Request> request =
      protocol::ParseRequestLine(line, server_->max_batch_request_bytes());
  const size_t plain_cap = server_->max_request_bytes();
  if (plain_cap > 0 && line.size() > plain_cap &&
      !(request.ok() && request->op == protocol::RequestOp::kBatch)) {
    const std::string response = OversizedLineResponse();
    done(response);
    return false;
  }
  if (!request.ok()) {
    // The client's version is unknowable from an unparseable line; answer
    // with the oldest version so every client generation can read it —
    // exactly HandleLine's behavior.
    protocol::Response error = protocol::ErrorResponse("", request.status());
    error.version = protocol::kMinProtocolVersion;
    std::string* scratch = ResponseScratch();
    protocol::AppendResponseLine(error, scratch);
    done(*scratch);
    return false;
  }
  const bool is_shutdown = request->op == protocol::RequestOp::kShutdown;
  // The raw line rides along so a single-tenancy batch frame journals
  // verbatim; it is only read during the call itself (the line buffer is
  // reused once Submit returns).
  server_->DispatchCallback(
      std::move(*request),
      [done = std::move(done)](protocol::Response response) {
        std::string* scratch = ResponseScratch();
        protocol::AppendResponseLine(response, scratch);
        done(*scratch);
      },
      &line);
  return is_shutdown;
}

std::string RequestDispatcher::OversizedLineResponse() const {
  protocol::Response error = protocol::ErrorResponse(
      "", Status::ResourceExhausted(
              "request line exceeds the " +
              std::to_string(server_->max_request_bytes()) +
              "-byte cap (--max-request-bytes)"));
  error.version = protocol::kMinProtocolVersion;
  return protocol::FormatResponseLine(error);
}

uint64_t OrderedLineWriter::Reserve() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_reserve_++;
}

void OrderedLineWriter::Complete(uint64_t slot, std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot == next_flush_) {
    // In-order arrival: pass the view straight through, no copy, then
    // drain whatever buffered successors it unblocks.
    sink_(line);
    ++next_flush_;
  } else {
    // Out of order: buffer a copy; it flushes once its predecessors land.
    ready_.emplace(slot, std::string(line));
  }
  for (auto it = ready_.begin();
       it != ready_.end() && it->first == next_flush_;) {
    sink_(it->second);
    it = ready_.erase(it);
    ++next_flush_;
  }
}

bool OrderedLineWriter::Idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_flush_ == next_reserve_ && ready_.empty();
}

}  // namespace optshare::service
