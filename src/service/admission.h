// Per-tenancy admission control for the marketplace wire layer (protocol
// v3): token-bucket quotas over mutating ops, plus the per-connection rate
// limiting NetServer applies before dispatch. A breach answers with a typed
// ResourceExhausted carrying a retry_after_ms hint instead of queueing work
// the tenancy has not paid for — which is what keeps one quota-breaching
// tenant from starving a compliant one on the shared shard pool.
//
// Enforcement happens at dispatch time only; journal replay calls
// MarketplaceServer::Execute directly and is never throttled, so recovery
// is deterministic regardless of wall-clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/json.h"
#include "service/cloud_service.h"

namespace optshare::service {

/// A standard token bucket: capacity `burst`, refilled at `rate` tokens
/// per second. Not thread-safe on its own (AdmissionController serializes
/// access; NetServer uses one per connection on the loop thread).
class TokenBucket {
 public:
  struct Decision {
    bool admitted = true;
    /// When not admitted: how long until the bucket can cover the cost.
    int retry_after_ms = 0;
  };

  /// Unlimited bucket (every Acquire admits).
  TokenBucket() = default;
  /// `rate_per_sec` <= 0 means unlimited; `burst` <= 0 defaults to the
  /// rate (at least one token of capacity either way).
  TokenBucket(double rate_per_sec, double burst);

  Decision Acquire(double cost) {
    return AcquireAt(cost, std::chrono::steady_clock::now());
  }
  /// Clock-injected Acquire so tests can drive time deterministically.
  Decision AcquireAt(double cost, std::chrono::steady_clock::time_point now);

  bool unlimited() const { return rate_ <= 0.0; }

 private:
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  bool primed_ = false;  ///< First Acquire starts with a full bucket.
  std::chrono::steady_clock::time_point last_{};
};

/// The server-side registry: one bucket per tenancy, defaulting to the
/// server-wide quota until an open_period config installs a per-tenancy
/// override (which, because open_period is journaled, survives replay).
/// Thread-safe.
class AdmissionController {
 public:
  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected = 0;
  };

  explicit AdmissionController(AdmissionConfig server_default = {})
      : default_(server_default) {}

  /// Installs (or replaces) a tenancy's quota.
  void SetTenancyLimit(const std::string& tenancy,
                       const AdmissionConfig& config);

  /// Charges `cost` mutating ops against the tenancy's bucket. `cost` 0
  /// (a batch with no mutating members, say) always admits without
  /// touching the bucket.
  TokenBucket::Decision Admit(const std::string& tenancy, double cost);

  Stats stats() const;
  /// The server_info / metrics view: default quota, override count,
  /// admitted/rejected totals.
  JsonValue InfoJson() const;

 private:
  mutable std::mutex mu_;
  AdmissionConfig default_;
  std::unordered_map<std::string, TokenBucket> buckets_;
  std::unordered_map<std::string, AdmissionConfig> overrides_;
  Stats stats_;
};

}  // namespace optshare::service
