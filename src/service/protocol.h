// The marketplace wire protocol: versioned, newline-delimited JSON
// request/response documents driving a MarketplaceServer
// (service/marketplace_server.h). One request per line, one response per
// line, in request order.
//
// Every request carries the schema version and an op tag:
//
//   {"v": 1, "op": "open_period", "tenancy": "acme",
//    "catalog": {"scenario": "telemetry", "tenants": 6, "slots": 12},
//    "config": {"mechanism": "addon", "slots_per_period": 12}}
//   {"v": 1, "op": "submit", "tenancy": "acme", "tenants": [
//      {"start": 1, "end": 12, "executions_per_slot": 200,
//       "workload": [{"frequency": 1, "query": {"table": "telemetry",
//         "aggregate": true, "predicates": [
//           {"column": "device_id", "selectivity": 1e-6}]}}]}]}
//   {"v": 1, "op": "depart", "tenancy": "acme", "tenant": 0}
//   {"v": 1, "op": "advance_slot", "tenancy": "acme", "slots": 3}
//   {"v": 1, "op": "close_period", "tenancy": "acme"}
//   {"v": 1, "op": "report", "tenancy": "acme"}
//   {"v": 1, "op": "list_mechanisms"}
//
// Version 2 keeps every v1 document valid (requests may carry "v":1 or
// "v":2; responses echo the request's version, so v1 clients keep parsing
// what they always parsed) and adds the durability ops, which require
// "v":2:
//
//   {"v": 2, "op": "snapshot", "tenancy": "acme"}   # checkpoint now
//   {"v": 2, "op": "restore"}                       # load store tenancies
//   {"v": 2, "op": "shutdown"}                      # drain + checkpoint
//   {"v": 2, "op": "server_info"}                   # store kind, recovery
//
// Version 3 keeps every v1/v2 document valid and adds the batch frame:
// many requests on one line, answered by one ordered response batch:
//
//   {"v": 3, "op": "batch", "id": "b1", "requests": [
//      {"v": 1, "op": "submit", "tenancy": "acme", "tenants": [...]},
//      {"v": 1, "op": "advance_slot", "tenancy": "acme", "slots": 3}]}
//   -> {"v": 3, "id": "b1", "ok": true, "result": {"responses": [
//         <response doc for requests[0]>, <response doc for requests[1]>]}}
//
// Members execute in order within each tenancy (one FIFO shard task per
// tenancy group, so the group is atomic with respect to other writers of
// that tenancy) and each member response is byte-identical to what the
// same request would have produced sent on its own line. Members may not
// themselves be batches or shutdowns. Error responses may carry a
// "retry_after_ms" hint (admission control) alongside code/message.
//
// Responses echo the request's optional "id" and carry either a payload or
// a typed error mapping onto common/Status:
//
//   {"v": 1, "ok": true, "result": {...}}
//   {"v": 1, "ok": false, "error": {"code": "NotFound", "message": "..."}}
//
// Parsing is strict: an unknown field, a missing "v", or a version other
// than kProtocolVersion rejects the document (InvalidArgument), so schema
// drift fails loudly instead of silently ignoring client intent. Every
// variant round-trips bit-identically through ToJson/FromJson (numbers use
// common/json's round-trip formatting), which is what lets a recorded
// request stream be replayed as a differential test against direct
// PricingSession calls (tests/service_server_test.cc).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "service/cloud_service.h"
#include "simdb/pricing.h"
#include "simdb/schema.h"

namespace optshare::service::protocol {

/// Newest version of the request/response schema this build speaks.
/// Documents carrying any version in [kMinProtocolVersion,
/// kProtocolVersion] are accepted; anything else is rejected at parse time.
inline constexpr int kProtocolVersion = 3;
/// Oldest version still accepted (v1: the pre-durability op set).
inline constexpr int kMinProtocolVersion = 1;

/// Default cap on one request line (HandleLine / the serve loop); a longer
/// line is rejected with ResourceExhausted instead of being buffered.
inline constexpr size_t kDefaultMaxRequestBytes = 1 << 20;

/// Default cap on one *batch* line. A legal v3 batch frame packs many
/// requests onto one line, so transports buffer up to this larger cap and
/// the per-request cap is enforced per plain (non-batch) document after
/// parsing — an oversized batch gets a typed ResourceExhausted response
/// instead of a silent in-stream discard.
inline constexpr size_t kDefaultMaxBatchRequestBytes = 8u << 20;

/// The request variants.
enum class RequestOp {
  kOpenPeriod,
  kSubmit,
  kDepart,
  kAdvanceSlot,
  kClosePeriod,
  kReport,
  kListMechanisms,
  // v2 durability ops.
  kSnapshot,
  kRestore,
  kShutdown,
  kServerInfo,
  // v2 cluster ops (src/cluster/): journal-streaming replication, tenancy
  // hand-off, and placement-map distribution. These carry StateStore wire
  // bytes verbatim, so a replica's journal replays bit-identically.
  kReplAppend,      ///< One journal line into the replica's store.
  kReplCheckpoint,  ///< Snapshot into the replica's store (truncates journal).
  kReplSync,        ///< Drop the replica's journal tail (mirror of Sync).
  kTenancyState,    ///< Export snapshot + journal tail (rebalance source).
  kEvict,           ///< Checkpoint + drop the live tenancy (rebalance source).
  kClusterUpdate,   ///< Install a newer placement map on a node.
  // v2 analytics ops (src/analytics/): served from the published ReadView
  // without entering the tenancy's FIFO shard.
  kQueryPrice,      ///< What-if pricing for a tenant roster, read-only.
  kExport,          ///< Columnar export of ledgers/reports to --export-dir.
  // v3 batching.
  kBatch,           ///< Many requests, one line, one ordered response batch.
};

/// Every RequestOp, in enum order — sized per-op tables (e.g. the
/// server_info request counters) iterate this.
inline constexpr RequestOp kAllRequestOps[] = {
    RequestOp::kOpenPeriod,     RequestOp::kSubmit,
    RequestOp::kDepart,         RequestOp::kAdvanceSlot,
    RequestOp::kClosePeriod,    RequestOp::kReport,
    RequestOp::kListMechanisms, RequestOp::kSnapshot,
    RequestOp::kRestore,        RequestOp::kShutdown,
    RequestOp::kServerInfo,     RequestOp::kReplAppend,
    RequestOp::kReplCheckpoint, RequestOp::kReplSync,
    RequestOp::kTenancyState,   RequestOp::kEvict,
    RequestOp::kClusterUpdate,  RequestOp::kQueryPrice,
    RequestOp::kExport,         RequestOp::kBatch,
};
inline constexpr size_t kNumRequestOps =
    sizeof(kAllRequestOps) / sizeof(kAllRequestOps[0]);

/// Wire tag of an op ("open_period", ...).
std::string_view RequestOpName(RequestOp op);
/// Inverse of RequestOpName; nullopt for unknown tags.
std::optional<RequestOp> RequestOpFromName(std::string_view name);
/// Lowest protocol version whose documents may carry `op` (1 for the
/// original op set, 2 for the durability ops).
int RequestOpMinVersion(RequestOp op);
/// True for ops addressed to one tenancy (the "tenancy" field is
/// required); false for the global ops (list_mechanisms, restore,
/// shutdown, server_info).
bool OpTakesTenancy(RequestOp op);

/// How a tenancy's catalog is bootstrapped over the wire (first open_period
/// for a tenancy): either a canned simdb scenario by name or inline table
/// definitions. Exactly one of the two must be present.
struct CatalogSpec {
  /// "clickstream", "retail" or "telemetry"; empty = inline tables.
  std::string scenario;
  /// Sizing arguments forwarded to the scenario constructor.
  int scenario_tenants = 6;
  int scenario_slots = 12;
  /// Inline table definitions (used when `scenario` is empty).
  std::vector<simdb::TableDef> tables;
};

/// One protocol request: the op tag plus the fields of its variant (fields
/// of other variants stay defaulted and are neither serialized nor
/// accepted when parsing that variant).
struct Request {
  RequestOp op = RequestOp::kListMechanisms;
  /// Schema version the document was (or will be) encoded with. Parsing
  /// preserves the client's version so responses — and journal replays —
  /// can echo it bit-identically.
  int version = kProtocolVersion;
  /// Client-chosen correlation id, echoed verbatim in the response (empty =
  /// absent).
  std::string id;
  /// Target tenancy; required for every op except list_mechanisms and the
  /// global v2 ops (restore, shutdown, server_info, cluster_update). A
  /// restore may carry an *optional* tenancy to recover just that tenancy
  /// (the cluster failover path).
  std::string tenancy;

  // open_period
  std::optional<CatalogSpec> catalog;      ///< Required on first touch.
  std::optional<ServiceConfig> config;     ///< Absent = tenancy's config.

  // submit
  std::vector<simdb::SimUser> tenants;

  // depart
  UserId tenant = -1;

  // advance_slot
  int slots = 1;

  // report: 0 = the live report; >= 1 selects one retained closed period
  // (served from the analytics history; NotFound when not retained).
  int period = 0;

  // repl_append: one StateStore journal line, verbatim wire bytes.
  std::string record;

  // repl_checkpoint: the tenancy snapshot as its bit-identical JSON form.
  std::optional<JsonValue> snapshot;

  // cluster_update: the serialized placement map (opaque to the protocol;
  // src/cluster/placement.h owns the schema).
  std::optional<JsonValue> placement;

  // batch: the member requests, in submission order. Members may not be
  // batches or shutdowns (rejected at parse time).
  std::vector<Request> requests;
};

/// One protocol response. `status` carries the typed error (OK = success);
/// `payload` is the op-specific result object (null on error).
struct Response {
  std::string id;
  /// Version the response line is encoded with; the server sets it to the
  /// request's version so old clients never see a document newer than what
  /// they sent.
  int version = kProtocolVersion;
  Status status;
  JsonValue payload;
  /// Pre-serialized payload: when non-empty it IS the result document, and
  /// `payload` is ignored — AppendResponseLine splices it verbatim and
  /// ToJson parses it back into a tree. Producers (the batch hot path,
  /// which assembles its response array from already-serialized member
  /// lines) must only store documents that Dump byte-identically to the
  /// tree they replace.
  std::string raw_payload;
  /// Admission-control hint on an error response: how long the client
  /// should wait before retrying (0 = absent, not serialized).
  int retry_after_ms = 0;

  bool ok() const { return status.ok(); }
};

// -- Serialization ----------------------------------------------------------

JsonValue ToJson(const Request& request);
JsonValue ToJson(const Response& response);
JsonValue ToJson(const simdb::SimUser& tenant);
JsonValue ToJson(const simdb::TableDef& table);
JsonValue ToJson(const ServiceConfig& config);
JsonValue ToJson(const CatalogSpec& spec);
JsonValue ToJson(const PeriodReport& report);

Result<Request> RequestFromJson(const JsonValue& v);
Result<Response> ResponseFromJson(const JsonValue& v);
Result<simdb::SimUser> SimUserFromJson(const JsonValue& v);
Result<simdb::TableDef> TableDefFromJson(const JsonValue& v);
Result<ServiceConfig> ServiceConfigFromJson(const JsonValue& v);
Result<CatalogSpec> CatalogSpecFromJson(const JsonValue& v);
Result<PeriodReport> PeriodReportFromJson(const JsonValue& v);

/// Parses one wire line into a request (strict: version check, unknown
/// fields rejected). `max_bytes` > 0 rejects longer lines with
/// ResourceExhausted before parsing (the protocol-robustness cap).
///
/// This is the serving hot path: it first attempts the single-pass,
/// non-materializing scanner (service/fast_wire.h), which fills the
/// Request directly from string_view spans without building a JsonValue
/// tree, and falls back to the tree parser for anything the scanner does
/// not recognize — so acceptance/rejection semantics (and every error
/// message) are exactly the tree parser's.
Result<Request> ParseRequestLine(const std::string& line,
                                 size_t max_bytes = 0);

/// The original JsonValue-tree parse path, kept callable on its own so the
/// differential and fuzz suites (and the protocol bench) can pin the fast
/// scanner against it byte-for-byte.
Result<Request> ParseRequestLineTree(const std::string& line,
                                     size_t max_bytes = 0);

/// Serializes a response as one compact wire line (no trailing newline).
std::string FormatResponseLine(const Response& response);

/// Append-form FormatResponseLine: serializes into *out (appending; no
/// trailing newline) so transports can reuse one scratch buffer across
/// replies instead of allocating a fresh string each. Byte-identical to
/// FormatResponseLine / ToJson(response).Dump().
void AppendResponseLine(const Response& response, std::string* out);

/// The error response for `status`, echoing `id`.
Response ErrorResponse(std::string id, Status status);
/// A success response with `payload`, echoing `id`.
Response OkResponse(std::string id, JsonValue payload);

}  // namespace optshare::service::protocol
