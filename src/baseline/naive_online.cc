#include "baseline/naive_online.h"

#include <cassert>

#include "core/shapley.h"

namespace optshare {

double NaiveOnlineResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

MechanismResult ToMechanismResult(const NaiveOnlineResult& outcome,
                                  int num_users, int num_slots) {
  MechanismResult r;
  r.num_users = num_users;
  r.num_opts = 1;
  r.num_slots = num_slots;
  r.implemented = outcome.implemented;
  r.implemented_at = {outcome.implemented_at};
  r.cost_share = {0.0};  // Funders pay Shapley shares; later users nothing.
  r.payments = outcome.payments;
  r.serviced.resize(1);
  r.active.resize(1);
  r.active[0].resize(static_cast<size_t>(num_slots));
  for (size_t t = 0; t < outcome.serviced.size(); ++t) {
    r.active[0][t] = Coalition::FromSorted(outcome.serviced[t]);
    for (UserId i : outcome.serviced[t]) r.serviced[0].Insert(i);
  }
  return r;
}

NaiveOnlineResult RunNaiveOnline(const AdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int z = game.num_slots;

  NaiveOnlineResult result;
  result.payments.assign(static_cast<size_t>(m), 0.0);
  result.serviced.resize(static_cast<size_t>(z));

  std::vector<double> residual(static_cast<size_t>(m));
  for (TimeSlot t = 1; t <= z; ++t) {
    if (!result.implemented) {
      for (UserId i = 0; i < m; ++i) {
        const auto& u = game.users[static_cast<size_t>(i)];
        residual[static_cast<size_t>(i)] =
            (t >= u.start) ? u.ResidualFrom(t) : 0.0;
      }
      ShapleyResult sh = RunShapley(game.cost, residual);
      if (sh.implemented) {
        result.implemented = true;
        result.implemented_at = t;
        result.payments = sh.payments;  // Funders pay; later users do not.
      }
    }
    if (result.implemented) {
      // Free access for every active user from the funding slot onward.
      auto& s_t = result.serviced[static_cast<size_t>(t - 1)];
      for (UserId i = 0; i < m; ++i) {
        const auto& u = game.users[static_cast<size_t>(i)];
        if (t >= u.start && t <= u.end) s_t.push_back(i);
      }
    }
  }
  return result;
}

}  // namespace optshare
