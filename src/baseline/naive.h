// The naive pay-your-bid mechanism of paper Example 1: implement the
// optimization when the bids cover its cost and charge each serviced user
// exactly her bid. Cost-recovering but *not* truthful — users gain by
// underbidding. Kept as a teaching baseline and for the Example 1 tests.
#pragma once

#include <vector>

#include "core/mechanism.h"

namespace optshare {

/// Outcome of the naive mechanism for one optimization.
struct NaiveResult {
  bool implemented = false;
  /// Per-user payment (her own bid when implemented, 0 otherwise).
  std::vector<double> payments;

  double TotalPayment() const;
};

/// Implements the optimization iff the bid sum covers `cost`; every user is
/// then serviced and pays her bid. `cost` must be > 0; bids non-negative.
NaiveResult RunNaive(double cost, const std::vector<double>& bids);

/// Uniform-result view of a single-optimization naive outcome: when
/// implemented, every user is serviced and pays her bid. Lets experiments
/// compare the baseline through the engine's shared result shape (see
/// baseline/baseline_mechanisms.h for the registry entry).
MechanismResult ToMechanismResult(const NaiveResult& outcome);

}  // namespace optshare
