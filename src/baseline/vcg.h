// VCG (Vickrey-Clarke-Groves) reference mechanism for additive offline
// games. The paper (§3) invokes the Moulin-Shenker impossibility: no
// mechanism is simultaneously truthful, cost-recovering and efficient. VCG
// occupies the truthful+efficient corner of that triangle — it always picks
// the welfare-maximizing configuration and charges each serviced user her
// externality — but is *not* cost-recovering. It is implemented here as the
// efficiency yardstick for the ablation bench and tests.
//
// For additive optimizations the welfare-optimal choice decomposes per
// optimization j: implement j iff sum_i b_ij >= C_j, and grant it to every
// user with b_ij > 0. User i's VCG payment for j is her externality:
//   max(0, C_j - sum_{k != i} b_kj)   if j is implemented with her, plus
//   max(0, sum_{k != i} b_kj - C_j)   worth of welfare she displaced when j
// would have been implemented without her but is not with her (which cannot
// happen here since bids are non-negative) — so only the first term
// remains.
#pragma once

#include <vector>

#include "core/game.h"
#include "core/mechanism.h"

namespace optshare {

/// Outcome of VCG on one optimization.
struct VcgOptResult {
  bool implemented = false;
  /// serviced[i]: user granted access (every positive bidder when
  /// implemented — efficiency never excludes a positive-value user).
  std::vector<bool> serviced;
  /// Externality payment per user (the pivotal "clarke tax").
  std::vector<double> payments;

  double TotalPayment() const;
};

/// Outcome of VCG on a full additive offline game.
struct VcgResult {
  std::vector<VcgOptResult> per_opt;
  std::vector<double> total_payment;  ///< Per user.

  /// Sum of implemented optimization costs.
  double ImplementedCost(const std::vector<double>& costs) const;
};

/// Runs VCG per optimization. Precondition: game.Validate().ok().
VcgResult RunVcg(const AdditiveOfflineGame& game);

/// Uniform-result view: per-opt serviced coalitions and Clarke payments
/// (cost_share stays 0 — VCG has no cost-sharing notion, which is exactly
/// why it is not cost-recovering).
MechanismResult ToMechanismResult(const VcgResult& outcome, int num_users);

/// The welfare-optimal (efficient) total utility of an additive offline
/// game under truthful values: sum over j of max(0, sum_i v_ij - C_j).
/// Upper-bounds every mechanism's total utility.
double OptimalAdditiveWelfare(const AdditiveOfflineGame& truth);

/// Welfare-optimal total utility of a single-optimization online game when
/// the implementation slot can be chosen with hindsight: the best
/// max(0, sum_i residual_i(t) - C) over slots t (users are serviced from t
/// onward). Upper-bounds AddOn and Regret alike.
double OptimalOnlineWelfare(const AdditiveOnlineGame& truth);

/// Exact welfare optimum of an offline substitutable game, by enumerating
/// every subset of optimizations to implement (each user then freely uses
/// any implemented substitute): max over S of
///   sum_{i: J_i ∩ S != ∅} v_i  -  sum_{j in S} C_j.
/// Exponential in the optimization count; requires num_opts() <= 20.
/// Upper-bounds SubstOff and substitutable Regret.
double OptimalSubstWelfare(const SubstOfflineGame& truth);

}  // namespace optshare
