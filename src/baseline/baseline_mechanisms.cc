#include "baseline/baseline_mechanisms.h"

#include <memory>

#include "baseline/naive.h"
#include "baseline/naive_online.h"
#include "baseline/regret.h"
#include "baseline/vcg.h"
#include "core/mechanism.h"

namespace optshare {
namespace {

class NaiveMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "naive"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kAdditiveOffline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    const AdditiveOfflineGame& g = game.additive_offline();

    // Additive values: the pay-your-bid rule applies per optimization.
    MechanismResult r;
    r.num_users = g.num_users();
    r.num_opts = g.num_opts();
    r.payments.assign(static_cast<size_t>(g.num_users()), 0.0);
    std::vector<double> column(static_cast<size_t>(g.num_users()));
    for (OptId j = 0; j < g.num_opts(); ++j) {
      for (UserId i = 0; i < g.num_users(); ++i) {
        column[static_cast<size_t>(i)] =
            g.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
      }
      MechanismResult one = ToMechanismResult(
          RunNaive(g.costs[static_cast<size_t>(j)], column));
      r.implemented = r.implemented || one.implemented;
      r.implemented_at.push_back(one.implemented_at[0]);
      r.cost_share.push_back(one.cost_share[0]);
      r.serviced.push_back(std::move(one.serviced[0]));
      for (UserId i = 0; i < g.num_users(); ++i) {
        r.payments[static_cast<size_t>(i)] +=
            one.payments[static_cast<size_t>(i)];
      }
    }
    return r;
  }
};

class NaiveOnlineMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "naive_online"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kAdditiveOnline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    const AdditiveOnlineGame& g = game.additive_online();
    return ToMechanismResult(RunNaiveOnline(g), g.num_users(), g.num_slots);
  }
};

class VcgMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "vcg"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kAdditiveOffline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    const AdditiveOfflineGame& g = game.additive_offline();
    return ToMechanismResult(RunVcg(g), g.num_users());
  }
};

class RegretMechanism final : public Mechanism {
 public:
  std::string_view name() const override { return "regret"; }
  bool Supports(GameKind kind) const override {
    return kind == GameKind::kAdditiveOnline ||
           kind == GameKind::kSubstOnline;
  }
  Result<MechanismResult> Run(const GameView& game) const override {
    if (!Supports(game.kind())) return UnsupportedKind(name(), game.kind());
    OPTSHARE_RETURN_NOT_OK(game.Validate());
    if (game.kind() == GameKind::kAdditiveOnline) {
      const AdditiveOnlineGame& g = game.additive_online();
      return ToMechanismResult(RunRegretAdditive(g), g);
    }
    const SubstOnlineGame& g = game.subst_online();
    return ToMechanismResult(RunRegretSubst(g), g);
  }
};

}  // namespace

void RegisterBaselineMechanisms() {
  static const bool registered = [] {
    MechanismRegistry& registry = MechanismRegistry::Global();
    (void)registry.Register("naive",
                            [] { return std::make_unique<NaiveMechanism>(); });
    (void)registry.Register("naive_online", [] {
      return std::make_unique<NaiveOnlineMechanism>();
    });
    (void)registry.Register("vcg",
                            [] { return std::make_unique<VcgMechanism>(); });
    (void)registry.Register("regret", [] {
      return std::make_unique<RegretMechanism>();
    });
    return true;
  }();
  (void)registered;
}

}  // namespace optshare
