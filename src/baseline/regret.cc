#include "baseline/regret.h"

#include <algorithm>
#include <cassert>

#include "common/money.h"

namespace optshare {
namespace {

/// Picks the loss-minimizing price from `residuals` (future value per
/// eligible user). Returns {price, loss}. Candidates are 0 and each distinct
/// positive residual: raising the price above a residual only sheds that
/// buyer, so optima occur at residuals.
struct PriceChoice {
  double price = 0.0;
  double loss = 0.0;
};

PriceChoice ChoosePrice(std::vector<double> residuals, double cost,
                        RegretPricing pricing = RegretPricing::kOptimal) {
  // Loss(p) = max{C - p*I(p), 0} with I(p) a decreasing step function, so
  // optima occur at the step edges (the residuals) or at break-even points
  // C/k inside a step. Enumerating both finds the exact minimum, and
  // scanning in increasing order returns the smallest minimizer (the
  // paper's tie rule, maximizing user utility).
  std::vector<double> candidates = {0.0};
  for (double r : residuals) {
    if (r > 0.0) candidates.push_back(r);
  }
  if (pricing == RegretPricing::kOptimal) {
    for (size_t k = 1; k <= residuals.size(); ++k) {
      candidates.push_back(cost / static_cast<double>(k));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  PriceChoice best;
  best.loss = cost;  // Price 0 collects nothing: loss = cost.
  for (double p : candidates) {
    int buyers = 0;
    for (double r : residuals) {
      if (r > 0.0 && MoneyGe(r, p)) ++buyers;
    }
    const double loss =
        std::max(cost - p * static_cast<double>(buyers), 0.0);
    // Strict improvement keeps the smallest minimizing price (candidates
    // are scanned in increasing order).
    if (loss < best.loss - kMoneyEpsilon) {
      best.price = p;
      best.loss = loss;
    }
  }
  return best;
}

}  // namespace

MechanismResult ToMechanismResult(const RegretAdditiveResult& outcome,
                                  const AdditiveOnlineGame& game) {
  const int m = game.num_users();
  const int z = game.num_slots;
  MechanismResult r;
  r.num_users = m;
  r.num_opts = 1;
  r.num_slots = z;
  r.implemented = outcome.implemented;
  r.implemented_at = {outcome.implemented_at};
  r.cost_share = {0.0};  // Regret charges a posted price, not a share.
  r.payments.assign(static_cast<size_t>(m), 0.0);
  r.serviced.resize(1);
  r.active.resize(1);
  r.active[0].resize(static_cast<size_t>(z));
  if (!outcome.implemented) return r;
  std::vector<UserId> buyers;
  for (UserId i = 0; i < m; ++i) {
    if (outcome.buyer[static_cast<size_t>(i)]) {
      buyers.push_back(i);
      r.payments[static_cast<size_t>(i)] = outcome.price;
    }
  }
  r.serviced[0] = Coalition::FromSorted(buyers);
  // Buyers hold access from the slot after the trigger; At(t) is zero
  // outside a user's interval, so the accounting recovers exactly the
  // residual each buyer paid for.
  for (TimeSlot t = outcome.implemented_at + 1; t <= z; ++t) {
    r.active[0][static_cast<size_t>(t - 1)] = r.serviced[0];
  }
  return r;
}

MechanismResult ToMechanismResult(const RegretSubstResult& outcome,
                                  const SubstOnlineGame& game) {
  const int m = game.num_users();
  const int n = game.num_opts();
  const int z = game.num_slots;
  MechanismResult r;
  r.num_users = m;
  r.num_opts = n;
  r.num_slots = z;
  r.implemented_at = outcome.implemented_at;
  r.cost_share.assign(static_cast<size_t>(n), 0.0);
  r.payments = outcome.payments;
  r.grant = outcome.bought;
  r.serviced.resize(static_cast<size_t>(n));
  r.active.resize(static_cast<size_t>(n));
  for (auto& per_slot : r.active) per_slot.resize(static_cast<size_t>(z));
  for (OptId j = 0; j < n; ++j) {
    if (outcome.implemented_at[static_cast<size_t>(j)] > 0) {
      r.implemented = true;
    }
  }
  for (UserId i = 0; i < m; ++i) {
    const OptId j = outcome.bought[static_cast<size_t>(i)];
    if (j == kNoOpt) continue;
    r.serviced[static_cast<size_t>(j)].Insert(i);
    for (TimeSlot t = outcome.implemented_at[static_cast<size_t>(j)] + 1;
         t <= z; ++t) {
      r.active[static_cast<size_t>(j)][static_cast<size_t>(t - 1)].Insert(i);
    }
  }
  return r;
}

int RegretAdditiveResult::NumBuyers() const {
  int n = 0;
  for (bool b : buyer) n += b ? 1 : 0;
  return n;
}

RegretAdditiveResult RunRegretAdditive(const AdditiveOnlineGame& game,
                                       RegretPricing pricing) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int z = game.num_slots;

  RegretAdditiveResult result;
  result.buyer.assign(static_cast<size_t>(m), false);
  result.regret.assign(static_cast<size_t>(z), 0.0);

  // R_j(t) = sum over slots tau < t of all user values: the value forgone
  // because the optimization did not exist.
  double accumulated = 0.0;
  for (TimeSlot t = 1; t <= z; ++t) {
    result.regret[static_cast<size_t>(t - 1)] = accumulated;
    if (!result.implemented && MoneyGe(accumulated, game.cost)) {
      result.implemented = true;
      result.implemented_at = t;
    }
    for (UserId i = 0; i < m; ++i) {
      accumulated += game.users[static_cast<size_t>(i)].At(t);
    }
  }

  if (!result.implemented) return result;

  result.total_cost = game.cost;
  const TimeSlot tr = result.implemented_at;
  std::vector<double> residuals(static_cast<size_t>(m));
  for (UserId i = 0; i < m; ++i) {
    residuals[static_cast<size_t>(i)] =
        game.users[static_cast<size_t>(i)].ResidualFrom(tr + 1);
  }

  const PriceChoice choice = ChoosePrice(residuals, game.cost, pricing);
  result.price = choice.price;
  for (UserId i = 0; i < m; ++i) {
    const double r = residuals[static_cast<size_t>(i)];
    if (r > 0.0 && MoneyGe(r, result.price)) {
      result.buyer[static_cast<size_t>(i)] = true;
      result.total_value += r;
      result.total_payment += result.price;
    }
  }
  return result;
}

std::vector<RegretAdditiveResult> RunRegretAdditiveAll(
    const MultiAdditiveOnlineGame& game) {
  assert(game.Validate().ok());
  std::vector<RegretAdditiveResult> results;
  results.reserve(static_cast<size_t>(game.num_opts()));
  for (OptId j = 0; j < game.num_opts(); ++j) {
    results.push_back(RunRegretAdditive(game.ProjectOpt(j)));
  }
  return results;
}

RegretLedger SumLedgers(const std::vector<RegretAdditiveResult>& results) {
  RegretLedger ledger;
  for (const auto& r : results) {
    ledger.total_value += r.total_value;
    ledger.total_payment += r.total_payment;
    ledger.total_cost += r.total_cost;
  }
  return ledger;
}

RegretSubstResult RunRegretSubst(const SubstOnlineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();
  const int z = game.num_slots;

  RegretSubstResult result;
  result.implemented_at.assign(static_cast<size_t>(n), 0);
  result.price.assign(static_cast<size_t>(n), 0.0);
  result.bought.assign(static_cast<size_t>(m), kNoOpt);
  result.payments.assign(static_cast<size_t>(m), 0.0);

  // capture_slot[i]: trigger slot of the optimization user i bought
  // (0 = still uncaptured). A captured user is serviced for t > capture
  // slot, so she accrues regret for other substitutes only up to it.
  std::vector<TimeSlot> capture_slot(static_cast<size_t>(m), 0);

  auto user_wants = [&](UserId i, OptId j) {
    const auto& subs = game.users[static_cast<size_t>(i)].substitutes;
    return std::find(subs.begin(), subs.end(), j) != subs.end();
  };

  for (TimeSlot t = 1; t <= z; ++t) {
    for (OptId j = 0; j < n; ++j) {
      if (result.implemented_at[static_cast<size_t>(j)] != 0) continue;
      // Recompute R_j(t); horizons here are small (z,m,n <= a few dozen).
      double regret = 0.0;
      for (UserId i = 0; i < m; ++i) {
        if (!user_wants(i, j)) continue;
        // A captured user stops adding regret for other substitutes from
        // her capture slot onward (she is being serviced instead).
        const TimeSlot cap = capture_slot[static_cast<size_t>(i)];
        const TimeSlot limit =
            (result.bought[static_cast<size_t>(i)] == kNoOpt)
                ? t - 1
                : std::min<TimeSlot>(t - 1, cap - 1);
        const auto& stream = game.users[static_cast<size_t>(i)].stream;
        for (TimeSlot tau = 1; tau <= limit; ++tau) {
          regret += stream.At(tau);
        }
      }
      if (!MoneyGe(regret, game.costs[static_cast<size_t>(j)])) continue;

      // Trigger: implement j now and price access for uncaptured users.
      result.implemented_at[static_cast<size_t>(j)] = t;
      result.total_cost += game.costs[static_cast<size_t>(j)];

      std::vector<double> residuals;
      std::vector<UserId> eligible;
      for (UserId i = 0; i < m; ++i) {
        if (result.bought[static_cast<size_t>(i)] != kNoOpt) continue;
        if (!user_wants(i, j)) continue;
        eligible.push_back(i);
        residuals.push_back(
            game.users[static_cast<size_t>(i)].stream.ResidualFrom(t + 1));
      }
      const PriceChoice choice =
          ChoosePrice(residuals, game.costs[static_cast<size_t>(j)]);
      result.price[static_cast<size_t>(j)] = choice.price;
      for (size_t k = 0; k < eligible.size(); ++k) {
        const double r = residuals[k];
        if (r > 0.0 && MoneyGe(r, choice.price)) {
          const UserId i = eligible[k];
          result.bought[static_cast<size_t>(i)] = j;
          result.payments[static_cast<size_t>(i)] = choice.price;
          capture_slot[static_cast<size_t>(i)] = t;
          result.total_value += r;
          result.total_payment += choice.price;
        }
      }
    }
  }
  return result;
}

}  // namespace optshare
