#include "baseline/naive.h"

#include <cassert>

#include "common/money.h"

namespace optshare {

double NaiveResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

NaiveResult RunNaive(double cost, const std::vector<double>& bids) {
  assert(cost > 0.0);
  NaiveResult result;
  result.payments.assign(bids.size(), 0.0);
  double total = 0.0;
  for (double b : bids) {
    assert(b >= 0.0);
    total += b;
  }
  if (!MoneyGe(total, cost)) return result;
  result.implemented = true;
  result.payments = bids;
  return result;
}

}  // namespace optshare
