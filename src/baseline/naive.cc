#include "baseline/naive.h"

#include <cassert>

#include "common/money.h"

namespace optshare {

double NaiveResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

MechanismResult ToMechanismResult(const NaiveResult& outcome) {
  const int m = static_cast<int>(outcome.payments.size());
  MechanismResult r;
  r.num_users = m;
  r.num_opts = 1;
  r.implemented = outcome.implemented;
  r.implemented_at = {outcome.implemented ? 1 : 0};
  r.cost_share = {0.0};  // Pay-your-bid has no common share.
  r.payments = outcome.payments;
  r.serviced.resize(1);
  if (outcome.implemented) r.serviced[0] = Coalition::All(m);
  return r;
}

NaiveResult RunNaive(double cost, const std::vector<double>& bids) {
  assert(cost > 0.0);
  NaiveResult result;
  result.payments.assign(bids.size(), 0.0);
  double total = 0.0;
  for (double b : bids) {
    assert(b >= 0.0);
    total += b;
  }
  if (!MoneyGe(total, cost)) return result;
  result.implemented = true;
  result.payments = bids;
  return result;
}

}  // namespace optshare
