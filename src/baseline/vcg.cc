#include "baseline/vcg.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "common/money.h"

namespace optshare {

double VcgOptResult::TotalPayment() const {
  double sum = 0.0;
  for (double p : payments) sum += p;
  return sum;
}

double VcgResult::ImplementedCost(const std::vector<double>& costs) const {
  assert(costs.size() == per_opt.size());
  double sum = 0.0;
  for (size_t j = 0; j < per_opt.size(); ++j) {
    if (per_opt[j].implemented) sum += costs[j];
  }
  return sum;
}

MechanismResult ToMechanismResult(const VcgResult& outcome, int num_users) {
  const int n = static_cast<int>(outcome.per_opt.size());
  MechanismResult r;
  r.num_users = num_users;
  r.num_opts = n;
  r.implemented_at.assign(static_cast<size_t>(n), 0);
  r.cost_share.assign(static_cast<size_t>(n), 0.0);
  r.payments = outcome.total_payment;
  r.serviced.resize(static_cast<size_t>(n));
  for (OptId j = 0; j < n; ++j) {
    const VcgOptResult& opt = outcome.per_opt[static_cast<size_t>(j)];
    if (!opt.implemented) continue;
    r.implemented = true;
    r.implemented_at[static_cast<size_t>(j)] = 1;
    r.serviced[static_cast<size_t>(j)] = Coalition::FromMask(opt.serviced);
  }
  return r;
}

VcgResult RunVcg(const AdditiveOfflineGame& game) {
  assert(game.Validate().ok());
  const int m = game.num_users();
  const int n = game.num_opts();

  VcgResult result;
  result.per_opt.reserve(static_cast<size_t>(n));
  result.total_payment.assign(static_cast<size_t>(m), 0.0);

  for (OptId j = 0; j < n; ++j) {
    const double cost = game.costs[static_cast<size_t>(j)];
    VcgOptResult opt;
    opt.serviced.assign(static_cast<size_t>(m), false);
    opt.payments.assign(static_cast<size_t>(m), 0.0);

    double total_bid = 0.0;
    for (UserId i = 0; i < m; ++i) {
      total_bid += game.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    if (MoneyGe(total_bid, cost)) {
      opt.implemented = true;
      for (UserId i = 0; i < m; ++i) {
        const double b =
            game.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
        if (b <= 0.0) continue;
        opt.serviced[static_cast<size_t>(i)] = true;
        // Clarke tax: the shortfall the others face because i's bid was
        // needed to justify the cost.
        const double others = total_bid - b;
        const double payment = std::max(0.0, cost - others);
        opt.payments[static_cast<size_t>(i)] = payment;
        result.total_payment[static_cast<size_t>(i)] += payment;
      }
    }
    result.per_opt.push_back(std::move(opt));
  }
  return result;
}

double OptimalAdditiveWelfare(const AdditiveOfflineGame& truth) {
  assert(truth.Validate().ok());
  double welfare = 0.0;
  for (OptId j = 0; j < truth.num_opts(); ++j) {
    double total = 0.0;
    for (UserId i = 0; i < truth.num_users(); ++i) {
      total += truth.bids[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    welfare += std::max(0.0, total - truth.costs[static_cast<size_t>(j)]);
  }
  return welfare;
}

double OptimalSubstWelfare(const SubstOfflineGame& truth) {
  assert(truth.Validate().ok());
  const int n = truth.num_opts();
  assert(n <= 20 && "subset enumeration is exponential in num_opts");

  // Precompute each user's substitute mask.
  std::vector<uint32_t> user_mask;
  user_mask.reserve(truth.users.size());
  for (const auto& u : truth.users) {
    uint32_t mask = 0;
    for (OptId j : u.substitutes) mask |= 1u << j;
    user_mask.push_back(mask);
  }

  double best = 0.0;
  for (uint32_t subset = 0; subset < (1u << n); ++subset) {
    double welfare = 0.0;
    for (OptId j = 0; j < n; ++j) {
      if (subset & (1u << j)) welfare -= truth.costs[static_cast<size_t>(j)];
    }
    for (size_t i = 0; i < truth.users.size(); ++i) {
      if (user_mask[i] & subset) welfare += truth.users[i].value;
    }
    best = std::max(best, welfare);
  }
  return best;
}

double OptimalOnlineWelfare(const AdditiveOnlineGame& truth) {
  assert(truth.Validate().ok());
  // With hindsight the best implementation slot is t = 1 (residuals only
  // shrink), so the optimum is total value minus cost, floored at zero.
  double total = 0.0;
  for (const auto& u : truth.users) total += u.Total();
  return std::max(0.0, total - truth.cost);
}

}  // namespace optshare
