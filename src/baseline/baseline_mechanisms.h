// Registry glue for the baselines: wraps Naive, NaiveOnline, VCG and Regret
// behind the core Mechanism interface so callers — the CLI, the cloud
// service, the experiment harness — can select them by name next to the
// paper's mechanisms and compare outcomes uniformly (MechanismResult /
// AccountResult).
//
// Registered names:
//   "naive"         additive offline (pay-your-bid, Example 1)
//   "naive_online"  additive online  (free-ride scheme, Example 2)
//   "vcg"           additive offline (efficient, not cost-recovering)
//   "regret"        additive online + substitutable online (§7.1 baseline)
#pragma once

namespace optshare {

/// Idempotently registers the baseline mechanisms with
/// MechanismRegistry::Global(). Safe to call from multiple entry points.
void RegisterBaselineMechanisms();

}  // namespace optshare
