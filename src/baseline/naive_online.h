// The naive online adaptation of the Shapley Value Mechanism that paper
// Example 2 constructs and then demolishes: run Shapley each slot on
// *current-slot* bids until the optimization is funded, charge the funding
// users, and serve everyone for free afterwards. Cost-recovering but not
// truthful — a user can hide her early value, let others fund the build,
// and free-ride later. Implemented as a teaching baseline; the tests
// reproduce Example 2's exploit verbatim.
#pragma once

#include <vector>

#include "core/game.h"
#include "core/mechanism.h"

namespace optshare {

/// Outcome of the naive online scheme.
struct NaiveOnlineResult {
  bool implemented = false;
  TimeSlot implemented_at = 0;   ///< Slot whose Shapley run funded it.
  std::vector<double> payments;  ///< Charged only to the funding users.
  /// serviced[t-1]: users with access at slot t (funders from the funding
  /// slot; everyone present afterwards — access is free once built).
  std::vector<std::vector<UserId>> serviced;

  double TotalPayment() const;
};

/// Runs the Example 2 scheme: at each slot, Shapley over the *residual*
/// values of present users; first funded slot builds the optimization and
/// charges its serviced set; afterwards every user whose interval is
/// active gets free access. Precondition: game.Validate().ok().
NaiveOnlineResult RunNaiveOnline(const AdditiveOnlineGame& game);

/// Uniform-result view: funders' payments, per-slot active access sets.
MechanismResult ToMechanismResult(const NaiveOnlineResult& outcome,
                                  int num_users, int num_slots);

}  // namespace optshare
