// Regret-based amortization baseline (paper §7.1; Dash, Kantere et al.).
//
// The cloud observes workloads, accumulates for each optimization j the
// value R_j(t) that *would have been realized* had j existed from the start
// (regret), and greedily implements j at the first slot t with
// R_j(t) >= C_j. Users in subsequent slots gain access after paying a price
// p_j chosen — with perfect knowledge of future values, an upper bound on
// the real algorithm — to minimize the cloud's loss
// max{C_j - p_j * I_j(p_j, t_r), 0}, where I_j counts future users whose
// residual value reaches p_j. Ties choose the smallest price so user
// utilities are maximized.
//
// Unlike the mechanisms in core/, Regret (a) trusts reported values and
// (b) does not guarantee cost recovery: its cloud balance can go negative.
#pragma once

#include <vector>

#include "core/game.h"
#include "core/mechanism.h"

namespace optshare {

/// Outcome of Regret on a single additive optimization.
struct RegretAdditiveResult {
  bool implemented = false;
  TimeSlot implemented_at = 0;  ///< Trigger slot t_r (0 when not triggered).
  double price = 0.0;           ///< One-time access price p_j.
  std::vector<bool> buyer;      ///< Users who paid p_j for access.
  std::vector<double> regret;   ///< regret[t-1] = R_j(t), for diagnostics.

  // Ledger (values are true values: Regret assumes truthful reporting).
  double total_value = 0.0;    ///< Value realized by buyers for t > t_r.
  double total_payment = 0.0;  ///< p_j * #buyers.
  double total_cost = 0.0;     ///< C_j if implemented, else 0.

  double TotalUtility() const { return total_value - total_cost; }
  double CloudBalance() const { return total_payment - total_cost; }
  int NumBuyers() const;
};

/// Price-selection policy after the trigger fires.
enum class RegretPricing {
  /// Exact loss minimizer: candidates are residuals and break-even points
  /// C/k (the default; an upper bound on the published algorithm).
  kOptimal,
  /// Residual-value candidates only — the literal reading of "p such that
  /// future users' payments equal c_j"; kept for the ablation bench.
  kResidualsOnly,
};

/// Runs Regret for one additive optimization over the game's horizon.
/// Precondition: game.Validate().ok().
RegretAdditiveResult RunRegretAdditive(
    const AdditiveOnlineGame& game,
    RegretPricing pricing = RegretPricing::kOptimal);

/// Runs Regret independently per optimization of an additive multi-opt game.
std::vector<RegretAdditiveResult> RunRegretAdditiveAll(
    const MultiAdditiveOnlineGame& game);

/// Aggregated ledger across several additive Regret runs.
struct RegretLedger {
  double total_value = 0.0;
  double total_payment = 0.0;
  double total_cost = 0.0;
  double TotalUtility() const { return total_value - total_cost; }
  double CloudBalance() const { return total_payment - total_cost; }
};
RegretLedger SumLedgers(const std::vector<RegretAdditiveResult>& results);

/// Outcome of Regret with substitutable optimizations: once a user buys
/// access to one implemented substitute she stops accruing regret (and
/// value) for the others.
struct RegretSubstResult {
  std::vector<TimeSlot> implemented_at;  ///< Per opt (0 = never).
  std::vector<double> price;             ///< Per opt (0 when not implemented).
  std::vector<OptId> bought;             ///< Per user (kNoOpt = none).
  std::vector<double> payments;          ///< Per user.

  double total_value = 0.0;
  double total_payment = 0.0;
  double total_cost = 0.0;

  double TotalUtility() const { return total_value - total_cost; }
  double CloudBalance() const { return total_payment - total_cost; }
};

/// Runs substitutable Regret. Within a slot, optimizations whose regret
/// crosses their cost trigger in increasing id order.
/// Precondition: game.Validate().ok().
RegretSubstResult RunRegretSubst(const SubstOnlineGame& game);

/// Uniform-result views: buyers become the serviced coalition, active from
/// the slot after the trigger through the horizon (their realized value is
/// exactly the residual they bought). The game supplies interval bounds.
MechanismResult ToMechanismResult(const RegretAdditiveResult& outcome,
                                  const AdditiveOnlineGame& game);
MechanismResult ToMechanismResult(const RegretSubstResult& outcome,
                                  const SubstOnlineGame& game);

}  // namespace optshare
